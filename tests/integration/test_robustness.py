"""Robustness integration tests: localization under injected failures.

The paper evaluates clean recordings; these tests quantify graceful
degradation using the dataset perturbations — the behaviours an adopter
needs to know hold before flying through worse conditions.
"""

import pytest

from repro.core.config import MclConfig
from repro.dataset.augment import (
    with_degraded_odometry,
    with_dropout_bursts,
    with_range_bias,
)
from repro.dataset.sequences import load_sequence
from repro.eval.runner import run_localization
from repro.maps.maze import build_drone_maze_world


@pytest.fixture(scope="module")
def world():
    return build_drone_maze_world()


@pytest.fixture(scope="module")
def sequence(world):
    return load_sequence(1, world)


@pytest.fixture(scope="module")
def clean_result(world, sequence):
    return run_localization(
        world.grid, sequence, MclConfig(particle_count=4096), seed=0
    )


class TestDropoutRobustness:
    def test_survives_one_second_blackouts(self, world, sequence, clean_result):
        """Blackouts suppress observation updates; odometry carries the
        filter across, and tracking must survive.

        The property is stochastic — an individual realization can lose
        track during a blackout and recover late — so it is asserted as
        a majority over filter seeds rather than pinned to one run
        (which would silently turn a robustness claim into a golden
        trace that any deliberate numeric re-baseline flips).
        """
        perturbed = with_dropout_bursts(sequence, burst_count=3, burst_frames=15, seed=0)
        results = [
            run_localization(
                world.grid, perturbed, MclConfig(particle_count=4096), seed=seed
            )
            for seed in (0, 1, 2)
        ]
        assert all(result.metrics.converged for result in results)
        survived = [
            result
            for result in results
            if result.metrics.success
            and result.metrics.ate_mean_m < clean_result.metrics.ate_mean_m + 0.1
        ]
        assert len(survived) >= 2, [r.metrics for r in results]


class TestBiasRobustness:
    def test_small_range_bias_tolerated(self, world, sequence):
        perturbed = with_range_bias(sequence, bias_m=0.05)
        result = run_localization(
            world.grid, perturbed, MclConfig(particle_count=4096), seed=0
        )
        assert result.metrics.converged
        assert result.metrics.ate_mean_m < 0.3

    def test_large_bias_degrades_accuracy(self, world, sequence, clean_result):
        perturbed = with_range_bias(sequence, bias_m=0.2)
        result = run_localization(
            world.grid, perturbed, MclConfig(particle_count=4096), seed=0
        )
        if result.metrics.converged:
            # A 0.2 m systematic shift must show up in the ATE.
            assert result.metrics.ate_mean_m > clean_result.metrics.ate_mean_m


class TestOdometryRobustness:
    def test_degraded_odometry_still_localizes(self, world, sequence):
        perturbed = with_degraded_odometry(
            sequence, extra_noise_xy=0.005, extra_scale_error=0.03, seed=1
        )
        result = run_localization(
            world.grid, perturbed, MclConfig(particle_count=4096), seed=0
        )
        assert result.metrics.converged
        assert result.metrics.ate_mean_m < 0.35
