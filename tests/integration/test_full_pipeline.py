"""End-to-end integration tests on the paper's evaluation world.

These replay the cached canonical sequences through the full stack —
world, dataset, filter, metrics — and assert the paper's headline
behaviours at single-run granularity.  The statistical sweeps behind
Fig. 6-8 live in the benchmark harness.
"""

import numpy as np
import pytest

from repro.baselines.dead_reckoning import run_dead_reckoning
from repro.baselines.uwb import run_uwb_baseline
from repro.core.config import MclConfig
from repro.dataset.sequences import load_sequence
from repro.eval.runner import run_localization
from repro.maps.maze import build_drone_maze_world


@pytest.fixture(scope="module")
def world():
    return build_drone_maze_world()


@pytest.fixture(scope="module")
def sequence(world):
    return load_sequence(0, world)


class TestGlobalLocalization:
    def test_fp32_converges_and_tracks(self, world, sequence):
        config = MclConfig(particle_count=4096)
        result = run_localization(world.grid, sequence, config, seed=0)
        metrics = result.metrics
        assert metrics.converged
        assert metrics.success
        # Paper claim (i): ~0.15 m accuracy.
        assert metrics.ate_mean_m < 0.25

    def test_quantized_variants_no_accuracy_loss(self, world, sequence):
        # Paper claim (ii): quantization does not significantly hurt.
        fp32 = run_localization(
            world.grid, sequence, MclConfig(particle_count=4096), seed=0
        )
        fp16qm = run_localization(
            world.grid,
            sequence,
            MclConfig(particle_count=4096).with_variant("fp16qm"),
            seed=0,
        )
        assert fp16qm.metrics.success
        assert fp16qm.metrics.ate_mean_m < fp32.metrics.ate_mean_m + 0.1

    def test_estimate_trace_ends_inside_main_maze(self, world, sequence):
        result = run_localization(
            world.grid, sequence, MclConfig(particle_count=4096), seed=0
        )
        final = result.estimate_trace[-1]
        assert world.main.contains(float(final[0]), float(final[1]))


class TestBaselinesComparison:
    def test_mcl_beats_uwb(self, world, sequence):
        # Paper Sec. IV-B: MCL's 0.15 m beats the 0.22 / 0.28 m UWB systems.
        mcl = run_localization(
            world.grid, sequence, MclConfig(particle_count=4096), seed=0
        )
        uwb = run_uwb_baseline(
            sequence.ground_truth[:, :2],
            sequence.timestamps,
            volume_size=(world.grid.width_m, world.grid.height_m),
            seed=0,
        )
        assert mcl.metrics.ate_mean_m < uwb.mean_error_m

    def test_mcl_bounds_dead_reckoning_drift(self, world, sequence):
        mcl = run_localization(
            world.grid, sequence, MclConfig(particle_count=4096), seed=0
        )
        reckoning = run_dead_reckoning(sequence)
        # Post-convergence MCL error stays bounded while raw odometry ends
        # with a larger error than MCL's mean.
        assert mcl.metrics.ate_max_m <= 1.0
        assert reckoning.final_error_m > mcl.metrics.ate_mean_m


class TestMemoryOnGap9:
    def test_quantized_world_fits_l1_with_1024_particles(self, world):
        from repro.common.precision import PrecisionMode
        from repro.soc.memory import MemoryLevel, memory_budget

        budget = memory_budget(
            1024, world.grid.structured_area_m2(), PrecisionMode.FP16_QM
        )
        assert budget.fits(MemoryLevel.L1)

    def test_fp32_16384_needs_l2(self, world):
        from repro.common.precision import PrecisionMode
        from repro.soc.memory import MemoryLevel, memory_budget

        budget = memory_budget(
            16384, world.grid.structured_area_m2(), PrecisionMode.FP32
        )
        assert not budget.fits(MemoryLevel.L1)
        assert budget.fits(MemoryLevel.L2)
