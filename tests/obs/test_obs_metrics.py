"""Metric primitives: fixed bounds, canonical snapshots, renderings."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro import obs
from repro.obs.metrics import (
    COUNT_BOUNDS,
    LATENCY_BOUNDS_S,
    Counter,
    Gauge,
    Histogram,
    Registry,
    merge_snapshots,
    render_prometheus,
    render_table,
)


class TestPrimitives:
    def test_counter_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == 5

    def test_gauge_moves_both_ways(self):
        g = Gauge("depth")
        g.set(7)
        g.inc(2)
        g.dec()
        assert g.snapshot() == 8

    def test_histogram_buckets_and_stats(self):
        h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.counts == [1, 1, 1, 1]  # one overflow bucket rides along
        assert h.min == 0.5 and h.max == 500.0
        assert h.mean == pytest.approx(138.875)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(2.0, 1.0))

    def test_percentile_is_bucket_bound_clamped_to_max(self):
        h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 0.6, 5.0, 42.0):
            h.observe(v)
        assert h.percentile(0.0) == 1.0  # first bucket's upper bound
        assert h.percentile(1.0) == 42.0  # clamped to observed max
        assert h.percentile(0.5) == 1.0  # rank 1.5 still in bucket 0
        assert h.percentile(0.75) == 10.0
        with pytest.raises(ValueError):
            h.percentile(50)  # quantiles are [0, 1], not percent

    def test_empty_histogram_snapshot_is_json_safe(self):
        snap = Histogram("lat").snapshot()
        assert snap["count"] == 0
        assert snap["min"] == 0.0 and snap["max"] == 0.0
        json.dumps(snap)  # no inf/nan leaks


class TestDeterministicShape:
    def test_bounds_are_fixed_constants(self):
        # The mergeability contract: bounds never derive from data.
        assert list(LATENCY_BOUNDS_S) == sorted(LATENCY_BOUNDS_S)
        assert list(COUNT_BOUNDS) == sorted(COUNT_BOUNDS)
        assert Histogram("a").bounds == LATENCY_BOUNDS_S

    def test_snapshot_sections_sorted_and_canonical(self):
        reg = Registry()
        reg.counter("z.last").inc()
        reg.counter("a.first").inc(2)
        reg.gauge("m.depth").set(3)
        reg.histogram("h.lat").observe(0.25)
        snap = reg.snapshot()
        assert list(snap) == ["counters", "gauges", "histograms", "spans"]
        assert list(snap["counters"]) == ["a.first", "z.last"]
        json.dumps(snap, sort_keys=True)

    def test_identical_streams_in_separate_processes_snapshot_identically(
        self,
    ):
        """Two processes observing the same values produce byte-equal
        snapshot JSON — the property that makes snapshots mergeable."""
        program = (
            "import json\n"
            "from repro.obs.metrics import Registry\n"
            "reg = Registry()\n"
            "h = reg.histogram('serve.verb.submit')\n"
            "for v in (1e-6, 3e-4, 0.02, 0.02, 7.5, 123.0):\n"
            "    h.observe(v)\n"
            "reg.counter('engine.steps').inc(17)\n"
            "print(json.dumps(reg.snapshot(), sort_keys=True))\n"
        )
        outputs = [
            subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True,
                text=True,
                check=True,
            ).stdout
            for _ in range(2)
        ]
        assert outputs[0] == outputs[1]
        local = Registry()
        h = local.histogram("serve.verb.submit")
        for v in (1e-6, 3e-4, 0.02, 0.02, 7.5, 123.0):
            h.observe(v)
        local.counter("engine.steps").inc(17)
        assert json.dumps(local.snapshot(), sort_keys=True) == outputs[0].strip()

    def test_merge_snapshots_unions_sections(self):
        a = Registry()
        a.counter("only.a").inc()
        b = Registry()
        b.counter("only.b").inc(2)
        b.gauge("depth").set(5)
        merged = merge_snapshots(a.snapshot(), b.snapshot())
        assert merged["counters"] == {"only.a": 1, "only.b": 2}
        assert merged["gauges"] == {"depth": 5}


class TestRenderings:
    def _snapshot(self) -> dict:
        reg = Registry()
        reg.counter("engine.steps").inc(3)
        reg.gauge("serve.queue_depth").set(2)
        reg.histogram("serve.verb.submit", (0.1, 1.0)).observe(0.5)
        rec = obs.SpanRecorder(reg)
        rec.record("engine.step.weight", 0.25)
        return reg.snapshot()

    def test_table_lists_every_section(self):
        text = render_table(self._snapshot())
        for fragment in (
            "engine.steps",
            "serve.queue_depth",
            "serve.verb.submit",
            "engine.step.weight",
        ):
            assert fragment in text

    def test_prometheus_exposition(self):
        text = render_prometheus(self._snapshot())
        assert "# TYPE repro_engine_steps counter" in text
        assert "repro_engine_steps 3.0" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert '# TYPE repro_serve_verb_submit histogram' in text
        assert 'repro_serve_verb_submit_bucket{le="+Inf"} 1' in text
        assert "repro_serve_verb_submit_count 1" in text
        assert "repro_engine_step_weight_span_seconds_count 1" in text

    def test_empty_snapshot_renders(self):
        assert render_table(Registry().snapshot()) == "(empty snapshot)"
        assert render_prometheus(Registry().snapshot()) == ""
