"""The process-global obs seam: enable/disable, spans, timers, events."""

from __future__ import annotations

import json

from repro import obs
from repro.obs.metrics import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM
from repro.obs.tracing import NULL_SPAN


class TestDisabledIsFree:
    def test_accessors_hand_out_shared_singletons(self):
        # Identity, not equality: the disabled hot path must not
        # allocate per call.
        assert obs.counter("engine.steps") is NULL_COUNTER
        assert obs.gauge("serve.queue_depth") is NULL_GAUGE
        assert obs.histogram("serve.verb.submit") is NULL_HISTOGRAM
        assert obs.span("engine.step.weight") is NULL_SPAN
        assert not obs.enabled()

    def test_null_operations_are_inert(self):
        obs.counter("a").inc(100)
        obs.gauge("b").set(9)
        obs.histogram("c").observe(1.0)
        with obs.span("d") as span:
            pass
        assert span.elapsed_s == 0.0
        obs.event("e", detail=1)  # no event log: swallowed
        assert obs.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": {},
        }

    def test_null_span_is_reentrant(self):
        outer = obs.span("x")
        with outer:
            with obs.span("x"):
                pass

    def test_timer_measures_even_when_disabled(self):
        with obs.timed("cli.serve_sim") as timer:
            sum(range(1000))
        assert timer.elapsed_s > 0.0
        assert obs.snapshot()["spans"] == {}  # measured, not recorded


class TestEnabledRegistry:
    def test_enable_records_and_disable_reverts(self):
        obs.enable()
        assert obs.enabled()
        obs.counter("engine.steps").inc(3)
        with obs.span("engine.step.weight"):
            pass
        snap = obs.snapshot()
        assert snap["counters"] == {"engine.steps": 3}
        assert snap["spans"]["engine.step.weight"]["count"] == 1
        obs.disable()
        assert obs.counter("engine.steps") is NULL_COUNTER
        assert obs.snapshot()["counters"] == {}

    def test_env_flag_latches_on_first_use(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")
        obs.reset()
        assert obs.enabled()
        obs.counter("x").inc()
        assert obs.snapshot()["counters"] == {"x": 1}

    def test_spans_nest_and_aggregate_by_name(self):
        registry = obs.enable()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
            with obs.span("inner"):
                pass
        snap = registry.snapshot()
        assert snap["spans"]["outer"]["count"] == 1
        assert snap["spans"]["inner"]["count"] == 2
        assert (
            snap["spans"]["outer"]["total_s"]
            >= snap["spans"]["inner"]["total_s"]
        )

    def test_timer_records_when_enabled(self):
        obs.enable()
        with obs.timed("cli.serve_sim"):
            pass
        assert obs.snapshot()["spans"]["cli.serve_sim"]["count"] == 1


class TestEventLog:
    def test_obs_dir_env_implies_enable_and_writes_jsonl(
        self, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path))
        obs.reset()
        assert obs.enabled()
        assert obs.events_dir() is not None
        obs.event("sweep.cell", variant="fp32", runs=2)
        obs.event("serve.migrate.out", session="s-1")
        obs.reset()  # closes + flushes the log
        events = list(obs.read_events(tmp_path))
        assert [e["event"] for e in events] == [
            "sweep.cell",
            "serve.migrate.out",
        ]
        assert events[0]["variant"] == "fp32"
        assert all("ts" in e for e in events)

    def test_events_are_canonical_json_lines(self, tmp_path):
        obs.enable(tmp_path)
        obs.event("a", zebra=1, alpha=2)
        obs.reset()
        (line,) = [
            line
            for path in tmp_path.glob("events-*.jsonl")
            for line in path.read_text().splitlines()
        ]
        assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_malformed_lines_are_skipped(self, tmp_path):
        obs.enable(tmp_path)
        obs.event("good")
        obs.reset()
        (path,) = tmp_path.glob("events-*.jsonl")
        with path.open("a", encoding="utf-8") as handle:
            handle.write("{torn write\n")
        assert [e["event"] for e in obs.read_events(tmp_path)] == ["good"]


class TestLocalObs:
    def test_instances_do_not_cross_talk(self):
        a, b = obs.LocalObs(), obs.LocalObs()
        a.counter("serve.ticks").inc(5)
        b.counter("serve.ticks").inc(1)
        assert a.counter("serve.ticks").value == 5
        assert b.counter("serve.ticks").value == 1
        assert obs.snapshot()["counters"] == {}  # global untouched

    def test_always_on_regardless_of_global_state(self):
        local = obs.LocalObs()
        with local.span("serve.verb.submit") as span:
            pass
        assert local.snapshot()["spans"]["serve.verb.submit"]["count"] == 1
        assert span.elapsed_s >= 0.0
