"""The gateway's ``metrics`` verb and the ``stats`` wire-format contract."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import obs
from repro.serve import ErrorCode, OnlineClient, OnlineError, OnlineServer

FLEET = "office:1:flight_s=8@fp32@64*2"


def run(coro):
    return asyncio.run(coro)


class TestStatsCompatibility:
    """``stats`` predates obs; its wire format must not move."""

    #: The exact counter key set (and order) PR 7/8 clients depend on.
    LEGACY_KEYS = (
        "ticks",
        "frames_served",
        "updates",
        "connections",
        "requests",
        "rejected_admission",
        "rejected_overload",
        "protocol_errors",
        "drains",
        "migrations_out",
        "migrations_in",
        "migrations_failed",
    )

    def test_stats_property_projects_every_legacy_key_as_int(self):
        async def scenario():
            async with OnlineServer() as server:
                async with await OnlineClient.connect(*server.address) as c:
                    ids = await c.create_fleet(FLEET)
                    await c.submit(ids, frames=5, wait=True)
                    payload = await c.stats()
                return server.stats, payload

        stats, payload = run(scenario())
        assert tuple(stats) == self.LEGACY_KEYS
        assert all(isinstance(v, int) for v in stats.values())
        assert stats["frames_served"] == 10
        assert stats["ticks"] > 0
        # The wire payload carries the legacy keys flat, as always.
        for key in self.LEGACY_KEYS:
            assert payload[key] == stats[key]

    def test_two_servers_keep_independent_counters(self):
        async def scenario():
            async with OnlineServer() as a, OnlineServer() as b:
                async with await OnlineClient.connect(*a.address) as c:
                    ids = await c.create_fleet(FLEET)
                    await c.submit(ids, frames=3, wait=True)
                return a.stats, b.stats

        stats_a, stats_b = run(scenario())
        assert stats_a["frames_served"] == 6
        assert stats_b["frames_served"] == 0
        assert stats_b["connections"] == 0


class TestMetricsVerb:
    async def _served_client(self, server):
        client = await OnlineClient.connect(*server.address)
        ids = await client.create_fleet(FLEET)
        await client.submit(ids, frames=4, wait=True)
        return client

    def test_json_round_trip_includes_server_counters_and_spans(self):
        async def scenario():
            async with OnlineServer() as server:
                client = await self._served_client(server)
                try:
                    return await client.metrics()
                finally:
                    await client.close()

        response = run(scenario())
        assert response["format"] == "json"
        snap = response["metrics"]
        assert list(snap) == ["counters", "gauges", "histograms", "spans"]
        assert snap["counters"]["serve.frames_served"] == 8
        assert snap["counters"]["serve.requests"] >= 2
        assert snap["histograms"]["serve.verb.submit"]["count"] >= 1
        assert snap["spans"]["serve.verb.submit"]["count"] >= 1
        json.dumps(snap, sort_keys=True)  # wire-safe canonical JSON

    def test_prometheus_format(self):
        async def scenario():
            async with OnlineServer() as server:
                client = await self._served_client(server)
                try:
                    return await client.metrics(format="prom")
                finally:
                    await client.close()

        response = run(scenario())
        assert response["format"] == "prom"
        text = response["exposition"]
        assert "# TYPE repro_serve_frames_served counter" in text
        assert "repro_serve_frames_served 8.0" in text
        assert "# TYPE repro_serve_verb_submit histogram" in text

    def test_unknown_format_is_a_structured_rejection(self):
        async def scenario():
            async with OnlineServer() as server:
                async with await OnlineClient.connect(*server.address) as c:
                    with pytest.raises(OnlineError) as excinfo:
                        await c.metrics(format="xml")
                    return excinfo.value.code

        assert run(scenario()) == ErrorCode.BAD_REQUEST

    def test_merges_global_registry_when_enabled(self):
        obs.enable()
        obs.counter("engine.steps").inc(0)  # ensure the name exists

        async def scenario():
            async with OnlineServer() as server:
                client = await self._served_client(server)
                try:
                    return await client.metrics()
                finally:
                    await client.close()

        snap = run(scenario())["metrics"]
        # Global (engine/sched) and per-server (serve.*) sections merge.
        assert "engine.steps" in snap["counters"]
        assert snap["counters"]["serve.sched.ticks"] > 0
        assert snap["counters"]["serve.frames_served"] == 8
