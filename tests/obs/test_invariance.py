"""Telemetry has zero bitwise footprint, asserted at every layer.

The whole subsystem is worthless if flipping it on can move a number:
an instrumented fleet would no longer be comparable to an
uninstrumented paper run.  These tests execute the same workloads with
telemetry fully enabled (registry + spans + JSONL events) and disabled,
and require exact byte equality of every trace array — engine sweep
cells, a mixed fleet served through the socket gateway, and a live
migration between two gateways.
"""

from __future__ import annotations

import asyncio
import hashlib

import numpy as np
import pytest

from repro import obs
from repro.eval.aggregate import SweepProtocol
from repro.eval.sweep_engine import SweepEngine
from repro.scenarios import build_scenario
from repro.serve import MigrationCoordinator, OnlineClient, OnlineServer, Peer
from repro.serve.online import drive_fleet

SCENARIO_SPEC = "maze:0:cells=5+flight_s=25.0+size_m=3.0"
FLEET = (
    "office:1:flight_s=8@fp32@64*2,"
    "office:1:flight_s=8@fp16qm@96~2"
)


def _digest(array) -> str:
    return hashlib.sha256(np.asarray(array).tobytes()).hexdigest()


def _cell_digests() -> list[tuple]:
    scenario = build_scenario(SCENARIO_SPEC)
    engine = SweepEngine(backend="batched")
    result = engine.run(
        scenario.grid,
        [scenario.sequence],
        ["fp32"],
        [64],
        protocol=SweepProtocol(sequence_count=1, seeds=(0, 1)),
    )
    cell = result.cells[("fp32", 64)]
    return [
        (
            run.seed,
            run.update_count,
            _digest(run.timestamps),
            _digest(run.position_errors),
            _digest(run.yaw_errors),
            _digest(run.estimate_trace),
        )
        for run in cell.runs
    ]


def _trace_digests(report) -> dict:
    return {
        sid: (
            closed.trace.update_count,
            _digest(closed.trace.timestamps),
            _digest(closed.trace.position_errors),
            _digest(closed.trace.yaw_errors),
            _digest(closed.trace.estimate_trace),
        )
        for sid, closed in sorted(report.results.items())
    }


def _serve_fleet_digests() -> dict:
    async def serve():
        async with OnlineServer() as server:
            host, port = server.address
            return await drive_fleet(
                host, port, FLEET, connections=2, frames_per_round=5
            )

    return _trace_digests(asyncio.run(serve()))


def _migrated_digests() -> tuple:
    """Serve a fleet on A, rebalance half to B mid-flight, finish."""

    async def scenario():
        async with OnlineServer() as a, OnlineServer() as b:
            client = await OnlineClient.connect(*a.address)
            ids = await client.create_fleet(FLEET)
            await client.submit(ids, frames=10, wait=True)
            coordinator = MigrationCoordinator(
                [Peer(*a.address), Peer(*b.address)]
            )
            moves = await coordinator.rebalance()
            assert moves and all(m.ok for m in moves)
            # Finish every session where it now lives and digest it.
            digests = {}
            for server in (a, b):
                c = await OnlineClient.connect(*server.address)
                stats = await c.stats()
                for cohort in stats["cohort_occupancy"].values():
                    for sid in cohort["sessions"]:
                        status = await c.query(sid)
                        pending = (
                            status["frames_total"] - status["cursor"]
                        )
                        if pending:
                            await c.submit(sid, frames=pending, wait=True)
                        closed = await c.close_session(sid)
                        digests[sid] = (
                            closed.trace.update_count,
                            _digest(closed.trace.timestamps),
                            _digest(closed.trace.position_errors),
                            _digest(closed.trace.estimate_trace),
                        )
                await c.close()
            await client.close()
            return digests, [m.blackout_s for m in moves]

    return asyncio.run(scenario())


class TestEngineInvariance:
    def test_sweep_cell_identical_with_telemetry_on(self, tmp_path):
        obs.disable()
        baseline = _cell_digests()
        obs.enable(tmp_path)
        instrumented = _cell_digests()
        snap = obs.snapshot()
        assert instrumented == baseline
        # The instrumentation actually fired while staying invisible.
        assert snap["counters"]["engine.steps"] > 0
        assert snap["counters"]["sweep.cells"] == 1
        assert snap["spans"]["engine.step.weight"]["count"] > 0
        assert any(tmp_path.glob("events-*.jsonl"))


class TestServeInvariance:
    def test_fleet_through_socket_identical_with_telemetry_on(self):
        obs.disable()
        baseline = _serve_fleet_digests()
        obs.enable()
        instrumented = _serve_fleet_digests()
        snap = obs.snapshot()
        assert instrumented == baseline
        assert snap["counters"]["serve.sched.ticks"] > 0
        assert snap["spans"]["serve.sched.tick"]["count"] > 0
        assert snap["spans"]["serve.client.step_barrier"]["count"] > 0


class TestMigrationInvariance:
    def test_migration_identical_with_telemetry_on(self):
        obs.disable()
        baseline, _ = _migrated_digests()
        obs.enable()
        instrumented, blackouts = _migrated_digests()
        assert instrumented == baseline
        assert all(b > 0.0 for b in blackouts)
        snap = obs.snapshot()
        assert snap["counters"]["migrate.moves_ok"] >= 1
        assert snap["spans"]["migrate.blackout"]["count"] >= 1
