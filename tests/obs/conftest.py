"""Obs-suite isolation: every test starts with telemetry unconfigured.

``repro.obs`` keeps process-global state (registry, span recorder,
event log) latched from the environment on first use.  Each test here
gets a clean slate before and after, so enabling telemetry in one test
can never leak counters — or an open JSONL handle — into the next.
"""

from __future__ import annotations

import os

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs_state(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    monkeypatch.delenv("REPRO_OBS_DIR", raising=False)
    obs.reset()
    yield
    obs.reset()
