"""Lint: wall-clock timing stays on the one obs seam.

``time.perf_counter`` may only be called inside ``src/repro/obs/``
(the subsystem that owns the clock) and ``src/repro/eval/bench.py``
(the benchmark harness, exempted by charter).  Everything else must go
through ``obs.span`` / ``obs.timed`` so timings share one code path —
a raw ``perf_counter`` pair anywhere else is instrumentation drifting
off the seam, and this test is the tripwire.
"""

from __future__ import annotations

from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Paths (relative to ``src/repro``) allowed to read the clock raw.
ALLOWED = ("obs/", "eval/bench.py")


def test_perf_counter_only_inside_the_obs_seam():
    offenders: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC).as_posix()
        if any(
            relative == allowed or relative.startswith(allowed)
            for allowed in ALLOWED
        ):
            continue
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if "perf_counter" in line:
                offenders.append(f"{relative}:{number}: {line.strip()}")
    assert not offenders, (
        "raw perf_counter outside the obs seam — route through "
        "obs.span()/obs.timed() instead:\n" + "\n".join(offenders)
    )
