"""Tests for the DDA grid raycaster."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import MapError
from repro.maps.builder import MapBuilder
from repro.maps.occupancy import CellState, OccupancyGrid
from repro.sensors.raycast import cast_ray, cast_rays, incidence_angle


def box_room(size: float = 2.0, res: float = 0.05) -> OccupancyGrid:
    return (
        MapBuilder(size, size, res)
        .fill_rect(0, 0, size, size, CellState.FREE)
        .add_border()
        .build()
    )


class TestCastRay:
    def test_hit_right_wall(self):
        grid = box_room()
        # From the center, facing +x: wall cells start at x = 1.95.
        dist = cast_ray(grid, 1.0, 1.0, 0.0, max_range=5.0)
        assert dist == pytest.approx(0.95, abs=grid.resolution)

    def test_hit_left_wall(self):
        grid = box_room()
        dist = cast_ray(grid, 1.0, 1.0, math.pi, max_range=5.0)
        assert dist == pytest.approx(0.95, abs=grid.resolution)

    def test_hit_top_wall(self):
        grid = box_room()
        dist = cast_ray(grid, 1.0, 1.0, math.pi / 2, max_range=5.0)
        assert dist == pytest.approx(0.95, abs=grid.resolution)

    def test_diagonal_hit(self):
        grid = box_room()
        dist = cast_ray(grid, 1.0, 1.0, math.pi / 4, max_range=5.0)
        assert dist == pytest.approx(0.95 * math.sqrt(2.0), abs=2 * grid.resolution)

    def test_max_range_when_no_obstacle(self):
        grid = box_room()
        dist = cast_ray(grid, 1.0, 1.0, 0.0, max_range=0.5)
        assert dist == 0.5

    def test_start_inside_wall_returns_zero(self):
        grid = box_room()
        assert cast_ray(grid, 0.01, 0.01, 0.0, max_range=5.0) == 0.0

    def test_ray_leaving_map_returns_max_range(self):
        # Free map without borders: ray exits the grid.
        grid = MapBuilder(1.0, 1.0, 0.05).fill_rect(0, 0, 1, 1).build()
        assert cast_ray(grid, 0.5, 0.5, 0.0, max_range=3.0) == 3.0

    def test_unknown_cells_are_transparent(self):
        # UNKNOWN gap between the start and a far wall.
        builder = MapBuilder(3.0, 1.0, 0.05).fill_rect(0.0, 0.0, 1.0, 1.0)
        builder.add_wall(2.5, 0.0, 2.5, 1.0, thickness=0.1)
        grid = builder.build()
        dist = cast_ray(grid, 0.5, 0.5, 0.0, max_range=5.0)
        assert dist == pytest.approx(2.0, abs=2 * grid.resolution)

    def test_invalid_max_range(self):
        with pytest.raises(MapError):
            cast_ray(box_room(), 1.0, 1.0, 0.0, max_range=0.0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.3, max_value=1.7),
        st.floats(min_value=0.3, max_value=1.7),
        st.floats(min_value=-math.pi, max_value=math.pi),
    )
    def test_property_range_bounded_and_consistent(self, x, y, angle):
        grid = box_room()
        dist = cast_ray(grid, x, y, angle, max_range=5.0)
        assert 0.0 <= dist <= 5.0
        if dist < 5.0:
            # The hit point must be on (or within a cell of) an occupied cell.
            hx = x + math.cos(angle) * (dist + grid.resolution / 4)
            hy = y + math.sin(angle) * (dist + grid.resolution / 4)
            row, col = grid.world_to_grid(hx, hy)
            row = int(np.clip(row, 0, grid.rows - 1))
            col = int(np.clip(col, 0, grid.cols - 1))
            window = grid.cells[
                max(row - 1, 0) : row + 2, max(col - 1, 0) : col + 2
            ]
            assert np.any(window == CellState.OCCUPIED)

    @settings(max_examples=20, deadline=None)
    @given(
        st.floats(min_value=0.4, max_value=1.6),
        st.floats(min_value=0.4, max_value=1.6),
        st.floats(min_value=-math.pi, max_value=math.pi),
    )
    def test_property_monotone_in_max_range(self, x, y, angle):
        grid = box_room()
        short = cast_ray(grid, x, y, angle, max_range=0.4)
        full = cast_ray(grid, x, y, angle, max_range=5.0)
        if full <= 0.4:
            assert short == pytest.approx(full, abs=1e-9)
        else:
            assert short == 0.4


class TestCastRays:
    def test_batch_matches_single(self):
        grid = box_room()
        angles = np.linspace(-math.pi, math.pi, 16, endpoint=False)
        batch = cast_rays(grid, 1.0, 1.0, angles, max_range=5.0)
        singles = [cast_ray(grid, 1.0, 1.0, float(a), 5.0) for a in angles]
        np.testing.assert_allclose(batch, singles)

    def test_preserves_shape(self):
        grid = box_room()
        angles = np.zeros((2, 4))
        assert cast_rays(grid, 1.0, 1.0, angles, 5.0).shape == (2, 4)


class TestIncidenceAngle:
    def test_perpendicular_hit_near_zero(self):
        grid = box_room()
        dist = cast_ray(grid, 1.0, 1.0, 0.0, max_range=5.0)
        angle = incidence_angle(grid, 1.0, 1.0, 0.0, dist)
        assert angle < math.radians(30)

    def test_grazing_hit_large_angle(self):
        grid = box_room()
        # Ray nearly parallel to the right wall.
        direction = math.radians(85)
        dist = cast_ray(grid, 1.9, 0.3, direction, max_range=5.0)
        if dist < 5.0:
            angle = incidence_angle(grid, 1.9, 0.3, direction, dist)
            assert angle >= 0.0  # well-defined

    def test_no_hit_returns_zero(self):
        grid = box_room()
        assert incidence_angle(grid, 1.0, 1.0, 0.0, 1e12) == 0.0
