"""Tests for the optical-flow and gyro models."""

import numpy as np
import pytest

from repro.common.errors import SensorError
from repro.common.rng import make_rng
from repro.sensors.flow import FlowDeck, FlowDeckSpec
from repro.sensors.imu import Gyro, GyroSpec


class TestFlowDeckSpec:
    def test_rejects_bad_rate(self):
        with pytest.raises(SensorError):
            FlowDeckSpec(rate_hz=0.0)

    def test_rejects_negative_noise(self):
        with pytest.raises(SensorError):
            FlowDeckSpec(velocity_noise_sigma=-0.1)


class TestFlowDeck:
    def test_rejects_bad_height(self):
        with pytest.raises(SensorError):
            FlowDeck(FlowDeckSpec(), make_rng(0, "f"), flight_height_m=0.0)

    def test_scale_error_is_fixed_per_flight(self):
        deck = FlowDeck(FlowDeckSpec(), make_rng(0, "f"))
        scale = deck.scale
        for i in range(5):
            deck.measure(0.3, 0.0, 0.01, float(i))
        assert deck.scale == scale

    def test_measurement_tracks_velocity(self):
        spec = FlowDeckSpec(velocity_noise_sigma=0.001, bias_walk_sigma=0.0, scale_error_sigma=0.0)
        deck = FlowDeck(spec, make_rng(1, "f"))
        m = deck.measure(0.4, -0.2, 0.01, 0.0)
        assert m.vx == pytest.approx(0.4, abs=0.01)
        assert m.vy == pytest.approx(-0.2, abs=0.01)

    def test_noise_magnitude(self):
        spec = FlowDeckSpec(velocity_noise_sigma=0.05, bias_walk_sigma=0.0, scale_error_sigma=0.0)
        deck = FlowDeck(spec, make_rng(2, "f"))
        vx = [deck.measure(0.0, 0.0, 0.01, i * 0.01).vx for i in range(400)]
        assert 0.03 < float(np.std(vx)) < 0.07

    def test_bias_stays_bounded(self):
        spec = FlowDeckSpec(bias_walk_sigma=1.0, bias_limit=0.06, velocity_noise_sigma=0.0,
                            scale_error_sigma=0.0)
        deck = FlowDeck(spec, make_rng(3, "f"))
        for i in range(200):
            m = deck.measure(0.0, 0.0, 0.01, i * 0.01)
        assert abs(m.vx) <= 0.06 + 1e-9
        assert abs(m.vy) <= 0.06 + 1e-9

    def test_height_reported_near_flight_height(self):
        deck = FlowDeck(FlowDeckSpec(), make_rng(4, "f"), flight_height_m=0.5)
        m = deck.measure(0.0, 0.0, 0.01, 0.0)
        assert m.height_m == pytest.approx(0.5, abs=0.05)

    def test_negative_dt_rejected(self):
        deck = FlowDeck(FlowDeckSpec(), make_rng(5, "f"))
        with pytest.raises(SensorError):
            deck.measure(0.0, 0.0, -0.01, 0.0)

    def test_deterministic_given_seed(self):
        a = FlowDeck(FlowDeckSpec(), make_rng(6, "f")).measure(0.2, 0.1, 0.01, 0.0)
        b = FlowDeck(FlowDeckSpec(), make_rng(6, "f")).measure(0.2, 0.1, 0.01, 0.0)
        assert a.vx == b.vx and a.vy == b.vy


class TestGyro:
    def test_rejects_bad_rate(self):
        with pytest.raises(SensorError):
            GyroSpec(rate_hz=-1.0)

    def test_tracks_rate(self):
        spec = GyroSpec(rate_noise_sigma=0.001, bias_walk_sigma=0.0, initial_bias_sigma=0.0)
        gyro = Gyro(spec, make_rng(0, "g"))
        m = gyro.measure(0.5, 0.01, 0.0)
        assert m.yaw_rate == pytest.approx(0.5, abs=0.01)

    def test_bias_bounded(self):
        spec = GyroSpec(bias_walk_sigma=1.0, bias_limit=0.02, rate_noise_sigma=0.0,
                        initial_bias_sigma=0.0)
        gyro = Gyro(spec, make_rng(1, "g"))
        for i in range(300):
            gyro.measure(0.0, 0.01, i * 0.01)
        assert abs(gyro.bias) <= 0.02 + 1e-12

    def test_initial_bias_randomized(self):
        biases = {Gyro(GyroSpec(), make_rng(seed, "g")).bias for seed in range(5)}
        assert len(biases) == 5

    def test_negative_dt_rejected(self):
        gyro = Gyro(GyroSpec(), make_rng(2, "g"))
        with pytest.raises(SensorError):
            gyro.measure(0.0, -0.01, 0.0)

    def test_white_noise_statistics(self):
        spec = GyroSpec(rate_noise_sigma=0.01, bias_walk_sigma=0.0, initial_bias_sigma=0.0)
        gyro = Gyro(spec, make_rng(3, "g"))
        rates = [gyro.measure(0.0, 0.01, i * 0.01).yaw_rate for i in range(500)]
        assert 0.007 < float(np.std(rates)) < 0.013
