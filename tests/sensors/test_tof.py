"""Tests for the VL53L5CX multizone ToF sensor model."""

import math

import numpy as np
import pytest

from repro.common.errors import SensorError
from repro.common.geometry import Pose2D
from repro.common.rng import make_rng
from repro.maps.builder import MapBuilder
from repro.maps.occupancy import CellState
from repro.sensors.tof import (
    TofFrame,
    TofSensor,
    TofSensorSpec,
    ZoneStatus,
    default_sensor_pair,
)


def room(size: float = 3.0):
    return (
        MapBuilder(size, size, 0.05)
        .fill_rect(0, 0, size, size, CellState.FREE)
        .add_border()
        .build()
    )


def quiet_spec(**overrides) -> TofSensorSpec:
    """A noise-free spec for deterministic geometric checks."""
    defaults = dict(
        noise_sigma_base_m=0.0,
        noise_sigma_prop=0.0,
        interference_prob=0.0,
        edge_row_dropout_prob=0.0,
    )
    defaults.update(overrides)
    return TofSensorSpec(**defaults)


class TestSpec:
    def test_rejects_bad_zone_counts(self):
        with pytest.raises(SensorError):
            TofSensorSpec(zones_per_side=5)

    def test_frame_rate_depends_on_mode(self):
        # Paper Sec. III-A2: 8x8 at up to 15 Hz, 4x4 at up to 60 Hz.
        assert TofSensorSpec(zones_per_side=8).max_frame_rate_hz == 15.0
        assert TofSensorSpec(zones_per_side=4).max_frame_rate_hz == 60.0

    def test_zone_count(self):
        assert TofSensorSpec(zones_per_side=8).zone_count == 64
        assert TofSensorSpec(zones_per_side=4).zone_count == 16

    def test_azimuths_span_fov(self):
        spec = TofSensorSpec()
        az = spec.column_azimuths()
        half_fov = math.radians(spec.fov_deg) / 2
        assert len(az) == 8
        assert az[0] == pytest.approx(-half_fov + half_fov / 8)
        assert az[-1] == pytest.approx(half_fov - half_fov / 8)
        assert np.all(np.diff(az) > 0)

    def test_azimuths_include_mounting_yaw(self):
        spec = TofSensorSpec(yaw_offset=math.pi)
        az = spec.column_azimuths()
        assert np.all(az > math.pi / 2)

    def test_invalid_interference_prob(self):
        with pytest.raises(SensorError):
            TofSensorSpec(interference_prob=1.5)

    def test_invalid_max_range(self):
        with pytest.raises(SensorError):
            TofSensorSpec(max_range_m=0.0)


class TestMeasure:
    def test_ranges_match_geometry(self):
        grid = room()
        sensor = TofSensor(quiet_spec(), "front", make_rng(0, "t"))
        frame = sensor.measure(grid, Pose2D(1.5, 1.5, 0.0), timestamp=0.0)
        # Facing +x from the room center: wall ~1.45 m ahead; the outermost
        # beams are tilted by <= 22.5°, so ranges vary by at most ~8 %.
        valid = frame.valid_mask()
        assert np.all(frame.ranges_m[valid] > 1.3)
        assert np.all(frame.ranges_m[valid] < 1.45 / math.cos(math.radians(22.5)) + 0.1)

    def test_rows_share_column_ranges_when_noise_free(self):
        grid = room()
        sensor = TofSensor(quiet_spec(), "front", make_rng(0, "t"))
        frame = sensor.measure(grid, Pose2D(1.5, 1.5, 0.3), timestamp=0.0)
        for col in range(8):
            column = frame.ranges_m[:, col]
            assert np.allclose(column, column[0])

    def test_out_of_range_flagged(self):
        grid = MapBuilder(10.0, 1.0, 0.05).fill_rect(0, 0, 10, 1).build()  # no walls
        sensor = TofSensor(quiet_spec(), "front", make_rng(0, "t"))
        frame = sensor.measure(grid, Pose2D(0.5, 0.5, 0.0), timestamp=0.0)
        assert np.all(frame.status == ZoneStatus.OUT_OF_RANGE)
        assert np.all(frame.ranges_m == sensor.spec.max_range_m)

    def test_noise_statistics(self):
        grid = room()
        spec = quiet_spec(noise_sigma_base_m=0.03, noise_sigma_prop=0.0)
        sensor = TofSensor(spec, "front", make_rng(3, "t"))
        samples = []
        for i in range(60):
            frame = sensor.measure(grid, Pose2D(1.5, 1.5, 0.0), timestamp=float(i))
            samples.append(frame.ranges_m[4, 4])
        std = float(np.std(samples))
        assert 0.015 < std < 0.05  # near the configured 0.03

    def test_interference_dropout_rate(self):
        grid = room()
        spec = quiet_spec(interference_prob=0.3)
        sensor = TofSensor(spec, "front", make_rng(4, "t"))
        frame = sensor.measure(grid, Pose2D(1.5, 1.5, 0.0), timestamp=0.0)
        dropped = np.count_nonzero(frame.status == ZoneStatus.INTERFERENCE)
        assert 5 <= dropped <= 40  # 64 zones at p = 0.3

    def test_edge_rows_drop_more(self):
        grid = room()
        spec = quiet_spec(interference_prob=0.0, edge_row_dropout_prob=0.5)
        sensor = TofSensor(spec, "front", make_rng(5, "t"))
        statuses = []
        for i in range(30):
            statuses.append(sensor.measure(grid, Pose2D(1.5, 1.5, 0.0), float(i)).status)
        stack = np.stack(statuses)
        edge_drops = np.count_nonzero(stack[:, 0, :] == ZoneStatus.INTERFERENCE)
        inner_drops = np.count_nonzero(stack[:, 4, :] == ZoneStatus.INTERFERENCE)
        assert edge_drops > 0
        assert inner_drops == 0

    def test_mounted_rear_sensor_sees_backwards(self):
        grid = (
            MapBuilder(4.0, 1.0, 0.05)
            .fill_rect(0, 0, 4, 1, CellState.FREE)
            .add_wall(3.9, 0.0, 3.9, 1.0)
            .build()
        )
        # Wall only on the right; the rear-facing sensor looking -x sees nothing.
        spec = quiet_spec(yaw_offset=math.pi)
        sensor = TofSensor(spec, "rear", make_rng(0, "t"))
        frame = sensor.measure(grid, Pose2D(2.0, 0.5, 0.0), timestamp=0.0)
        assert np.all(frame.status == ZoneStatus.OUT_OF_RANGE)

    def test_deterministic_given_seed(self):
        grid = room()
        a = TofSensor(TofSensorSpec(), "front", make_rng(7, "t")).measure(
            grid, Pose2D(1.5, 1.5, 0.2), 0.0
        )
        b = TofSensor(TofSensorSpec(), "front", make_rng(7, "t")).measure(
            grid, Pose2D(1.5, 1.5, 0.2), 0.0
        )
        np.testing.assert_array_equal(a.ranges_m, b.ranges_m)
        np.testing.assert_array_equal(a.status, b.status)


class TestTofFrame:
    def _frame(self) -> TofFrame:
        grid = room()
        sensor = TofSensor(quiet_spec(), "front", make_rng(0, "t"))
        return sensor.measure(grid, Pose2D(1.5, 1.5, 0.0), timestamp=1.25)

    def test_valid_fraction(self):
        frame = self._frame()
        assert frame.valid_fraction() == 1.0

    def test_beams_all_rows(self):
        frame = self._frame()
        azimuths, ranges, valid = frame.beams()
        assert azimuths.shape == (64,)
        assert ranges.shape == (64,)
        assert valid.all()

    def test_beams_row_subset(self):
        frame = self._frame()
        azimuths, ranges, valid = frame.beams(rows=(3, 4))
        assert azimuths.shape == (16,)
        np.testing.assert_allclose(azimuths[:8], frame.azimuths)
        np.testing.assert_allclose(ranges[:8], frame.ranges_m[3, :])
        np.testing.assert_allclose(ranges[8:], frame.ranges_m[4, :])

    def test_beams_rejects_bad_row(self):
        frame = self._frame()
        with pytest.raises(SensorError):
            frame.beams(rows=(9,))

    def test_zones_per_side(self):
        assert self._frame().zones_per_side == 8


def test_default_sensor_pair_orientation():
    front, rear = default_sensor_pair(make_rng(0, "f"), make_rng(0, "r"))
    assert front.spec.yaw_offset == 0.0
    assert rear.spec.yaw_offset == pytest.approx(math.pi)
    assert front.name == "tof-front"
    assert rear.name == "tof-rear"
