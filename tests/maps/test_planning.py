"""Tests for clearance-aware grid path planning."""

import numpy as np
import pytest

from repro.common.errors import MapError
from repro.maps.builder import MapBuilder
from repro.maps.edt import euclidean_distance_field
from repro.maps.maze import main_drone_maze
from repro.maps.occupancy import CellState
from repro.maps.planning import clearance_map, plan_route, plan_tour


def open_room():
    return (
        MapBuilder(2.0, 2.0, 0.05)
        .fill_rect(0, 0, 2, 2, CellState.FREE)
        .add_border()
        .build()
    )


def room_with_wall():
    # A wall across the middle with a gap near the top.
    return (
        MapBuilder(2.0, 2.0, 0.05)
        .fill_rect(0, 0, 2, 2, CellState.FREE)
        .add_border()
        .add_wall(1.0, 0.0, 1.0, 1.5)
        .build()
    )


class TestClearanceMap:
    def test_near_wall_cells_excluded(self):
        grid = open_room()
        mask = clearance_map(grid, clearance_m=0.2)
        # Cell adjacent to the border wall has clearance ~0.05.
        row, col = grid.world_to_grid(0.125, 1.0)
        assert not mask[row, col]
        # Center of the room is clear.
        row, col = grid.world_to_grid(1.0, 1.0)
        assert mask[row, col]

    def test_negative_clearance_rejected(self):
        with pytest.raises(MapError):
            clearance_map(open_room(), clearance_m=-0.1)


class TestPlanRoute:
    def test_straight_line_in_open_room(self):
        grid = open_room()
        route = plan_route(grid, (0.5, 0.5), (1.5, 1.5), clearance_m=0.15)
        assert route[0] == (0.5, 0.5)
        assert route[-1] == (1.5, 1.5)
        # Line-of-sight shortcutting collapses an open room to 2-3 points.
        assert len(route) <= 3

    def test_route_detours_around_wall(self):
        grid = room_with_wall()
        route = plan_route(grid, (0.5, 0.5), (1.5, 0.5), clearance_m=0.12)
        # Must pass through the gap above y = 1.5.
        max_y = max(y for __, y in route)
        assert max_y > 1.5

    def test_route_respects_clearance_everywhere(self):
        grid = room_with_wall()
        clearance = 0.12
        route = plan_route(grid, (0.5, 0.5), (1.5, 0.5), clearance_m=clearance)
        edt = euclidean_distance_field(grid, r_max=2.0)
        # Sample densely along every leg and check the clearance holds
        # (waypoints are cell centers, allow half-cell slack).
        for (x0, y0), (x1, y1) in zip(route[:-1], route[1:]):
            for t in np.linspace(0, 1, 50):
                x = x0 + t * (x1 - x0)
                y = y0 + t * (y1 - y0)
                row, col = grid.world_to_grid(x, y)
                assert edt[row, col] >= clearance - grid.resolution

    def test_unreachable_goal_raises(self):
        # Fully separated rooms.
        grid = (
            MapBuilder(2.0, 1.0, 0.05)
            .fill_rect(0, 0, 2, 1, CellState.FREE)
            .add_border()
            .add_wall(1.0, 0.0, 1.0, 1.0, thickness=0.1)
            .build()
        )
        with pytest.raises(MapError):
            plan_route(grid, (0.5, 0.5), (1.5, 0.5), clearance_m=0.1)

    def test_start_in_wall_raises(self):
        grid = open_room()
        with pytest.raises(MapError):
            plan_route(grid, (0.0, 0.0), (1.0, 1.0), clearance_m=0.15)

    def test_goal_outside_map_raises(self):
        grid = open_room()
        with pytest.raises(MapError):
            plan_route(grid, (1.0, 1.0), (5.0, 5.0), clearance_m=0.15)

    def test_route_through_main_maze(self):
        # The hand-crafted maze must be navigable corner to corner.
        grid = main_drone_maze()
        route = plan_route(grid, (0.5, 0.5), (3.5, 3.5), clearance_m=0.15)
        assert len(route) >= 3  # must weave through corridors


class TestPlanTour:
    def test_tour_concatenates_legs(self):
        grid = open_room()
        tour = plan_tour(grid, [(0.5, 0.5), (1.5, 0.5), (1.5, 1.5)], clearance_m=0.15)
        assert tour[0] == (0.5, 0.5)
        assert tour[-1] == (1.5, 1.5)
        assert (1.5, 0.5) in tour

    def test_no_duplicate_junctions(self):
        grid = open_room()
        tour = plan_tour(grid, [(0.5, 0.5), (1.5, 0.5), (1.5, 1.5)], clearance_m=0.15)
        for a, b in zip(tour[:-1], tour[1:]):
            assert a != b

    def test_single_stop_rejected(self):
        with pytest.raises(MapError):
            plan_tour(open_room(), [(0.5, 0.5)])
