"""Tests for the three-state occupancy grid."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.errors import MapError
from repro.common.rng import make_rng
from repro.maps.occupancy import CellState, OccupancyGrid


def small_grid() -> OccupancyGrid:
    cells = np.array(
        [
            [0, 0, 1],
            [0, 2, 1],
            [1, 1, 1],
        ],
        dtype=np.uint8,
    )
    return OccupancyGrid(cells, resolution=0.5, origin_x=1.0, origin_y=-1.0)


class TestConstruction:
    def test_rejects_non_2d(self):
        with pytest.raises(MapError):
            OccupancyGrid(np.zeros(4, dtype=np.uint8))

    def test_rejects_empty(self):
        with pytest.raises(MapError):
            OccupancyGrid(np.zeros((0, 3), dtype=np.uint8))

    def test_rejects_bad_resolution(self):
        with pytest.raises(MapError):
            OccupancyGrid(np.zeros((2, 2), dtype=np.uint8), resolution=0.0)

    def test_rejects_invalid_state_codes(self):
        with pytest.raises(MapError):
            OccupancyGrid(np.full((2, 2), 7, dtype=np.uint8))

    def test_stores_one_byte_per_cell(self):
        grid = small_grid()
        assert grid.cells.dtype == np.uint8
        assert grid.memory_bytes() == 9


class TestExtent:
    def test_shape_and_metric_extent(self):
        grid = small_grid()
        assert (grid.rows, grid.cols) == (3, 3)
        assert grid.width_m == pytest.approx(1.5)
        assert grid.height_m == pytest.approx(1.5)
        assert grid.area_m2 == pytest.approx(2.25)

    def test_structured_area_excludes_unknown(self):
        grid = small_grid()
        # 8 known cells of 0.25 m² each.
        assert grid.structured_area_m2() == pytest.approx(8 * 0.25)


class TestTransforms:
    def test_world_to_grid_and_back(self):
        grid = small_grid()
        row, col = grid.world_to_grid(1.25, -0.75)
        assert (row, col) == (0, 0)
        x, y = grid.grid_to_world(0, 0)
        assert (x, y) == (pytest.approx(1.25), pytest.approx(-0.75))

    def test_world_to_grid_arrays(self):
        grid = small_grid()
        rows, cols = grid.world_to_grid(np.array([1.1, 2.4]), np.array([-0.9, 0.4]))
        np.testing.assert_array_equal(rows, [0, 2])
        np.testing.assert_array_equal(cols, [0, 2])

    def test_in_bounds(self):
        grid = small_grid()
        assert bool(grid.in_bounds(0, 0))
        assert not bool(grid.in_bounds(-1, 0))
        assert not bool(grid.in_bounds(0, 3))

    @given(st.floats(0.0, 1.49), st.floats(0.0, 1.49))
    def test_grid_cell_contains_its_world_point(self, dx, dy):
        grid = small_grid()
        x = 1.0 + dx
        y = -1.0 + dy
        row, col = grid.world_to_grid(x, y)
        cx, cy = grid.grid_to_world(row, col)
        assert abs(cx - x) <= grid.resolution / 2 + 1e-9
        assert abs(cy - y) <= grid.resolution / 2 + 1e-9


class TestStateQueries:
    def test_state_at(self):
        grid = small_grid()
        assert grid.state_at(1.25, -0.75) is CellState.FREE
        assert grid.state_at(2.25, -0.75) is CellState.OCCUPIED
        assert grid.state_at(1.75, -0.25) is CellState.UNKNOWN

    def test_out_of_map_is_unknown(self):
        grid = small_grid()
        assert grid.state_at(100.0, 100.0) is CellState.UNKNOWN

    def test_masks_consistent(self):
        grid = small_grid()
        assert grid.free_cell_count() == 3
        assert int(grid.occupied_mask().sum()) == 5
        assert int(grid.free_mask().sum()) + int(grid.occupied_mask().sum()) <= grid.cells.size


class TestSampling:
    def test_samples_lie_in_free_cells(self):
        grid = small_grid()
        rng = make_rng(0, "test")
        x, y = grid.sample_free_points(500, rng)
        for xi, yi in zip(x, y):
            assert grid.is_free(float(xi), float(yi))

    def test_sampling_covers_all_free_cells(self):
        grid = small_grid()
        rng = make_rng(1, "test")
        x, y = grid.sample_free_points(600, rng)
        rows, cols = grid.world_to_grid(x, y)
        hit = set(zip(rows.tolist(), cols.tolist()))
        assert hit == {(0, 0), (0, 1), (1, 0)}

    def test_no_free_space_raises(self):
        grid = OccupancyGrid(np.ones((2, 2), dtype=np.uint8))
        with pytest.raises(MapError):
            grid.sample_free_points(1, make_rng(0, "t"))


class TestIo:
    def test_npz_roundtrip(self, tmp_path):
        grid = small_grid()
        path = tmp_path / "map.npz"
        grid.save_npz(path)
        loaded = OccupancyGrid.load_npz(path)
        np.testing.assert_array_equal(loaded.cells, grid.cells)
        assert loaded.resolution == grid.resolution
        assert loaded.origin_x == grid.origin_x
        assert loaded.origin_y == grid.origin_y

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(MapError):
            OccupancyGrid.load_npz(tmp_path / "absent.npz")

    def test_ascii_roundtrip(self):
        grid = small_grid()
        art = grid.to_ascii()
        parsed = OccupancyGrid.from_ascii(art, resolution=0.5, origin_x=1.0, origin_y=-1.0)
        np.testing.assert_array_equal(parsed.cells, grid.cells)

    def test_ascii_orientation_bottom_row_first_in_grid(self):
        art = "#\n."  # top row wall, bottom row free
        grid = OccupancyGrid.from_ascii(art)
        assert grid.cells[0, 0] == CellState.FREE  # row 0 = bottom
        assert grid.cells[1, 0] == CellState.OCCUPIED

    def test_ascii_rejects_bad_chars(self):
        with pytest.raises(MapError):
            OccupancyGrid.from_ascii("x")

    def test_ascii_rejects_empty(self):
        with pytest.raises(MapError):
            OccupancyGrid.from_ascii("")
