"""Extra coverage: clearance snapping and world-geometry edge cases."""

import numpy as np
import pytest

from repro.common.errors import MapError
from repro.maps.builder import MapBuilder
from repro.maps.edt import euclidean_distance_field
from repro.maps.occupancy import CellState, OccupancyGrid
from repro.maps.planning import snap_to_clearance


def open_room():
    return (
        MapBuilder(2.0, 2.0, 0.05)
        .fill_rect(0, 0, 2, 2, CellState.FREE)
        .add_border()
        .build()
    )


class TestSnapToClearance:
    def test_valid_point_unchanged(self):
        grid = open_room()
        assert snap_to_clearance(grid, (1.0, 1.0), 0.2) == (1.0, 1.0)

    def test_point_in_wall_snaps_inward(self):
        grid = open_room()
        snapped = snap_to_clearance(grid, (0.02, 1.0), 0.2)
        assert snapped != (0.02, 1.0)
        edt = euclidean_distance_field(grid, r_max=1.0)
        row, col = grid.world_to_grid(*snapped)
        assert edt[int(row), int(col)] >= 0.2

    def test_point_outside_map_snaps_inside(self):
        grid = open_room()
        snapped = snap_to_clearance(grid, (-3.0, -3.0), 0.2)
        assert grid.is_free(*snapped)

    def test_snaps_to_nearest(self):
        grid = open_room()
        near_left = snap_to_clearance(grid, (0.0, 1.0), 0.2)
        near_right = snap_to_clearance(grid, (2.0, 1.0), 0.2)
        assert near_left[0] < 1.0
        assert near_right[0] > 1.0

    def test_impossible_clearance_raises(self):
        grid = open_room()
        with pytest.raises(MapError):
            snap_to_clearance(grid, (1.0, 1.0), clearance_m=5.0)


class TestOccupancyEdgeCases:
    def test_single_cell_grid(self):
        grid = OccupancyGrid(np.array([[0]], dtype=np.uint8), resolution=1.0)
        assert grid.free_cell_count() == 1
        assert grid.area_m2 == 1.0

    def test_negative_origin_transforms(self):
        grid = OccupancyGrid(
            np.zeros((4, 4), dtype=np.uint8),
            resolution=0.5,
            origin_x=-1.0,
            origin_y=-1.0,
        )
        row, col = grid.world_to_grid(-0.75, 0.75)
        assert (row, col) == (3, 0)
        assert grid.is_free(-0.9, -0.9)

    def test_state_on_exact_boundary_is_outside(self):
        grid = OccupancyGrid(np.zeros((4, 4), dtype=np.uint8), resolution=0.5)
        assert grid.state_at(2.0, 1.0) is CellState.UNKNOWN  # x == width
