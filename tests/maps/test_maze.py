"""Tests for the drone maze worlds (paper Sec. IV-A setup)."""

import numpy as np
import pytest

from repro.common.errors import MapError
from repro.maps.edt import squared_edt
from repro.maps.maze import (
    ARTIFICIAL_MAZE_SIZE_M,
    MAIN_MAZE_SIZE_M,
    TOTAL_STRUCTURED_AREA_M2,
    build_drone_maze_world,
    generate_maze,
    main_drone_maze,
)
from repro.maps.occupancy import CellState


def _connected_free_components(cells: np.ndarray) -> int:
    """Count 4-connected components of FREE cells (simple BFS)."""
    free = cells == CellState.FREE
    seen = np.zeros_like(free)
    components = 0
    rows, cols = free.shape
    for start_r, start_c in zip(*np.nonzero(free)):
        if seen[start_r, start_c]:
            continue
        components += 1
        stack = [(start_r, start_c)]
        seen[start_r, start_c] = True
        while stack:
            r, c = stack.pop()
            for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nr, nc = r + dr, c + dc
                if 0 <= nr < rows and 0 <= nc < cols and free[nr, nc] and not seen[nr, nc]:
                    seen[nr, nc] = True
                    stack.append((nr, nc))
    return components


class TestMainMaze:
    def test_extent(self):
        grid = main_drone_maze()
        assert grid.width_m == pytest.approx(MAIN_MAZE_SIZE_M)
        assert grid.height_m == pytest.approx(MAIN_MAZE_SIZE_M)

    def test_has_free_and_occupied(self):
        grid = main_drone_maze()
        assert grid.free_cell_count() > 0
        assert grid.occupied_mask().sum() > 0
        assert np.count_nonzero(grid.cells == CellState.UNKNOWN) == 0

    def test_border_closed(self):
        grid = main_drone_maze()
        assert np.all(grid.cells[0, :] == CellState.OCCUPIED)
        assert np.all(grid.cells[-1, :] == CellState.OCCUPIED)
        assert np.all(grid.cells[:, 0] == CellState.OCCUPIED)
        assert np.all(grid.cells[:, -1] == CellState.OCCUPIED)

    def test_free_space_is_one_connected_component(self):
        # A drone must be able to reach every corridor.
        assert _connected_free_components(main_drone_maze().cells) == 1

    def test_corridors_wide_enough_to_fly(self):
        # Somewhere the free space must be at least 0.3 m from any wall.
        grid = main_drone_maze()
        dist = np.sqrt(squared_edt(grid.occupied_mask())) * grid.resolution
        assert float(dist[grid.free_mask()].max()) >= 0.3

    def test_deterministic(self):
        np.testing.assert_array_equal(main_drone_maze().cells, main_drone_maze().cells)


class TestGenerateMaze:
    def test_extent_and_states(self):
        grid = generate_maze(seed=3)
        assert grid.width_m == pytest.approx(ARTIFICIAL_MAZE_SIZE_M)
        assert grid.free_cell_count() > 0
        assert grid.occupied_mask().sum() > 0

    def test_distinct_seeds_distinct_layouts(self):
        a = generate_maze(seed=1)
        b = generate_maze(seed=2)
        assert not np.array_equal(a.cells, b.cells)

    def test_same_seed_reproduces(self):
        np.testing.assert_array_equal(generate_maze(seed=5).cells, generate_maze(seed=5).cells)

    def test_fully_connected_free_space(self):
        for seed in (0, 1, 2, 3):
            assert _connected_free_components(generate_maze(seed=seed).cells) == 1

    def test_border_closed(self):
        grid = generate_maze(seed=9)
        assert np.all(grid.cells[0, :] == CellState.OCCUPIED)
        assert np.all(grid.cells[:, -1] == CellState.OCCUPIED)

    def test_braiding_opens_loops(self):
        perfect = generate_maze(seed=4, braid_fraction=0.0)
        braided = generate_maze(seed=4, braid_fraction=0.8)
        assert braided.occupied_mask().sum() < perfect.occupied_mask().sum()

    def test_too_few_cells_rejected(self):
        with pytest.raises(MapError):
            generate_maze(cells=1)


class TestDroneWorld:
    @pytest.fixture(scope="class")
    def world(self):
        return build_drone_maze_world(seed=7)

    def test_structured_area_matches_paper(self, world):
        # Paper: 31.2 m² of structured area.
        assert world.grid.structured_area_m2() == pytest.approx(
            TOTAL_STRUCTURED_AREA_M2, rel=0.01
        )
        assert TOTAL_STRUCTURED_AREA_M2 == pytest.approx(31.2, abs=0.05)

    def test_main_maze_is_16_m2(self, world):
        assert world.main.size_m**2 == pytest.approx(16.0)

    def test_three_artificial_mazes(self, world):
        assert len(world.artificial) == 3
        names = {p.name for p in world.artificial}
        assert len(names) == 3

    def test_mazes_do_not_overlap(self, world):
        placements = world.placements
        for i, a in enumerate(placements):
            for b in placements[i + 1 :]:
                no_x_overlap = (
                    a.origin_x + a.size_m <= b.origin_x or b.origin_x + b.size_m <= a.origin_x
                )
                no_y_overlap = (
                    a.origin_y + a.size_m <= b.origin_y or b.origin_y + b.size_m <= a.origin_y
                )
                assert no_x_overlap or no_y_overlap

    def test_maze_containing(self, world):
        center_main = (
            world.main.origin_x + world.main.size_m / 2,
            world.main.origin_y + world.main.size_m / 2,
        )
        assert world.maze_containing(*center_main) is world.main
        assert world.maze_containing(-10.0, -10.0) is None

    def test_space_between_mazes_unknown(self, world):
        # A point between the main maze and the right artificial maze.
        x = world.main.origin_x + world.main.size_m + 0.3
        y = world.main.origin_y + 1.0
        assert world.grid.state_at(x, y) is CellState.UNKNOWN

    def test_free_space_exists_in_every_maze(self, world):
        for placement in world.placements:
            cx = placement.origin_x + placement.size_m / 2
            cy = placement.origin_y + placement.size_m / 2
            row, col = world.grid.world_to_grid(cx, cy)
            window = world.grid.cells[
                max(row - 10, 0) : row + 10, max(col - 10, 0) : col + 10
            ]
            assert np.any(window == CellState.FREE)

    def test_deterministic(self):
        a = build_drone_maze_world(seed=7)
        b = build_drone_maze_world(seed=7)
        np.testing.assert_array_equal(a.grid.cells, b.grid.cells)
