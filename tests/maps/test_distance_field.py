"""Tests for the fp32 / fp16 / quantized distance-field storage variants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import MapError
from repro.common.precision import PrecisionMode
from repro.maps.distance_field import DistanceField, FieldKind
from repro.maps.occupancy import CellState, OccupancyGrid


def _make_wall_grid() -> OccupancyGrid:
    cells = np.zeros((40, 40), dtype=np.uint8)
    cells[:, 0] = CellState.OCCUPIED
    cells[0, :] = CellState.OCCUPIED
    cells[20, 10:30] = CellState.OCCUPIED
    return OccupancyGrid(cells, resolution=0.05)


@pytest.fixture()
def wall_grid() -> OccupancyGrid:
    return _make_wall_grid()


R_MAX = 1.5

_FIELD_CACHE: list = []


def _CACHED_FIELDS():
    """fp32 + quantized fields shared across hypothesis examples."""
    if not _FIELD_CACHE:
        grid = _make_wall_grid()
        _FIELD_CACHE.append(
            (
                DistanceField.build(grid, R_MAX, FieldKind.FLOAT32),
                DistanceField.build(grid, R_MAX, FieldKind.QUANTIZED_U8),
            )
        )
    return _FIELD_CACHE[0]


class TestFieldKind:
    def test_bytes_per_cell(self):
        assert FieldKind.FLOAT32.bytes_per_cell == 4
        assert FieldKind.FLOAT16.bytes_per_cell == 2
        assert FieldKind.QUANTIZED_U8.bytes_per_cell == 1

    def test_mode_mapping_matches_paper_variants(self):
        assert FieldKind.for_mode(PrecisionMode.FP32) is FieldKind.FLOAT32
        assert FieldKind.for_mode(PrecisionMode.FP32_QM) is FieldKind.QUANTIZED_U8
        assert FieldKind.for_mode(PrecisionMode.FP16_QM) is FieldKind.QUANTIZED_U8


class TestBuild:
    def test_dtypes(self, wall_grid):
        assert DistanceField.build(wall_grid, R_MAX, FieldKind.FLOAT32).data.dtype == np.float32
        assert DistanceField.build(wall_grid, R_MAX, FieldKind.FLOAT16).data.dtype == np.float16
        assert (
            DistanceField.build(wall_grid, R_MAX, FieldKind.QUANTIZED_U8).data.dtype == np.uint8
        )

    def test_dtype_mismatch_rejected(self, wall_grid):
        field = DistanceField.build(wall_grid, R_MAX, FieldKind.FLOAT32)
        with pytest.raises(MapError):
            DistanceField(
                data=field.data.astype(np.float64),
                kind=FieldKind.FLOAT32,
                r_max=R_MAX,
                resolution=field.resolution,
                origin_x=0.0,
                origin_y=0.0,
            )

    def test_values_truncated(self, wall_grid):
        for kind in FieldKind:
            field = DistanceField.build(wall_grid, R_MAX, kind)
            values = field.values_metres()
            assert float(values.max()) <= R_MAX + 1e-6
            assert float(values.min()) >= 0.0

    def test_quantized_matches_fp32_within_half_step(self, wall_grid):
        fp32 = DistanceField.build(wall_grid, R_MAX, FieldKind.FLOAT32)
        quant = DistanceField.build(wall_grid, R_MAX, FieldKind.QUANTIZED_U8)
        worst = np.max(np.abs(fp32.values_metres() - quant.values_metres()))
        assert worst <= quant.max_abs_error_metres() + 1e-6

    def test_build_for_mode(self, wall_grid):
        field = DistanceField.build_for_mode(wall_grid, R_MAX, PrecisionMode.FP16_QM)
        assert field.kind is FieldKind.QUANTIZED_U8


class TestLookup:
    def test_zero_on_wall(self, wall_grid):
        field = DistanceField.build(wall_grid, R_MAX)
        # Wall column 0 spans x in [0, 0.05).
        dist = field.lookup_world(np.array([0.025]), np.array([1.0]))
        assert dist[0] == pytest.approx(0.0, abs=1e-6)

    def test_known_distance(self, wall_grid):
        field = DistanceField.build(wall_grid, R_MAX)
        # Point (0.525, 0.525) sits 10 cells (0.5 m) from the left wall,
        # bottom wall and the interior wall alike.
        dist = field.lookup_world(np.array([0.525]), np.array([0.525]))
        assert dist[0] == pytest.approx(0.5, abs=1e-6)

    def test_out_of_bounds_returns_rmax(self, wall_grid):
        field = DistanceField.build(wall_grid, R_MAX)
        dist = field.lookup_world(np.array([-5.0, 100.0]), np.array([0.0, 0.0]))
        np.testing.assert_allclose(dist, [R_MAX, R_MAX])

    def test_preserves_shape(self, wall_grid):
        field = DistanceField.build(wall_grid, R_MAX)
        x = np.zeros((7, 3)) + 0.5
        y = np.zeros((7, 3)) + 0.5
        assert field.lookup_world(x, y).shape == (7, 3)

    def test_lookup_returns_float32(self, wall_grid):
        for kind in FieldKind:
            field = DistanceField.build(wall_grid, R_MAX, kind)
            out = field.lookup_world(np.array([0.5]), np.array([0.5]))
            assert out.dtype == np.float32

    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=-1.0, max_value=3.0),
        st.floats(min_value=-1.0, max_value=3.0),
    )
    def test_quantized_lookup_close_to_fp32(self, x, y):
        fp32, quant = _CACHED_FIELDS()
        a = fp32.lookup_world(np.array([x]), np.array([y]))
        b = quant.lookup_world(np.array([x]), np.array([y]))
        assert abs(float(a[0]) - float(b[0])) <= R_MAX / 255 / 2 + 1e-6


class TestMemory:
    def test_memory_bytes(self, wall_grid):
        # The stored canvas is padded by r_max (30 cells at 0.05 m) on
        # every side so border overshoots score correctly.
        pad = int(np.ceil(R_MAX / wall_grid.resolution))
        cells = (wall_grid.rows + 2 * pad) * (wall_grid.cols + 2 * pad)
        assert DistanceField.build(wall_grid, R_MAX, FieldKind.FLOAT32).memory_bytes() == 4 * cells
        assert DistanceField.build(wall_grid, R_MAX, FieldKind.FLOAT16).memory_bytes() == 2 * cells
        assert (
            DistanceField.build(wall_grid, R_MAX, FieldKind.QUANTIZED_U8).memory_bytes() == cells
        )

    def test_padding_scores_border_overshoot_correctly(self, wall_grid):
        # A point 3 cm past the left border wall must read ~3 cm, not r_max.
        field = DistanceField.build(wall_grid, R_MAX)
        dist = field.lookup_world(np.array([-0.03]), np.array([1.0]))
        assert float(dist[0]) < 0.1

    def test_max_abs_error_ordering(self, wall_grid):
        fp32 = DistanceField.build(wall_grid, R_MAX, FieldKind.FLOAT32)
        fp16 = DistanceField.build(wall_grid, R_MAX, FieldKind.FLOAT16)
        quant = DistanceField.build(wall_grid, R_MAX, FieldKind.QUANTIZED_U8)
        assert fp32.max_abs_error_metres() == 0.0
        assert fp16.max_abs_error_metres() < quant.max_abs_error_metres()
