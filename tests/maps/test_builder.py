"""Tests for primitive rasterization into occupancy grids."""

import numpy as np
import pytest

from repro.common.errors import MapError
from repro.maps.builder import MapBuilder
from repro.maps.occupancy import CellState, OccupancyGrid


class TestConstruction:
    def test_rejects_bad_extent(self):
        with pytest.raises(MapError):
            MapBuilder(0.0, 1.0)
        with pytest.raises(MapError):
            MapBuilder(1.0, -1.0)

    def test_rejects_bad_resolution(self):
        with pytest.raises(MapError):
            MapBuilder(1.0, 1.0, resolution=0.0)

    def test_starts_unknown(self):
        grid = MapBuilder(1.0, 1.0, resolution=0.1).build()
        assert np.all(grid.cells == CellState.UNKNOWN)
        assert grid.rows == 10 and grid.cols == 10


class TestFillRect:
    def test_fill_free(self):
        grid = MapBuilder(1.0, 1.0, 0.1).fill_rect(0.0, 0.0, 1.0, 1.0).build()
        assert np.all(grid.cells == CellState.FREE)

    def test_partial_fill(self):
        grid = MapBuilder(1.0, 1.0, 0.1).fill_rect(0.0, 0.0, 0.5, 1.0).build()
        assert np.all(grid.cells[:, :5] == CellState.FREE)
        assert np.all(grid.cells[:, 5:] == CellState.UNKNOWN)

    def test_rect_outside_is_clipped(self):
        grid = MapBuilder(1.0, 1.0, 0.1).fill_rect(-5.0, -5.0, 10.0, 10.0).build()
        assert np.all(grid.cells == CellState.FREE)

    def test_degenerate_rect_rejected(self):
        with pytest.raises(MapError):
            MapBuilder(1.0, 1.0).fill_rect(0.5, 0.5, 0.1, 0.6)


class TestWalls:
    def test_horizontal_wall_occupies_row(self):
        builder = MapBuilder(1.0, 1.0, 0.1).fill_rect(0, 0, 1, 1)
        grid = builder.add_wall(0.0, 0.5, 1.0, 0.5, thickness=0.1).build()
        # The wall line y=0.5 borders rows 4 and 5; with 0.1 thickness the
        # cell centers at y=0.45 and 0.55 are both within half thickness.
        assert np.all(grid.cells[4, :] == CellState.OCCUPIED) or np.all(
            grid.cells[5, :] == CellState.OCCUPIED
        )

    def test_wall_thickness_controls_width(self):
        thin = (
            MapBuilder(2.0, 2.0, 0.05)
            .fill_rect(0, 0, 2, 2)
            .add_wall(1.0, 0.0, 1.0, 2.0, thickness=0.05)
            .build()
        )
        thick = (
            MapBuilder(2.0, 2.0, 0.05)
            .fill_rect(0, 0, 2, 2)
            .add_wall(1.0, 0.0, 1.0, 2.0, thickness=0.3)
            .build()
        )
        assert thick.occupied_mask().sum() > thin.occupied_mask().sum()

    def test_diagonal_wall_connects_endpoints(self):
        grid = (
            MapBuilder(1.0, 1.0, 0.05)
            .fill_rect(0, 0, 1, 1)
            .add_wall(0.1, 0.1, 0.9, 0.9, thickness=0.08)
            .build()
        )
        occupied = grid.occupied_mask()
        assert occupied[grid.world_to_grid(0.1, 0.1)]
        assert occupied[grid.world_to_grid(0.9, 0.9)]
        assert occupied[grid.world_to_grid(0.5, 0.5)]

    def test_point_wall(self):
        grid = (
            MapBuilder(1.0, 1.0, 0.1)
            .fill_rect(0, 0, 1, 1)
            .add_wall(0.55, 0.55, 0.55, 0.55, thickness=0.1)
            .build()
        )
        assert grid.state_at(0.55, 0.55) is CellState.OCCUPIED

    def test_wall_fully_outside_is_noop(self):
        grid = (
            MapBuilder(1.0, 1.0, 0.1)
            .fill_rect(0, 0, 1, 1)
            .add_wall(5.0, 5.0, 6.0, 6.0)
            .build()
        )
        assert grid.occupied_mask().sum() == 0

    def test_invalid_thickness(self):
        with pytest.raises(MapError):
            MapBuilder(1.0, 1.0).add_wall(0, 0, 1, 1, thickness=0.0)

    def test_border_encloses_map(self):
        grid = MapBuilder(1.0, 1.0, 0.05).fill_rect(0, 0, 1, 1).add_border().build()
        assert np.all(grid.cells[0, :] == CellState.OCCUPIED)
        assert np.all(grid.cells[-1, :] == CellState.OCCUPIED)
        assert np.all(grid.cells[:, 0] == CellState.OCCUPIED)
        assert np.all(grid.cells[:, -1] == CellState.OCCUPIED)


class TestStamp:
    def test_stamp_copies_known_cells(self):
        small = OccupancyGrid(
            np.array([[1, 0], [0, 2]], dtype=np.uint8), resolution=0.1
        )
        grid = MapBuilder(1.0, 1.0, 0.1).stamp(small, 0.2, 0.3).build()
        assert grid.state_at(0.25, 0.35) is CellState.OCCUPIED
        assert grid.state_at(0.35, 0.35) is CellState.FREE
        # UNKNOWN source cells do not overwrite.
        assert grid.state_at(0.35, 0.45) is CellState.UNKNOWN

    def test_stamp_resolution_mismatch(self):
        small = OccupancyGrid(np.zeros((2, 2), dtype=np.uint8), resolution=0.2)
        with pytest.raises(MapError):
            MapBuilder(1.0, 1.0, 0.1).stamp(small, 0.0, 0.0)

    def test_stamp_must_fit(self):
        small = OccupancyGrid(np.zeros((5, 5), dtype=np.uint8), resolution=0.1)
        with pytest.raises(MapError):
            MapBuilder(0.4, 0.4, 0.1).stamp(small, 0.0, 0.0)

    def test_build_returns_copy(self):
        builder = MapBuilder(1.0, 1.0, 0.1).fill_rect(0, 0, 1, 1)
        first = builder.build()
        builder.add_box(0.0, 0.0, 1.0, 1.0)
        second = builder.build()
        assert np.all(first.cells == CellState.FREE)
        assert np.all(second.cells == CellState.OCCUPIED)
