"""Tests for the Felzenszwalb–Huttenlocher Euclidean distance transform."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import ndimage

from repro.common.errors import MapError
from repro.maps.edt import brute_force_edt, euclidean_distance_field, squared_edt
from repro.maps.occupancy import CellState, OccupancyGrid


def _scipy_reference(mask: np.ndarray) -> np.ndarray:
    """scipy computes distance of nonzero cells to the nearest zero cell."""
    return ndimage.distance_transform_edt(~mask)


class TestSquaredEdt:
    def test_single_obstacle(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 2] = True
        dist = np.sqrt(squared_edt(mask))
        assert dist[2, 2] == 0.0
        assert dist[2, 3] == pytest.approx(1.0)
        assert dist[0, 0] == pytest.approx(np.sqrt(8.0))

    def test_matches_scipy_on_random_masks(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            mask = rng.random((20, 30)) < 0.1
            if not mask.any():
                mask[0, 0] = True
            ours = np.sqrt(squared_edt(mask))
            np.testing.assert_allclose(ours, _scipy_reference(mask), atol=1e-9)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(1)
        mask = rng.random((12, 9)) < 0.15
        mask[3, 3] = True
        np.testing.assert_allclose(
            np.sqrt(squared_edt(mask)), brute_force_edt(mask), atol=1e-9
        )

    def test_rejects_non_2d(self):
        with pytest.raises(MapError):
            squared_edt(np.zeros(5, dtype=bool))

    def test_all_obstacles_zero_everywhere(self):
        mask = np.ones((4, 4), dtype=bool)
        np.testing.assert_array_equal(squared_edt(mask), np.zeros((4, 4)))

    def test_no_obstacles_is_effectively_infinite(self):
        assert np.all(squared_edt(np.zeros((3, 3), dtype=bool)) >= 1e19)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**32 - 1), st.integers(2, 16), st.integers(2, 16))
    def test_property_matches_scipy(self, seed, rows, cols):
        rng = np.random.default_rng(seed)
        mask = rng.random((rows, cols)) < 0.25
        if not mask.any():
            mask[rows // 2, cols // 2] = True
        np.testing.assert_allclose(
            np.sqrt(squared_edt(mask)), _scipy_reference(mask), atol=1e-9
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_property_triangle_inequality_on_neighbours(self, seed):
        # EDT values of 4-adjacent cells can differ by at most 1 cell.
        rng = np.random.default_rng(seed)
        mask = rng.random((15, 15)) < 0.2
        if not mask.any():
            mask[7, 7] = True
        dist = np.sqrt(squared_edt(mask))
        assert np.all(np.abs(np.diff(dist, axis=0)) <= 1.0 + 1e-9)
        assert np.all(np.abs(np.diff(dist, axis=1)) <= 1.0 + 1e-9)


class TestEuclideanDistanceField:
    def _grid_with_center_wall(self) -> OccupancyGrid:
        cells = np.zeros((21, 21), dtype=np.uint8)
        cells[:, 10] = CellState.OCCUPIED
        return OccupancyGrid(cells, resolution=0.1)

    def test_metric_scaling(self):
        grid = self._grid_with_center_wall()
        dist = euclidean_distance_field(grid)
        # 5 cells from the wall at 0.1 m resolution.
        assert dist[0, 5] == pytest.approx(0.5)

    def test_truncation(self):
        grid = self._grid_with_center_wall()
        dist = euclidean_distance_field(grid, r_max=0.3)
        assert dist.max() == pytest.approx(0.3)
        assert dist[0, 5] == pytest.approx(0.3)  # 0.5 clipped
        assert dist[0, 8] == pytest.approx(0.2)  # below truncation untouched

    def test_zero_on_occupied_cells(self):
        grid = self._grid_with_center_wall()
        dist = euclidean_distance_field(grid, r_max=1.0)
        assert np.all(dist[grid.occupied_mask()] == 0.0)

    def test_unknown_cells_still_get_distances(self):
        cells = np.full((5, 5), int(CellState.UNKNOWN), dtype=np.uint8)
        cells[2, 2] = CellState.OCCUPIED
        grid = OccupancyGrid(cells, resolution=1.0)
        dist = euclidean_distance_field(grid, r_max=10.0)
        assert dist[2, 3] == pytest.approx(1.0)

    def test_no_obstacles_requires_rmax(self):
        grid = OccupancyGrid(np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(MapError):
            euclidean_distance_field(grid)
        dist = euclidean_distance_field(grid, r_max=1.5)
        assert np.all(dist == 1.5)

    def test_invalid_rmax(self):
        grid = self._grid_with_center_wall()
        with pytest.raises(MapError):
            euclidean_distance_field(grid, r_max=-0.1)
