"""Backend equivalence: the batched engine must match the reference.

The contract under test is strict: for matching seeds, the batched
backend produces **bitwise identical** per-run estimate traces, error
traces and metrics to running the reference backend sequentially — for
every precision variant, for stacked runs over *different* sequences
(per-run gating masks), and for partial resampling (per-run wheel
offsets).  Exact equality is deliberate: particle filters amplify
one-ulp weight differences into divergent resampling decisions, so any
tolerance would eventually hide real nonequivalence.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import MclConfig
from repro.dataset.recorder import RecordedSequence
from repro.engine import available_backends, get_backend
from repro.engine.backend import RunSpec
from repro.engine.batched import BatchedBackend, ReplayPlan
from repro.engine.reference import ReferenceBackend
from repro.maps.distance_field import DistanceField
from repro.maps.maze import generate_maze
from repro.maps.planning import plan_tour, snap_to_clearance
from repro.vehicle.crazyflie import CrazyflieSimulator, SimConfig


def _fly(grid, stops, sim_seed, duration_s, name):
    route = plan_tour(
        grid,
        [snap_to_clearance(grid, point, 0.15) for point in stops],
        clearance_m=0.15,
    )
    sim = CrazyflieSimulator(
        grid, route, seed=sim_seed, config=SimConfig(max_duration_s=duration_s)
    )
    return RecordedSequence.from_sim_steps(name, sim.run())


@pytest.fixture(scope="module")
def mini_world():
    """A small maze plus two flights of *different* lengths.

    Distinct sequences in one batch exercise the per-run gating masks:
    runs fire at different instants and one trace ends early.
    """
    grid = generate_maze(size_m=3.0, cells=4, seed=5)
    long_flight = _fly(
        grid, [(0.4, 0.4), (2.6, 0.4), (2.6, 2.6), (0.4, 2.6)], 11, 40, "mini-long"
    )
    short_flight = _fly(grid, [(2.6, 2.6), (0.4, 0.4), (1.5, 1.5)], 13, 20, "mini-short")
    assert len(long_flight) != len(short_flight)
    return grid, long_flight, short_flight


def _assert_traces_identical(reference, batched):
    assert len(reference) == len(batched)
    for ref, bat in zip(reference, batched):
        assert ref.update_count == bat.update_count
        np.testing.assert_array_equal(ref.timestamps, bat.timestamps)
        np.testing.assert_array_equal(ref.position_errors, bat.position_errors)
        np.testing.assert_array_equal(ref.yaw_errors, bat.yaw_errors)
        np.testing.assert_array_equal(ref.estimate_trace, bat.estimate_trace)


def _metrics_signature(result):
    metrics = result.metrics
    return (
        metrics.converged,
        metrics.convergence_time_s,
        metrics.success,
        None if math.isnan(metrics.ate_mean_m) else metrics.ate_mean_m,
        None if math.isnan(metrics.yaw_mean_rad) else metrics.yaw_mean_rad,
    )


class TestBatchedEquivalence:
    @pytest.mark.parametrize("variant", ["fp32", "fp321tof", "fp32qm", "fp16qm"])
    def test_r6_stacked_runs_match_sequential_reference(self, mini_world, variant):
        """R=6 stacked runs (2 sequences x 3 seeds) == 6 sequential runs."""
        grid, long_flight, short_flight = mini_world
        config = MclConfig(particle_count=128).with_variant(variant)
        field = DistanceField.build_for_mode(grid, config.r_max, config.precision)
        specs = [
            RunSpec(sequence, seed)
            for sequence in (long_flight, short_flight)
            for seed in (0, 1, 2)
        ]
        reference = ReferenceBackend().execute(grid, specs, config, field)
        batched = BatchedBackend().execute(grid, specs, config, field)
        _assert_traces_identical(reference, batched)

    def test_metrics_identical_through_runner(self, mini_world):
        """The evaluated RunResult metrics agree exactly, run by run."""
        from repro.eval.runner import run_localization_batch

        grid, long_flight, short_flight = mini_world
        config = MclConfig(particle_count=128)
        field = DistanceField.build_for_mode(grid, config.r_max, config.precision)
        specs = [
            RunSpec(sequence, seed)
            for sequence in (long_flight, short_flight)
            for seed in (0, 1, 2)
        ]
        reference = run_localization_batch(grid, specs, config, field, "reference")
        batched = run_localization_batch(grid, specs, config, field, "batched")
        assert [_metrics_signature(r) for r in reference] == [
            _metrics_signature(b) for b in batched
        ]

    def test_tracking_init_equivalence(self, mini_world):
        grid, long_flight, __ = mini_world
        config = MclConfig(particle_count=128)
        field = DistanceField.build_for_mode(grid, config.r_max, config.precision)
        specs = [
            RunSpec(long_flight, seed, tracking_init=True, tracking_sigma_xy=0.2)
            for seed in (0, 1, 2)
        ]
        reference = ReferenceBackend().execute(grid, specs, config, field)
        batched = BatchedBackend().execute(grid, specs, config, field)
        _assert_traces_identical(reference, batched)

    def test_partial_resampling_row_offsets(self, mini_world):
        """ESS-gated resampling fires per run — rows resample independently."""
        grid, long_flight, short_flight = mini_world
        config = dataclasses.replace(
            MclConfig(particle_count=128), resample_ess_fraction=0.5
        )
        field = DistanceField.build_for_mode(grid, config.r_max, config.precision)
        specs = [
            RunSpec(sequence, seed)
            for sequence in (long_flight, short_flight)
            for seed in (0, 1, 2)
        ]
        reference = ReferenceBackend().execute(grid, specs, config, field)
        batched = BatchedBackend().execute(grid, specs, config, field)
        _assert_traces_identical(reference, batched)

    def test_plan_cache_reused_across_cells(self, mini_world):
        """One backend instance re-serves plans to later cells unchanged."""
        grid, long_flight, __ = mini_world
        backend = BatchedBackend()
        field = None
        results = []
        for count in (64, 128):
            config = MclConfig(particle_count=count)
            field = DistanceField.build_for_mode(grid, config.r_max, config.precision)
            results.append(
                backend.execute(grid, [RunSpec(long_flight, 0)], config, field)
            )
        assert len(backend._plans) == 1  # same sequence + signature -> one plan
        reference = ReferenceBackend().execute(
            grid, [RunSpec(long_flight, 0)], MclConfig(particle_count=128), field
        )
        _assert_traces_identical(reference, results[-1])

    def test_single_run_single_chunk_paths_agree(self, mini_world):
        """A tiny observation chunk budget only changes the tiling."""
        grid, long_flight, __ = mini_world
        config = MclConfig(particle_count=96)
        field = DistanceField.build_for_mode(grid, config.r_max, config.precision)
        specs = [RunSpec(long_flight, seed) for seed in (0, 1, 2)]
        whole = BatchedBackend().execute(grid, specs, config, field)
        tiled = BatchedBackend(obs_chunk_elements=1).execute(
            grid, specs, config, field
        )
        _assert_traces_identical(whole, tiled)


class TestScenarioEquivalence:
    """The contract extends to generated scenario worlds, not just the
    canonical maze: every scenario family must replay bitwise-identically
    through both backends (scenario sweeps depend on it)."""

    @pytest.fixture(scope="class")
    def scenarios(self):
        from repro.scenarios import ScenarioSpec, build_scenario

        return {
            family: build_scenario(ScenarioSpec.of(family, 1, flight_s=8.0))
            for family in ("office", "hall")
        }

    @pytest.mark.parametrize("family", ["office", "hall"])
    def test_scenario_stacks_match_sequential_reference(self, scenarios, family):
        scenario = scenarios[family]
        config = MclConfig(particle_count=96)
        field = DistanceField.build_for_mode(
            scenario.grid, config.r_max, config.precision
        )
        specs = [RunSpec(scenario.sequence, seed) for seed in (0, 1, 2)]
        reference = ReferenceBackend().execute(scenario.grid, specs, config, field)
        batched = BatchedBackend().execute(scenario.grid, specs, config, field)
        _assert_traces_identical(reference, batched)

    def test_mixed_scenario_sequences_in_one_stack(self, scenarios):
        """Two different scenario flights stacked in one batch still match
        (per-run gating masks over sequences from *different* worlds is
        invalid — each batch shares one grid — so stack per-world)."""
        scenario = scenarios["office"]
        config = MclConfig(particle_count=96).with_variant("fp16qm")
        field = DistanceField.build_for_mode(
            scenario.grid, config.r_max, config.precision
        )
        specs = [RunSpec(scenario.sequence, seed) for seed in (3, 4)]
        reference = ReferenceBackend().execute(scenario.grid, specs, config, field)
        batched = BatchedBackend().execute(scenario.grid, specs, config, field)
        _assert_traces_identical(reference, batched)


def _fast_backend_or_skip(**kwargs):
    from repro.engine.fast import FastBackend

    try:
        return FastBackend(**kwargs)
    except ConfigurationError as exc:
        pytest.skip(f"no fused fast-backend provider available: {exc}")


class TestFastEquivalence:
    """The fast backend joins the same contract: bitwise-identical
    traces and metrics to the reference, whichever fused provider
    (numba / C / numpy fallback) serves the kernels."""

    @pytest.mark.parametrize("variant", ["fp32", "fp321tof", "fp32qm", "fp16qm"])
    def test_r6_stacked_runs_match_sequential_reference(self, mini_world, variant):
        grid, long_flight, short_flight = mini_world
        config = MclConfig(particle_count=128).with_variant(variant)
        field = DistanceField.build_for_mode(grid, config.r_max, config.precision)
        specs = [
            RunSpec(sequence, seed)
            for sequence in (long_flight, short_flight)
            for seed in (0, 1, 2)
        ]
        reference = ReferenceBackend().execute(grid, specs, config, field)
        fast = _fast_backend_or_skip().execute(grid, specs, config, field)
        _assert_traces_identical(reference, fast)

    def test_partial_resampling_row_offsets(self, mini_world):
        """ESS-gated partial resampling exercises the fused per-row
        resample path (some rows gather, some don't)."""
        grid, long_flight, short_flight = mini_world
        config = dataclasses.replace(
            MclConfig(particle_count=128), resample_ess_fraction=0.5
        )
        field = DistanceField.build_for_mode(grid, config.r_max, config.precision)
        specs = [
            RunSpec(sequence, seed)
            for sequence in (long_flight, short_flight)
            for seed in (0, 1, 2)
        ]
        reference = ReferenceBackend().execute(grid, specs, config, field)
        fast = _fast_backend_or_skip().execute(grid, specs, config, field)
        _assert_traces_identical(reference, fast)

    def test_metrics_identical_through_runner(self, mini_world):
        from repro.eval.runner import run_localization_batch

        _fast_backend_or_skip()  # skip early when unavailable
        grid, long_flight, short_flight = mini_world
        config = MclConfig(particle_count=128).with_variant("fp16qm")
        field = DistanceField.build_for_mode(grid, config.r_max, config.precision)
        specs = [
            RunSpec(sequence, seed)
            for sequence in (long_flight, short_flight)
            for seed in (0, 1, 2)
        ]
        reference = run_localization_batch(grid, specs, config, field, "reference")
        fast = run_localization_batch(grid, specs, config, field, "fast")
        assert [_metrics_signature(r) for r in reference] == [
            _metrics_signature(f) for f in fast
        ]

    def test_tiny_observation_chunks_agree(self, mini_world):
        """The fused per-row kernels see whatever row tiling the chunk
        budget produces; tiling must never leak into results."""
        grid, long_flight, __ = mini_world
        config = MclConfig(particle_count=96)
        field = DistanceField.build_for_mode(grid, config.r_max, config.precision)
        specs = [RunSpec(long_flight, seed) for seed in (0, 1, 2)]
        whole = _fast_backend_or_skip().execute(grid, specs, config, field)
        tiled = _fast_backend_or_skip(obs_chunk_elements=1).execute(
            grid, specs, config, field
        )
        _assert_traces_identical(whole, tiled)

    def test_numpy_fallback_matches_compiled_provider(self, mini_world):
        """Cross-provider check: the pure-numpy provider and whichever
        compiled tier resolve both land on the same bits — the contract
        binds implementations, not just backends."""
        grid, long_flight, __ = mini_world
        compiled = _fast_backend_or_skip()
        from repro.engine.fast import FastBackend

        fallback = FastBackend(impl="numpy")
        assert fallback.provider_name == "numpy"
        config = MclConfig(particle_count=128).with_variant("fp32")
        field = DistanceField.build_for_mode(grid, config.r_max, config.precision)
        specs = [RunSpec(long_flight, seed) for seed in (0, 1)]
        _assert_traces_identical(
            compiled.execute(grid, specs, config, field),
            fallback.execute(grid, specs, config, field),
        )

    def test_unknown_impl_rejected(self):
        from repro.engine.fast import FastBackend

        with pytest.raises(ConfigurationError, match="REPRO_FAST_IMPL"):
            FastBackend(impl="gpu")

    def test_missing_provider_is_configuration_error(self, monkeypatch):
        """Pinning a tier whose dependency is absent must fail loudly
        with ConfigurationError, not an ImportError mid-sweep."""
        import builtins
        import sys

        from repro.engine.fast import FastBackend

        real_import = builtins.__import__

        def no_numba(name, *args, **kwargs):
            if name == "numba" or name.startswith("numba."):
                raise ImportError("numba intentionally unavailable")
            return real_import(name, *args, **kwargs)

        # Evict any cached modules so the pinned tier re-imports numba
        # (and hits the block) even on hosts where numba IS installed.
        for module in list(sys.modules):
            if module == "numba" or module.startswith("numba."):
                monkeypatch.delitem(sys.modules, module, raising=False)
        monkeypatch.delitem(sys.modules, "repro.engine.fast_numba", raising=False)
        monkeypatch.setattr(builtins, "__import__", no_numba)
        with pytest.raises(ConfigurationError, match="numba"):
            FastBackend(impl="numba")


class TestReplayPlan:
    def test_gating_trace_matches_sequence(self, mini_world):
        grid, long_flight, __ = mini_world
        config = MclConfig(particle_count=8)
        plan = ReplayPlan(long_flight, config)
        assert len(plan.steps) == len(long_flight)
        assert not plan.steps[0].fires  # zero pending motion cannot gate
        fired = [step for step in plan.steps if step.fires]
        assert fired, "a real flight must trigger updates"
        for step in fired:
            assert step.pending is not None

    def test_signature_separates_gating_configs(self):
        base = MclConfig()
        wide = dataclasses.replace(base, d_xy=0.5)
        assert ReplayPlan.signature(base) != ReplayPlan.signature(wide)
        assert ReplayPlan.signature(base) == ReplayPlan.signature(
            dataclasses.replace(base, particle_count=7)
        )


class TestBackendRegistry:
    def test_builtin_backends_listed(self):
        # "fast" always *lists* (construction may still raise
        # ConfigurationError when no provider is available).
        assert set(available_backends()) >= {"reference", "batched", "fast"}

    def test_get_backend_resolves_names(self):
        assert get_backend("reference").name == "reference"
        assert get_backend("batched").name == "batched"

    def test_get_backend_passthrough(self):
        backend = BatchedBackend()
        assert get_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            get_backend("tpu")

    def test_empty_specs_are_trivial(self, mini_world):
        grid, __, __ = mini_world
        assert BatchedBackend().execute(grid, [], MclConfig(particle_count=8)) == []

    def test_field_resolution_mismatch_rejected(self, mini_world):
        grid, long_flight, __ = mini_world
        other = generate_maze(size_m=3.0, cells=4, seed=5)
        field = DistanceField.build(other, r_max=1.5)
        field.resolution = field.resolution * 2  # force a mismatch
        with pytest.raises(ConfigurationError):
            BatchedBackend().execute(
                grid, [RunSpec(long_flight, 0)], MclConfig(particle_count=8), field
            )
