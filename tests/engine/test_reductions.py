"""Property tests for the deterministic reduction tree.

The tree (``engine/reductions.py``) is the spec every backend reduces
through, so its invariants are load-bearing for the whole bitwise
contract: the result must depend only on the last-axis *values*, never
on leading shape, memory layout, or how the caller chunked the data.
All assertions here are exact — a one-ulp deviation in a weight sum is
a divergent resampling decision downstream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.reductions import DET_CHUNK, det_dot, det_sum, det_sum_squares

#: Lengths that probe every tree shape: single partial chunk, exact
#: chunk, chunk+1 (ragged tail of width 1), level boundaries (63/64/65
#: and 255/256), and the headline particle count.
BOUNDARY_LENGTHS = list(range(1, 41)) + [63, 64, 65, 255, 256, 1024]


def _reference_tree(values: np.ndarray) -> float:
    """Straight-line re-implementation of the spec prose, no vectorization.

    An intentionally naive second implementation: chunks of DET_CHUNK
    reduced left-to-right, levels repeated until one value remains.
    The vectorized ``det_sum`` must agree bit-for-bit.
    """
    level = [float(v) for v in np.asarray(values, dtype=np.float64).ravel()]
    if not level:
        return 0.0
    while len(level) > 1:
        nxt = []
        for start in range(0, len(level), DET_CHUNK):
            acc = level[start]
            for v in level[start + 1 : start + DET_CHUNK]:
                acc = acc + v
            nxt.append(acc)
        level = nxt
    return level[0]


def _vectors(n: int, seed: int = 0) -> np.ndarray:
    """Adversarial float64 data: mixed magnitudes and signs so that
    chunk order genuinely changes the rounding (catches any silent
    fallback to np.sum)."""
    rng = np.random.default_rng(seed + n)
    scales = 10.0 ** rng.integers(-8, 9, size=n)
    return rng.standard_normal(n) * scales


class TestTreeSpec:
    @pytest.mark.parametrize("n", BOUNDARY_LENGTHS)
    def test_matches_scalar_reference_tree(self, n):
        values = _vectors(n)
        assert float(det_sum(values)) == _reference_tree(values)

    def test_differs_from_numpy_pairwise_sum(self):
        """The tree is its own spec, not an alias of np.sum — on
        adversarial data the orders round differently somewhere."""
        hits = sum(
            float(det_sum(_vectors(1024, seed=s))) != float(np.sum(_vectors(1024, seed=s)))
            for s in range(8)
        )
        assert hits > 0

    def test_empty_and_singleton(self):
        assert float(det_sum(np.array([]))) == 0.0
        assert float(det_sum(np.array([3.25]))) == 3.25
        out = det_sum(np.zeros((4, 0)))
        assert out.shape == (4,)
        np.testing.assert_array_equal(out, np.zeros(4))

    def test_zero_d_rejected(self):
        with pytest.raises(ValueError):
            det_sum(np.float64(1.0))


class TestShapeAndLayoutInvariance:
    @pytest.mark.parametrize("n", BOUNDARY_LENGTHS)
    def test_leading_shape_invariance(self, n):
        """A (N,) vector and the same values as a row of an (R, N)
        stack reduce to bit-identical float64."""
        values = _vectors(n, seed=7)
        stack = np.stack([_vectors(n, seed=s) for s in (3, 7, 9)])
        stack[1] = values
        alone = float(det_sum(values))
        stacked = det_sum(stack)
        assert stacked.shape == (3,)
        assert float(stacked[1]) == alone

    @pytest.mark.parametrize("n", [17, 64, 65, 256, 1024])
    def test_contiguity_invariance(self, n):
        """C-order, F-order and strided views all reduce identically."""
        stack = np.stack([_vectors(n, seed=s) for s in range(4)])
        c_order = np.ascontiguousarray(stack)
        f_order = np.asfortranarray(stack)
        assert not f_order.flags["C_CONTIGUOUS"] or n == 1
        strided = np.ascontiguousarray(np.repeat(stack, 2, axis=0))[::2]
        expected = det_sum(c_order)
        np.testing.assert_array_equal(det_sum(f_order), expected)
        np.testing.assert_array_equal(det_sum(strided), expected)

    @pytest.mark.parametrize("n", BOUNDARY_LENGTHS)
    def test_chunk_boundary_concatenation(self, n):
        """Result depends only on the length-n value sequence: the same
        values arriving pre-split at arbitrary offsets (then
        concatenated) reduce identically — callers never need to align
        their tiles to DET_CHUNK."""
        values = _vectors(n, seed=11)
        for split in {0, 1, n // 2, max(n - 1, 0)}:
            parts = np.concatenate([values[:split], values[split:]])
            assert float(det_sum(parts)) == float(det_sum(values))

    def test_float32_inputs_coerced_to_float64(self):
        values32 = _vectors(256).astype(np.float32)
        assert float(det_sum(values32)) == _reference_tree(
            values32.astype(np.float64)
        )


class TestDerivedReductions:
    @pytest.mark.parametrize("n", [1, 8, 9, 64, 65, 1024])
    def test_det_dot_products_before_tree(self, n):
        w = _vectors(n, seed=21)
        v = _vectors(n, seed=22)
        assert float(det_dot(w, v)) == _reference_tree(
            w.astype(np.float64) * v.astype(np.float64)
        )

    @pytest.mark.parametrize("n", [1, 8, 9, 64, 65, 1024])
    def test_det_sum_squares(self, n):
        a = _vectors(n, seed=23)
        assert float(det_sum_squares(a)) == _reference_tree(a * a)

    def test_det_dot_broadcasts_over_rows(self):
        w = np.stack([_vectors(40, seed=s) for s in range(3)])
        v = _vectors(40, seed=99)
        out = det_dot(w, v)
        assert out.shape == (3,)
        for row in range(3):
            assert float(out[row]) == _reference_tree(w[row] * v)


class TestPinnedTree:
    def test_known_vector_regression(self):
        """The tree of a fixed 20-element vector is pinned bit-for-bit.

        This value encodes the reduction *order* (chunks of 8, ragged
        tail of 4, sequential within chunks).  If it ever changes, the
        spec changed — that is a golden re-baseline event, not a test
        to update casually (see docs/reproducibility.md).
        """
        values = np.array(
            [
                1e16, 1.0, -1e16, 2.0, 1e-3, -2.0, 3.0, 1e8,
                -1e8, 4.0, 1e-7, -4.0, 5.0, 1e4, -1e4, 6.0,
                7.0, 1e-11, -7.0, 8.0,
            ]
        )
        result = float(det_sum(values))
        assert result == _reference_tree(values)
        assert result == 22.001000106344687
        # The IEEE-754 bit pattern, pinned exactly (little-endian hex) —
        # and visibly different from numpy's pairwise order on the same
        # data (22.00100000203656).
        assert np.float64(result).tobytes().hex() == "ff0a008b41003640"
        assert result != float(np.sum(values))

    def test_det_chunk_is_eight(self):
        """DET_CHUNK is part of the serialized contract — changing it
        invalidates every golden trace."""
        assert DET_CHUNK == 8
