"""Tests for frontier detection, clustering and goal selection."""

import numpy as np
import pytest

from repro.common.errors import MapError
from repro.mapping.exploration import (
    cluster_frontiers,
    frontier_mask,
    select_goal,
)
from repro.maps.occupancy import CellState, OccupancyGrid


def half_explored_room(size_cells: int = 40) -> OccupancyGrid:
    """Left half FREE with walls, right half UNKNOWN."""
    cells = np.full((size_cells, size_cells), int(CellState.UNKNOWN), dtype=np.uint8)
    half = size_cells // 2
    cells[:, :half] = int(CellState.FREE)
    cells[0, :half] = int(CellState.OCCUPIED)
    cells[-1, :half] = int(CellState.OCCUPIED)
    cells[:, 0] = int(CellState.OCCUPIED)
    return OccupancyGrid(cells, resolution=0.05)


class TestFrontierMask:
    def test_boundary_detected(self):
        grid = half_explored_room()
        mask = frontier_mask(grid)
        # The frontier is the last FREE column before the UNKNOWN half.
        half = grid.cols // 2
        assert np.any(mask[:, half - 1])
        # Interior free cells are not frontier.
        assert not np.any(mask[:, 2 : half - 2])

    def test_closed_map_has_no_frontier(self):
        cells = np.zeros((10, 10), dtype=np.uint8)
        cells[0, :] = cells[-1, :] = cells[:, 0] = cells[:, -1] = int(
            CellState.OCCUPIED
        )
        grid = OccupancyGrid(cells, resolution=0.05)
        assert not frontier_mask(grid).any()

    def test_occupied_cells_never_frontier(self):
        grid = half_explored_room()
        mask = frontier_mask(grid)
        assert not np.any(mask & (grid.cells == CellState.OCCUPIED))


class TestClusterFrontiers:
    def test_single_cluster_on_straight_boundary(self):
        grid = half_explored_room()
        clusters = cluster_frontiers(grid, min_size=3)
        assert len(clusters) == 1
        assert clusters[0].size >= grid.rows - 4

    def test_min_size_filters_specks(self):
        cells = np.full((10, 10), int(CellState.UNKNOWN), dtype=np.uint8)
        cells[5, 5] = int(CellState.FREE)  # one isolated free cell
        grid = OccupancyGrid(cells, resolution=0.05)
        assert cluster_frontiers(grid, min_size=3) == []
        assert len(cluster_frontiers(grid, min_size=1)) == 1

    def test_rejects_bad_min_size(self):
        with pytest.raises(MapError):
            cluster_frontiers(half_explored_room(), min_size=0)

    def test_centroid_cell_is_member(self):
        grid = half_explored_room()
        cluster = cluster_frontiers(grid)[0]
        row, col = cluster.centroid_cell()
        members = set(zip(cluster.rows.tolist(), cluster.cols.tolist()))
        assert (row, col) in members


class TestSelectGoal:
    def test_goal_on_reachable_frontier(self):
        grid = half_explored_room()
        start = (0.5, 1.0)
        goal = select_goal(grid, start, clearance_m=0.1)
        assert goal is not None
        # The target sits near the frontier column.
        half_x = grid.cols // 2 * grid.resolution
        assert goal.target_xy[0] > half_x - 0.5
        assert goal.route[0] == start
        assert goal.cluster_size > 3

    def test_no_goal_when_fully_explored(self):
        cells = np.zeros((20, 20), dtype=np.uint8)
        cells[0, :] = cells[-1, :] = cells[:, 0] = cells[:, -1] = int(
            CellState.OCCUPIED
        )
        grid = OccupancyGrid(cells, resolution=0.05)
        assert select_goal(grid, (0.5, 0.5), clearance_m=0.1) is None

    def test_unreachable_frontier_skipped(self):
        # Frontier behind a sealed wall: no goal rather than a crash.
        cells = np.full((20, 20), int(CellState.UNKNOWN), dtype=np.uint8)
        cells[1:19, 1:8] = int(CellState.FREE)  # reachable room, fully walled
        cells[0, :] = cells[-1, :] = int(CellState.OCCUPIED)
        cells[:, 0] = int(CellState.OCCUPIED)
        cells[:, 8] = int(CellState.OCCUPIED)  # seals the room completely
        cells[1:19, 9:12] = int(CellState.FREE)  # free corridor beyond the seal
        grid = OccupancyGrid(cells, resolution=0.05)
        goal = select_goal(grid, (0.2, 0.5), clearance_m=0.05)
        # The frontier of the outer corridor is unreachable from inside.
        if goal is not None:
            # If a goal is returned it must be inside the sealed room.
            assert goal.target_xy[0] < 8 * 0.05
