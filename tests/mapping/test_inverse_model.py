"""Tests for the inverse sensor model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.mapping.inverse_model import (
    InverseModelConfig,
    beam_evidence,
    trace_beam_cells,
)


class TestConfig:
    def test_defaults_valid(self):
        InverseModelConfig()

    def test_rejects_nonpositive_increments(self):
        with pytest.raises(ConfigurationError):
            InverseModelConfig(l_occupied=0.0)
        with pytest.raises(ConfigurationError):
            InverseModelConfig(l_free=-1.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            InverseModelConfig(hit_window_m=0.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            InverseModelConfig(max_range_fraction=0.0)


class TestTraceBeamCells:
    def test_horizontal_beam_visits_each_cell_once(self):
        rows, cols = trace_beam_cells(0.025, 0.025, 0.0, 0.5, 0.05, 0.0, 0.0)
        assert np.all(rows == 0)
        np.testing.assert_array_equal(np.sort(cols), np.arange(len(cols)))
        assert len(cols) == 11  # cells 0..10 inclusive of the endpoint cell

    def test_zero_length_is_empty(self):
        rows, cols = trace_beam_cells(0.0, 0.0, 0.0, 0.0, 0.05, 0.0, 0.0)
        assert rows.size == 0

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(0.0, 2.0),
        st.floats(0.0, 2.0),
        st.floats(-math.pi, math.pi),
        st.floats(0.05, 2.0),
    )
    def test_property_cells_connected(self, x, y, angle, length):
        rows, cols = trace_beam_cells(x, y, angle, length, 0.05, 0.0, 0.0)
        assert rows.size >= 1
        # Consecutive traversed cells differ by at most one step in each axis.
        assert np.all(np.abs(np.diff(rows)) <= 1)
        assert np.all(np.abs(np.diff(cols)) <= 1)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(-math.pi, math.pi), st.floats(0.1, 3.0))
    def test_property_start_and_end_cells_included(self, angle, length):
        rows, cols = trace_beam_cells(1.0, 1.0, angle, length, 0.05, 0.0, 0.0)
        start = (int(np.floor(1.0 / 0.05)), int(np.floor(1.0 / 0.05)))
        end_x = 1.0 + math.cos(angle) * length
        end_y = 1.0 + math.sin(angle) * length
        end = (int(np.floor(end_y / 0.05)), int(np.floor(end_x / 0.05)))
        cells = set(zip(rows.tolist(), cols.tolist()))
        assert (start[1], start[0])[::-1] in cells or start in cells
        assert end in cells


class TestBeamEvidence:
    def test_hit_beam_splits_free_and_hit(self):
        config = InverseModelConfig()
        update = beam_evidence(
            0.025, 0.025, 0.0, 1.0, 4.0, 0.05, 0.0, 0.0, config
        )
        assert update.free_rows.size > 0
        assert update.hit_rows.size > 0
        # Hit cells sit at the measured range (col ~ 1.0/0.05 = 20).
        assert np.all(update.hit_cols >= 18)
        # Free cells stop short of the hit window.
        assert np.all(update.free_cols <= 20)

    def test_out_of_range_clears_only(self):
        config = InverseModelConfig()
        update = beam_evidence(0.0, 0.0, 0.0, 4.0, 4.0, 0.05, 0.0, 0.0, config)
        assert update.free_rows.size > 0
        assert update.hit_rows.size == 0

    def test_rejects_negative_range(self):
        with pytest.raises(ConfigurationError):
            beam_evidence(0, 0, 0, -1.0, 4.0, 0.05, 0, 0, InverseModelConfig())

    def test_zero_range_no_free(self):
        update = beam_evidence(0, 0, 0, 0.0, 4.0, 0.05, 0, 0, InverseModelConfig())
        assert update.free_rows.size == 0
        assert update.hit_rows.size > 0  # obstacle right at the sensor
