"""Tests for log-odds grid mapping from ToF frames."""

import math

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, MapError
from repro.common.geometry import Pose2D
from repro.common.rng import make_rng
from repro.mapping.grid_mapper import GridMapper, MapperConfig, map_agreement
from repro.maps.builder import MapBuilder
from repro.maps.occupancy import CellState, OccupancyGrid
from repro.sensors.tof import TofSensor, TofSensorSpec


def room(size: float = 3.0):
    return (
        MapBuilder(size, size, 0.05)
        .fill_rect(0, 0, size, size, CellState.FREE)
        .add_border()
        .add_box(1.8, 1.8, 2.2, 2.2)
        .build()
    )


def quiet_sensor(yaw: float = 0.0):
    spec = TofSensorSpec(
        yaw_offset=yaw,
        noise_sigma_base_m=0.002,
        noise_sigma_prop=0.0,
        interference_prob=0.0,
        edge_row_dropout_prob=0.0,
    )
    return TofSensor(spec, "tof-front", make_rng(0, "map"))


class TestMapperConfig:
    def test_rejects_bad_extent(self):
        with pytest.raises(ConfigurationError):
            MapperConfig(width_m=0.0, height_m=1.0)

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ConfigurationError):
            MapperConfig(width_m=1, height_m=1, l_free_threshold=2.0, l_occupied_threshold=1.0)

    def test_rejects_bad_clamp(self):
        with pytest.raises(ConfigurationError):
            MapperConfig(width_m=1, height_m=1, l_clamp=0.0)


class TestGridMapper:
    def _scan_from_poses(self, mapper, grid, poses):
        sensor = quiet_sensor()
        for index, pose in enumerate(poses):
            frame = sensor.measure(grid, pose, float(index))
            mapper.integrate_frame(frame, pose)

    def test_maps_wall_ahead(self):
        grid = room()
        mapper = GridMapper(MapperConfig(width_m=3.0, height_m=3.0))
        pose = Pose2D(1.0, 1.0, 0.0)
        # Several frames to accumulate confidence past the threshold.
        self._scan_from_poses(mapper, grid, [pose] * 6)
        mapped = mapper.to_occupancy_grid()
        # Free space along the beam.
        assert mapped.state_at(1.5, 1.0) is CellState.FREE
        # The right border wall (x ~ 2.95) is marked occupied.
        row, col = mapped.world_to_grid(2.97, 1.0)
        window = mapped.cells[row - 1 : row + 2, col - 2 : col + 1]
        assert np.any(window == CellState.OCCUPIED)

    def test_unscanned_cells_stay_unknown(self):
        grid = room()
        mapper = GridMapper(MapperConfig(width_m=3.0, height_m=3.0))
        self._scan_from_poses(mapper, grid, [Pose2D(1.0, 1.0, 0.0)] * 3)
        mapped = mapper.to_occupancy_grid()
        # Behind the sensor nothing was observed.
        assert mapped.state_at(0.2, 2.8) is CellState.UNKNOWN

    def test_coverage_grows_with_viewpoints(self):
        grid = room()
        mapper = GridMapper(MapperConfig(width_m=3.0, height_m=3.0))
        self._scan_from_poses(mapper, grid, [Pose2D(1.0, 1.0, 0.0)] * 3)
        early = mapper.coverage_fraction()
        poses = [
            Pose2D(1.0, 1.0, math.pi / 2),
            Pose2D(1.0, 1.0, math.pi),
            Pose2D(1.0, 1.0, -math.pi / 2),
            Pose2D(2.5, 0.6, math.pi / 2),
        ]
        self._scan_from_poses(mapper, grid, [p for p in poses for _ in range(3)])
        assert mapper.coverage_fraction() > early

    def test_log_odds_clamped(self):
        grid = room()
        config = MapperConfig(width_m=3.0, height_m=3.0, l_clamp=2.0)
        mapper = GridMapper(config)
        self._scan_from_poses(mapper, grid, [Pose2D(1.0, 1.0, 0.0)] * 30)
        assert float(np.max(np.abs(mapper.log_odds))) <= 2.0 + 1e-9

    def test_probabilities_in_unit_interval(self):
        grid = room()
        mapper = GridMapper(MapperConfig(width_m=3.0, height_m=3.0))
        self._scan_from_poses(mapper, grid, [Pose2D(1.0, 1.0, 0.5)] * 4)
        probabilities = mapper.occupancy_probabilities()
        assert np.all(probabilities >= 0.0)
        assert np.all(probabilities <= 1.0)

    def test_mapped_grid_agrees_with_truth(self):
        grid = room()
        mapper = GridMapper(MapperConfig(width_m=3.0, height_m=3.0))
        headings = np.linspace(-math.pi, math.pi, 12, endpoint=False)
        poses = [Pose2D(x, y, h) for x, y in [(0.8, 0.8), (2.2, 0.8), (0.8, 2.6)]
                 for h in headings for _ in range(2)]
        self._scan_from_poses(mapper, grid, poses)
        agreement = map_agreement(mapper.to_occupancy_grid(), grid)
        # The cone-shaped free-space evidence trades a little wall bleed
        # (sub-rays grazing corners) for contiguous coverage; mid-80s to
        # low-90s agreement is the expected operating range.
        assert agreement > 0.85

    def test_frame_counter(self):
        grid = room()
        mapper = GridMapper(MapperConfig(width_m=3.0, height_m=3.0))
        self._scan_from_poses(mapper, grid, [Pose2D(1.0, 1.0, 0.0)] * 5)
        assert mapper.frames_integrated == 5


class TestMapAgreement:
    def test_identical_grids(self):
        grid = room()
        assert map_agreement(grid, grid) == 1.0

    def test_shape_mismatch(self):
        a = OccupancyGrid(np.zeros((4, 4), dtype=np.uint8))
        b = OccupancyGrid(np.zeros((5, 5), dtype=np.uint8))
        with pytest.raises(MapError):
            map_agreement(a, b)

    def test_unknown_excluded(self):
        known = OccupancyGrid(np.zeros((4, 4), dtype=np.uint8))
        unknown = OccupancyGrid(np.full((4, 4), 2, dtype=np.uint8))
        assert map_agreement(unknown, known) == 0.0
