"""Tests for ASCII plotting, tables and CSV export."""

import csv
import math

import numpy as np
import pytest

from repro.common.errors import EvaluationError
from repro.maps.builder import MapBuilder
from repro.maps.occupancy import CellState
from repro.viz.ascii import line_plot, render_map_with_path
from repro.viz.export import export_series, write_csv
from repro.viz.tables import format_table


class TestLinePlot:
    def test_renders_series_glyphs(self):
        plot = line_plot(
            {"a": ([1, 2, 3], [1.0, 2.0, 3.0]), "b": ([1, 2, 3], [3.0, 2.0, 1.0])},
            width=40,
            height=10,
        )
        assert "o" in plot  # series a
        assert "x" in plot  # series b
        assert "legend" in plot
        assert "o=a" in plot and "x=b" in plot

    def test_title_included(self):
        plot = line_plot({"s": ([1], [1.0])}, title="ATE vs Particle Number")
        assert plot.startswith("ATE vs Particle Number")

    def test_log_x_axis_labels(self):
        plot = line_plot({"s": ([64, 16384], [1.0, 2.0])}, log_x=True)
        assert "64" in plot
        assert "1.64e+04" in plot or "16384" in plot or "1.6e+04" in plot

    def test_skips_nan(self):
        plot = line_plot({"s": ([1, 2, 3], [1.0, math.nan, 3.0])})
        assert plot  # no crash, plot rendered

    def test_rejects_empty(self):
        with pytest.raises(EvaluationError):
            line_plot({})

    def test_rejects_all_nan(self):
        with pytest.raises(EvaluationError):
            line_plot({"s": ([1.0], [math.nan])})

    def test_constant_series(self):
        plot = line_plot({"s": ([1, 2], [5.0, 5.0])})
        assert plot


class TestRenderMap:
    def _grid(self):
        return (
            MapBuilder(1.0, 1.0, 0.05)
            .fill_rect(0, 0, 1, 1, CellState.FREE)
            .add_border()
            .build()
        )

    def test_path_overlay(self):
        grid = self._grid()
        path = np.array([[0.5, 0.5], [0.6, 0.5], [0.7, 0.5]])
        art = render_map_with_path(grid, {"*": path}, stride=1)
        assert "*" in art
        assert "#" in art

    def test_multiple_paths(self):
        grid = self._grid()
        art = render_map_with_path(
            grid,
            {"*": np.array([[0.3, 0.3]]), "@": np.array([[0.7, 0.7]])},
            stride=1,
        )
        assert "*" in art and "@" in art

    def test_rejects_long_glyph(self):
        with pytest.raises(EvaluationError):
            render_map_with_path(self._grid(), {"ab": np.array([[0.5, 0.5]])})

    def test_rejects_bad_stride(self):
        with pytest.raises(EvaluationError):
            render_map_with_path(self._grid(), {}, stride=0)

    def test_out_of_map_points_ignored(self):
        art = render_map_with_path(self._grid(), {"*": np.array([[9.0, 9.0]])})
        assert "*" not in art


class TestFormatTable:
    def test_basic(self):
        table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert len(lines) == 4

    def test_title_and_footnote(self):
        table = format_table(["x"], [["1"]], title="T", footnote="note")
        assert table.startswith("T")
        assert table.endswith("note")

    def test_alignment(self):
        table = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = table.splitlines()
        assert len(lines[1]) == len(lines[2])  # rule matches rows

    def test_rejects_mismatched_rows(self):
        with pytest.raises(EvaluationError):
            format_table(["a", "b"], [["only-one"]])

    def test_rejects_no_headers(self):
        with pytest.raises(EvaluationError):
            format_table([], [])


class TestExport:
    def test_write_csv_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, 2], [3, 4]])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_write_csv_makes_directories(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "dir" / "out.csv", ["x"], [[1]])
        assert path.exists()

    def test_export_series_layout(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = export_series(
            "fig", {"fp32": ([64, 256], [0.15, 0.14])}, x_label="particles", y_label="ate"
        )
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["series", "particles", "ate"]
        assert rows[1] == ["fp32", "64", "0.15"]

    def test_rejects_empty_headers(self, tmp_path):
        with pytest.raises(EvaluationError):
            write_csv(tmp_path / "bad.csv", [], [])
