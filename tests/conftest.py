"""Root test fixtures: isolate every session from the committed caches.

``REPRO_DATA_DIR`` is pointed at a per-session temporary directory so
tests can never mutate the committed ``data/sequences`` cache (or any
user-generated scenario cache).  The committed canonical sequences are
copied in read-only style — copied bytes, originals untouched — so tests
that replay them stay fast; everything else (scenario files, regenerated
sequences) lands in the tmpdir and vanishes with the session.
``REPRO_RESULTS_DIR`` is likewise redirected so tests never overwrite
committed benchmark reports under ``results/``.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

import pytest

_REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="session", autouse=True)
def _isolated_repro_dirs(tmp_path_factory):
    data_dir = tmp_path_factory.mktemp("repro-data")
    results_dir = tmp_path_factory.mktemp("repro-results")

    committed = _REPO_ROOT / "data" / "sequences"
    if committed.is_dir():
        target = data_dir / "sequences"
        target.mkdir(parents=True, exist_ok=True)
        for source in sorted(committed.glob("*.npz")):
            shutil.copy2(source, target / source.name)

    previous = {
        key: os.environ.get(key) for key in ("REPRO_DATA_DIR", "REPRO_RESULTS_DIR")
    }
    os.environ["REPRO_DATA_DIR"] = str(data_dir)
    os.environ["REPRO_RESULTS_DIR"] = str(results_dir)
    try:
        yield
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
