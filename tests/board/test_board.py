"""Tests for bus models and the whole-drone power/latency budget."""

import pytest

from repro.common.errors import PlatformModelError
from repro.board.buses import (
    SPI_UPDATE_PAYLOAD_BYTES,
    VL53L5CX_FRAME_BYTES_8X8,
    I2cBus,
    SpiBus,
    pipeline_transfer_overhead_s,
)
from repro.board.system import (
    ELECTRONICS_POWER_W,
    MOTOR_HOVER_POWER_W,
    end_to_end_latency,
    system_power_budget,
)


class TestI2cBus:
    def test_frame_fits_15hz(self):
        # The I2C readout of an 8x8 frame must sustain the 15 Hz rate.
        bus = I2cBus()
        assert bus.frame_time_s() < 1.0 / 15.0
        assert bus.max_frame_rate_hz() > 15.0

    def test_transfer_time_proportional(self):
        bus = I2cBus()
        assert bus.transfer_time_s(200) == pytest.approx(2 * bus.transfer_time_s(100))

    def test_rejects_negative_payload(self):
        with pytest.raises(PlatformModelError):
            I2cBus().transfer_time_s(-1)

    def test_frame_bytes_accounting(self):
        # 64 zones x (2 B distance + 1 B status) + header.
        assert VL53L5CX_FRAME_BYTES_8X8 == 64 * 3 + 16


class TestSpiBus:
    def test_update_well_under_frame_period(self):
        bus = SpiBus()
        assert bus.update_time_s() < 1e-3

    def test_payload_covers_two_sensors(self):
        assert SPI_UPDATE_PAYLOAD_BYTES >= 2 * 128  # >= two 64-zone range sets

    def test_rejects_negative(self):
        with pytest.raises(PlatformModelError):
            SpiBus().transfer_time_s(-5)


class TestTransferOverhead:
    def test_within_pipeline_overhead(self):
        # The bus contribution must fit inside the paper's ~40 us constant.
        overhead = pipeline_transfer_overhead_s()
        assert 0 < overhead < 1e-3


class TestSystemPowerBudget:
    def test_paper_composition(self):
        # Sec. IV-E: 2 x 320 mW sensors + 280 mW electronics + 61 mW GAP9
        # = 981 mW of sensing and processing.
        budget = system_power_budget(gap9_frequency_hz=400e6)
        assert budget.tof_sensors_w == pytest.approx(0.640)
        assert budget.electronics_w == pytest.approx(ELECTRONICS_POWER_W)
        assert budget.gap9_w == pytest.approx(0.061)
        assert budget.sensing_processing_w == pytest.approx(0.981, abs=1e-3)

    def test_fraction_around_seven_percent(self):
        budget = system_power_budget(gap9_frequency_hz=400e6)
        assert budget.sensing_processing_fraction == pytest.approx(0.07, abs=0.005)

    def test_motors_dominate(self):
        budget = system_power_budget()
        assert budget.motors_w == pytest.approx(MOTOR_HOVER_POWER_W)
        assert budget.motors_w > 10 * budget.sensing_processing_w

    def test_low_power_operating_point_cheaper(self):
        fast = system_power_budget(gap9_frequency_hz=400e6)
        slow = system_power_budget(gap9_frequency_hz=12e6)
        assert slow.sensing_processing_w < fast.sensing_processing_w

    def test_single_sensor_variant(self):
        budget = system_power_budget(tof_sensor_count=1)
        assert budget.tof_sensors_w == pytest.approx(0.320)

    def test_rejects_negative_sensor_count(self):
        with pytest.raises(PlatformModelError):
            system_power_budget(tof_sensor_count=-1)


class TestEndToEndLatency:
    def test_components_positive_and_summed(self):
        pipeline = end_to_end_latency(4096)
        assert pipeline.sensor_frame_s == pytest.approx(1 / 15)
        assert pipeline.transfer_s > 0
        assert pipeline.mcl_update_s > 0
        assert pipeline.total_s == pytest.approx(
            pipeline.sensor_frame_s + pipeline.transfer_s + pipeline.mcl_update_s
        )

    def test_sensor_frame_dominates_at_small_n(self):
        # At 64 particles the 15 Hz integration window is the bottleneck —
        # the compute is essentially free (0.2 ms).
        pipeline = end_to_end_latency(64)
        assert pipeline.sensor_frame_s > 10 * pipeline.mcl_update_s

    def test_rejects_bad_rate(self):
        with pytest.raises(PlatformModelError):
            end_to_end_latency(64, tof_rate_hz=0.0)
