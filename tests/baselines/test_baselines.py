"""Tests for the UWB and dead-reckoning baselines."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.baselines.dead_reckoning import run_dead_reckoning
from repro.baselines.uwb import (
    UwbEkf,
    UwbRanging,
    UwbSpec,
    corner_anchors,
    run_uwb_baseline,
)
from repro.dataset.recorder import RecordedSequence
from repro.maps.builder import MapBuilder
from repro.maps.occupancy import CellState
from repro.vehicle.crazyflie import CrazyflieSimulator, SimConfig


def square_trajectory(duration_s: float = 40.0, rate_hz: float = 15.0):
    """A synthetic square flight path through a 4 x 4 m volume."""
    count = int(duration_s * rate_hz)
    t = np.linspace(0, duration_s, count)
    phase = (t / duration_s * 4) % 4
    x = np.where(phase < 1, 0.5 + 3 * phase,
        np.where(phase < 2, 3.5,
        np.where(phase < 3, 3.5 - 3 * (phase - 2), 0.5)))
    y = np.where(phase < 1, 0.5,
        np.where(phase < 2, 0.5 + 3 * (phase - 1),
        np.where(phase < 3, 3.5, 3.5 - 3 * (phase - 3))))
    return t, np.stack([x, y], axis=1)


class TestUwbSpec:
    def test_defaults_valid(self):
        UwbSpec()

    def test_rejects_bad_noise(self):
        with pytest.raises(ConfigurationError):
            UwbSpec(range_noise_sigma_m=0.0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            UwbSpec(nlos_probability=1.2)


class TestRanging:
    def test_anchor_geometry(self):
        anchors = corner_anchors(4.0, 4.0, margin=0.2)
        assert anchors.shape == (4, 2)
        assert anchors[0].tolist() == [-0.2, -0.2]
        assert anchors[3].tolist() == [4.2, 4.2]

    def test_ranges_near_truth(self):
        anchors = corner_anchors(4.0, 4.0)
        ranging = UwbRanging(anchors, UwbSpec(nlos_probability=0.0), seed=0)
        ranges = np.array([ranging.measure(2.0, 2.0) for _ in range(500)])
        true = np.hypot(anchors[:, 0] - 2.0, anchors[:, 1] - 2.0)
        # Sample-mean tolerance: sigma/sqrt(500) ~ 0.022, allow 4 sigma.
        np.testing.assert_allclose(ranges.mean(axis=0), true, atol=0.09)

    def test_nlos_bias_positive(self):
        anchors = corner_anchors(4.0, 4.0)
        clean = UwbRanging(anchors, UwbSpec(nlos_probability=0.0), seed=1)
        biased = UwbRanging(anchors, UwbSpec(nlos_probability=1.0), seed=1)
        clean_mean = np.mean([clean.measure(2.0, 2.0) for _ in range(100)])
        biased_mean = np.mean([biased.measure(2.0, 2.0) for _ in range(100)])
        assert biased_mean > clean_mean + 0.05

    def test_requires_three_anchors(self):
        with pytest.raises(ConfigurationError):
            UwbRanging(np.zeros((2, 2)), UwbSpec())


class TestUwbEkf:
    def test_static_convergence(self):
        anchors = corner_anchors(4.0, 4.0)
        spec = UwbSpec(nlos_probability=0.0, range_noise_sigma_m=0.05)
        ekf = UwbEkf(anchors, spec, initial_xy=(1.0, 1.0))
        ranging = UwbRanging(anchors, spec, seed=2)
        for _ in range(60):
            ekf.predict(1 / 15)
            ekf.update(ranging.measure(3.0, 2.0))
        x, y = ekf.position
        assert abs(x - 3.0) < 0.15
        assert abs(y - 2.0) < 0.15

    def test_rejects_wrong_range_count(self):
        anchors = corner_anchors(4.0, 4.0)
        ekf = UwbEkf(anchors, UwbSpec(), (0.0, 0.0))
        with pytest.raises(ConfigurationError):
            ekf.update(np.zeros(3))

    def test_rejects_negative_dt(self):
        ekf = UwbEkf(corner_anchors(4, 4), UwbSpec(), (0.0, 0.0))
        with pytest.raises(ConfigurationError):
            ekf.predict(-0.1)


class TestUwbBaselineRun:
    def test_error_in_published_band(self):
        # The paper's comparison points are 0.22 m [7] and 0.28 m [6]; the
        # calibrated baseline must land in that neighbourhood — clearly
        # worse than MCL's 0.15 m but a functioning localizer.
        t, xy = square_trajectory()
        errors = []
        for seed in range(4):
            result = run_uwb_baseline(xy, t, volume_size=(4.0, 4.0), seed=seed)
            errors.append(result.mean_error_m)
        mean = float(np.mean(errors))
        assert 0.12 < mean < 0.4

    def test_rmse_at_least_mean(self):
        t, xy = square_trajectory()
        result = run_uwb_baseline(xy, t, volume_size=(4.0, 4.0), seed=0)
        assert result.rmse_m >= result.mean_error_m

    def test_rejects_mismatched_input(self):
        with pytest.raises(ConfigurationError):
            run_uwb_baseline(np.zeros((5, 2)), np.zeros(4), (4.0, 4.0))


class TestDeadReckoning:
    @pytest.fixture(scope="class")
    def sequence(self):
        grid = (
            MapBuilder(4.0, 4.0, 0.05)
            .fill_rect(0, 0, 4, 4, CellState.FREE)
            .add_border()
            .build()
        )
        sim = CrazyflieSimulator(
            grid,
            [(0.5, 0.5), (3.5, 0.5), (3.5, 3.5), (0.5, 3.5), (0.5, 0.8)],
            seed=21,
            config=SimConfig(max_duration_s=60),
        )
        return RecordedSequence.from_sim_steps("dr", sim.run())

    def test_error_grows(self, sequence):
        result = run_dead_reckoning(sequence)
        assert result.position_errors[0] == 0.0
        # Drift: the last quarter is on average worse than the first.
        quarter = len(result.position_errors) // 4
        assert (
            result.position_errors[-quarter:].mean()
            > result.position_errors[:quarter].mean()
        )

    def test_final_error_significant(self, sequence):
        result = run_dead_reckoning(sequence)
        assert result.final_error_m > 0.05
        assert result.max_error_m >= result.final_error_m * 0.99

    def test_rejects_short_sequence(self, sequence):
        truncated = RecordedSequence(
            name="short",
            timestamps=sequence.timestamps[:1],
            ground_truth=sequence.ground_truth[:1],
            odometry=sequence.odometry[:1],
            tracks=[],
        )
        with pytest.raises(ConfigurationError):
            run_dead_reckoning(truncated)
