"""Live migration is bitwise-invisible: a session that moves between
servers produces the trace of its uninterrupted solo run, bit for bit.

Every test runs two (or more) real ``OnlineServer`` instances on
loopback TCP ports inside one event loop and moves sessions between
them with the ``drain`` / ``migrate`` / ``accept`` verbs — through
``OnlineClient``, or through the fleet-level ``MigrationCoordinator``.
Bitwise equality is asserted the same way as the backend-equivalence
suites: exact array equality, no tolerances, because a particle filter
amplifies 1-ulp drift into divergent resampling.
"""

import asyncio

import numpy as np
import pytest

from repro.core.config import ConfigSpec
from repro.engine.backend import RunSpec
from repro.engine.reference import ReferenceBackend
from repro.maps.distance_field import DistanceField
from repro.scenarios import build_scenario
from repro.serve import (
    ErrorCode,
    MigrationCoordinator,
    Move,
    OnlineClient,
    OnlineError,
    OnlineServer,
    Peer,
)

#: The acceptance mix: two config fingerprints (default fp32 and a
#: sigma-ablated fp32), both precision families, two particle counts.
MIXED_FLEET = (
    "office:1:flight_s=8@fp32@64*2,"
    "corridor:1:flight_s=8@fp16qm@96*2~2,"
    "office:1:flight_s=8@fp32+sigma_obs=1.0@64*4~4"
)


def run(coro):
    return asyncio.run(coro)


def solo_reference_trace(scenario_id, variant, particles, seed):
    """The same (scenario, config spec, N, seed) executed alone."""
    scenario = build_scenario(scenario_id)
    config = ConfigSpec.parse(variant).config(particle_count=particles)
    field = DistanceField.build_for_mode(
        scenario.grid, config.r_max, config.precision
    )
    return ReferenceBackend().execute(
        scenario.grid, [RunSpec(scenario.sequence, seed)], config, field
    )[0]


def assert_traces_equal(served, solo):
    assert served.update_count == solo.update_count
    np.testing.assert_array_equal(served.timestamps, solo.timestamps)
    np.testing.assert_array_equal(served.position_errors, solo.position_errors)
    np.testing.assert_array_equal(served.yaw_errors, solo.yaw_errors)
    np.testing.assert_array_equal(served.estimate_trace, solo.estimate_trace)


def assert_closed_matches_solo(closed):
    solo = solo_reference_trace(
        closed.spec.scenario,
        closed.spec.variant,
        closed.spec.particle_count,
        closed.spec.seed,
    )
    assert_traces_equal(closed.trace, solo)


async def finish_and_close(client, session_id):
    """Serve a session's remaining frames and return it closed."""
    status = await client.query(session_id)
    remaining = status["frames_total"] - status["cursor"]
    if remaining:
        await client.submit(session_id, frames=remaining, wait=True)
    return await client.close_session(session_id)


def fast_backend_or_skip():
    from repro.common.errors import ConfigurationError
    from repro.engine.fast import FastBackend

    try:
        FastBackend()
    except ConfigurationError as exc:
        pytest.skip(f"no fused fast-backend provider available: {exc}")


class TestMigrationBitwise:
    def test_mixed_fleet_migrates_bitwise(self):
        """Every session of the mixed fleet (two fingerprints, fp32 +
        fp16qm, N=64 + N=96) moves to another server mid-flight and
        finishes there with its exact solo trace."""

        async def serve():
            async with OnlineServer() as a, OnlineServer() as b:
                a_client = await OnlineClient.connect(*a.address)
                b_client = await OnlineClient.connect(*b.address)
                async with a_client, b_client:
                    sids = await a_client.create_fleet(MIXED_FLEET)
                    assert len(sids) == 8
                    # Stagger replay positions so handoffs happen at
                    # different frame boundaries per session.
                    for offset, sid in enumerate(sids):
                        await a_client.submit(sid, frames=3 + offset, wait=True)
                    target = "%s:%d" % b.address
                    for sid in sids:
                        redirect = await a_client.migrate(sid, target=target)
                        assert redirect["target"] == target
                    closed = [await finish_and_close(b_client, s) for s in sids]
                    return closed, a.stats, b.stats

        closed, a_stats, b_stats = run(serve())
        for session in closed:
            assert_closed_matches_solo(session)
        assert a_stats["migrations_out"] == 8
        assert a_stats["drains"] == 8
        assert a_stats["migrations_failed"] == 0
        assert b_stats["migrations_in"] == 8

    @pytest.mark.parametrize(
        "source_backend,target_backend",
        [("batched", "reference"), ("reference", "batched")],
    )
    def test_migration_across_backends_is_bitwise(
        self, source_backend, target_backend
    ):
        """A handoff between servers running *different* backends is
        still invisible — backend equivalence composes with migration."""

        async def serve():
            async with (
                OnlineServer(backend=source_backend) as a,
                OnlineServer(backend=target_backend) as b,
            ):
                a_client = await OnlineClient.connect(*a.address)
                b_client = await OnlineClient.connect(*b.address)
                async with a_client, b_client:
                    sids = await a_client.create_fleet(
                        "office:1:flight_s=8@fp32@64~5,"
                        "office:1:flight_s=8@fp16qm@96~7"
                    )
                    await a_client.submit(sids, frames=11, wait=True)
                    for sid in sids:
                        await a_client.migrate(sid, target="%s:%d" % b.address)
                    return [await finish_and_close(b_client, s) for s in sids]

        for session in run(serve()):
            assert_closed_matches_solo(session)

    def test_migration_between_fast_and_reference_servers(self):
        fast_backend_or_skip()

        async def serve():
            async with (
                OnlineServer(backend="fast") as a,
                OnlineServer(backend="reference") as b,
            ):
                a_client = await OnlineClient.connect(*a.address)
                b_client = await OnlineClient.connect(*b.address)
                async with a_client, b_client:
                    (sid,) = await a_client.create_fleet(
                        "office:1:flight_s=8@fp32@64"
                    )
                    await a_client.submit(sid, frames=17, wait=True)
                    await a_client.migrate(sid, target="%s:%d" % b.address)
                    return await finish_and_close(b_client, sid)

        assert_closed_matches_solo(run(serve()))

    def test_still_queued_frames_survive_the_handoff(self):
        """Frames accepted by the source but not yet served ship with
        the snapshot and are served by the target — none lost, none
        served twice."""

        async def serve():
            async with OnlineServer() as a, OnlineServer() as b:
                a_client = await OnlineClient.connect(*a.address)
                b_client = await OnlineClient.connect(*b.address)
                async with a_client, b_client:
                    (sid,) = await a_client.create_fleet(
                        "office:1:flight_s=8@fp32@64"
                    )
                    await a_client.submit(sid, frames=10, wait=True)
                    # Queue frames directly on the manager: without the
                    # server's kick the step loop never wakes, so they
                    # are deterministically still queued at migrate time.
                    a.manager.submit(sid, 5)
                    redirect = await a_client.migrate(
                        sid, target="%s:%d" % b.address
                    )
                    assert redirect["queued"] == 5
                    assert redirect["cursor"] == 10
                    await b_client.flush([sid])
                    status = await b_client.query(sid)
                    # The shipped backlog was served on the target.
                    assert status["cursor"] == 15
                    return await finish_and_close(b_client, sid)

        assert_closed_matches_solo(run(serve()))

    def test_ping_pong_migration_is_bitwise(self):
        """A session bounced A -> B -> A at different frame boundaries
        still closes with its solo trace on the final server."""

        async def serve():
            async with OnlineServer() as a, OnlineServer() as b:
                a_client = await OnlineClient.connect(*a.address)
                b_client = await OnlineClient.connect(*b.address)
                async with a_client, b_client:
                    (sid,) = await a_client.create_fleet(
                        "corridor:1:flight_s=8@fp16qm@64"
                    )
                    await a_client.submit(sid, frames=4, wait=True)
                    await a_client.migrate(sid, target="%s:%d" % b.address)
                    await b_client.submit(sid, frames=9, wait=True)
                    await b_client.migrate(sid, target="%s:%d" % a.address)
                    return await finish_and_close(a_client, sid)

        assert_closed_matches_solo(run(serve()))

    def test_peer_index_migration(self):
        """``migrate`` with ``peer=i`` resolves against the server's
        configured peer list (the --peer wiring)."""

        async def serve():
            async with OnlineServer() as b:
                peers = ["%s:%d" % b.address]
                async with OnlineServer(peers=peers) as a:
                    a_client = await OnlineClient.connect(*a.address)
                    b_client = await OnlineClient.connect(*b.address)
                    async with a_client, b_client:
                        (sid,) = await a_client.create_fleet(
                            "office:1:flight_s=8@fp32@64"
                        )
                        await a_client.submit(sid, frames=6, wait=True)
                        redirect = await a_client.migrate(sid, peer=0)
                        assert redirect["target"] == peers[0]
                        return await finish_and_close(b_client, sid)

        assert_closed_matches_solo(run(serve()))


class TestDrainSemantics:
    def test_draining_session_rejects_submissions_with_code(self):
        async def serve():
            async with OnlineServer() as server:
                async with await OnlineClient.connect(*server.address) as c:
                    sids = await c.create_fleet("office:1:flight_s=8@fp32@64*2")
                    await c.submit(sids, frames=5, wait=True)
                    await c.drain(sids[0])
                    with pytest.raises(OnlineError) as excinfo:
                        await c.submit(sids[0], frames=1)
                    # The other session is untouched by the drain.
                    await c.submit(sids[1], frames=1, wait=True)
                    resumed = await c.resume(sids[0])
                    closed = await finish_and_close(c, sids[0])
                    return excinfo.value, resumed, closed

        error, resumed, closed = run(serve())
        assert error.code == ErrorCode.DRAINING
        assert resumed["draining"] is False
        assert_closed_matches_solo(closed)

    def test_drain_is_idempotent_and_freezes_the_queue(self):
        async def serve():
            async with OnlineServer() as server:
                async with await OnlineClient.connect(*server.address) as c:
                    (sid,) = await c.create_fleet("office:1:flight_s=8@fp32@64")
                    await c.submit(sid, frames=8, wait=True)
                    server.manager.submit(sid, 3)
                    first = await c.drain(sid)
                    second = await c.drain(sid)
                    status = await c.query(sid)
                    return first, second, status

        first, second, status = run(serve())
        assert first["queued"] == second["queued"] == 3
        assert first["cursor"] == second["cursor"] == 8
        # Frozen: the queued frames were not served while draining.
        assert status["cursor"] == 8

    def test_migrating_unknown_session_is_an_evaluation_error(self):
        async def serve():
            async with OnlineServer() as a, OnlineServer() as b:
                async with await OnlineClient.connect(*a.address) as c:
                    with pytest.raises(OnlineError) as excinfo:
                        await c.migrate("ghost", target="%s:%d" % b.address)
                    return excinfo.value

        assert run(serve()).code == ErrorCode.EVALUATION


class TestCoordinator:
    def test_plan_rebalance_is_deterministic_and_balanced(self):
        a, b, c = Peer("h", 1), Peer("h", 2), Peer("h", 3)
        occupancy = {
            a: {"f1/64": ["s0", "s1", "s2", "s3"], "f2/96": ["s4", "s5"]},
            b: {"f2/96": ["s6"]},
            c: {},
        }
        moves = MigrationCoordinator.plan_rebalance(occupancy)
        assert moves == MigrationCoordinator.plan_rebalance(occupancy)
        loads = {a: 6, b: 1, c: 0}
        for move in moves:
            loads[move.source] -= 1
            loads[move.target] += 1
        assert sorted(loads.values()) == [2, 2, 3]
        assert len(moves) == 3
        # Cohort affinity: when b (which already hosts f2/96) receives,
        # it is given one of a's f2 sessions, growing the existing
        # stack instead of splitting f1 across three peers.
        b_received = {m.session_id for m in moves if m.target == b}
        assert b_received and b_received <= {"s4", "s5"}

    def test_plan_rebalance_balanced_fleet_plans_nothing(self):
        a, b = Peer("h", 1), Peer("h", 2)
        occupancy = {a: {"f/64": ["s0"]}, b: {"f/64": ["s1"]}}
        assert MigrationCoordinator.plan_rebalance(occupancy) == []

    def test_plan_evict_empties_the_source(self):
        a, b, c = Peer("h", 1), Peer("h", 2), Peer("h", 3)
        occupancy = {
            a: {"f1/64": ["s0", "s1"], "f2/96": ["s2"]},
            b: {"f1/64": ["s3"]},
            c: {"f2/96": ["s4", "s5", "s6"]},
        }
        moves = MigrationCoordinator.plan_evict(occupancy, a)
        assert {m.session_id for m in moves} == {"s0", "s1", "s2"}
        assert all(m.source == a for m in moves)
        by_session = {m.session_id: m.target for m in moves}
        # Affinity first: f1 sessions land on b (hosts f1), the f2
        # session goes to c (hosts f2) despite c's higher load.
        assert by_session["s0"] == b
        assert by_session["s1"] == b
        assert by_session["s2"] == c
        kept = MigrationCoordinator.plan_evict(occupancy, a, max_sessions=2)
        assert len(kept) == 1

    def test_coordinator_rebalance_round_trip_is_bitwise(self):
        """A live rebalance over three servers: plans deterministically,
        executes with rollback-safe handoffs, and every session still
        closes with its solo trace wherever it landed."""

        async def serve():
            async with (
                OnlineServer() as a,
                OnlineServer() as b,
                OnlineServer() as c,
            ):
                addresses = ["%s:%d" % s.address for s in (a, b, c)]
                async with await OnlineClient.connect(*a.address) as seed:
                    sids = await seed.create_fleet(MIXED_FLEET)
                    await seed.submit(sids, frames=5, wait=True)
                coordinator = MigrationCoordinator(
                    addresses, handoff_timeout_s=10.0
                )
                results = await coordinator.rebalance()
                occupancy = coordinator.occupancy_of(
                    await coordinator.fleet_stats()
                )
                loads = {
                    peer.id: sum(len(s) for s in cohorts.values())
                    for peer, cohorts in occupancy.items()
                }
                closed = []
                for server in (a, b, c):
                    async with await OnlineClient.connect(
                        *server.address
                    ) as client:
                        for sid in server.manager.session_ids():
                            closed.append(await finish_and_close(client, sid))
                return results, loads, closed

        results, loads, closed = run(serve())
        assert all(r.ok for r in results)
        assert all(r.blackout_s >= 0.0 for r in results)
        assert sorted(loads.values()) == [2, 3, 3]
        assert len(closed) == 8
        for session in closed:
            assert_closed_matches_solo(session)

    def test_execute_reports_failed_moves_without_raising(self):
        """A move whose source does not exist is recorded ok=False and
        the rest of the batch still executes."""

        async def serve():
            async with OnlineServer() as a, OnlineServer() as b:
                a_peer = Peer(*a.address)
                b_peer = Peer(*b.address)
                async with await OnlineClient.connect(*a.address) as c:
                    (sid,) = await c.create_fleet("office:1:flight_s=8@fp32@64")
                    await c.submit(sid, frames=3, wait=True)
                coordinator = MigrationCoordinator(
                    [a_peer, b_peer], handoff_timeout_s=5.0
                )
                results = await coordinator.execute(
                    [
                        Move("ghost", a_peer, b_peer),
                        Move(sid, a_peer, b_peer),
                    ]
                )
                return results, b.manager.session_ids()

        results, on_target = run(serve())
        assert [r.ok for r in results] == [False, True]
        assert results[0].error is not None
        assert len(on_target) == 1
