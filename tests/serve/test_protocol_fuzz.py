"""Property-based fuzzing of the wire protocol edge.

Whatever bytes arrive on the socket — random junk, valid frames with
mutated length prefixes, well-framed non-JSON payloads, oversized
header probes, frames truncated at any byte — the server must either
answer with a structured error frame or hang up cleanly.  It must
never crash the connection task with an unhandled exception, never
emit a half-frame, and must keep serving *other* connections as if
nothing happened.

Every example drives a real ``OnlineServer`` on a loopback port: the
hostile bytes go down one raw connection, every byte the server sends
back is checked to parse as complete well-formed frames, and a fresh
``OnlineClient`` then exercises the full create/submit/close path to
prove the server survived.

The hypothesis profile is selectable via ``REPRO_HYPOTHESIS_PROFILE``
(default ``repro-ci``: derandomized with a pinned example budget, so CI
runs are reproducible and bounded; ``repro-dev`` explores more).
"""

import asyncio
import json
import os

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.serve import OnlineClient, OnlineServer  # noqa: E402
from repro.serve.protocol import MAX_FRAME_BYTES, encode_frame  # noqa: E402

settings.register_profile(
    "repro-ci",
    settings(
        max_examples=25,
        derandomize=True,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    ),
)
settings.register_profile(
    "repro-dev",
    settings(
        max_examples=200,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    ),
)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "repro-ci"))

#: A legal request the mutators start from.
VALID_FRAME = encode_frame(
    {"op": "create", "session_id": "x", "scenario": "office:1:flight_s=8"}
)


async def probe(hostile_bytes: bytes) -> None:
    """One hostile connection against a live server.

    Asserts the three survival properties: any reply parses as complete
    structured frames, the connection ends (no hang), and a fresh
    client still gets full service.
    """
    async with OnlineServer() as server:
        host, port = server.address
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(hostile_bytes)
            try:
                await writer.drain()
                writer.write_eof()
            except (ConnectionResetError, BrokenPipeError):
                pass  # server already hung up — that is a clean outcome
            # Everything the server says back until it hangs up.
            replied = await asyncio.wait_for(reader.read(), timeout=10.0)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        assert_complete_frames(replied)

        # The server is unharmed: full service on a fresh connection.
        async with await OnlineClient.connect(host, port) as client:
            (sid,) = await client.create_fleet("office:1:flight_s=8@fp32@64")
            await client.submit(sid, frames=1, wait=True)
            stats = await client.stats()
            assert stats["sessions"] == 1
            await client.close_session(sid)


def assert_complete_frames(data: bytes) -> None:
    """Every byte the server wrote belongs to a well-formed frame —
    a structured ok/error object — with nothing half-written."""
    rest = data
    while rest:
        header, sep, body = rest.partition(b"\n")
        assert sep, f"dangling partial header {header[:64]!r}"
        length = int(header)  # the server never writes a junk header
        assert 2 <= length <= MAX_FRAME_BYTES
        payload, rest = body[:length], body[length:]
        assert len(payload) == length, "half-written frame"
        message = json.loads(payload)
        assert isinstance(message, dict) and "ok" in message
        if not message["ok"]:
            assert {"code", "message"} <= set(message["error"])


def run_probe(hostile_bytes: bytes) -> None:
    asyncio.run(probe(hostile_bytes))


class TestProtocolFuzz:
    @given(st.binary(min_size=0, max_size=4096))
    def test_random_junk(self, junk):
        run_probe(junk)

    @given(
        st.integers(min_value=-(2**40), max_value=2**40),
        st.binary(max_size=64),
    )
    def test_mutated_length_prefix(self, length, tail):
        """A declared length that disagrees with the real payload —
        negative, zero, short, long, or astronomically large."""
        _, _, payload = VALID_FRAME.partition(b"\n")
        run_probe(str(length).encode() + b"\n" + payload + tail)

    @given(st.binary(min_size=2, max_size=512))
    def test_non_json_payload_with_valid_header(self, payload):
        run_probe(str(len(payload)).encode() + b"\n" + payload)

    @given(
        st.text(
            alphabet="0123456789abcdefXYZ \t+-.", min_size=1, max_size=64
        )
    )
    def test_garbage_header_line(self, header):
        run_probe(header.encode() + b"\n")

    @given(st.integers(min_value=1, max_value=120_000))
    def test_oversized_header_probe(self, digits):
        """A header of N digits and no newline — for N past the stream's
        64 KiB line limit this used to kill the connection task with a
        raw ``ValueError`` instead of a structured hangup."""
        run_probe(b"9" * digits)

    @given(st.integers(min_value=0, max_value=len(VALID_FRAME) - 1))
    def test_truncated_valid_frame(self, cut):
        run_probe(VALID_FRAME[:cut])

    @given(st.data())
    def test_valid_traffic_then_junk(self, data):
        """A well-behaved request followed by garbage on the same
        connection: the good request is answered, then a clean hangup."""
        junk = data.draw(st.binary(min_size=1, max_size=256))

        async def scenario():
            async with OnlineServer() as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                try:
                    writer.write(encode_frame({"op": "stats"}))
                    await writer.drain()
                    header = await asyncio.wait_for(
                        reader.readline(), timeout=10.0
                    )
                    first = await asyncio.wait_for(
                        reader.readexactly(int(header)), timeout=10.0
                    )
                    assert json.loads(first)["ok"] is True
                    writer.write(b"\xff\xfe" + junk)  # never a valid header
                    await writer.drain()
                    writer.write_eof()
                    replied = await asyncio.wait_for(
                        reader.read(), timeout=10.0
                    )
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionResetError, BrokenPipeError):
                        pass
                assert_complete_frames(replied)
                async with await OnlineClient.connect(host, port) as client:
                    assert (await client.stats())["protocol_errors"] >= 1

        asyncio.run(scenario())
