"""The asyncio session gateway: protocol, ordering, admission, and the
bitwise contract extended across the socket.

Every test runs a real ``OnlineServer`` on a loopback TCP port and
drives it through ``OnlineClient`` (or a raw socket, for the framing and
disconnect cases) inside ``asyncio.run`` — no event-loop test plugins
required.
"""

import asyncio

import numpy as np
import pytest

from repro.core.config import MclConfig
from repro.engine.backend import RunSpec
from repro.engine.reference import ReferenceBackend
from repro.maps.distance_field import DistanceField
from repro.scenarios import build_scenario
from repro.serve import (
    AdmissionPolicy,
    ErrorCode,
    OnlineClient,
    OnlineError,
    OnlineServer,
    ProtocolError,
)
from repro.serve.online import drive_fleet
from repro.serve.protocol import encode_frame, read_frame

SCENARIO = "office:1:flight_s=8"
FLEET = (
    "office:1:flight_s=8@fp32@64*2,"
    "corridor:1:flight_s=8@fp32@64~2,"
    "office:1:flight_s=8@fp16qm@96~3"
)


def run(coro):
    return asyncio.run(coro)


def solo_reference_trace(scenario_id: str, variant: str, particles: int, seed: int):
    """The same (scenario, variant, N, seed) executed alone, offline."""
    scenario = build_scenario(scenario_id)
    config = MclConfig(particle_count=particles).with_variant(variant)
    field = DistanceField.build_for_mode(
        scenario.grid, config.r_max, config.precision
    )
    return ReferenceBackend().execute(
        scenario.grid, [RunSpec(scenario.sequence, seed)], config, field
    )[0]


def assert_traces_equal(served, solo):
    assert served.update_count == solo.update_count
    np.testing.assert_array_equal(served.timestamps, solo.timestamps)
    np.testing.assert_array_equal(served.position_errors, solo.position_errors)
    np.testing.assert_array_equal(served.yaw_errors, solo.yaw_errors)
    np.testing.assert_array_equal(served.estimate_trace, solo.estimate_trace)


class TestSocketEquivalence:
    def test_mixed_fleet_served_through_socket_is_bitwise_solo(self):
        async def serve():
            async with OnlineServer() as server:
                host, port = server.address
                return await drive_fleet(
                    host, port, FLEET, connections=3, frames_per_round=7
                )

        report = run(serve())
        assert len(report.results) == 4
        for closed in report.results.values():
            solo = solo_reference_trace(
                closed.spec.scenario,
                closed.spec.variant,
                closed.spec.particle_count,
                closed.spec.seed,
            )
            assert_traces_equal(closed.trace, solo)
        # The driver produced real step barriers and the server ticked.
        assert report.step_latency.count > 0
        assert report.stats["ticks"] > 0
        assert report.stats["frames_served"] == sum(
            len(c.trace.timestamps) for c in report.results.values()
        )

    def test_snapshot_restore_through_socket_continues_bitwise(self):
        async def serve():
            async with OnlineServer() as server:
                host, port = server.address
                async with await OnlineClient.connect(host, port) as client:
                    sid = await client.create_fleet(f"{SCENARIO}@fp32@64")
                    await client.submit(sid, frames=40, wait=True)
                    blob = await client.snapshot(sid[0])
                    interrupted = await client.close_session(sid[0])
                    restored_id = await client.restore(blob, "resumed")
                    status = await client.query(restored_id)
                    assert status["cursor"] == 40
                    remaining = status["frames_total"] - status["cursor"]
                    await client.submit(
                        restored_id, frames=remaining, wait=True
                    )
                    resumed = await client.close_session(restored_id)
                    return interrupted, resumed

        interrupted, resumed = run(serve())
        solo = solo_reference_trace(interrupted.spec.scenario, "fp32", 64, 0)
        # The pre-snapshot prefix and the resumed full trace both match
        # the uninterrupted solo run exactly.
        np.testing.assert_array_equal(
            interrupted.trace.estimate_trace, solo.estimate_trace[:40]
        )
        assert_traces_equal(resumed.trace, solo)


class TestAdmissionControl:
    def test_session_cap_rejects_create_with_structured_code(self):
        async def serve():
            policy = AdmissionPolicy(max_sessions=2, max_pending_frames=1000)
            async with OnlineServer(policy=policy) as server:
                host, port = server.address
                async with await OnlineClient.connect(host, port) as client:
                    await client.create_fleet(f"{SCENARIO}@fp32@64*2")
                    with pytest.raises(OnlineError) as excinfo:
                        await client.request(
                            "create", session_id="extra", scenario=SCENARIO
                        )
                    stats = await client.stats()
                    return excinfo.value, stats

        error, stats = run(serve())
        assert error.code == ErrorCode.ADMISSION_REJECTED
        assert stats["sessions"] == 2
        assert stats["rejected_admission"] == 1

    def test_fleet_admission_is_all_or_nothing(self):
        async def serve():
            policy = AdmissionPolicy(max_sessions=3, max_pending_frames=1000)
            async with OnlineServer(policy=policy) as server:
                host, port = server.address
                async with await OnlineClient.connect(host, port) as client:
                    await client.create_fleet(f"{SCENARIO}@fp32@64")
                    with pytest.raises(OnlineError) as excinfo:
                        await client.create_fleet(f"{SCENARIO}@fp32@64*3~5")
                    stats = await client.stats()
                    return excinfo.value, stats

        error, stats = run(serve())
        assert error.code == ErrorCode.ADMISSION_REJECTED
        assert stats["sessions"] == 1  # none of the three were admitted

    def test_restore_is_admission_controlled(self):
        async def serve():
            policy = AdmissionPolicy(max_sessions=1, max_pending_frames=1000)
            async with OnlineServer(policy=policy) as server:
                host, port = server.address
                async with await OnlineClient.connect(host, port) as client:
                    (sid,) = await client.create_fleet(f"{SCENARIO}@fp32@64")
                    blob = await client.snapshot(sid)
                    with pytest.raises(OnlineError) as excinfo:
                        await client.restore(blob, "clone")
                    return excinfo.value

        assert run(serve()).code == ErrorCode.ADMISSION_REJECTED

    def test_ingest_bound_rejects_then_recovers_after_drain(self):
        async def serve():
            policy = AdmissionPolicy(max_sessions=8, max_pending_frames=16)
            async with OnlineServer(policy=policy) as server:
                host, port = server.address
                async with await OnlineClient.connect(host, port) as client:
                    ids = await client.create_fleet(f"{SCENARIO}@fp32@64*2")
                    with pytest.raises(OnlineError) as excinfo:
                        await client.submit(ids, frames=10)  # 20 > 16
                    rejected = excinfo.value
                    # Nothing was queued by the rejected submission.
                    pending_after_reject = (
                        await client.stats()
                    )["pending_frames"]
                    # Within the bound it is accepted; after draining,
                    # the full budget is available again.
                    await client.submit(ids, frames=8, wait=True)
                    await client.submit(ids, frames=8, wait=True)
                    cursors = [
                        (await client.query(sid))["cursor"] for sid in ids
                    ]
                    stats = await client.stats()
                    return rejected, pending_after_reject, cursors, stats

        rejected, pending_after_reject, cursors, stats = run(serve())
        assert rejected.code == ErrorCode.OVERLOADED
        assert pending_after_reject == 0
        assert cursors == [16, 16]
        assert stats["rejected_overload"] == 1


class TestFailurePaths:
    def test_unknown_scenario_in_fleet_spec_is_structured(self):
        async def serve():
            async with OnlineServer() as server:
                host, port = server.address
                async with await OnlineClient.connect(host, port) as client:
                    with pytest.raises(OnlineError) as excinfo:
                        await client.create_fleet(
                            f"{SCENARIO}@fp32@64*2,bogus:1@fp32@64"
                        )
                    stats = await client.stats()
                    return excinfo.value, stats

        error, stats = run(serve())
        assert error.code == ErrorCode.CONFIGURATION
        assert "unknown scenario family" in str(error)
        assert stats["sessions"] == 0  # atomic: nothing leaked

    def test_restore_against_drifted_scenario_is_structured(self):
        async def serve():
            async with OnlineServer() as server:
                host, port = server.address
                async with await OnlineClient.connect(host, port) as client:
                    (sid,) = await client.create_fleet(
                        f"{SCENARIO}@fp32@64"
                    )
                    await client.submit(sid, frames=100, wait=True)
                    blob = await client.snapshot(sid)
                    # Same snapshot, restored onto a server whose
                    # manager resolves the scenario to a shorter flight
                    # (the definition "drifted" between hosts).
                    import io
                    import json as jsonlib

                    with np.load(io.BytesIO(blob)) as archive:
                        payload = {
                            key: np.array(archive[key])
                            for key in archive.files
                        }
                    meta = jsonlib.loads(str(payload["serve_meta"]))
                    meta["scenario"] = "office:1:flight_s=5"
                    meta["session_id"] = "drifted"
                    payload["serve_meta"] = np.array(
                        jsonlib.dumps(meta, sort_keys=True)
                    )
                    buffer = io.BytesIO()
                    np.savez_compressed(
                        buffer, **{k: payload[k] for k in sorted(payload)}
                    )
                    with pytest.raises(OnlineError) as excinfo:
                        await client.restore(buffer.getvalue())
                    stats = await client.stats()
                    return excinfo.value, stats

        error, stats = run(serve())
        assert error.code == ErrorCode.EVALUATION
        assert "drifted" in str(error)
        assert stats["sessions"] == 1  # only the original session
        assert stats["cohorts"] == 1  # no leaked stack from the failure

    def test_unknown_session_in_submit_batch_queues_nothing(self):
        async def serve():
            async with OnlineServer() as server:
                host, port = server.address
                async with await OnlineClient.connect(host, port) as client:
                    ids = await client.create_fleet(f"{SCENARIO}@fp32@64")
                    with pytest.raises(OnlineError) as excinfo:
                        await client.submit(ids + ["ghost"], frames=5)
                    stats = await client.stats()
                    return excinfo.value, stats

        error, stats = run(serve())
        assert error.code == ErrorCode.EVALUATION
        assert stats["pending_frames"] == 0

    def test_malformed_frame_answers_bad_request_and_hangs_up(self):
        async def serve():
            async with OnlineServer() as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"not-a-length\n")
                await writer.drain()
                response = await read_frame(reader)
                trailing = await reader.read()  # server closed after it
                writer.close()
                await writer.wait_closed()
                # The server is still healthy for well-formed clients.
                async with await OnlineClient.connect(host, port) as client:
                    stats = await client.stats()
                return response, trailing, stats

        response, trailing, stats = run(serve())
        assert response["ok"] is False
        assert response["error"]["code"] == ErrorCode.BAD_REQUEST
        assert trailing == b""
        assert stats["protocol_errors"] == 1

    def test_client_disconnect_mid_flush_spares_survivors(self):
        async def serve():
            async with OnlineServer() as server:
                host, port = server.address
                control = await OnlineClient.connect(host, port)
                ids = await control.create_fleet(
                    f"{SCENARIO}@fp32@64*2,corridor:1:flight_s=8@fp32@64~2"
                )
                victim_ids, survivor = ids[:2], ids[2]

                # A second client floods frames for its sessions and
                # vanishes without reading the response or waiting.
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    encode_frame(
                        {"op": "submit", "sessions": victim_ids, "frames": 60}
                    )
                )
                await writer.drain()
                writer.close()  # gone mid-flush

                # The survivor (and the orphaned sessions) keep serving.
                total = (await control.query(survivor))["frames_total"]
                await control.submit(survivor, frames=total, wait=True)
                await control.flush()  # drain the orphaned queues too
                orphan_cursors = [
                    (await control.query(sid))["cursor"] for sid in victim_ids
                ]
                closed = {
                    sid: await control.close_session(sid) for sid in ids
                }
                await control.close()
                return orphan_cursors, closed

        orphan_cursors, closed = run(serve())
        # The disconnected client's frames were accepted and served.
        assert orphan_cursors == [60, 60]
        # Every session — survivor and orphans — is bitwise-solo.
        for closed_session in closed.values():
            solo = solo_reference_trace(
                closed_session.spec.scenario,
                closed_session.spec.variant,
                closed_session.spec.particle_count,
                closed_session.spec.seed,
            )
            cursor = len(closed_session.trace.timestamps)
            np.testing.assert_array_equal(
                closed_session.trace.estimate_trace,
                solo.estimate_trace[:cursor],
            )


class TestProtocolFraming:
    def test_frame_roundtrip(self):
        async def roundtrip():
            message = {"op": "query", "session": "s0", "value": 1.5}
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(message))
            reader.feed_eof()
            return await read_frame(reader)

        message = run(roundtrip())
        assert message == {"op": "query", "session": "s0", "value": 1.5}

    def test_eof_before_header_is_clean_none(self):
        async def eof():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            return await read_frame(reader)

        assert run(eof()) is None

    def test_truncated_payload_raises(self):
        async def truncated():
            reader = asyncio.StreamReader()
            reader.feed_data(b"100\n{\"op\":")
            reader.feed_eof()
            return await read_frame(reader)

        with pytest.raises(ProtocolError, match="mid-frame"):
            run(truncated())

    def test_oversized_length_rejected_before_allocation(self):
        async def oversized():
            reader = asyncio.StreamReader()
            reader.feed_data(b"999999999999\nx")
            reader.feed_eof()
            return await read_frame(reader)

        with pytest.raises(ProtocolError, match="bounds"):
            run(oversized())

    def test_unknown_op_is_bad_request(self):
        async def serve():
            async with OnlineServer() as server:
                host, port = server.address
                async with await OnlineClient.connect(host, port) as client:
                    with pytest.raises(OnlineError) as excinfo:
                        await client.request("warp")
                    return excinfo.value

        assert run(serve()).code == ErrorCode.BAD_REQUEST

    def test_protocol_version_mismatch_is_bad_request(self):
        async def serve():
            async with OnlineServer() as server:
                host, port = server.address
                async with await OnlineClient.connect(host, port) as client:
                    with pytest.raises(OnlineError) as excinfo:
                        await client.request("stats", v=99)
                    return excinfo.value

        assert run(serve()).code == ErrorCode.BAD_REQUEST


class TestRetryAfterDrain:
    """``submit_with_retry``: the client-side answer to ``overloaded``."""

    def test_retry_succeeds_once_the_backlog_drains(self):
        """A frozen backlog deterministically occupies the whole ingest
        budget; submit_with_retry keeps backing off until the budget
        frees, then lands the submission."""

        async def serve():
            policy = AdmissionPolicy(max_sessions=8, max_pending_frames=8)
            async with OnlineServer(policy=policy) as server:
                host, port = server.address
                async with await OnlineClient.connect(host, port) as client:
                    ids = await client.create_fleet(f"{SCENARIO}@fp32@64*2")
                    # Fill the budget out-of-band: 8 frames queued on a
                    # drained session are pending but never served, so
                    # every submission overflows until the drain lifts.
                    server.manager.submit(ids[0], 8)
                    server.manager.drain(ids[0])

                    async def lift_the_drain():
                        await asyncio.sleep(0.2)
                        server.manager.resume(ids[0])
                        server._kick()

                    lifter = asyncio.ensure_future(lift_the_drain())
                    response = await client.submit_with_retry(
                        ids[1], frames=4, wait=True, base_delay_s=0.05
                    )
                    await lifter
                    stats = await client.stats()
                    cursor = (await client.query(ids[1]))["cursor"]
                    return response, stats, cursor

        response, stats, cursor = run(serve())
        assert sum(response["queued"].values()) == 4
        assert cursor == 4
        # At least one submission was turned away before the one that
        # landed — the retry loop did real work.
        assert stats["rejected_overload"] >= 1

    def test_retry_budget_exhausts_with_the_structured_code(self):
        """A backlog that never drains: the deterministic backoff
        schedule runs out and the last ``overloaded`` surfaces."""

        async def serve():
            policy = AdmissionPolicy(max_sessions=8, max_pending_frames=4)
            async with OnlineServer(policy=policy) as server:
                host, port = server.address
                async with await OnlineClient.connect(host, port) as client:
                    ids = await client.create_fleet(f"{SCENARIO}@fp32@64*2")
                    server.manager.submit(ids[0], 4)
                    server.manager.drain(ids[0])
                    with pytest.raises(OnlineError) as excinfo:
                        await client.submit_with_retry(
                            ids[1],
                            frames=2,
                            attempts=3,
                            base_delay_s=0.01,
                        )
                    stats = await client.stats()
                    return excinfo.value, stats

        error, stats = run(serve())
        assert error.code == ErrorCode.OVERLOADED
        assert stats["rejected_overload"] == 3  # one per attempt

    def test_non_retryable_codes_pass_through_immediately(self):
        async def serve():
            async with OnlineServer() as server:
                host, port = server.address
                async with await OnlineClient.connect(host, port) as client:
                    with pytest.raises(OnlineError) as excinfo:
                        await client.submit_with_retry("ghost", frames=1)
                    stats = await client.stats()
                    return excinfo.value, stats

        error, stats = run(serve())
        assert error.code == ErrorCode.EVALUATION
        assert stats["requests"] == 2  # the one submit + the stats call

    def test_fleet_drive_survives_forced_overflow_midrun(self):
        """``drive_fleet`` under a tight ingest bound: a mid-run frozen
        backlog forces ``overloaded`` onto the drivers, their retry
        loops absorb it, and every trace still closes bit-exact."""

        async def serve():
            policy = AdmissionPolicy(max_sessions=16, max_pending_frames=8)
            async with OnlineServer(policy=policy) as server:
                host, port = server.address
                # A parked session whose frozen queue eats 6/8 of the
                # ingest budget: driver submissions of 2x2 frames now
                # collide with it (2 + 6 <= 8 only when the drivers are
                # perfectly alone, and they race each other too).
                async with await OnlineClient.connect(host, port) as seed:
                    (parked,) = await seed.create_fleet(
                        "corridor:1:flight_s=8@fp32@64~7"
                    )
                server.manager.submit(parked, 6)
                server.manager.drain(parked)

                async def lift_the_drain():
                    await asyncio.sleep(0.5)
                    server.manager.resume(parked)
                    server._kick()

                lifter = asyncio.ensure_future(lift_the_drain())
                report = await drive_fleet(
                    host,
                    port,
                    f"{SCENARIO}@fp32@64*2,{SCENARIO}@fp16qm@96~2",
                    connections=2,
                    frames_per_round=2,
                )
                await lifter
                return report, server.stats

        report, stats = run(serve())
        assert stats["rejected_overload"] >= 1  # the overflow happened
        assert len(report.results) == 3
        for closed in report.results.values():
            solo = solo_reference_trace(
                closed.spec.scenario,
                closed.spec.variant,
                closed.spec.particle_count,
                closed.spec.seed,
            )
            assert_traces_equal(closed.trace, solo)

    def test_attempts_must_be_positive(self):
        async def serve():
            async with OnlineServer() as server:
                host, port = server.address
                async with await OnlineClient.connect(host, port) as client:
                    from repro.common.errors import ConfigurationError

                    with pytest.raises(ConfigurationError):
                        await client.submit_with_retry("x", attempts=0)

        run(serve())


class TestStatsOccupancy:
    def test_stats_report_per_cohort_occupancy(self):
        """``stats`` exposes ``(fingerprint, N) -> rows used/free`` so
        operators (and the migration planner) see the packing."""

        async def serve():
            async with OnlineServer() as server:
                host, port = server.address
                async with await OnlineClient.connect(host, port) as client:
                    sids = await client.create_fleet(
                        f"{SCENARIO}@fp32@64*3,{SCENARIO}@fp16qm@96~3"
                    )
                    before = (await client.stats())["cohort_occupancy"]
                    # Closing one fp32 session frees its row; the
                    # cohort keeps the slot for the next admission.
                    await client.submit(sids, frames=1000, wait=True)
                    await client.close_session(sids[0])
                    after = (await client.stats())["cohort_occupancy"]
                    return sids, before, after

        sids, before, after = run(serve())
        assert len(before) == 2  # two (fingerprint, N) cohorts
        for key, entry in before.items():
            fingerprint, _, particles = key.partition("/")
            assert len(fingerprint) == 12 and particles in {"64", "96"}
            assert entry["rows_active"] == len(entry["sessions"])
            assert entry["rows_free"] == 0
        by_particles = {k.split("/")[1]: v for k, v in before.items()}
        assert by_particles["64"]["sessions"] == sids[:3]
        assert by_particles["96"]["sessions"] == sids[3:]
        after_64 = {k.split("/")[1]: v for k, v in after.items()}["64"]
        assert after_64["rows_active"] == 2
        assert after_64["rows_free"] == 1
        assert after_64["rows_allocated"] == 3
        assert sids[0] not in after_64["sessions"]

    def test_retired_cohorts_leave_the_stats(self):
        async def serve():
            async with OnlineServer() as server:
                host, port = server.address
                async with await OnlineClient.connect(host, port) as client:
                    sids = await client.create_fleet(f"{SCENARIO}@fp32@64*2")
                    await client.submit(sids, frames=1000, wait=True)
                    for sid in sids:
                        await client.close_session(sid)
                    return (await client.stats())["cohort_occupancy"]

        assert run(serve()) == {}
