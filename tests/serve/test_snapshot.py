"""Snapshot/restore: byte-stable serialization, bit-exact continuation.

Three properties, each across the fp32 and quantized (fp16qm) variants:

* **byte round-trip** — snapshot -> restore -> snapshot reproduces the
  exact bytes (snapshots are content-addressable);
* **exact continuation** — restore-then-step equals the uninterrupted
  run bit for bit (trace, estimates, update counts), including across
  managers and backends (migration);
* the same contract holds for the scalar filter's
  ``export_state``/``restore_state`` (the ``core``-level primitive the
  serve snapshots build on).
"""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.geometry import Pose2D
from repro.core.config import MclConfig
from repro.core.mcl import MonteCarloLocalization
from repro.core.snapshot import FilterStateSnapshot, pack_rng_state, unpack_rng_state
from repro.common.rng import make_rng
from repro.scenarios import build_scenario
from repro.serve import SessionManager, SessionSpec, snapshot_from_bytes

SCENARIO = "office:1:flight_s=8"


def make_spec(variant, session_id="snap", seed=4):
    return SessionSpec(
        session_id=session_id,
        scenario=SCENARIO,
        variant=variant,
        particle_count=64,
        seed=seed,
    )


class TestRngState:
    def test_pack_unpack_continues_stream(self):
        rng = make_rng(7, "mcl")
        rng.normal(size=33)  # advance, leaving a cached uint32 likely
        packed = pack_rng_state(rng)
        clone = unpack_rng_state(packed)
        np.testing.assert_array_equal(rng.normal(size=16), clone.normal(size=16))
        np.testing.assert_array_equal(
            rng.integers(0, 1 << 62, size=8), clone.integers(0, 1 << 62, size=8)
        )

    def test_pack_rejects_other_bit_generators(self):
        rng = np.random.Generator(np.random.MT19937(0))
        with pytest.raises(ConfigurationError):
            pack_rng_state(rng)


@pytest.mark.parametrize("variant", ["fp32", "fp16qm", "fp32+sigma=1.0"])
class TestServeSnapshots:
    def test_snapshot_round_trip_is_byte_stable(self, variant):
        manager = SessionManager()
        manager.create(make_spec(variant))
        manager.submit("snap", 40)
        manager.flush()
        blob = manager.snapshot("snap")
        assert manager.snapshot("snap") == blob  # capture is pure

        other = SessionManager()
        other.restore(blob)
        assert other.snapshot("snap") == blob  # restore -> snapshot exact

    def test_restore_then_step_equals_uninterrupted(self, variant):
        uninterrupted = SessionManager()
        uninterrupted.create(make_spec(variant))
        mid = 40
        uninterrupted.submit("snap", mid)
        uninterrupted.flush()
        blob = uninterrupted.snapshot("snap")
        uninterrupted.run_to_completion()
        full = uninterrupted.close("snap")

        resumed_manager = SessionManager()
        resumed_manager.restore(blob)
        resumed_manager.run_to_completion(frames_per_flush=13)
        resumed = resumed_manager.close("snap")

        assert resumed.trace.update_count == full.trace.update_count
        np.testing.assert_array_equal(
            resumed.trace.timestamps, full.trace.timestamps
        )
        np.testing.assert_array_equal(
            resumed.trace.position_errors, full.trace.position_errors
        )
        np.testing.assert_array_equal(
            resumed.trace.yaw_errors, full.trace.yaw_errors
        )
        np.testing.assert_array_equal(
            resumed.trace.estimate_trace, full.trace.estimate_trace
        )

    def test_restore_into_other_backend_is_exact(self, variant):
        """Migration across backends: batched snapshot, reference resume."""
        source = SessionManager(backend="batched")
        source.create(make_spec(variant))
        source.submit("snap", 30)
        source.flush()
        blob = source.snapshot("snap")
        source.run_to_completion()
        full = source.close("snap")

        target = SessionManager(backend="reference")
        target.restore(blob)
        target.run_to_completion()
        migrated = target.close("snap")
        np.testing.assert_array_equal(
            migrated.trace.estimate_trace, full.trace.estimate_trace
        )

    def test_restore_under_new_id_keeps_results(self, variant):
        manager = SessionManager()
        manager.create(make_spec(variant))
        manager.submit("snap", 20)
        manager.flush()
        blob = manager.snapshot("snap")
        renamed = manager.restore(blob, session_id="zz.migrated")
        assert renamed == "zz.migrated"
        manager.run_to_completion()
        original = manager.close("snap")
        migrated = manager.close("zz.migrated")
        np.testing.assert_array_equal(
            original.trace.estimate_trace, migrated.trace.estimate_trace
        )


class TestSnapshotValidation:
    def test_restore_existing_id_rejected(self):
        manager = SessionManager()
        manager.create(make_spec("fp32"))
        blob = manager.snapshot("snap")
        with pytest.raises(ConfigurationError):
            manager.restore(blob)

    def test_garbage_bytes_rejected(self):
        import io
        import zipfile

        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w"):
            pass
        with pytest.raises((ConfigurationError, Exception)):
            snapshot_from_bytes(buffer.getvalue())

    def test_snapshot_carries_trace_prefix(self):
        manager = SessionManager()
        manager.create(make_spec("fp32"))
        manager.submit("snap", 12)
        manager.flush()
        _, cursor, state, trace = snapshot_from_bytes(manager.snapshot("snap"))
        assert cursor == 12
        assert trace["trace_timestamps"].shape == (12,)
        assert trace["trace_estimates"].shape == (12, 3)
        assert state.x.shape == (64,)


@pytest.mark.parametrize("variant", ["fp32", "fp16qm"])
class TestScalarFilterSnapshot:
    def test_export_restore_continues_bitwise(self, variant):
        scenario = build_scenario(SCENARIO)
        config = MclConfig(particle_count=64).with_variant(variant)

        # Replay via the recorded steps API directly (the reference loop).
        steps = list(scenario.sequence.steps())
        mcl = MonteCarloLocalization(scenario.grid, config, seed=9)
        previous = steps[0].odometry
        mid = 60
        for index, step in enumerate(steps[:mid]):
            if index > 0:
                mcl.add_odometry(previous.between(step.odometry))
            previous = step.odometry
            mcl.process(step.frames)
        snapshot = mcl.export_state()

        # Continue the original...
        final = []
        previous_cont = previous
        for step in steps[mid:]:
            mcl.add_odometry(previous_cont.between(step.odometry))
            previous_cont = step.odometry
            mcl.process(step.frames)
            final.append(mcl.estimate.pose.as_array())

        # ...and a restored twin.
        twin = MonteCarloLocalization(scenario.grid, config, seed=12345)
        twin.restore_state(snapshot)
        twin_final = []
        previous_twin = previous
        for step in steps[mid:]:
            twin.add_odometry(previous_twin.between(step.odometry))
            previous_twin = step.odometry
            twin.process(step.frames)
            twin_final.append(twin.estimate.pose.as_array())

        np.testing.assert_array_equal(np.stack(final), np.stack(twin_final))
        assert twin.update_count == mcl.update_count

    def test_stack_import_rejects_pending_odometry(self, variant):
        """A scalar snapshot taken mid-accumulation cannot enter a stack
        row — the ungated motion has nowhere to live and silently
        dropping it would diverge from the scalar continuation."""
        from repro.engine.backend import RunSpec
        from repro.engine.batched import ParticleStack
        from repro.engine.reference import ReferenceStack

        scenario = build_scenario(SCENARIO)
        config = MclConfig(particle_count=64).with_variant(variant)
        mcl = MonteCarloLocalization(scenario.grid, config, seed=1)
        mcl.add_odometry(Pose2D(0.05, 0.0, 0.0))  # below the gate: pending
        snapshot = mcl.export_state()
        for stack in (ParticleStack(config, 1), ReferenceStack(config, 1)):
            stack.init_row(0, scenario.grid, RunSpec(scenario.sequence, 1))
            with pytest.raises(ConfigurationError, match="pending odometry"):
                stack.import_row(0, snapshot)

    def test_restore_rejects_mismatched_shape(self, variant):
        scenario = build_scenario(SCENARIO)
        config = MclConfig(particle_count=64).with_variant(variant)
        mcl = MonteCarloLocalization(scenario.grid, config, seed=0)
        snapshot = mcl.export_state()
        other = MonteCarloLocalization(
            scenario.grid, MclConfig(particle_count=128).with_variant(variant), seed=0
        )
        with pytest.raises(ConfigurationError):
            other.restore_state(snapshot)

    def test_payload_round_trip(self, variant):
        scenario = build_scenario(SCENARIO)
        config = MclConfig(particle_count=64).with_variant(variant)
        mcl = MonteCarloLocalization(scenario.grid, config, seed=2)
        snapshot = mcl.export_state()
        payload = snapshot.to_payload()
        rebuilt = FilterStateSnapshot.from_payload(payload)
        np.testing.assert_array_equal(rebuilt.x, snapshot.x)
        np.testing.assert_array_equal(rebuilt.weights, snapshot.weights)
        np.testing.assert_array_equal(rebuilt.rng, snapshot.rng)
        assert rebuilt.update_count == snapshot.update_count
        assert isinstance(rebuilt.estimate_pose(), Pose2D)
