"""Session lifecycle, scheduler packing determinism, and fleet helpers."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, EvaluationError
from repro.scenarios import FleetSpec
from repro.serve import SessionManager, SessionSpec
from repro.serve.scheduler import StepScheduler

SCENARIO = "office:1:flight_s=8"


def make_spec(session_id="s0", **overrides):
    defaults = dict(
        session_id=session_id,
        scenario=SCENARIO,
        variant="fp32",
        particle_count=64,
        seed=0,
    )
    defaults.update(overrides)
    return SessionSpec(**defaults)


class TestSessionLifecycle:
    def test_create_query_close(self):
        manager = SessionManager()
        manager.create(make_spec())
        status = manager.query("s0")
        assert status.cursor == 0
        assert status.frames_total > 0
        assert not status.done
        assert status.update_count == 0
        assert status.metrics is None  # no frames served yet
        result = manager.close("s0")
        assert len(result.trace.timestamps) == 0
        assert result.metrics is None
        assert len(manager) == 0

    def test_duplicate_session_id_rejected(self):
        manager = SessionManager()
        manager.create(make_spec())
        with pytest.raises(ConfigurationError):
            manager.create(make_spec())

    def test_unknown_session_rejected(self):
        manager = SessionManager()
        with pytest.raises(EvaluationError):
            manager.query("ghost")
        with pytest.raises(EvaluationError):
            manager.submit("ghost", 1)
        with pytest.raises(EvaluationError):
            manager.close("ghost")

    def test_submit_clamps_to_sequence_end(self):
        manager = SessionManager()
        manager.create(make_spec())
        total = manager.query("s0").frames_total
        assert manager.submit("s0", total + 999) == total
        report = manager.flush()
        assert report.frames == total
        status = manager.query("s0")
        assert status.done
        assert status.cursor == total
        # Stepping a finished session is a no-op.
        assert manager.submit("s0", 5) == 0
        assert manager.flush().frames == 0

    def test_partial_close_returns_prefix_trace(self):
        manager = SessionManager()
        manager.create(make_spec())
        manager.submit("s0", 25)
        manager.flush()
        result = manager.close("s0")
        assert len(result.trace.timestamps) == 25

    def test_row_recycling_after_close(self):
        """A new session reuses the closed session's stack row and still
        starts from a fresh, seed-exact state."""
        manager = SessionManager()
        manager.create(make_spec("a", seed=0))
        manager.submit("a", 30)
        manager.flush()
        first = manager.close("a")
        manager.create(make_spec("b", seed=0))
        manager.submit("b", 30)
        manager.flush()
        second = manager.close("b")
        np.testing.assert_array_equal(
            first.trace.estimate_trace, second.trace.estimate_trace
        )

    def test_mixed_cohorts_in_one_manager(self):
        manager = SessionManager()
        manager.create(make_spec("a", variant="fp32", particle_count=64))
        manager.create(make_spec("b", variant="fp16qm", particle_count=96, seed=1))
        manager.submit_all(10)
        report = manager.flush()
        assert report.frames == 20
        assert manager.query("a").cursor == 10
        assert manager.query("b").cursor == 10

    def test_fleet_metrics_aggregates_served_sessions(self):
        manager = SessionManager()
        manager.create_fleet(f"{SCENARIO}@fp32@64*2")
        manager.run_to_completion()
        aggregate = manager.fleet_metrics()
        assert aggregate.run_count == 2


class TestSchedulerDeterminism:
    def test_plan_tick_is_sorted_by_session_id(self):
        manager = SessionManager()
        for sid in ("c", "a", "b"):  # creation order deliberately unsorted
            manager.create(make_spec(sid, seed=ord(sid)))
        sessions = list(manager._sessions.values())
        # Move everyone somewhere past frame 0 so gates can fire.
        manager.submit_all(5)
        manager.flush()
        ordered, packing = StepScheduler.plan_tick(sessions)
        assert [s.spec.session_id for s in ordered] == ["a", "b", "c"]
        for groups in packing.values():
            flat = [s.spec.session_id for group in groups for s in group]
            assert flat == sorted(flat)

    def test_packing_groups_by_cohort_and_scenario_cursor(self):
        manager = SessionManager()
        manager.create(make_spec("a", seed=0))
        manager.create(make_spec("b", seed=1))
        manager.create(make_spec("c", variant="fp16qm", seed=2))
        manager.submit_all(6)
        manager.flush()
        sessions = list(manager._sessions.values())
        _, packing = StepScheduler.plan_tick(sessions)
        if packing:  # keys are (variant, N) cohorts, sorted
            assert list(packing) == sorted(packing)
            for groups in packing.values():
                for group in groups:
                    cursors = {s.cursor for s in group}
                    scenarios = {s.spec.scenario for s in group}
                    assert len(cursors) == 1 and len(scenarios) == 1

    def test_backend_choice_is_invisible(self):
        results = {}
        for backend in ("batched", "reference"):
            manager = SessionManager(backend=backend)
            manager.create(make_spec("a", seed=3))
            manager.run_to_completion(frames_per_flush=11)
            results[backend] = manager.close("a")
        np.testing.assert_array_equal(
            results["batched"].trace.estimate_trace,
            results["reference"].trace.estimate_trace,
        )
        np.testing.assert_array_equal(
            results["batched"].trace.position_errors,
            results["reference"].trace.position_errors,
        )


class TestFleetSpecs:
    def test_parse_roundtrip(self):
        fleet = FleetSpec.parse(
            "office:1@fp32@64*4,maze:2:cells=5@fp16qm@128*2~10,corridor:3"
        )
        assert FleetSpec.parse(fleet.id) == fleet
        assert len(fleet) == 7
        assert fleet.scenarios() == ["office:1", "maze:2:cells=5", "corridor:3"]

    def test_declarations_are_deterministic_and_ordered(self):
        fleet = FleetSpec.parse("office:1@fp32@64*3~5")
        declarations = fleet.declarations()
        assert [d.seed for d in declarations] == [5, 6, 7]
        ids = [d.session_id for d in declarations]
        assert ids == sorted(ids)  # packing order == declaration order
        assert fleet.declarations() == declarations

    def test_mixed_fleet_helper(self):
        fleet = FleetSpec.mixed(
            ["maze", "office", "corridor", "degraded"],
            scenario_seed=2,
            particle_count=96,
            replicas=2,
            flight_s=8.0,
        )
        assert len(fleet) == 8
        declarations = fleet.declarations()
        seeds = [d.seed for d in declarations]
        assert len(set(seeds)) == 8  # no seed collisions across families
        assert all(d.particle_count == 96 for d in declarations)
        assert {d.scenario.split(":")[0] for d in declarations} == {
            "maze", "office", "corridor", "degraded",
        }

    def test_bad_members_rejected(self):
        for bad in ("", "office@nope", "office@fp32@0", "office*0", "office~x",
                    "office@fp32@64@9@9", "office@fp32+warp=9@64"):
            with pytest.raises(ConfigurationError):
                FleetSpec.parse(bad)

    def test_config_spec_members(self):
        # One fleet can mix paper variants and ablated filters; config
        # specs canonicalize inside the member (aliases resolve, no-op
        # overrides drop) and the fleet id round-trips.
        fleet = FleetSpec.parse(
            "office:1@fp32@64*2,office:1@fp32+sigma=0.15@64*2~2"
        )
        assert FleetSpec.parse(fleet.id) == fleet
        assert [member.variant for member in fleet.members] == [
            "fp32", "fp32+sigma_obs=0.15",
        ]
        declarations = fleet.declarations()
        assert len(declarations) == 4
        assert declarations[2].variant == "fp32+sigma_obs=0.15"
        assert (
            FleetSpec.parse("office:1@fp32+sigma_obs=2.0@64").members[0].variant
            == "fp32"
        )

    def test_create_fleet_accepts_spec_strings(self):
        manager = SessionManager()
        ids = manager.create_fleet(f"{SCENARIO}@fp32@64*2")
        assert len(ids) == 2
        assert manager.session_ids() == sorted(ids)
