"""Migration under fault injection: every failed handoff rolls back
bitwise-invisibly.

The source's contract is that *any* outcome short of a positive
acknowledgement from the target's ``accept`` — structured rejection,
connection refused, the target dying mid-read, silence until the
handoff timeout — leaves the session serving on the source exactly as
if ``migrate`` had never been called.  These tests inject each of those
faults (hostile raw-socket targets, capacity-starved real targets, a
target whose restore rejects the blob as drifted) and assert both the
structured ``migration_failed`` reply and, after the dust settles, the
session's bit-exact solo trace.
"""

import asyncio

import numpy as np
import pytest

from repro.common.errors import EvaluationError
from repro.core.config import ConfigSpec
from repro.engine.backend import RunSpec
from repro.engine.reference import ReferenceBackend
from repro.maps.distance_field import DistanceField
from repro.scenarios import build_scenario
from repro.serve import (
    AdmissionPolicy,
    ErrorCode,
    OnlineClient,
    OnlineError,
    OnlineServer,
)

SCENARIO = "office:1:flight_s=8"


def run(coro):
    return asyncio.run(coro)


def solo_reference_trace(scenario_id, variant, particles, seed):
    scenario = build_scenario(scenario_id)
    config = ConfigSpec.parse(variant).config(particle_count=particles)
    field = DistanceField.build_for_mode(
        scenario.grid, config.r_max, config.precision
    )
    return ReferenceBackend().execute(
        scenario.grid, [RunSpec(scenario.sequence, seed)], config, field
    )[0]


def assert_traces_equal(served, solo):
    assert served.update_count == solo.update_count
    np.testing.assert_array_equal(served.timestamps, solo.timestamps)
    np.testing.assert_array_equal(served.position_errors, solo.position_errors)
    np.testing.assert_array_equal(served.yaw_errors, solo.yaw_errors)
    np.testing.assert_array_equal(served.estimate_trace, solo.estimate_trace)


async def finish_and_close(client, session_id):
    status = await client.query(session_id)
    remaining = status["frames_total"] - status["cursor"]
    if remaining:
        await client.submit(session_id, frames=remaining, wait=True)
    return await client.close_session(session_id)


async def hostile_target(behavior: str):
    """A raw-socket 'server' injecting one transport fault, as
    ``(asyncio.Server, "host:port")``.

    ``refuse-late``  — accept the connection, read nothing, close.
    ``die-mid-read`` — read part of the accept frame, then close.
    ``garbage``      — reply with bytes that are not a protocol frame.
    ``black-hole``   — read everything, never answer (forces timeout).
    """

    async def handle(reader, writer):
        try:
            if behavior == "refuse-late":
                pass
            elif behavior == "die-mid-read":
                await reader.read(64)
            elif behavior == "garbage":
                await reader.readline()  # the frame header
                writer.write(b"this is not a protocol frame\n")
                await writer.drain()
            elif behavior == "black-hole":
                while await reader.read(65536):
                    pass
                return  # keep the socket open until cancelled
        finally:
            writer.close()

    server = await asyncio.start_server(handle, host="127.0.0.1", port=0)
    host, port = server.sockets[0].getsockname()[:2]
    return server, f"{host}:{port}"


async def assert_rolled_back_and_bitwise(server, client, session_id):
    """The session is live, not draining, and completes bit-exactly."""
    assert session_id in server.manager.session_ids()
    assert not server.manager.is_draining(session_id)
    assert not server._migrating
    closed = await finish_and_close(client, session_id)
    solo = solo_reference_trace(
        closed.spec.scenario,
        closed.spec.variant,
        closed.spec.particle_count,
        closed.spec.seed,
    )
    assert_traces_equal(closed.trace, solo)


class TestHostileTargets:
    @pytest.mark.parametrize(
        "behavior", ["refuse-late", "die-mid-read", "garbage", "black-hole"]
    )
    def test_target_transport_fault_rolls_back_bitwise(self, behavior):
        async def serve():
            hostile, address = await hostile_target(behavior)
            try:
                async with OnlineServer(handoff_timeout_s=0.5) as server:
                    async with await OnlineClient.connect(
                        *server.address
                    ) as client:
                        (sid,) = await client.create_fleet(
                            f"{SCENARIO}@fp32@64"
                        )
                        await client.submit(sid, frames=9, wait=True)
                        with pytest.raises(OnlineError) as excinfo:
                            await client.migrate(sid, target=address)
                        await assert_rolled_back_and_bitwise(
                            server, client, sid
                        )
                        return excinfo.value, server.stats
            finally:
                hostile.close()
                await hostile.wait_closed()

        error, stats = run(serve())
        assert error.code == ErrorCode.MIGRATION_FAILED
        assert "rolled back" in str(error)
        assert stats["migrations_failed"] == 1
        assert stats["migrations_out"] == 0

    def test_connection_refused_rolls_back_bitwise(self):
        async def serve():
            # Bind-then-close guarantees a dead port.
            probe = await asyncio.start_server(
                lambda r, w: None, host="127.0.0.1", port=0
            )
            port = probe.sockets[0].getsockname()[1]
            probe.close()
            await probe.wait_closed()
            async with OnlineServer(handoff_timeout_s=1.0) as server:
                async with await OnlineClient.connect(*server.address) as c:
                    (sid,) = await c.create_fleet(f"{SCENARIO}@fp32@64")
                    await c.submit(sid, frames=5, wait=True)
                    with pytest.raises(OnlineError) as excinfo:
                        await c.migrate(sid, target=f"127.0.0.1:{port}")
                    await assert_rolled_back_and_bitwise(server, c, sid)
                    return excinfo.value

        assert run(serve()).code == ErrorCode.MIGRATION_FAILED


class TestStructuredRejections:
    def test_target_at_capacity_rolls_back_bitwise(self):
        async def serve():
            policy = AdmissionPolicy(max_sessions=1, max_pending_frames=1000)
            async with (
                OnlineServer() as source,
                OnlineServer(policy=policy) as target,
            ):
                t_client = await OnlineClient.connect(*target.address)
                s_client = await OnlineClient.connect(*source.address)
                async with t_client, s_client:
                    await t_client.create_fleet(f"{SCENARIO}@fp32@64~9")
                    (sid,) = await s_client.create_fleet(f"{SCENARIO}@fp32@64")
                    await s_client.submit(sid, frames=7, wait=True)
                    with pytest.raises(OnlineError) as excinfo:
                        await s_client.migrate(
                            sid, target="%s:%d" % target.address
                        )
                    await assert_rolled_back_and_bitwise(
                        source, s_client, sid
                    )
                    return excinfo.value, target.stats

        error, target_stats = run(serve())
        assert error.code == ErrorCode.MIGRATION_FAILED
        assert ErrorCode.ADMISSION_REJECTED in str(error)
        assert target_stats["migrations_in"] == 0

    def test_restore_onto_drifted_scenario_rolls_back_bitwise(self):
        """A target whose restore rejects the blob (scenario drift: the
        target would replay different observations) commits nothing on
        either side and the source session is untouched."""

        async def serve():
            async with OnlineServer() as source, OnlineServer() as target:

                def drifted_restore(blob, session_id=None):
                    raise EvaluationError(
                        "snapshot scenario drifted from the serving world"
                    )

                target.manager.restore = drifted_restore
                s_client = await OnlineClient.connect(*source.address)
                async with s_client:
                    (sid,) = await s_client.create_fleet(f"{SCENARIO}@fp32@64")
                    await s_client.submit(sid, frames=11, wait=True)
                    with pytest.raises(OnlineError) as excinfo:
                        await s_client.migrate(
                            sid, target="%s:%d" % target.address
                        )
                    await assert_rolled_back_and_bitwise(
                        source, s_client, sid
                    )
                    return excinfo.value, target.manager.session_ids()

        error, target_sessions = run(serve())
        assert error.code == ErrorCode.MIGRATION_FAILED
        assert "drifted" in str(error)
        assert target_sessions == []

    def test_duplicate_migrate_after_handoff_is_rejected(self):
        """Once the session left, a second migrate finds nothing."""

        async def serve():
            async with OnlineServer() as a, OnlineServer() as b:
                async with await OnlineClient.connect(*a.address) as c:
                    (sid,) = await c.create_fleet(f"{SCENARIO}@fp32@64")
                    await c.submit(sid, frames=4, wait=True)
                    target = "%s:%d" % b.address
                    await c.migrate(sid, target=target)
                    with pytest.raises(OnlineError) as excinfo:
                        await c.migrate(sid, target=target)
                    return excinfo.value

        assert run(serve()).code == ErrorCode.EVALUATION

    def test_concurrent_migrates_of_one_session_commit_exactly_once(self):
        """Two racing migrates: one wins, the loser gets a structured
        rejection, and exactly one copy exists fleet-wide."""

        async def serve():
            async with OnlineServer() as a, OnlineServer() as b:
                c1 = await OnlineClient.connect(*a.address)
                c2 = await OnlineClient.connect(*a.address)
                b_client = await OnlineClient.connect(*b.address)
                async with c1, c2, b_client:
                    (sid,) = await c1.create_fleet(f"{SCENARIO}@fp32@64")
                    await c1.submit(sid, frames=6, wait=True)
                    target = "%s:%d" % b.address
                    outcomes = await asyncio.gather(
                        c1.migrate(sid, target=target),
                        c2.migrate(sid, target=target),
                        return_exceptions=True,
                    )
                    copies = (sid in a.manager.session_ids()) + (
                        sid in b.manager.session_ids()
                    )
                    closed = await finish_and_close(b_client, sid)
                    return outcomes, copies, closed

        outcomes, copies, closed = run(serve())
        errors = [o for o in outcomes if isinstance(o, Exception)]
        commits = [o for o in outcomes if isinstance(o, dict)]
        assert len(commits) == 1 and len(errors) == 1
        assert isinstance(errors[0], OnlineError)
        assert errors[0].code in (ErrorCode.DRAINING, ErrorCode.EVALUATION)
        assert copies == 1
        solo = solo_reference_trace(
            closed.spec.scenario, "fp32", 64, closed.spec.seed
        )
        assert_traces_equal(closed.trace, solo)


class TestSourceLoss:
    def test_source_death_after_handoff_leaves_target_serving(self):
        """Dropping the source right after commit loses nothing: the
        target owns the only copy and finishes it bit-exactly."""

        async def serve():
            async with OnlineServer() as b:
                b_client = await OnlineClient.connect(*b.address)
                async with b_client:
                    a = OnlineServer()
                    await a.start()
                    async with await OnlineClient.connect(*a.address) as c:
                        (sid,) = await c.create_fleet(f"{SCENARIO}@fp32@64")
                        await c.submit(sid, frames=8, wait=True)
                        await c.migrate(sid, target="%s:%d" % b.address)
                    await a.stop()  # the source is gone for good
                    return await finish_and_close(b_client, sid)

        closed = run(serve())
        solo = solo_reference_trace(SCENARIO, "fp32", 64, 0)
        assert_traces_equal(closed.trace, solo)

    def test_rollback_with_queued_frames_serves_them_on_source(self):
        """Frames frozen for a handoff that fails are not lost: the
        rollback re-opens the queue and the source serves them."""

        async def serve():
            hostile, address = await hostile_target("refuse-late")
            try:
                async with OnlineServer(handoff_timeout_s=0.5) as server:
                    async with await OnlineClient.connect(
                        *server.address
                    ) as client:
                        (sid,) = await client.create_fleet(
                            f"{SCENARIO}@fp32@64"
                        )
                        await client.submit(sid, frames=6, wait=True)
                        server.manager.submit(sid, 4)  # still queued
                        with pytest.raises(OnlineError):
                            await client.migrate(sid, target=address)
                        await client.flush([sid])
                        status = await client.query(sid)
                        # The frozen backlog was served after rollback.
                        assert status["cursor"] == 10
                        return await finish_and_close(client, sid)
            finally:
                hostile.close()
                await hostile.wait_closed()

        closed = run(serve())
        solo = solo_reference_trace(SCENARIO, "fp32", 64, 0)
        assert_traces_equal(closed.trace, solo)
