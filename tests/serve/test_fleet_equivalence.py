"""Fleet-vs-solo equivalence: serving must not change a single bit.

The serve layer's contract extends the engine's backend equivalence to
online execution: every session of a mixed fleet — arbitrary scenario /
variant / N / seed composition, arbitrary flush pacing, either backend —
must produce traces and metrics **bitwise identical** to the same
(scenario, variant, N, seed) run stepped alone through the reference
backend.  Exact equality for the same reason as the backend tests:
particle filters amplify 1-ulp differences into divergent resampling,
so tolerances would hide real nonequivalence.
"""

import numpy as np
import pytest

from repro.core.config import MclConfig
from repro.engine.backend import RunSpec
from repro.engine.reference import ReferenceBackend
from repro.maps.distance_field import DistanceField
from repro.scenarios import build_scenario
from repro.serve import SessionManager, SessionSpec

#: A ≥8-session fleet mixing four families, two variants and two
#: particle counts (the acceptance-criteria composition).
FLEET = [
    ("000.maze", "maze:1:flight_s=8", "fp32", 64, 0),
    ("001.maze", "maze:1:flight_s=8", "fp32", 64, 1),
    ("002.office", "office:1:flight_s=8", "fp16qm", 96, 2),
    ("003.office", "office:1:flight_s=8", "fp16qm", 96, 3),
    ("004.corridor", "corridor:1:flight_s=8", "fp32", 96, 4),
    ("005.corridor", "corridor:1:flight_s=8", "fp16qm", 64, 5),
    ("006.degraded", "degraded:1:flight_s=8", "fp32", 64, 6),
    ("007.degraded", "degraded:1:flight_s=8", "fp16qm", 64, 7),
]


def fleet_specs():
    return [
        SessionSpec(session_id=sid, scenario=scenario, variant=variant,
                    particle_count=count, seed=seed)
        for sid, scenario, variant, count, seed in FLEET
    ]


@pytest.fixture(scope="module")
def solo_traces():
    """Each fleet member stepped alone through the reference backend."""
    traces = {}
    fields = {}
    for spec in fleet_specs():
        scenario = build_scenario(spec.scenario)
        config = MclConfig(particle_count=spec.particle_count).with_variant(
            spec.variant
        )
        field_key = (spec.scenario, config.precision)
        if field_key not in fields:
            fields[field_key] = DistanceField.build_for_mode(
                scenario.grid, config.r_max, config.precision
            )
        traces[spec.session_id] = ReferenceBackend().execute(
            scenario.grid,
            [RunSpec(scenario.sequence, spec.seed)],
            config,
            fields[field_key],
        )[0]
    return traces


def assert_trace_equal(served, solo):
    assert served.update_count == solo.update_count
    np.testing.assert_array_equal(served.timestamps, solo.timestamps)
    np.testing.assert_array_equal(served.position_errors, solo.position_errors)
    np.testing.assert_array_equal(served.yaw_errors, solo.yaw_errors)
    np.testing.assert_array_equal(served.estimate_trace, solo.estimate_trace)


def metrics_signature(metrics):
    import math

    return (
        metrics.converged,
        metrics.convergence_time_s,
        metrics.success,
        None if math.isnan(metrics.ate_mean_m) else metrics.ate_mean_m,
        None if math.isnan(metrics.yaw_mean_rad) else metrics.yaw_mean_rad,
    )


class TestFleetEquivalence:
    @pytest.mark.parametrize("backend", ["batched", "reference"])
    def test_mixed_fleet_matches_solo_reference(self, solo_traces, backend):
        """8 mixed sessions served together == 8 solo reference runs."""
        manager = SessionManager(backend=backend)
        for spec in fleet_specs():
            manager.create(spec)
        manager.run_to_completion(frames_per_flush=16)
        for spec in fleet_specs():
            result = manager.close(spec.session_id)
            assert_trace_equal(result.trace, solo_traces[spec.session_id])

    def test_fast_backend_fleet_matches_solo_reference(self, solo_traces):
        """The fused fast backend serves the same mixed fleet bit-for-bit
        (skipped where no fused provider is constructible)."""
        from repro.common.errors import ConfigurationError

        try:
            manager = SessionManager(backend="fast")
        except ConfigurationError as exc:
            pytest.skip(f"no fused fast-backend provider available: {exc}")
        for spec in fleet_specs():
            manager.create(spec)
        manager.run_to_completion(frames_per_flush=16)
        for spec in fleet_specs():
            result = manager.close(spec.session_id)
            assert_trace_equal(result.trace, solo_traces[spec.session_id])

    def test_irregular_flush_pacing_is_invisible(self, solo_traces):
        """Ragged per-session queues (sessions at wildly different replay
        positions, packed with whoever happens to be pending) cannot
        change any session's numbers."""
        manager = SessionManager(backend="batched")
        specs = fleet_specs()
        for spec in specs:
            manager.create(spec)
        # Stagger: session i gets (7 * (i + 1)) frames per round.
        round_index = 0
        while any(
            not manager.query(spec.session_id).done for spec in specs
        ):
            for i, spec in enumerate(specs):
                manager.submit(spec.session_id, 7 * (i + 1))
            manager.flush()
            round_index += 1
            assert round_index < 1000, "fleet failed to drain"
        for spec in specs:
            result = manager.close(spec.session_id)
            assert_trace_equal(result.trace, solo_traces[spec.session_id])

    def test_metrics_match_offline_evaluation(self, solo_traces):
        """Served metrics equal the offline evaluation of the solo run."""
        from repro.eval.metrics import evaluate_run

        manager = SessionManager(backend="batched")
        for spec in fleet_specs():
            manager.create(spec)
        manager.run_to_completion()
        for spec in fleet_specs():
            result = manager.close(spec.session_id)
            solo = solo_traces[spec.session_id]
            expected = evaluate_run(
                solo.timestamps, solo.position_errors, solo.yaw_errors
            )
            assert result.metrics is not None
            assert metrics_signature(result.metrics) == metrics_signature(expected)

    def test_ablated_fleet_matches_solo_reference(self):
        """A fleet mixing two config fingerprints (default fp32 and a
        sigma-ablated fp32) on one world — each session must equal its
        solo reference run executed under the same materialized config,
        and the ablated sessions must land in their own cohort."""
        from repro.core.config import ConfigSpec

        members = [
            ("000.default", "fp32", 0),
            ("001.default", "fp32", 1),
            ("002.ablated", "fp32+sigma_obs=1.0", 0),
            ("003.ablated", "fp32+sigma_obs=1.0", 1),
        ]
        scenario_id = "maze:1:flight_s=8"
        scenario = build_scenario(scenario_id)
        manager = SessionManager(backend="batched")
        for sid, variant, seed in members:
            manager.create(
                SessionSpec(
                    session_id=sid, scenario=scenario_id, variant=variant,
                    particle_count=64, seed=seed,
                )
            )
        assert len(manager.scheduler._cohorts) == 2  # two fingerprints
        manager.run_to_completion(frames_per_flush=13)
        for sid, variant, seed in members:
            config = ConfigSpec.parse(variant).config(particle_count=64)
            field = DistanceField.build_for_mode(
                scenario.grid, config.r_max, config.precision
            )
            solo = ReferenceBackend().execute(
                scenario.grid,
                [RunSpec(scenario.sequence, seed)],
                config,
                field,
            )[0]
            assert_trace_equal(manager.close(sid).trace, solo)

    def test_session_ids_do_not_affect_results(self, solo_traces):
        """Renaming sessions permutes the packing order, not the numbers."""
        manager = SessionManager(backend="batched")
        renamed = {}
        for spec in fleet_specs():
            flipped = SessionSpec(
                session_id=f"zz-{999 - int(spec.session_id[:3]):03d}",
                scenario=spec.scenario,
                variant=spec.variant,
                particle_count=spec.particle_count,
                seed=spec.seed,
            )
            renamed[flipped.session_id] = spec.session_id
            manager.create(flipped)
        manager.run_to_completion(frames_per_flush=9)
        for flipped_id, original_id in renamed.items():
            result = manager.close(flipped_id)
            assert_trace_equal(result.trace, solo_traces[original_id])
