"""Regression tests for serve-layer lifecycle exception-safety.

Three real bugs found auditing the serve layer for the online gateway:

* ``SessionManager.create``/``restore`` leaked the admitted scheduler
  row (and stack capacity grown for it) when row initialization raised;
* ``StepScheduler`` never retired empty cohorts, so a long-running
  manager under a churning config mix grew without bound;
* ``create_fleet`` had no rollback — a failure on declaration K left
  sessions 1..K-1 open.
"""

import io
import json

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, EvaluationError
from repro.engine.batched import ParticleStack
from repro.serve import SessionManager, SessionSpec

SCENARIO = "office:1:flight_s=8"


def make_spec(session_id="s0", **overrides):
    defaults = dict(
        session_id=session_id,
        scenario=SCENARIO,
        variant="fp32",
        particle_count=64,
        seed=0,
    )
    defaults.update(overrides)
    return SessionSpec(**defaults)


def serve_one(manager, spec, frames=20):
    manager.create(spec)
    manager.submit(spec.session_id, frames)
    manager.flush()
    return manager.close(spec.session_id)


class TestCreateRollback:
    def test_failed_create_leaves_manager_pristine(self, monkeypatch):
        manager = SessionManager()

        def boom(self, row, grid, spec):
            raise RuntimeError("injected init failure")

        monkeypatch.setattr(ParticleStack, "init_row", boom)
        with pytest.raises(RuntimeError):
            manager.create(make_spec())
        monkeypatch.undo()

        # No session, no leaked row, no leaked cohort stack.
        assert len(manager) == 0
        assert manager.scheduler.cohort_count() == 0

        # The same manager retries cleanly and serves bitwise-identically
        # to a manager that never saw the failure.
        retried = serve_one(manager, make_spec())
        fresh = serve_one(SessionManager(), make_spec())
        np.testing.assert_array_equal(
            retried.trace.estimate_trace, fresh.trace.estimate_trace
        )

    def test_failed_create_in_populated_cohort_frees_the_row(self, monkeypatch):
        manager = SessionManager()
        manager.create(make_spec("a"))

        def boom(self, row, grid, spec):
            raise RuntimeError("injected init failure")

        monkeypatch.setattr(ParticleStack, "init_row", boom)
        with pytest.raises(RuntimeError):
            manager.create(make_spec("b", seed=1))
        monkeypatch.undo()

        assert manager.session_ids() == ["a"]
        (cohort,) = manager.scheduler._cohorts.values()
        assert cohort.active_rows == 1
        # The failed session's row went back to the pool: the next
        # create reuses it instead of growing the stack.
        manager.create(make_spec("c", seed=2))
        assert manager._sessions["c"].row == 1
        assert cohort.rows_used == 2


class TestRestoreRollback:
    def _snapshot(self, frames=30):
        donor = SessionManager()
        donor.create(make_spec())
        donor.submit("s0", frames)
        donor.flush()
        return donor.snapshot("s0")

    def test_failed_import_leaves_manager_pristine(self, monkeypatch):
        blob = self._snapshot()
        manager = SessionManager()

        def boom(self, row, snapshot):
            raise RuntimeError("injected import failure")

        monkeypatch.setattr(ParticleStack, "import_row", boom)
        with pytest.raises(RuntimeError):
            manager.restore(blob)
        monkeypatch.undo()

        assert len(manager) == 0
        assert manager.scheduler.cohort_count() == 0
        # Retry succeeds on the untouched manager.
        assert manager.restore(blob) == "s0"

    def test_drifted_scenario_rejected_without_leak(self):
        # Simulate a scenario whose definition shrank between snapshot
        # and restore: the stored cursor points past the sequence end.
        blob = self._snapshot(frames=100)
        with np.load(io.BytesIO(blob)) as archive:
            payload = {key: np.array(archive[key]) for key in archive.files}
        meta = json.loads(str(payload["serve_meta"]))
        meta["scenario"] = "office:1:flight_s=5"
        payload["serve_meta"] = np.array(json.dumps(meta, sort_keys=True))
        buffer = io.BytesIO()
        np.savez_compressed(buffer, **{k: payload[k] for k in sorted(payload)})

        manager = SessionManager()
        with pytest.raises(EvaluationError, match="drifted"):
            manager.restore(buffer.getvalue())
        assert len(manager) == 0
        assert manager.scheduler.cohort_count() == 0


class TestCohortRetirement:
    def test_closing_last_session_retires_the_cohort(self):
        manager = SessionManager()
        manager.create(make_spec("a", variant="fp32", particle_count=64))
        manager.create(make_spec("b", variant="fp16qm", particle_count=96))
        assert manager.scheduler.cohort_count() == 2
        manager.close("a")
        assert manager.scheduler.cohort_count() == 1
        manager.close("b")
        assert manager.scheduler.cohort_count() == 0

    def test_churning_config_mix_returns_to_baseline(self):
        # A long-lived manager cycling through distinct configurations
        # must not accumulate one dead stack per (fingerprint, N) seen.
        manager = SessionManager()
        for index, sigma in enumerate((0.5, 1.0, 2.0, 4.0)):
            sid = f"s{index}"
            manager.create(
                make_spec(sid, variant=f"fp32+sigma={sigma}", seed=index)
            )
            manager.submit(sid, 5)
            manager.flush()
            manager.close(sid)
            assert manager.scheduler.cohort_count() == 0
        assert len(manager) == 0

    def test_grown_capacity_is_released_with_the_cohort(self):
        manager = SessionManager()
        for index in range(4):
            manager.create(make_spec(f"s{index}", seed=index))
        (cohort,) = manager.scheduler._cohorts.values()
        assert cohort.rows_used == 4
        for index in range(4):
            manager.close(f"s{index}")
        assert manager.scheduler.cohort_count() == 0
        # A fresh session opens a fresh cohort at baseline capacity.
        manager.create(make_spec("again"))
        (cohort,) = manager.scheduler._cohorts.values()
        assert cohort.rows_used == 1

    def test_failed_create_retires_a_cohort_grown_for_it(self, monkeypatch):
        manager = SessionManager()
        manager.create(make_spec("a"))  # fp32/64 cohort

        def boom(self, row, grid, spec):
            raise RuntimeError("injected init failure")

        monkeypatch.setattr(ParticleStack, "init_row", boom)
        with pytest.raises(RuntimeError):
            manager.create(
                make_spec("b", variant="fp16qm", particle_count=96)
            )
        monkeypatch.undo()
        # The cohort opened just for the failed session is gone again.
        assert manager.scheduler.cohort_count() == 1


class TestRowPoolDeterminism:
    def test_lowest_free_row_is_reused_first(self):
        manager = SessionManager()
        for index, sid in enumerate(("a", "b", "c")):
            manager.create(make_spec(sid, seed=index))
        assert [manager._sessions[sid].row for sid in ("a", "b", "c")] == [0, 1, 2]
        manager.close("a")
        manager.close("c")  # "b" keeps the cohort alive
        manager.create(make_spec("d", seed=3))
        assert manager._sessions["d"].row == 0
        manager.create(make_spec("e", seed=4))
        assert manager._sessions["e"].row == 2


class TestFleetAtomicity:
    def test_partial_failure_rolls_back_created_sessions(self):
        manager = SessionManager()
        # Pre-existing session whose id collides with declaration #1 of
        # the fleet below — the fleet fails halfway through expansion.
        colliding = f"001.{SCENARIO}.fp32.n64.s1"
        manager.create(make_spec(colliding, seed=1))
        with pytest.raises(ConfigurationError, match="already exists"):
            manager.create_fleet(f"{SCENARIO}@fp32@64*3")
        # Declaration #0 was rolled back; the pre-existing session and
        # its cohort row survive untouched.
        assert manager.session_ids() == [colliding]
        (cohort,) = manager.scheduler._cohorts.values()
        assert cohort.active_rows == 1
        # The survivor still serves.
        manager.submit(colliding, 5)
        assert manager.flush().frames == 5

    def test_failed_fleet_on_empty_manager_leaves_nothing(self):
        manager = SessionManager()
        manager.create(make_spec(f"000.{SCENARIO}.fp32.n64.s0"))
        manager.close(f"000.{SCENARIO}.fp32.n64.s0")
        manager.create(make_spec(f"002.{SCENARIO}.fp32.n64.s2", seed=2))
        manager.close(f"002.{SCENARIO}.fp32.n64.s2")
        manager.create(make_spec(f"001.{SCENARIO}.fp32.n64.s1", seed=1))
        with pytest.raises(ConfigurationError):
            manager.create_fleet(f"{SCENARIO}@fp32@64*3")
        assert manager.session_ids() == [f"001.{SCENARIO}.fp32.n64.s1"]

    def test_unknown_family_in_fleet_is_rejected_upfront(self):
        manager = SessionManager()
        with pytest.raises(ConfigurationError, match="unknown scenario family"):
            manager.create_fleet("office:1@fp32@64*2,bogus:1@fp32@64")
        assert len(manager) == 0
        assert manager.scheduler.cohort_count() == 0
