"""Tests for the mission-level energy analysis."""

import pytest

from repro.common.errors import PlatformModelError
from repro.soc.energy import (
    BATTERY_CAPACITY_J,
    FlightTimeEstimate,
    energy_per_update_j,
    flight_time_impact,
    optimal_frequency_hz,
)


class TestBattery:
    def test_capacity_is_250mah_lipo(self):
        # 0.25 Ah * 3.7 V * 3600 s/h = 3330 J.
        assert BATTERY_CAPACITY_J == pytest.approx(3330.0)


class TestFlightTimeImpact:
    def test_bare_hover_around_crazyflie_endurance(self):
        # ~13 W hover on a 250 mAh pack: a handful of minutes, matching
        # the Crazyflie's real-world ~4-7 min endurance.
        estimate = flight_time_impact()
        assert 2.0 < estimate.bare_minutes < 8.0

    def test_payload_costs_some_minutes_fraction(self):
        estimate = flight_time_impact()
        assert estimate.with_payload_minutes < estimate.bare_minutes
        # ~7 % power -> ~6.5 % endurance loss.
        assert 0.05 < estimate.reduction_fraction < 0.09

    def test_lower_clock_cheaper(self):
        fast = flight_time_impact(gap9_frequency_hz=400e6)
        slow = flight_time_impact(gap9_frequency_hz=12e6)
        assert slow.with_payload_minutes > fast.with_payload_minutes

    def test_single_sensor_cheaper(self):
        dual = flight_time_impact(tof_sensor_count=2)
        single = flight_time_impact(tof_sensor_count=1)
        assert single.with_payload_minutes > dual.with_payload_minutes


class TestEnergyPerUpdate:
    def test_energy_positive_and_scaling(self):
        small = energy_per_update_j(400e6, 64)
        large = energy_per_update_j(400e6, 16384)
        assert 0 < small < large

    def test_matches_power_times_latency(self):
        # 61 mW * 1.894 ms ~ 116 uJ at the 1024/400 MHz point.
        energy = energy_per_update_j(400e6, 1024)
        assert energy == pytest.approx(0.061 * 1.894e-3, rel=0.02)


class TestOptimalFrequency:
    def test_valid_for_paper_points(self):
        # 1024 particles at 15 Hz: even 12 MHz meets the deadline and the
        # duty-cycled optimum is a legal candidate.
        best = optimal_frequency_hz(1024, update_rate_hz=15.0)
        assert best in (12e6, 50e6, 100e6, 200e6, 300e6, 400e6)

    def test_high_n_excludes_slow_clocks(self):
        # 16384 particles cannot meet 15 Hz below ~185 MHz.
        best = optimal_frequency_hz(16384, update_rate_hz=15.0)
        assert best >= 200e6

    def test_infeasible_rate_raises(self):
        with pytest.raises(PlatformModelError):
            optimal_frequency_hz(16384, update_rate_hz=100.0)

    def test_rejects_bad_rate(self):
        with pytest.raises(PlatformModelError):
            optimal_frequency_hz(1024, update_rate_hz=0.0)

    def test_race_to_idle_beats_lowest_clock(self):
        # The duty-cycled average at a fast clock undercuts running the
        # slowest real-time clock flat out for small N.
        from repro.soc.perf import Gap9PerfModel
        from repro.soc.power import Gap9PowerModel

        power = Gap9PowerModel()
        period = 1 / 15
        def duty_power(freq):
            latency = Gap9PerfModel(freq).update_time_ns(1024, 8) * 1e-9
            duty = latency / period
            return duty * power.average_power_w(freq) + (1 - duty) * 0.003
        best = optimal_frequency_hz(1024, 15.0)
        assert duty_power(best) <= duty_power(12e6) + 1e-9
