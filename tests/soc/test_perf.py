"""Tests that the GAP9 latency model reproduces the paper's Table I,
Fig. 10 and the derived real-time results."""

import pytest

from repro.common.errors import PlatformModelError
from repro.soc.perf import (
    L1_PARTICLE_LIMIT,
    REALTIME_BUDGET_NS,
    Gap9PerfModel,
    MclStep,
    particles_in_l2,
)

#: Table I of the paper: per-particle times in ns at 400 MHz as
#: {step: {N: (1 core, 8 cores)}}.
TABLE_I = {
    MclStep.OBSERVATION: {
        64: (8531, 1412), 256: (8484, 1313), 1024: (8518, 1283),
        4096: (8649, 1294), 16384: (8704, 1295),
    },
    MclStep.MOTION: {
        64: (2828, 500), 256: (2715, 391), 1024: (2689, 357),
        4096: (3002, 390), 16384: (2985, 386),
    },
    MclStep.RESAMPLING: {
        64: (313, 250), 256: (191, 121), 1024: (161, 84),
        4096: (558, 108), 16384: (556, 104),
    },
    MclStep.POSE_COMPUTATION: {
        64: (750, 234), 256: (633, 117), 1024: (604, 86),
        4096: (777, 101), 16384: (775, 99),
    },
}


class TestTableICalibration:
    @pytest.mark.parametrize("step", list(TABLE_I))
    @pytest.mark.parametrize("count", [64, 256, 1024, 4096, 16384])
    def test_single_core_within_tolerance(self, step, count):
        model = Gap9PerfModel()
        expected = TABLE_I[step][count][0]
        measured = model.step_time_per_particle_ns(step, count, cores=1)
        assert measured == pytest.approx(expected, rel=0.10)

    @pytest.mark.parametrize("step", list(TABLE_I))
    @pytest.mark.parametrize("count", [64, 256, 1024, 4096, 16384])
    def test_eight_core_within_tolerance(self, step, count):
        model = Gap9PerfModel()
        expected = TABLE_I[step][count][1]
        measured = model.step_time_per_particle_ns(step, count, cores=8)
        assert measured == pytest.approx(expected, rel=0.10)

    def test_l2_residency_boundary(self):
        # Table I footnote: 4096 and 16384 particles live in L2.
        assert not particles_in_l2(1024)
        assert particles_in_l2(1025)
        assert particles_in_l2(4096)
        assert L1_PARTICLE_LIMIT == 1024

    def test_l2_slows_the_slope(self):
        model = Gap9PerfModel()
        l1 = model.step_time_per_particle_ns(MclStep.RESAMPLING, 1024, 1)
        l2 = model.step_time_per_particle_ns(MclStep.RESAMPLING, 4096, 1)
        assert l2 > 2 * l1  # the paper's jump: 161 -> 558 ns


class TestSpeedups:
    def test_total_speedup_reaches_seven(self):
        # Paper: "parallelizing the execution for 8 RISC-V cores brings a
        # 7x speedup" at high particle counts.
        model = Gap9PerfModel()
        assert model.total_speedup(16384) == pytest.approx(7.0, abs=0.35)

    def test_speedup_improves_with_n(self):
        model = Gap9PerfModel()
        speedups = [model.total_speedup(n) for n in (64, 256, 1024, 4096, 16384)]
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))

    def test_resampling_scales_worst_at_small_n(self):
        # Paper Sec. IV-D: "the resample step scales the worst".
        model = Gap9PerfModel()
        for count in (64, 256, 1024):
            resample = model.step_speedup(MclStep.RESAMPLING, count)
            others = [
                model.step_speedup(step, count)
                for step in MclStep
                if step is not MclStep.RESAMPLING
            ]
            assert resample <= min(others) + 1e-9

    def test_resampling_exceeds_5x_at_high_n(self):
        # Paper: "for high numbers of particles we can reach more than 5x
        # speedup even for this step".
        model = Gap9PerfModel()
        assert model.step_speedup(MclStep.RESAMPLING, 16384) > 5.0

    def test_observation_speedup_near_6_7(self):
        model = Gap9PerfModel()
        assert model.step_speedup(MclStep.OBSERVATION, 16384) == pytest.approx(
            8704 / 1295, rel=0.05
        )


class TestUpdateLatency:
    def test_latency_span_matches_abstract(self):
        # Abstract: "a latency of 0.2-30 ms (depending on the number of
        # particles)" on 8 cores at 400 MHz.
        model = Gap9PerfModel()
        low = model.update_time_ns(64, 8) / 1e6
        high = model.update_time_ns(16384, 8) / 1e6
        assert low == pytest.approx(0.2, abs=0.05)
        assert high == pytest.approx(30.9, abs=1.5)

    def test_pipeline_overhead_constant(self):
        # Total minus step sum must be ~40 us regardless of N and cores.
        model = Gap9PerfModel()
        for count in (64, 1024, 16384):
            for cores in (1, 8):
                steps = sum(model.step_time_ns(s, count, cores) for s in MclStep)
                overhead = model.update_time_ns(count, cores) - steps
                assert overhead == pytest.approx(40_000, rel=1e-6)

    def test_table_ii_execution_times(self):
        # (freq MHz, N) -> paper execution time in ms.
        cases = [(400e6, 1024, 1.901), (12e6, 1024, 59.898),
                 (400e6, 16384, 30.880), (200e6, 16384, 61.524)]
        for freq, count, expected_ms in cases:
            measured = Gap9PerfModel(freq).update_time_ns(count, 8) / 1e6
            assert measured == pytest.approx(expected_ms, rel=0.06)

    def test_frequency_scaling_inverse(self):
        fast = Gap9PerfModel(400e6).update_time_ns(1024, 8)
        slow = Gap9PerfModel(100e6).update_time_ns(1024, 8)
        assert slow == pytest.approx(4 * fast, rel=1e-9)


class TestRealtime:
    def test_realtime_at_400mhz(self):
        model = Gap9PerfModel()
        assert model.is_realtime(16384, 8)
        assert model.is_realtime(64, 8)

    def test_min_realtime_frequencies_match_table_ii(self):
        # Paper picks 12 MHz for 1024 particles and 200 MHz for 16384 as
        # the minimal real-time clocks; the model's exact bounds sit just
        # below those catalogue frequencies.
        f_1024 = Gap9PerfModel.min_realtime_frequency_hz(1024)
        f_16384 = Gap9PerfModel.min_realtime_frequency_hz(16384)
        assert f_1024 <= 12e6
        assert f_1024 == pytest.approx(12e6, rel=0.15)
        assert f_16384 <= 200e6
        assert f_16384 == pytest.approx(200e6, rel=0.15)

    def test_realtime_budget_is_67ms(self):
        assert REALTIME_BUDGET_NS == pytest.approx(67e6)


class TestValidation:
    def test_rejects_bad_frequency(self):
        with pytest.raises(PlatformModelError):
            Gap9PerfModel(500e6)
        with pytest.raises(PlatformModelError):
            Gap9PerfModel(0.0)

    def test_rejects_bad_core_count(self):
        model = Gap9PerfModel()
        with pytest.raises(PlatformModelError):
            model.step_time_ns(MclStep.MOTION, 64, cores=0)
        with pytest.raises(PlatformModelError):
            model.step_time_ns(MclStep.MOTION, 64, cores=9)

    def test_rejects_bad_particle_count(self):
        with pytest.raises(PlatformModelError):
            Gap9PerfModel().step_time_ns(MclStep.MOTION, 0)

    def test_intermediate_cores_monotone(self):
        model = Gap9PerfModel()
        times = [model.step_time_ns(MclStep.OBSERVATION, 4096, c) for c in range(1, 9)]
        assert all(b <= a for a, b in zip(times, times[1:]))
