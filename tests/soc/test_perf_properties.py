"""Property tests for the GAP9 latency model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.soc.perf import Gap9PerfModel, MclStep

COUNTS = st.integers(min_value=1, max_value=50_000)
CORES = st.integers(min_value=1, max_value=8)
FREQS = st.floats(min_value=1e6, max_value=400e6)


class TestLatencyProperties:
    @settings(max_examples=50, deadline=None)
    @given(COUNTS, CORES)
    def test_times_positive(self, count, cores):
        model = Gap9PerfModel()
        for step in MclStep:
            assert model.step_time_ns(step, count, cores) > 0

    @settings(max_examples=50, deadline=None)
    @given(COUNTS, CORES)
    def test_monotone_in_particles(self, count, cores):
        model = Gap9PerfModel()
        for step in MclStep:
            assert model.step_time_ns(step, count + 100, cores) > model.step_time_ns(
                step, count, cores
            )

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=64, max_value=50_000))
    def test_eight_cores_never_slower_than_one_at_paper_scale(self, count):
        # Full monotonicity across 2..7 cores does NOT hold for the
        # resampling step at small N (overhead grows with cores faster
        # than the tiny per-particle cost shrinks — consistent with the
        # paper's weak 1.25x resampling speedup at N=64).  What Table I
        # does guarantee is that the full 8-core offload wins over a
        # single core at every published N.
        model = Gap9PerfModel()
        for step in MclStep:
            assert model.step_time_ns(step, count, 8) <= model.step_time_ns(
                step, count, 1
            ) * (1.0 + 1e-9)

    @settings(max_examples=50, deadline=None)
    @given(COUNTS, CORES)
    def test_speedup_bounded_by_cores(self, count, cores):
        model = Gap9PerfModel()
        assert model.total_speedup(count, cores) <= cores + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(COUNTS, FREQS)
    def test_frequency_scaling_exactly_inverse(self, count, freq):
        base = Gap9PerfModel(400e6).update_time_ns(count, 8)
        scaled = Gap9PerfModel(freq).update_time_ns(count, 8)
        assert scaled == pytest.approx(base * 400e6 / freq, rel=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(COUNTS)
    def test_update_exceeds_step_sum_by_pipeline_overhead(self, count):
        model = Gap9PerfModel()
        step_sum = sum(model.step_time_ns(s, count, 8) for s in MclStep)
        assert model.update_time_ns(count, 8) == pytest.approx(
            step_sum + 40_000, rel=1e-12
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 1024))
    def test_l1_l2_boundary_continuity_direction(self, count):
        # Crossing into L2 must never make a step *faster*.
        model = Gap9PerfModel()
        for step in MclStep:
            l1_side = model.step_time_ns(step, 1024, 8) / 1024
            l2_side = model.step_time_ns(step, 1025, 8) / 1025
            assert l2_side >= l1_side * 0.95  # small overhead amortization slack
