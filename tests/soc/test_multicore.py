"""Tests for the behavioural cluster simulator."""

import numpy as np
import pytest

from repro.common.errors import PlatformModelError
from repro.common.rng import make_rng
from repro.core.resampling import systematic_resample
from repro.soc.multicore import ClusterSimulator, ClusterTimings


class TestEvenStep:
    def test_balanced_chunks(self):
        sim = ClusterSimulator(n_workers=8)
        trace = sim.simulate_even_step(800, cycles_per_particle=10.0)
        assert trace.core_busy_cycles.shape == (8,)
        assert trace.imbalance == pytest.approx(1.0)

    def test_remainder_chunks_slightly_imbalanced(self):
        sim = ClusterSimulator(n_workers=8)
        trace = sim.simulate_even_step(803, cycles_per_particle=10.0)
        assert trace.imbalance > 1.0
        assert trace.imbalance < 1.05

    def test_makespan_includes_overheads(self):
        timings = ClusterTimings(fork_cycles=1000, join_cycles=500)
        sim = ClusterSimulator(n_workers=4, timings=timings)
        trace = sim.simulate_even_step(4, cycles_per_particle=1.0)
        assert trace.makespan_cycles == pytest.approx(1000 + 1 + 500)

    def test_rejects_bad_inputs(self):
        with pytest.raises(PlatformModelError):
            ClusterSimulator(n_workers=0)
        with pytest.raises(PlatformModelError):
            ClusterSimulator().simulate_even_step(0, 1.0)


class TestStructuralSpeedup:
    def test_small_n_overhead_dominated(self):
        sim = ClusterSimulator(n_workers=8)
        small = sim.structural_speedup(64, cycles_per_particle=100.0)
        large = sim.structural_speedup(16384, cycles_per_particle=100.0)
        assert small < large
        assert large > 7.0  # approaches the 8-core bound
        assert large <= 8.0 + 1e-9

    def test_speedup_monotone_in_n(self):
        sim = ClusterSimulator(n_workers=8)
        values = [
            sim.structural_speedup(n, 50.0) for n in (64, 256, 1024, 4096, 16384)
        ]
        assert all(b >= a for a, b in zip(values, values[1:]))


class TestResamplingSimulation:
    def test_uniform_weights_balanced(self):
        sim = ClusterSimulator(n_workers=8)
        weights = np.full(1024, 1.0 / 1024)
        trace = sim.simulate_resampling(weights, u0=1e-4)
        assert trace.imbalance == pytest.approx(1.0, abs=0.05)

    def test_concentrated_weights_imbalanced(self):
        # One dominant particle: its block's core draws nearly everything —
        # the structural reason resampling "scales the worst" (Sec. IV-D).
        sim = ClusterSimulator(n_workers=8)
        weights = np.full(1024, 1e-9)
        weights[700] = 1.0
        trace = sim.simulate_resampling(weights, u0=1e-4)
        assert trace.imbalance > 3.0
        assert trace.busiest_core == 5  # particle 700 sits in block 5

    def test_draws_match_serial_wheel(self):
        sim = ClusterSimulator(n_workers=8)
        rng = make_rng(0, "mc")
        weights = rng.random(512) + 1e-6
        u0 = 1.0 / 1024
        serial = systematic_resample(weights, u0)
        trace = sim.simulate_resampling(weights, u0)
        # Busy cycles reflect the serial wheel's per-block draw counts.
        draws_per_block = np.bincount(serial // 64, minlength=8)
        scan = 512 / 8 * 4.0
        expected = scan + draws_per_block * 30.0
        np.testing.assert_allclose(trace.core_busy_cycles, expected)

    def test_makespan_includes_barriers(self):
        timings = ClusterTimings(fork_cycles=0, join_cycles=0, barrier_cycles=100)
        sim = ClusterSimulator(n_workers=2, timings=timings)
        weights = np.full(4, 0.25)
        trace = sim.simulate_resampling(weights, u0=0.1, cycles_per_draw=0, cycles_per_scan=0)
        assert trace.makespan_cycles == pytest.approx(200)
