"""Tests for the GAP9 power model (Table II) and memory model (Fig. 9)."""

import pytest

from repro.common.errors import PlatformModelError
from repro.common.precision import PrecisionMode
from repro.soc.memory import (
    MemoryLevel,
    cells_per_m2,
    map_bytes,
    max_particles,
    memory_budget,
    particle_bytes,
)
from repro.soc.power import Gap9PowerModel


class TestPowerModel:
    def test_calibration_points_exact(self):
        # Table II measured operating points.
        model = Gap9PowerModel()
        assert model.average_power_w(400e6) == pytest.approx(0.061)
        assert model.average_power_w(200e6) == pytest.approx(0.038)
        assert model.average_power_w(12e6) == pytest.approx(0.013)

    def test_interpolation_monotone(self):
        model = Gap9PowerModel()
        powers = [model.average_power_w(f) for f in (12e6, 50e6, 100e6, 300e6, 400e6)]
        assert all(b > a for a, b in zip(powers, powers[1:]))

    def test_rejects_overclock(self):
        with pytest.raises(PlatformModelError):
            Gap9PowerModel().average_power_w(500e6)

    def test_rejects_nonpositive(self):
        with pytest.raises(PlatformModelError):
            Gap9PowerModel().average_power_w(0.0)

    def test_low_frequency_extrapolation_floored(self):
        assert Gap9PowerModel().average_power_w(1e6) >= 1e-3

    def test_energy_race_to_idle(self):
        # At 1024 particles the 12 MHz point takes 33x longer at ~1/4.7 the
        # power: energy per update is higher at the low clock, showing the
        # race-to-idle trade-off of Table II.
        model = Gap9PowerModel()
        fast = model.energy_per_update_j(400e6, 1024)
        slow = model.energy_per_update_j(12e6, 1024)
        assert slow > fast

    def test_operating_point_report(self):
        op = Gap9PowerModel().operating_point(400e6, 1024)
        assert op["avg_power_mw"] == pytest.approx(61.0)
        assert op["execution_time_ms"] == pytest.approx(1.901, rel=0.05)
        assert op["particles"] == 1024


class TestMemoryModel:
    def test_cells_per_m2_at_paper_resolution(self):
        assert cells_per_m2(0.05) == pytest.approx(400.0)

    def test_map_bytes_full_vs_quantized(self):
        # Paper Sec. IV-C: 5 bytes/cell -> 2 bytes/cell.
        assert map_bytes(1.0, PrecisionMode.FP32) == 400 * 5
        assert map_bytes(1.0, PrecisionMode.FP16_QM) == 400 * 2

    def test_particle_bytes(self):
        assert particle_bytes(1024, PrecisionMode.FP32) == 1024 * 32
        assert particle_bytes(1024, PrecisionMode.FP16_QM) == 1024 * 16

    def test_max_particles_zero_map(self):
        # 128 kB / 32 B = 4096 fp32 particles with no map.
        assert max_particles(0.0, PrecisionMode.FP32, MemoryLevel.L1) == 4096
        assert max_particles(0.0, PrecisionMode.FP16_QM, MemoryLevel.L1) == 8192

    def test_max_particles_paper_operating_points(self):
        # Paper Sec. IV-E: 1024 particles "can still fit in L1" next to
        # the 31.2 m² map in the quantized representation; 16384 need L2.
        area = 31.2
        assert max_particles(area, PrecisionMode.FP16_QM, MemoryLevel.L1) >= 1024
        assert max_particles(area, PrecisionMode.FP16_QM, MemoryLevel.L2) >= 16384

    def test_fp32_31m2_map_does_not_fit_l1_with_1024(self):
        # The full-precision map alone is 62.4 kB; 1024 fp32 particles add
        # 32 kB: tight but fits; 4096 do not.
        area = 31.2
        limit = max_particles(area, PrecisionMode.FP32, MemoryLevel.L1)
        assert 1024 <= limit < 4096

    def test_oversized_map_gives_zero(self):
        assert max_particles(10_000.0, PrecisionMode.FP32, MemoryLevel.L1) == 0

    def test_quantized_fits_more_everywhere(self):
        for area in (2.0, 8.0, 32.0, 128.0):
            for level in MemoryLevel:
                assert max_particles(
                    area, PrecisionMode.FP16_QM, level
                ) >= max_particles(area, PrecisionMode.FP32, level)

    def test_budget_report(self):
        budget = memory_budget(1024, 31.2, PrecisionMode.FP16_QM)
        assert budget.particle_bytes == 1024 * 16
        assert budget.map_bytes == int(31.2 * 400) * 2
        assert budget.total_bytes == budget.particle_bytes + budget.map_bytes
        assert budget.fits(MemoryLevel.L1)
        assert budget.fits(MemoryLevel.L2)

    def test_budget_not_fitting(self):
        budget = memory_budget(100_000, 31.2, PrecisionMode.FP32)
        assert not budget.fits(MemoryLevel.L1)
        assert not budget.fits(MemoryLevel.L2)

    def test_rejects_negative_inputs(self):
        with pytest.raises(PlatformModelError):
            map_bytes(-1.0, PrecisionMode.FP32)
        with pytest.raises(PlatformModelError):
            particle_bytes(-1, PrecisionMode.FP32)
        with pytest.raises(PlatformModelError):
            cells_per_m2(0.0)
