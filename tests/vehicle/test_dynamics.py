"""Tests for the planar vehicle dynamics."""

import math

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.geometry import Pose2D
from repro.vehicle.dynamics import (
    BodyCommand,
    DynamicsLimits,
    PlanarDynamics,
)


class TestLimits:
    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            DynamicsLimits(max_speed_mps=0.0)
        with pytest.raises(ConfigurationError):
            DynamicsLimits(max_yaw_rate_rps=-1.0)
        with pytest.raises(ConfigurationError):
            DynamicsLimits(velocity_tau_s=0.0)


class TestStep:
    def test_rejects_bad_dt(self):
        dyn = PlanarDynamics(Pose2D.identity())
        with pytest.raises(ConfigurationError):
            dyn.step(BodyCommand(), dt=0.0)

    def test_straight_flight_converges_to_command(self):
        dyn = PlanarDynamics(Pose2D.identity())
        for _ in range(400):
            state = dyn.step(BodyCommand(vx=0.3), dt=0.01)
        assert state.vx == pytest.approx(0.3, abs=0.01)
        assert state.pose.x > 0.8  # ~4 s at ~0.3 m/s minus the ramp
        assert abs(state.pose.y) < 1e-6
        assert abs(state.pose.theta) < 1e-9

    def test_speed_saturation(self):
        limits = DynamicsLimits(max_speed_mps=0.5)
        dyn = PlanarDynamics(Pose2D.identity(), limits)
        for _ in range(600):
            state = dyn.step(BodyCommand(vx=5.0, vy=5.0), dt=0.01)
        speed = math.hypot(state.vx, state.vy)
        assert speed <= 0.5 + 1e-6

    def test_yaw_rate_saturation(self):
        limits = DynamicsLimits(max_yaw_rate_rps=1.0)
        dyn = PlanarDynamics(Pose2D.identity(), limits)
        for _ in range(600):
            state = dyn.step(BodyCommand(yaw_rate=10.0), dt=0.01)
        assert abs(state.yaw_rate) <= 1.0 + 1e-6

    def test_velocity_lag(self):
        # After one time constant the velocity reaches ~63 % of the command.
        limits = DynamicsLimits(velocity_tau_s=0.5)
        dyn = PlanarDynamics(Pose2D.identity(), limits)
        state = dyn.state
        steps = 50  # 0.5 s at 100 Hz
        for _ in range(steps):
            state = dyn.step(BodyCommand(vx=1.0 * limits.max_speed_mps), dt=0.01)
        assert state.vx == pytest.approx(0.63 * limits.max_speed_mps, rel=0.1)

    def test_pure_rotation_keeps_position(self):
        dyn = PlanarDynamics(Pose2D(1.0, 2.0, 0.0))
        for _ in range(100):
            state = dyn.step(BodyCommand(yaw_rate=1.0), dt=0.01)
        assert state.pose.x == pytest.approx(1.0, abs=1e-9)
        assert state.pose.y == pytest.approx(2.0, abs=1e-9)
        assert state.pose.theta != 0.0

    def test_lateral_velocity_is_holonomic(self):
        dyn = PlanarDynamics(Pose2D.identity())
        for _ in range(300):
            state = dyn.step(BodyCommand(vy=0.3), dt=0.01)
        assert state.pose.y > 0.5
        assert abs(state.pose.x) < 1e-6
        assert abs(state.pose.theta) < 1e-9

    def test_heading_rotates_velocity_into_world(self):
        dyn = PlanarDynamics(Pose2D(0.0, 0.0, math.pi / 2))
        for _ in range(300):
            state = dyn.step(BodyCommand(vx=0.3), dt=0.01)
        # Facing +y: forward motion increases y.
        assert state.pose.y > 0.5
        assert abs(state.pose.x) < 0.05

    def test_circle_arc_radius(self):
        # Constant speed + yaw rate: radius = v / omega.
        dyn = PlanarDynamics(Pose2D.identity(), DynamicsLimits(velocity_tau_s=0.01))
        v, omega = 0.4, 0.8
        poses = []
        for _ in range(2000):
            state = dyn.step(BodyCommand(vx=v, yaw_rate=omega), dt=0.01)
            poses.append((state.pose.x, state.pose.y))
        xs = np.array([p[0] for p in poses[200:]])
        ys = np.array([p[1] for p in poses[200:]])
        # Fit circle center as mean; check radius spread is small.
        cx, cy = xs.mean(), ys.mean()
        radii = np.hypot(xs - cx, ys - cy)
        assert radii.mean() == pytest.approx(v / omega, rel=0.1)
        assert radii.std() < 0.05
