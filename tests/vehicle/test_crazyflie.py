"""Integration tests of the full simulated platform."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.maps.builder import MapBuilder
from repro.maps.occupancy import CellState
from repro.vehicle.crazyflie import CrazyflieSimulator, SimConfig


def room(size: float = 4.0):
    return (
        MapBuilder(size, size, 0.05)
        .fill_rect(0, 0, size, size, CellState.FREE)
        .add_border()
        .build()
    )


ROUTE = [(1.0, 1.0), (3.0, 1.0), (3.0, 3.0)]


class TestSimConfig:
    def test_rejects_slow_physics(self):
        with pytest.raises(ConfigurationError):
            SimConfig(physics_rate_hz=10.0, tof_rate_hz=15.0)

    def test_rejects_bad_duration(self):
        with pytest.raises(ConfigurationError):
            SimConfig(max_duration_s=0.0)


class TestCrazyflieSimulator:
    def test_requires_route(self):
        with pytest.raises(ConfigurationError):
            CrazyflieSimulator(room(), [(1.0, 1.0)], seed=0)

    def test_start_pose_faces_first_leg(self):
        sim = CrazyflieSimulator(room(), ROUTE, seed=0)
        assert sim.start_pose.x == 1.0
        assert sim.start_pose.theta == pytest.approx(0.0)  # toward (3, 1)

    def test_run_emits_frames_at_tof_rate(self):
        sim = CrazyflieSimulator(room(), ROUTE, seed=0, config=SimConfig(max_duration_s=30))
        steps = sim.run()
        assert len(steps) > 10
        intervals = np.diff([s.timestamp for s in steps])
        # Frames land on the 100 Hz physics tick, so individual intervals
        # quantize to 0.06/0.07 s around the nominal 1/15 s.
        assert float(np.mean(intervals)) == pytest.approx(1.0 / 15.0, abs=2e-3)
        assert np.all(np.abs(intervals - 1.0 / 15.0) <= 0.01 + 1e-9)

    def test_two_sensor_frames_per_step(self):
        sim = CrazyflieSimulator(room(), ROUTE, seed=0, config=SimConfig(max_duration_s=10))
        steps = sim.run()
        for step in steps:
            assert len(step.frames) == 2
            names = {f.sensor_name for f in step.frames}
            assert names == {"tof-front", "tof-rear"}

    def test_reaches_route_end(self):
        sim = CrazyflieSimulator(room(), ROUTE, seed=0, config=SimConfig(max_duration_s=60))
        steps = sim.run()
        final = steps[-1].ground_truth
        assert final.distance_to(sim.start_pose) > 1.0
        assert abs(final.x - 3.0) < 0.3
        assert abs(final.y - 3.0) < 0.3

    def test_ground_truth_stays_in_free_space(self):
        grid = room()
        sim = CrazyflieSimulator(grid, ROUTE, seed=1, config=SimConfig(max_duration_s=60))
        for step in sim.run():
            assert grid.is_free(step.ground_truth.x, step.ground_truth.y)

    def test_odometry_differs_from_ground_truth(self):
        # The whole point: on-board odometry drifts.
        sim = CrazyflieSimulator(room(), ROUTE, seed=2, config=SimConfig(max_duration_s=60))
        steps = sim.run()
        start = steps[0].ground_truth
        final_rel = start.between(steps[-1].ground_truth)
        final_odo = steps[-1].odometry
        error = np.hypot(final_rel.x - final_odo.x, final_rel.y - final_odo.y)
        assert error > 0.005

    def test_deterministic_given_seed(self):
        a = CrazyflieSimulator(room(), ROUTE, seed=3, config=SimConfig(max_duration_s=15)).run()
        b = CrazyflieSimulator(room(), ROUTE, seed=3, config=SimConfig(max_duration_s=15)).run()
        assert len(a) == len(b)
        np.testing.assert_allclose(
            a[-1].ground_truth.as_array(), b[-1].ground_truth.as_array()
        )
        np.testing.assert_array_equal(a[-1].frames[0].ranges_m, b[-1].frames[0].ranges_m)

    def test_different_seeds_differ(self):
        a = CrazyflieSimulator(room(), ROUTE, seed=4, config=SimConfig(max_duration_s=15)).run()
        b = CrazyflieSimulator(room(), ROUTE, seed=5, config=SimConfig(max_duration_s=15)).run()
        assert not np.array_equal(a[-1].frames[0].ranges_m, b[-1].frames[0].ranges_m)

    def test_respects_max_duration(self):
        config = SimConfig(max_duration_s=5.0)
        far_route = [(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0), (1.0, 1.0)]
        steps = CrazyflieSimulator(room(), far_route, seed=0, config=config).run()
        assert steps[-1].timestamp <= 5.0 + 1e-6
