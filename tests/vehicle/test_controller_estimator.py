"""Tests for the waypoint controller and the drifting odometry estimator."""

import math

import pytest

from repro.common.errors import ConfigurationError
from repro.common.geometry import Pose2D
from repro.common.rng import make_rng
from repro.sensors.flow import FlowDeck, FlowDeckSpec, FlowMeasurement
from repro.sensors.imu import Gyro, GyroSpec, GyroMeasurement
from repro.vehicle.controller import ControllerGains, WaypointController
from repro.vehicle.dynamics import PlanarDynamics
from repro.vehicle.estimator import OdometryIntegrator


class TestControllerGains:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            ControllerGains(cruise_speed_mps=0.0)
        with pytest.raises(ConfigurationError):
            ControllerGains(capture_radius_m=-0.1)


class TestWaypointController:
    def test_requires_waypoints(self):
        with pytest.raises(ConfigurationError):
            WaypointController([])

    def test_turns_toward_offaxis_waypoint(self):
        controller = WaypointController([(0.0, 5.0)])
        command = controller.command(Pose2D(0.0, 0.0, 0.0))
        # Target is at +90°, beyond the alignment threshold: rotate in place.
        assert command.vx == 0.0
        assert command.yaw_rate > 0.0

    def test_flies_forward_when_aligned(self):
        controller = WaypointController([(5.0, 0.0)])
        command = controller.command(Pose2D(0.0, 0.0, 0.0))
        assert command.vx > 0.0
        assert abs(command.yaw_rate) < 0.1

    def test_slows_near_waypoint(self):
        gains = ControllerGains()
        controller = WaypointController([(0.2, 0.0)], gains)
        near = controller.command(Pose2D(0.0, 0.0, 0.0))
        far_controller = WaypointController([(5.0, 0.0)], gains)
        far = far_controller.command(Pose2D(0.0, 0.0, 0.0))
        assert near.vx < far.vx

    def test_captures_and_advances(self):
        controller = WaypointController([(0.05, 0.0), (1.0, 0.0)])
        controller.command(Pose2D(0.0, 0.0, 0.0))
        assert controller.active_index == 1

    def test_finishes(self):
        controller = WaypointController([(0.05, 0.0)])
        command = controller.command(Pose2D(0.0, 0.0, 0.0))
        assert controller.finished
        assert command.vx == 0.0 and command.yaw_rate == 0.0

    def test_closed_loop_reaches_goal(self):
        controller = WaypointController([(1.0, 0.0), (1.0, 1.0)])
        dynamics = PlanarDynamics(Pose2D.identity())
        pose = dynamics.state.pose
        for _ in range(6000):
            if controller.finished:
                break
            state = dynamics.step(controller.command(pose), dt=0.01)
            pose = state.pose
        assert controller.finished
        assert pose.distance_to(Pose2D(1.0, 1.0, 0.0)) < 0.2


class TestOdometryIntegrator:
    @staticmethod
    def _flow(vx, vy, t=0.0):
        return FlowMeasurement(timestamp=t, vx=vx, vy=vy, height_m=0.5)

    @staticmethod
    def _gyro(rate, t=0.0):
        return GyroMeasurement(timestamp=t, yaw_rate=rate)

    def test_straight_integration(self):
        odo = OdometryIntegrator()
        for _ in range(100):
            odo.update(self._flow(0.5, 0.0), self._gyro(0.0), dt=0.01)
        assert odo.estimate.x == pytest.approx(0.5, abs=1e-6)
        assert odo.estimate.y == pytest.approx(0.0, abs=1e-6)

    def test_rotation_integration(self):
        odo = OdometryIntegrator()
        for _ in range(100):
            odo.update(self._flow(0.0, 0.0), self._gyro(math.pi), dt=0.01)
        assert abs(odo.estimate.theta) == pytest.approx(math.pi, abs=1e-6)

    def test_arc_integration_curves(self):
        odo = OdometryIntegrator()
        for _ in range(157):  # quarter turn at 1 rad/s, 0.5 m/s
            odo.update(self._flow(0.5, 0.0), self._gyro(1.0), dt=0.01)
        # v/omega = 0.5 -> quarter circle ends near (0.5, 0.5).
        assert odo.estimate.x == pytest.approx(0.5, abs=0.02)
        assert odo.estimate.y == pytest.approx(0.5, abs=0.02)

    def test_zero_dt_is_noop(self):
        odo = OdometryIntegrator()
        before = odo.estimate
        odo.update(self._flow(1.0, 1.0), self._gyro(1.0), dt=0.0)
        assert odo.estimate == before

    def test_negative_dt_rejected(self):
        odo = OdometryIntegrator()
        with pytest.raises(ConfigurationError):
            odo.update(self._flow(0.0, 0.0), self._gyro(0.0), dt=-0.01)

    def test_increments_compose_to_estimate(self):
        odo = OdometryIntegrator(Pose2D(1.0, 1.0, 0.5))
        pose = Pose2D(1.0, 1.0, 0.5)
        for step in range(30):
            odo.update(self._flow(0.4, 0.1), self._gyro(0.3), dt=0.02)
            if step % 7 == 0:
                pose = pose.compose(odo.odometry_increment())
        pose = pose.compose(odo.odometry_increment())
        assert pose.x == pytest.approx(odo.estimate.x, abs=1e-9)
        assert pose.y == pytest.approx(odo.estimate.y, abs=1e-9)
        assert pose.theta == pytest.approx(odo.estimate.theta, abs=1e-9)

    def test_increment_is_empty_without_motion(self):
        odo = OdometryIntegrator()
        odo.odometry_increment()
        inc = odo.odometry_increment()
        assert inc.x == 0.0 and inc.y == 0.0 and inc.theta == 0.0

    def test_drift_accumulates_with_noisy_sensors(self):
        # End-to-end: corrupted sensors produce a growing position error.
        flow = FlowDeck(FlowDeckSpec(scale_error_sigma=0.05), make_rng(11, "flow"))
        gyro = Gyro(GyroSpec(initial_bias_sigma=0.01), make_rng(11, "gyro"))
        odo = OdometryIntegrator()
        truth = Pose2D.identity()
        dt = 0.01
        for i in range(2000):  # 20 s straight flight at 0.4 m/s
            truth = truth.compose(Pose2D(0.4 * dt, 0.0, 0.0))
            m_flow = flow.measure(0.4, 0.0, dt, i * dt)
            m_gyro = gyro.measure(0.0, dt, i * dt)
            odo.update(m_flow, m_gyro, dt)
        drift = odo.estimate.distance_to(truth)
        assert drift > 0.02  # drift must exist for MCL to have a job
        assert drift < 2.0  # but stay sane over 20 s
