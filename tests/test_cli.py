"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.sequence == 0
        assert args.variant == "fp32"
        assert args.particles == 4096

    def test_run_rejects_unknown_variant(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--variant", "fp64"])

    def test_sweep_parses_scenario_specs(self):
        args = build_parser().parse_args(
            ["sweep", "--scenarios", "office:3,maze:1:cells=7"]
        )
        assert [spec.id for spec in args.scenarios] == [
            "office:3",
            "maze:1:cells=7",
        ]

    def test_sweep_rejects_unknown_scenario_family(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--scenarios", "warehouse:1"])

    def test_scenarios_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "31.1" in out  # structured area
        assert "GAP9" in out

    def test_show_map(self, capsys):
        assert main(["show-map"]) == 0
        out = capsys.readouterr().out
        assert "#" in out
        assert "." in out

    def test_perf(self, capsys):
        assert main(["perf"]) == 0
        out = capsys.readouterr().out
        assert "observation" in out
        assert "Table II" in out
        assert "61 mW" in out

    def test_run_small(self, capsys):
        # A tiny run on the cached sequence: exercises the full path.
        assert main(["run", "--sequence", "0", "--particles", "256", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "seq0" in out

    def test_scenarios_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for family in ("maze", "office", "corridor", "hall", "degraded"):
            assert family in out

    def test_scenarios_generate_and_sweep(self, capsys):
        # Generate once (cached by tests/conftest.py's tmp data dir),
        # then sweep the same spec — the sweep must reuse the cache.
        spec = "corridor:2:flight_s=8.0"
        assert main(["scenarios", "generate", spec]) == 0
        out = capsys.readouterr().out
        assert "corridor:2" in out
        assert "frames=" in out
        assert (
            main(["sweep", "--scenarios", spec, "--variants", "fp32",
                  "--particles", "32"])
            == 0
        )
        out = capsys.readouterr().out
        assert spec in out
        assert "success rate" in out
