"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.sequence == 0
        assert args.variant == "fp32"
        assert args.particles == 4096

    def test_run_rejects_unknown_variant(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--variant", "fp64"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "31.1" in out  # structured area
        assert "GAP9" in out

    def test_show_map(self, capsys):
        assert main(["show-map"]) == 0
        out = capsys.readouterr().out
        assert "#" in out
        assert "." in out

    def test_perf(self, capsys):
        assert main(["perf"]) == 0
        out = capsys.readouterr().out
        assert "observation" in out
        assert "Table II" in out
        assert "61 mW" in out

    def test_run_small(self, capsys):
        # A tiny run on the cached sequence: exercises the full path.
        assert main(["run", "--sequence", "0", "--particles", "256", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "seq0" in out
