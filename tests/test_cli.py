"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main, render_cli_markdown


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.sequence == 0
        assert args.variant == "fp32"
        assert args.particles == 4096

    def test_run_rejects_unknown_variant(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--variant", "fp64"])

    def test_run_accepts_config_spec(self):
        args = build_parser().parse_args(
            ["run", "--variant", "fp16qm+sigma=0.15+r_max=2.0"]
        )
        assert args.variant == "fp16qm+r_max=2.0+sigma_obs=0.15"

    def test_variants_accept_config_specs(self):
        args = build_parser().parse_args(
            ["sweep", "--variants", "fp32,fp32+sigma=0.5"]
        )
        assert args.variants == ["fp32", "fp32+sigma_obs=0.5"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--variants", "fp32+warp=9"])

    def test_sweep_ablate_axes(self):
        args = build_parser().parse_args(
            ["sweep", "--ablate", "sigma=1.0,2.0", "--ablate", "r_max=1.5"]
        )
        # Values stay raw strings; ConfigSpec coerces when the axes are
        # crossed into specs, so tuple-valued overrides parse too.
        assert args.ablate == [("sigma", ["1.0", "2.0"]), ("r_max", ["1.5"])]
        rows = build_parser().parse_args(
            ["sweep", "--ablate", "beam_rows=2/3,2/3/4/5"]
        )
        assert rows.ablate == [("beam_rows", ["2/3", "2/3/4/5"])]
        for bad in ("sigma", "warp=9", "sigma=fast", "sigma=", "beam_rows=9"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["sweep", "--ablate", bad])

    def test_campaign_shard_parses(self):
        args = build_parser().parse_args(
            ["campaign", "shard", "study", "--scenarios", "office:3",
             "--shards", "4", "--index", "2"]
        )
        assert args.shards == 4
        assert args.index == 2
        with pytest.raises(SystemExit):  # --shards is required
            build_parser().parse_args(
                ["campaign", "shard", "study", "--scenarios", "office:3"]
            )

    def test_sweep_parses_scenario_specs(self):
        args = build_parser().parse_args(
            ["sweep", "--scenarios", "office:3,maze:1:cells=7"]
        )
        assert [spec.id for spec in args.scenarios] == [
            "office:3",
            "maze:1:cells=7",
        ]

    def test_sweep_rejects_unknown_scenario_family(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--scenarios", "warehouse:1"])

    def test_scenarios_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])

    def test_campaign_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign"])

    def test_campaign_run_requires_scenarios(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "run", "study"])

    def test_campaign_run_parses_grid(self):
        args = build_parser().parse_args(
            ["campaign", "run", "study", "--scenarios", "office:3",
             "--variants", "fp32", "--particles", "64,256", "--seeds", "0,1",
             "--jobs", "2", "--resume"]
        )
        assert args.name == "study"
        assert [spec.id for spec in args.scenarios] == ["office:3"]
        assert args.particles == [64, 256]
        assert args.seeds == (0, 1)
        assert args.jobs == 2
        assert args.resume is True

    def test_campaign_run_rejects_bad_seeds(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "run", "study", "--scenarios", "office:3",
                 "--seeds", "zero"]
            )


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "31.1" in out  # structured area
        assert "GAP9" in out

    def test_show_map(self, capsys):
        assert main(["show-map"]) == 0
        out = capsys.readouterr().out
        assert "#" in out
        assert "." in out

    def test_perf(self, capsys):
        assert main(["perf"]) == 0
        out = capsys.readouterr().out
        assert "observation" in out
        assert "Table II" in out
        assert "61 mW" in out

    def test_run_small(self, capsys):
        # A tiny run on the cached sequence: exercises the full path.
        assert main(["run", "--sequence", "0", "--particles", "256", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "seq0" in out

    def test_scenarios_list(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for family in ("maze", "office", "corridor", "hall", "degraded"):
            assert family in out

    def test_campaign_run_status_report(self, capsys):
        spec = "corridor:2:flight_s=6.0"
        base = ["campaign", "run", "cli-study", "--scenarios", spec,
                "--variants", "fp32", "--particles", "16", "--seeds", "0"]
        assert main(base) == 0
        out = capsys.readouterr().out
        assert "1 cells executed" in out

        # Second invocation with --resume skips the stored cell.
        assert main(base + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 cells executed" in out
        assert "1 skipped" in out

        assert main(["campaign", "status", "cli-study"]) == 0
        out = capsys.readouterr().out
        assert "1/1 cells completed" in out

        assert main(["campaign", "report", "cli-study"]) == 0
        out = capsys.readouterr().out
        assert "success rate" in out
        assert spec in out

        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "cli-study" in out

        # Merging a completed store into a fresh name copies it.
        assert main(["campaign", "merge", "cli-study-copy", "cli-study"]) == 0
        out = capsys.readouterr().out
        assert "1 cells copied" in out
        # Re-merging collides on byte-identical cells: verified, not copied.
        assert main(["campaign", "merge", "cli-study-copy", "cli-study"]) == 0
        out = capsys.readouterr().out
        assert "0 cells copied" in out
        assert "1 byte-verified" in out

    def test_campaign_shard_prints_split_and_round_trips(self, capsys):
        base = ["campaign", "shard", "cli-shard", "--scenarios",
                "corridor:2:flight_s=6.0", "--variants", "fp32",
                "--ablate", "sigma=1.0,4.0", "--particles", "16",
                "--seeds", "0", "--shards", "2"]
        # Without --index: print the deterministic assignment only.
        assert main(base) == 0
        out = capsys.readouterr().out
        assert "2 cells over 2 shards" in out
        # Execute both shards, then merge them back into the main name.
        for index in ("0", "1"):
            assert main(base + ["--index", index]) == 0
            out = capsys.readouterr().out
            assert "1 cells executed" in out
            assert f"cli-shard-shard{index}" in out
        for index in ("0", "1"):
            assert main(["campaign", "merge", "cli-shard",
                         f"cli-shard-shard{index}"]) == 0
        assert main(["campaign", "status", "cli-shard"]) == 0
        out = capsys.readouterr().out
        assert "2/2 cells completed" in out

    def test_campaign_shard_rejects_bad_index(self, capsys):
        assert main(["campaign", "shard", "x", "--scenarios", "office:3",
                     "--shards", "2", "--index", "5"]) == 2
        assert "--index must be in [0, 2)" in capsys.readouterr().err

    def test_serve_sim(self, capsys):
        fleet = "corridor:2:flight_s=6.0@fp32@32*2,office:2:flight_s=6.0@fp16qm@32*2~2"
        assert main(["serve-sim", "--fleet", fleet]) == 0
        out = capsys.readouterr().out
        assert "4 sessions" in out
        assert "sessions/s" in out
        assert "000.corridor:2:flight_s=6.0.fp32.n32.s0" in out

    def test_serve_sim_rejects_bad_fleet(self):
        with pytest.raises(SystemExit):
            main(["serve-sim", "--fleet", "office@nope"])

    def test_serve_online_replay(self, capsys):
        fleet = "corridor:2:flight_s=6.0@fp32@32*2,office:2:flight_s=6.0@fp16qm@32*2~2"
        assert main(["serve-online", "--replay", fleet, "--connections", "2"]) == 0
        out = capsys.readouterr().out
        assert "4 sessions" in out
        assert "000.corridor:2:flight_s=6.0.fp32.n32.s0" in out
        assert "step latency p50" in out

    def test_serve_online_rejects_bad_fleet(self):
        with pytest.raises(SystemExit):
            main(["serve-online", "--replay", "office@nope"])

    def test_scenarios_generate_and_sweep(self, capsys):
        # Generate once (cached by tests/conftest.py's tmp data dir),
        # then sweep the same spec — the sweep must reuse the cache.
        spec = "corridor:2:flight_s=8.0"
        assert main(["scenarios", "generate", spec]) == 0
        out = capsys.readouterr().out
        assert "corridor:2" in out
        assert "frames=" in out
        assert (
            main(["sweep", "--scenarios", spec, "--variants", "fp32",
                  "--particles", "32"])
            == 0
        )
        out = capsys.readouterr().out
        assert spec in out
        assert "success rate" in out


class TestObsCli:
    @pytest.fixture(autouse=True)
    def _clean_obs(self, monkeypatch):
        from repro import obs

        monkeypatch.delenv("REPRO_OBS", raising=False)
        monkeypatch.delenv("REPRO_OBS_DIR", raising=False)
        obs.reset()
        yield
        obs.reset()

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])

    def test_obs_report_rejects_unknown_format(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "report", "--format", "xml"])

    def test_obs_report_without_telemetry_is_empty(self, capsys):
        assert main(["obs", "report"]) == 0
        assert "(empty snapshot)" in capsys.readouterr().out

    def test_obs_report_renders_snapshot_file(self, tmp_path, capsys):
        from repro import obs

        registry = obs.Registry()
        registry.counter("engine.steps").inc(42)
        registry.histogram("serve.verb.submit").observe(0.002)
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(registry.snapshot()))

        assert main(["obs", "report", "--snapshot", str(path)]) == 0
        out = capsys.readouterr().out
        assert "engine.steps" in out and "42" in out

        assert main(
            ["obs", "report", "--snapshot", str(path), "--format", "prom"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_steps counter" in out
        assert "repro_serve_verb_submit_count 1" in out

        assert main(
            ["obs", "report", "--snapshot", str(path), "--format", "json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["counters"] == {
            "engine.steps": 42
        }

    def test_global_obs_flag_instruments_a_command(self, tmp_path, capsys):
        from repro import obs

        fleet = "corridor:2:flight_s=6.0@fp32@32*2"
        assert (
            main(["--obs-dir", str(tmp_path), "serve-sim", "--fleet", fleet])
            == 0
        )
        capsys.readouterr()
        # Same process: the registry is still live for `obs report`.
        assert main(["obs", "report", "--events", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "engine.steps" in out
        assert "serve.sched.tick" in out
        assert "cli.serve_sim" in out
        assert obs.enabled()


class TestCliReference:
    """docs/cli.md is generated; these tests are the local drift check."""

    def test_docs_cli_command_emits_markdown(self, capsys):
        assert main(["docs-cli"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# `repro` command-line reference")
        # every subcommand gets a section
        for command in ("run", "sweep", "campaign", "scenarios", "perf"):
            assert f"## `repro {command}`" in out

    def test_committed_reference_matches_parser(self):
        committed = (
            Path(__file__).resolve().parent.parent / "docs" / "cli.md"
        ).read_text()
        assert render_cli_markdown() == committed, (
            "docs/cli.md drifted from cli.py — regenerate with "
            "`PYTHONPATH=src python -m repro docs-cli > docs/cli.md`"
        )
