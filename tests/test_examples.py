"""Smoke test: every example module imports and exposes ``main``.

Examples are the first thing a new user runs, so API drift there is
worse than anywhere else — but executing them all under pytest would
cost minutes.  The compromise: import every module under ``examples/``
(which resolves every name the example uses at module scope) and check
the ``python examples/<name>.py`` contract — a ``main()`` entry point
behind an ``if __name__ == "__main__"`` guard, so importing stays
side-effect free.
"""

import importlib.util
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_found():
    assert EXAMPLE_FILES, f"no examples under {EXAMPLES_DIR}"


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[path.stem for path in EXAMPLE_FILES]
)
def test_example_imports_cleanly(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # must not run the experiment
    assert callable(getattr(module, "main", None)), (
        f"{path.name} must define a main() entry point"
    )
    assert 'if __name__ == "__main__":' in path.read_text(), (
        f"{path.name} must guard main() behind __main__"
    )
