"""Tests for the six canonical evaluation sequences."""

import pytest

from repro.common.errors import DatasetError
from repro.dataset.sequences import (
    SEQUENCE_SCRIPTS,
    data_directory,
    generate_sequence,
    load_sequence,
)
from repro.maps.maze import build_drone_maze_world


class TestScripts:
    def test_six_sequences_like_the_paper(self):
        assert len(SEQUENCE_SCRIPTS) == 6

    def test_unique_names_and_seeds(self):
        names = {s.name for s in SEQUENCE_SCRIPTS}
        seeds = {s.sim_seed for s in SEQUENCE_SCRIPTS}
        assert len(names) == 6
        assert len(seeds) == 6

    def test_stops_inside_main_maze(self):
        for script in SEQUENCE_SCRIPTS:
            for x, y in script.stops:
                assert 0.0 < x < 4.0
                assert 0.0 < y < 4.0


class TestLoadSequence:
    def test_rejects_bad_index(self):
        with pytest.raises(DatasetError):
            load_sequence(6)
        with pytest.raises(DatasetError):
            load_sequence(-1)

    def test_cached_load_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        assert str(data_directory()).startswith(str(tmp_path))

    def test_load_uses_cache(self):
        # The repository cache was produced by generate-data; loading must
        # be fast and consistent.
        world = build_drone_maze_world()
        seq = load_sequence(0, world)
        assert seq.name == SEQUENCE_SCRIPTS[0].name
        assert seq.duration_s > 30.0
        assert len(seq.tracks) == 2


class TestGenerateSequence:
    @pytest.fixture(scope="class")
    def world(self):
        return build_drone_maze_world()

    def test_flight_stays_in_main_maze(self, world):
        seq = load_sequence(0, world)
        main = world.main
        for i in range(0, len(seq), 50):
            pose = seq.ground_truth_pose(i)
            assert main.contains(pose.x, pose.y)

    def test_ground_truth_in_free_space(self, world):
        seq = load_sequence(1, world)
        for i in range(0, len(seq), 50):
            pose = seq.ground_truth_pose(i)
            assert world.grid.is_free(pose.x, pose.y)

    def test_odometry_drifts_from_truth(self, world):
        seq = load_sequence(2, world)
        start = seq.ground_truth_pose(0)
        final_rel = start.between(seq.ground_truth_pose(len(seq) - 1))
        final_odo = seq.odometry_pose(len(seq) - 1)
        drift = ((final_rel.x - final_odo.x) ** 2 + (final_rel.y - final_odo.y) ** 2) ** 0.5
        assert drift > 0.01

    def test_sequences_differ(self, world):
        a = load_sequence(0, world)
        b = load_sequence(1, world)
        assert a.ground_truth[0].tolist() != b.ground_truth[0].tolist() or len(a) != len(b)

    def test_regeneration_is_deterministic(self, world):
        import numpy as np

        first = generate_sequence(SEQUENCE_SCRIPTS[3], world)
        second = generate_sequence(SEQUENCE_SCRIPTS[3], world)
        np.testing.assert_allclose(first.ground_truth, second.ground_truth)
        np.testing.assert_array_equal(
            first.tracks[0].ranges_m, second.tracks[0].ranges_m
        )
