"""Tests for dataset perturbations (failure injection)."""

import numpy as np
import pytest

from repro.common.errors import DatasetError
from repro.dataset.augment import (
    truncated,
    with_degraded_odometry,
    with_dropout_bursts,
    with_range_bias,
)
from repro.dataset.recorder import RecordedSequence
from repro.maps.builder import MapBuilder
from repro.maps.occupancy import CellState
from repro.sensors.tof import ZoneStatus
from repro.vehicle.crazyflie import CrazyflieSimulator, SimConfig


@pytest.fixture(scope="module")
def sequence():
    grid = (
        MapBuilder(3.0, 3.0, 0.05)
        .fill_rect(0, 0, 3, 3, CellState.FREE)
        .add_border()
        .build()
    )
    sim = CrazyflieSimulator(
        grid, [(0.5, 0.5), (2.5, 0.5), (2.5, 2.5)], seed=0,
        config=SimConfig(max_duration_s=20),
    )
    return RecordedSequence.from_sim_steps("aug", sim.run())


class TestDropoutBursts:
    def test_bursts_flag_whole_frames(self, sequence):
        perturbed = with_dropout_bursts(sequence, burst_count=2, burst_frames=10, seed=1)
        flagged_frames = np.all(
            perturbed.tracks[0].status == int(ZoneStatus.INTERFERENCE), axis=(1, 2)
        )
        assert 10 <= int(flagged_frames.sum()) <= 20  # bursts may overlap

    def test_original_untouched(self, sequence):
        before = sequence.tracks[0].status.copy()
        with_dropout_bursts(sequence, seed=2)
        np.testing.assert_array_equal(sequence.tracks[0].status, before)

    def test_name_annotated(self, sequence):
        assert "bursts" in with_dropout_bursts(sequence).name

    def test_rejects_long_burst(self, sequence):
        with pytest.raises(DatasetError):
            with_dropout_bursts(sequence, burst_frames=10_000)

    def test_rejects_bad_params(self, sequence):
        with pytest.raises(DatasetError):
            with_dropout_bursts(sequence, burst_count=-1)


class TestRangeBias:
    def test_valid_ranges_shifted(self, sequence):
        perturbed = with_range_bias(sequence, bias_m=0.1)
        valid = sequence.tracks[0].status == int(ZoneStatus.VALID)
        shift = perturbed.tracks[0].ranges_m[valid] - sequence.tracks[0].ranges_m[valid]
        np.testing.assert_allclose(shift, 0.1, atol=1e-9)

    def test_invalid_zones_untouched(self, sequence):
        perturbed = with_range_bias(sequence, bias_m=0.1)
        invalid = sequence.tracks[0].status != int(ZoneStatus.VALID)
        if invalid.any():
            np.testing.assert_array_equal(
                perturbed.tracks[0].ranges_m[invalid],
                sequence.tracks[0].ranges_m[invalid],
            )

    def test_negative_bias_floors_at_zero(self, sequence):
        perturbed = with_range_bias(sequence, bias_m=-10.0)
        assert float(perturbed.tracks[0].ranges_m.min()) >= 0.0


class TestDegradedOdometry:
    def test_odometry_changed_ground_truth_kept(self, sequence):
        perturbed = with_degraded_odometry(sequence, seed=3)
        assert not np.allclose(perturbed.odometry, sequence.odometry)
        np.testing.assert_array_equal(perturbed.ground_truth, sequence.ground_truth)

    def test_start_pose_preserved(self, sequence):
        perturbed = with_degraded_odometry(sequence, seed=4)
        np.testing.assert_allclose(perturbed.odometry[0], sequence.odometry[0])

    def test_zero_degradation_is_identity(self, sequence):
        perturbed = with_degraded_odometry(
            sequence, extra_noise_xy=0.0, extra_scale_error=0.0, seed=5
        )
        np.testing.assert_allclose(
            perturbed.odometry, sequence.odometry, atol=1e-9
        )

    def test_rejects_negative(self, sequence):
        with pytest.raises(DatasetError):
            with_degraded_odometry(sequence, extra_noise_xy=-0.1)


class TestTruncated:
    def test_duration_capped(self, sequence):
        short = truncated(sequence, max_duration_s=5.0)
        assert short.duration_s <= 5.0 + 0.1
        assert len(short) < len(sequence)

    def test_tracks_aligned(self, sequence):
        short = truncated(sequence, max_duration_s=5.0)
        for track in short.tracks:
            assert track.ranges_m.shape[0] == len(short)

    def test_rejects_bad_duration(self, sequence):
        with pytest.raises(DatasetError):
            truncated(sequence, max_duration_s=0.0)
