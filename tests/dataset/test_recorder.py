"""Tests for sequence recording, replay and serialization."""

import numpy as np
import pytest

from repro.common.errors import DatasetError
from repro.dataset.recorder import RecordedSequence
from repro.dataset.vicon import ViconSpec, ViconTracker
from repro.common.geometry import Pose2D
from repro.maps.builder import MapBuilder
from repro.maps.occupancy import CellState
from repro.vehicle.crazyflie import CrazyflieSimulator, SimConfig


def tiny_flight():
    grid = (
        MapBuilder(3.0, 3.0, 0.05)
        .fill_rect(0, 0, 3, 3, CellState.FREE)
        .add_border()
        .build()
    )
    sim = CrazyflieSimulator(
        grid, [(1.0, 1.0), (2.0, 1.0)], seed=0, config=SimConfig(max_duration_s=6)
    )
    return sim.run()


class TestFromSimSteps:
    def test_packs_all_steps(self):
        steps = tiny_flight()
        seq = RecordedSequence.from_sim_steps("test", steps)
        assert len(seq) == len(steps)
        assert seq.duration_s == pytest.approx(steps[-1].timestamp, abs=1e-9)

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            RecordedSequence.from_sim_steps("x", [])

    def test_tracks_both_sensors(self):
        seq = RecordedSequence.from_sim_steps("test", tiny_flight())
        names = {t.sensor_name for t in seq.tracks}
        assert names == {"tof-front", "tof-rear"}

    def test_pose_accessors(self):
        steps = tiny_flight()
        seq = RecordedSequence.from_sim_steps("test", steps)
        assert seq.ground_truth_pose(0).x == pytest.approx(steps[0].ground_truth.x)
        assert seq.odometry_pose(3).y == pytest.approx(steps[3].odometry.y)


class TestReplay:
    def test_steps_roundtrip(self):
        steps = tiny_flight()
        seq = RecordedSequence.from_sim_steps("test", steps)
        replayed = list(seq.steps())
        assert len(replayed) == len(steps)
        for original, replay in zip(steps, replayed):
            assert replay.timestamp == pytest.approx(original.timestamp)
            np.testing.assert_allclose(
                replay.ground_truth.as_array(), original.ground_truth.as_array()
            )
            np.testing.assert_array_equal(
                replay.frames[0].ranges_m, original.frames[0].ranges_m
            )
            np.testing.assert_array_equal(
                replay.frames[1].status, original.frames[1].status
            )

    def test_frame_metadata_preserved(self):
        seq = RecordedSequence.from_sim_steps("test", tiny_flight())
        step = next(seq.steps())
        front = step.frames[0]
        assert front.sensor_name == "tof-front"
        assert front.azimuths.shape == (8,)


class TestSerialization:
    def test_npz_roundtrip(self, tmp_path):
        seq = RecordedSequence.from_sim_steps("roundtrip", tiny_flight())
        path = tmp_path / "seq.npz"
        seq.save_npz(path)
        loaded = RecordedSequence.load_npz(path)
        assert loaded.name == "roundtrip"
        assert len(loaded) == len(seq)
        np.testing.assert_allclose(loaded.ground_truth, seq.ground_truth)
        np.testing.assert_allclose(loaded.odometry, seq.odometry)
        for a, b in zip(loaded.tracks, seq.tracks):
            assert a.sensor_name == b.sensor_name
            np.testing.assert_array_equal(a.ranges_m, b.ranges_m)
            np.testing.assert_array_equal(a.status, b.status)
            assert a.mount_x == b.mount_x

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            RecordedSequence.load_npz(tmp_path / "missing.npz")

    def test_shape_validation(self):
        with pytest.raises(DatasetError):
            RecordedSequence(
                name="bad",
                timestamps=np.zeros(3),
                ground_truth=np.zeros((2, 3)),
                odometry=np.zeros((3, 3)),
                tracks=[],
            )


class TestVicon:
    def test_noise_is_submillimetre(self):
        tracker = ViconTracker(rng=np.random.default_rng(0))
        truth = Pose2D(1.0, 2.0, 0.5)
        samples = [tracker.sample(truth) for _ in range(200)]
        errors = [s.distance_to(truth) for s in samples]
        assert max(errors) < 0.005
        assert np.std([s.x for s in samples]) < 0.002

    def test_rejects_negative_noise(self):
        from repro.common.errors import SensorError

        with pytest.raises(SensorError):
            ViconSpec(position_noise_sigma_m=-1.0)
