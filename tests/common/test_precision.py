"""Tests for precision modes and the uint8 EDT quantization."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.errors import ConfigurationError
from repro.common.precision import (
    PrecisionMode,
    dequantize_distances,
    quantization_step,
    quantize_distances,
    round_to_storage,
)


class TestPrecisionMode:
    def test_labels_match_paper_figures(self):
        assert PrecisionMode.FP32.value == "fp32"
        assert PrecisionMode.FP32_QM.value == "fp32qm"
        assert PrecisionMode.FP16_QM.value == "fp16qm"

    def test_particle_dtype(self):
        assert PrecisionMode.FP32.particle_dtype == np.float32
        assert PrecisionMode.FP32_QM.particle_dtype == np.float32
        assert PrecisionMode.FP16_QM.particle_dtype == np.float16

    def test_bytes_per_particle_match_paper(self):
        # Paper Sec. III-C2: 32 bytes double-buffered fp32, 16 bytes fp16.
        assert PrecisionMode.FP32.bytes_per_particle == 32
        assert PrecisionMode.FP32_QM.bytes_per_particle == 32
        assert PrecisionMode.FP16_QM.bytes_per_particle == 16

    def test_bytes_per_map_cell_match_paper(self):
        # Paper Sec. IV-C: 5 bytes/cell full precision, 2 bytes/cell quantized.
        assert PrecisionMode.FP32.bytes_per_map_cell == 5
        assert PrecisionMode.FP32_QM.bytes_per_map_cell == 2
        assert PrecisionMode.FP16_QM.bytes_per_map_cell == 2

    def test_edt_quantized_flags(self):
        assert not PrecisionMode.FP32.edt_quantized
        assert PrecisionMode.FP32_QM.edt_quantized
        assert PrecisionMode.FP16_QM.edt_quantized

    def test_from_label_roundtrip(self):
        for mode in PrecisionMode:
            assert PrecisionMode.from_label(mode.value) is mode

    def test_from_label_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            PrecisionMode.from_label("fp64")


class TestQuantization:
    def test_endpoints_exact(self):
        codes = quantize_distances(np.array([0.0, 1.5]), r_max=1.5)
        np.testing.assert_array_equal(codes, [0, 255])

    def test_values_above_rmax_saturate(self):
        codes = quantize_distances(np.array([2.0, 99.0]), r_max=1.5)
        np.testing.assert_array_equal(codes, [255, 255])

    def test_negative_values_clamp_to_zero(self):
        assert quantize_distances(np.array([-0.3]), r_max=1.5)[0] == 0

    def test_dtype_is_uint8(self):
        assert quantize_distances(np.linspace(0, 1.5, 7), 1.5).dtype == np.uint8

    def test_invalid_rmax_rejected(self):
        with pytest.raises(ConfigurationError):
            quantize_distances(np.array([0.1]), r_max=0.0)
        with pytest.raises(ConfigurationError):
            dequantize_distances(np.array([1], dtype=np.uint8), r_max=-1.0)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.5), min_size=1, max_size=64),
        st.floats(min_value=0.5, max_value=4.0),
    )
    def test_roundtrip_error_bounded_by_half_step(self, values, r_max):
        values = np.array(values) * (r_max / 1.5)
        decoded = dequantize_distances(quantize_distances(values, r_max), r_max)
        worst = np.max(np.abs(decoded - np.clip(values, 0, r_max)))
        assert worst <= quantization_step(r_max) / 2 + 1e-6

    def test_paper_truncation_quantization_error_under_3mm(self):
        # r_max = 1.5 m / 255 levels -> half-step error ~2.9 mm (Sec. IV-C).
        assert quantization_step(1.5) / 2 < 0.003

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=32))
    def test_codes_roundtrip_exactly(self, codes):
        codes = np.array(codes, dtype=np.uint8)
        recoded = quantize_distances(dequantize_distances(codes, 1.5), 1.5)
        np.testing.assert_array_equal(recoded, codes)


class TestRoundToStorage:
    def test_fp32_passthrough_precision(self):
        values = np.array([1.0000001], dtype=np.float64)
        out = round_to_storage(values, PrecisionMode.FP32)
        assert out.dtype == np.float32

    def test_fp16_loses_precision(self):
        values = np.array([1.0009765625 / 2 + 1.0])  # not representable in fp16
        out = round_to_storage(values, PrecisionMode.FP16_QM)
        assert out.dtype == np.float16
        assert float(out[0]) != float(values[0])

    def test_fp16_storage_error_bounded(self):
        values = np.linspace(0.0, 8.0, 1000)
        out = round_to_storage(values, PrecisionMode.FP16_QM).astype(np.float64)
        # fp16 has ~3 decimal digits; at magnitude 8 the ULP is 1/128.
        assert np.max(np.abs(out - values)) <= 8.0 / 2048 + 1e-9
