"""Tests for deterministic RNG stream management."""

import numpy as np

from repro.common.rng import PAPER_SEEDS, RngPool, make_rng


class TestMakeRng:
    def test_same_seed_same_stream_reproduces(self):
        a = make_rng(3, "mcl").normal(size=8)
        b = make_rng(3, "mcl").normal(size=8)
        np.testing.assert_array_equal(a, b)

    def test_different_streams_differ(self):
        a = make_rng(3, "mcl").normal(size=8)
        b = make_rng(3, "tof-front").normal(size=8)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(0, "mcl").normal(size=8)
        b = make_rng(1, "mcl").normal(size=8)
        assert not np.allclose(a, b)

    def test_stream_name_stability_across_calls(self):
        # The stream hash must not depend on process state (e.g. PYTHONHASHSEED).
        draws = {make_rng(9, "odometry").integers(1 << 30) for _ in range(3)}
        assert len(draws) == 1


class TestRngPool:
    def test_get_returns_same_generator_instance(self):
        pool = RngPool(5)
        assert pool.get("a") is pool.get("a")

    def test_streams_advance_independently(self):
        pool = RngPool(5)
        first = pool.get("a").normal()
        pool.get("b").normal(size=100)  # advancing b must not affect a
        fresh = RngPool(5)
        fresh_first = fresh.get("a").normal()
        assert first == fresh_first

    def test_fork_produces_independent_pool(self):
        pool = RngPool(5)
        child1 = pool.fork("rep-0")
        child2 = pool.fork("rep-1")
        a = child1.get("mcl").normal(size=4)
        b = child2.get("mcl").normal(size=4)
        assert not np.allclose(a, b)

    def test_fork_is_deterministic(self):
        a = RngPool(5).fork("rep-0").get("mcl").normal(size=4)
        b = RngPool(5).fork("rep-0").get("mcl").normal(size=4)
        np.testing.assert_array_equal(a, b)


def test_paper_seed_protocol_has_six_repetitions():
    assert len(PAPER_SEEDS) == 6
    assert len(set(PAPER_SEEDS)) == 6
