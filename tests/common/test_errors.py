"""Tests for the library exception hierarchy."""

import pytest

from repro.common.errors import (
    ConfigurationError,
    DatasetError,
    EvaluationError,
    MapError,
    PlatformModelError,
    ReproError,
    SensorError,
)

ALL_ERRORS = [
    ConfigurationError,
    DatasetError,
    EvaluationError,
    MapError,
    PlatformModelError,
    SensorError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error_type", ALL_ERRORS)
    def test_derives_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)
        assert issubclass(error_type, Exception)

    @pytest.mark.parametrize("error_type", ALL_ERRORS)
    def test_catchable_as_repro_error(self, error_type):
        with pytest.raises(ReproError):
            raise error_type("boom")

    def test_types_distinct(self):
        # Catching MapError must not swallow SensorError, etc.
        for a in ALL_ERRORS:
            for b in ALL_ERRORS:
                if a is not b:
                    assert not issubclass(a, b)

    def test_message_preserved(self):
        try:
            raise MapError("resolution mismatch: 0.05 vs 0.1")
        except ReproError as caught:
            assert "resolution mismatch" in str(caught)
