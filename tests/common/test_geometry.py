"""Unit and property tests for SE(2) geometry primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.geometry import (
    Pose2D,
    angle_difference,
    circular_mean,
    compose_arrays,
    transform_points,
    wrap_angle,
)

ANGLES = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
COORDS = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


class TestWrapAngle:
    def test_identity_inside_range(self):
        assert wrap_angle(0.5) == pytest.approx(0.5)
        assert wrap_angle(-3.0) == pytest.approx(-3.0)

    def test_pi_maps_to_minus_pi(self):
        assert wrap_angle(math.pi) == pytest.approx(-math.pi)

    def test_multiple_turns(self):
        assert wrap_angle(4 * math.pi + 0.25) == pytest.approx(0.25)
        assert wrap_angle(-6 * math.pi - 0.25) == pytest.approx(-0.25)

    def test_array_input(self):
        out = wrap_angle(np.array([0.0, 2 * math.pi, -2 * math.pi + 0.1]))
        assert isinstance(out, np.ndarray)
        np.testing.assert_allclose(out, [0.0, 0.0, 0.1], atol=1e-12)

    @given(ANGLES)
    def test_always_in_range(self, angle):
        wrapped = wrap_angle(angle)
        assert -math.pi <= wrapped < math.pi

    @given(ANGLES)
    def test_preserves_angle_modulo_two_pi(self, angle):
        wrapped = wrap_angle(angle)
        assert math.isclose(
            math.cos(wrapped), math.cos(angle), abs_tol=1e-9
        ) and math.isclose(math.sin(wrapped), math.sin(angle), abs_tol=1e-9)


class TestAngleDifference:
    def test_simple(self):
        assert angle_difference(0.3, 0.1) == pytest.approx(0.2)

    def test_across_wrap(self):
        assert angle_difference(math.pi - 0.1, -math.pi + 0.1) == pytest.approx(-0.2)

    @given(ANGLES, ANGLES)
    def test_antisymmetric_modulo_wrap(self, a, b):
        d1 = angle_difference(a, b)
        d2 = angle_difference(b, a)
        assert math.isclose(math.sin(d1), -math.sin(d2), abs_tol=1e-9)


class TestCircularMean:
    def test_mean_across_wrap(self):
        angles = np.array([math.pi - 0.1, -math.pi + 0.1])
        assert abs(circular_mean(angles)) == pytest.approx(math.pi, abs=1e-9)

    def test_weighted(self):
        angles = np.array([0.0, 1.0])
        weights = np.array([3.0, 1.0])
        expected = math.atan2(
            (3 * math.sin(0) + math.sin(1)) / 4, (3 * math.cos(0) + math.cos(1)) / 4
        )
        assert circular_mean(angles, weights) == pytest.approx(expected)

    def test_zero_weights_fall_back_to_unweighted(self):
        angles = np.array([0.2, 0.4])
        assert circular_mean(angles, np.zeros(2)) == pytest.approx(0.3, abs=1e-6)

    def test_degenerate_opposed_angles(self):
        # sin and cos sums are both zero: the convention is to return 0.
        assert circular_mean(np.array([0.0, math.pi / 2, math.pi, -math.pi / 2])) == 0.0


class TestPose2D:
    def test_yaw_normalized_on_construction(self):
        pose = Pose2D(0.0, 0.0, 3 * math.pi)
        assert pose.theta == pytest.approx(-math.pi)

    def test_compose_pure_translation(self):
        pose = Pose2D(1.0, 2.0, 0.0).compose(Pose2D(0.5, -0.5, 0.0))
        assert (pose.x, pose.y) == (pytest.approx(1.5), pytest.approx(1.5))

    def test_compose_with_rotation(self):
        # Facing +y, a body-frame forward step moves +y in the world.
        pose = Pose2D(0.0, 0.0, math.pi / 2).compose(Pose2D(1.0, 0.0, 0.0))
        assert pose.x == pytest.approx(0.0, abs=1e-12)
        assert pose.y == pytest.approx(1.0)

    @given(COORDS, COORDS, ANGLES)
    def test_inverse_is_group_inverse(self, x, y, theta):
        pose = Pose2D(x, y, theta)
        identity = pose.compose(pose.inverse())
        assert abs(identity.x) < 1e-6
        assert abs(identity.y) < 1e-6
        assert abs(identity.theta) < 1e-6

    @given(COORDS, COORDS, ANGLES, COORDS, COORDS, ANGLES)
    def test_between_then_compose_roundtrip(self, x1, y1, t1, x2, y2, t2):
        a = Pose2D(x1, y1, t1)
        b = Pose2D(x2, y2, t2)
        recovered = a.compose(a.between(b))
        assert recovered.x == pytest.approx(b.x, abs=1e-6)
        assert recovered.y == pytest.approx(b.y, abs=1e-6)
        assert abs(angle_difference(recovered.theta, b.theta)) < 1e-9

    def test_transform_point_matches_compose(self):
        pose = Pose2D(1.0, -2.0, 0.7)
        px, py = pose.transform_point(0.3, 0.4)
        composed = pose.compose(Pose2D(0.3, 0.4, 0.0))
        assert (px, py) == (pytest.approx(composed.x), pytest.approx(composed.y))

    def test_distance_and_heading_error(self):
        a = Pose2D(0.0, 0.0, 0.0)
        b = Pose2D(3.0, 4.0, math.pi / 4)
        assert a.distance_to(b) == pytest.approx(5.0)
        assert a.heading_error_to(b) == pytest.approx(math.pi / 4)

    def test_array_roundtrip(self):
        pose = Pose2D(1.0, 2.0, 0.5)
        assert Pose2D.from_array(pose.as_array()) == pose

    def test_identity(self):
        assert Pose2D.identity().as_array().tolist() == [0.0, 0.0, 0.0]


class TestVectorizedHelpers:
    def test_transform_points_matches_scalar(self):
        x = np.array([1.0, -2.0])
        y = np.array([0.5, 3.0])
        theta = np.array([0.3, -1.2])
        px = np.array([0.2, 0.0, -0.7])
        py = np.array([-0.1, 1.0, 0.4])
        wx, wy = transform_points(x, y, theta, px, py)
        assert wx.shape == (2, 3)
        for i in range(2):
            pose = Pose2D(x[i], y[i], theta[i])
            for k in range(3):
                ex, ey = pose.transform_point(px[k], py[k])
                assert wx[i, k] == pytest.approx(ex)
                assert wy[i, k] == pytest.approx(ey)

    def test_compose_arrays_matches_scalar(self):
        x = np.array([0.0, 1.0, -1.0])
        y = np.array([0.0, -1.0, 2.0])
        theta = np.array([0.0, math.pi / 2, -0.4])
        nx, ny, ntheta = compose_arrays(x, y, theta, 0.5, -0.2, 0.1)
        for i in range(3):
            expected = Pose2D(x[i], y[i], theta[i]).compose(Pose2D(0.5, -0.2, 0.1))
            assert nx[i] == pytest.approx(expected.x)
            assert ny[i] == pytest.approx(expected.y)
            assert abs(angle_difference(float(ntheta[i]), expected.theta)) < 1e-9

    def test_compose_arrays_per_particle_increments(self):
        x = np.zeros(2)
        y = np.zeros(2)
        theta = np.zeros(2)
        dx = np.array([1.0, 2.0])
        nx, __, __ = compose_arrays(x, y, theta, dx, 0.0, 0.0)
        np.testing.assert_allclose(nx, [1.0, 2.0])
