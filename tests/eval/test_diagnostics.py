"""Tests for filter-health diagnostics."""

import numpy as np
import pytest

from repro.common.errors import EvaluationError
from repro.common.geometry import Pose2D
from repro.core.config import MclConfig
from repro.core.mcl import MonteCarloLocalization
from repro.dataset.recorder import RecordedSequence
from repro.eval.diagnostics import (
    FilterTrace,
    belief_modes,
    trace_filter_health,
)
from repro.maps.maze import generate_maze
from repro.maps.planning import plan_tour, snap_to_clearance
from repro.vehicle.crazyflie import CrazyflieSimulator, SimConfig


@pytest.fixture(scope="module")
def world_and_sequence():
    grid = generate_maze(size_m=3.0, cells=4, seed=5)
    stops = [
        snap_to_clearance(grid, p, 0.15)
        for p in [(0.4, 0.4), (2.6, 0.4), (2.6, 2.6)]
    ]
    route = plan_tour(grid, stops, clearance_m=0.15)
    sim = CrazyflieSimulator(grid, route, seed=3, config=SimConfig(max_duration_s=30))
    return grid, RecordedSequence.from_sim_steps("diag", sim.run())


class TestBeliefModes:
    def test_concentrated_belief_single_mode(self, world_and_sequence):
        grid, __ = world_and_sequence
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=256))
        mcl.reset_at(Pose2D(1.5, 1.5, 0.0), sigma_xy=0.05, sigma_theta=0.05)
        modes = belief_modes(mcl)
        assert len(modes) == 1
        assert modes[0].weight_share == pytest.approx(1.0, abs=1e-6)
        assert abs(modes[0].center_x - 1.5) < 0.1

    def test_uniform_belief_many_modes_or_one_spread(self, world_and_sequence):
        grid, __ = world_and_sequence
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=512), seed=1)
        modes = belief_modes(mcl, cell_m=0.4)
        total_share = sum(m.weight_share for m in modes)
        assert total_share <= 1.0 + 1e-9
        assert sum(m.particle_count for m in modes) <= 512

    def test_modes_sorted_by_share(self, world_and_sequence):
        grid, __ = world_and_sequence
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=512), seed=2)
        modes = belief_modes(mcl, cell_m=0.4, min_share=0.0)
        shares = [m.weight_share for m in modes]
        assert shares == sorted(shares, reverse=True)

    def test_min_share_filters(self, world_and_sequence):
        grid, __ = world_and_sequence
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=512), seed=3)
        all_modes = belief_modes(mcl, cell_m=0.4, min_share=0.0)
        big_modes = belief_modes(mcl, cell_m=0.4, min_share=0.2)
        assert len(big_modes) <= len(all_modes)

    def test_validation(self, world_and_sequence):
        grid, __ = world_and_sequence
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=64))
        with pytest.raises(EvaluationError):
            belief_modes(mcl, cell_m=0.0)
        with pytest.raises(EvaluationError):
            belief_modes(mcl, min_share=1.0)


class TestTraceFilterHealth:
    def test_trace_series_aligned(self, world_and_sequence):
        grid, sequence = world_and_sequence
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=512), seed=0)
        trace = trace_filter_health(grid, sequence, mcl)
        arrays = trace.as_arrays()
        length = arrays["timestamps"].size
        assert length > 5
        for series in arrays.values():
            assert series.size == length

    def test_belief_concentrates_over_run(self, world_and_sequence):
        # Note: a uniform belief over a small map registers as ONE giant
        # connected mode (every bin occupied), so top-mode share is not a
        # uniformity signal here; position spread is.
        grid, sequence = world_and_sequence
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=1024), seed=0)
        trace = trace_filter_health(grid, sequence, mcl)
        # Spread must shrink substantially from the uniform start.
        assert trace.position_std[-1] < trace.position_std[0] / 2
        # The final belief is a single committed mode.
        assert trace.mode_count[-1] == 1
        assert trace.top_mode_share[-1] == pytest.approx(1.0, abs=0.05)

    def test_collapse_time_before_or_none(self, world_and_sequence):
        grid, sequence = world_and_sequence
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=1024), seed=0)
        trace = trace_filter_health(grid, sequence, mcl)
        collapse = trace.collapse_time(share_threshold=0.9)
        if collapse is not None:
            assert trace.timestamps[0] <= collapse <= trace.timestamps[-1]

    def test_short_sequence_rejected(self, world_and_sequence):
        grid, sequence = world_and_sequence
        truncated = RecordedSequence(
            name="short",
            timestamps=sequence.timestamps[:1],
            ground_truth=sequence.ground_truth[:1],
            odometry=sequence.odometry[:1],
            tracks=[],
        )
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=64))
        with pytest.raises(EvaluationError):
            trace_filter_health(grid, truncated, mcl)

    def test_empty_trace_collapse_none(self):
        assert FilterTrace().collapse_time() is None
