"""Tests for the evaluation statistics helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import EvaluationError
from repro.eval.statistics import (
    Interval,
    bootstrap_mean_interval,
    paired_bootstrap_no_worse,
    wilson_interval,
)


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        interval = wilson_interval(8, 10)
        assert interval.lower <= interval.estimate <= interval.upper
        assert interval.estimate == 0.8

    def test_all_successes_upper_is_one(self):
        interval = wilson_interval(10, 10)
        assert interval.upper == pytest.approx(1.0, abs=1e-9)
        assert interval.lower > 0.6

    def test_zero_successes_lower_is_zero(self):
        interval = wilson_interval(0, 10)
        assert interval.lower == 0.0
        assert interval.upper < 0.4

    def test_width_shrinks_with_trials(self):
        small = wilson_interval(5, 10)
        large = wilson_interval(50, 100)
        assert large.width < small.width

    def test_validation(self):
        with pytest.raises(EvaluationError):
            wilson_interval(1, 0)
        with pytest.raises(EvaluationError):
            wilson_interval(11, 10)
        with pytest.raises(EvaluationError):
            wilson_interval(5, 10, confidence=1.0)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 30), st.integers(1, 30))
    def test_property_bounds_ordered(self, successes, extra):
        trials = successes + extra
        interval = wilson_interval(successes, trials)
        assert 0.0 <= interval.lower <= interval.estimate <= interval.upper <= 1.0


class TestBootstrapMean:
    def test_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0.15, 0.03, size=40)
        interval = bootstrap_mean_interval(values, seed=1)
        assert interval.contains(float(values.mean()))
        assert interval.width < 0.05

    def test_ignores_nan(self):
        values = np.array([0.1, 0.2, np.nan, 0.15, 0.12])
        interval = bootstrap_mean_interval(values)
        assert np.isfinite(interval.estimate)

    def test_needs_two_values(self):
        with pytest.raises(EvaluationError):
            bootstrap_mean_interval(np.array([1.0]))

    def test_deterministic_given_seed(self):
        values = np.linspace(0.1, 0.2, 10)
        a = bootstrap_mean_interval(values, seed=3)
        b = bootstrap_mean_interval(values, seed=3)
        assert (a.lower, a.upper) == (b.lower, b.upper)


class TestPairedBootstrap:
    def test_identical_arrays_fully_no_worse(self):
        values = np.linspace(0.1, 0.2, 12)
        assert paired_bootstrap_no_worse(values, values) == 1.0

    def test_clearly_worse_candidate(self):
        reference = np.full(20, 0.10)
        candidate = reference + 0.05 + np.random.default_rng(0).normal(0, 0.005, 20)
        assert paired_bootstrap_no_worse(candidate, reference) < 0.05

    def test_clearly_better_candidate(self):
        reference = np.full(20, 0.15)
        candidate = reference - 0.04 + np.random.default_rng(1).normal(0, 0.005, 20)
        assert paired_bootstrap_no_worse(candidate, reference) > 0.95

    def test_margin_allows_small_regression(self):
        reference = np.full(20, 0.10)
        candidate = reference + 0.01
        strict = paired_bootstrap_no_worse(candidate, reference, margin=0.0)
        relaxed = paired_bootstrap_no_worse(candidate, reference, margin=0.02)
        assert relaxed > strict

    def test_validation(self):
        with pytest.raises(EvaluationError):
            paired_bootstrap_no_worse(np.zeros(3), np.zeros(4))
        with pytest.raises(EvaluationError):
            paired_bootstrap_no_worse(np.array([1.0]), np.array([1.0]))
        with pytest.raises(EvaluationError):
            paired_bootstrap_no_worse(
                np.array([np.nan, np.nan, 1.0]), np.array([1.0, 2.0, np.nan])
            )


class TestInterval:
    def test_contains(self):
        interval = Interval(0.5, 0.4, 0.6, 0.95)
        assert interval.contains(0.45)
        assert not interval.contains(0.7)
        assert interval.width == pytest.approx(0.2)
