"""Tests for the sweep engine: cell dispatch, field cache, process fan-out."""

import math

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, EvaluationError
from repro.core.config import MclConfig
from repro.dataset.recorder import RecordedSequence
from repro.eval.aggregate import SweepProtocol, run_sweep
from repro.eval.bench import compare_backends, write_backend_report
from repro.eval.sweep_engine import DistanceFieldCache, SweepEngine
from repro.maps.distance_field import FieldKind
from repro.maps.maze import generate_maze
from repro.maps.planning import plan_tour, snap_to_clearance
from repro.vehicle.crazyflie import CrazyflieSimulator, SimConfig


@pytest.fixture(scope="module")
def mini_world():
    grid = generate_maze(size_m=3.0, cells=4, seed=5)
    stops = [
        snap_to_clearance(grid, point, 0.15)
        for point in [(0.4, 0.4), (2.6, 0.4), (2.6, 2.6), (1.5, 1.5)]
    ]
    route = plan_tour(grid, stops, clearance_m=0.15)
    sim = CrazyflieSimulator(grid, route, seed=11, config=SimConfig(max_duration_s=30))
    return grid, RecordedSequence.from_sim_steps("mini", sim.run())


def _cell_signatures(result):
    signatures = {}
    for key, cell in result.cells.items():
        signatures[key] = [
            (
                run.sequence_name,
                run.seed,
                run.update_count,
                None if math.isnan(run.metrics.ate_mean_m) else run.metrics.ate_mean_m,
            )
            for run in sorted(cell.runs, key=lambda r: (r.sequence_name, r.seed))
        ]
    return signatures


class TestDistanceFieldCache:
    def test_identical_content_shares_one_field(self, mini_world):
        grid, __ = mini_world
        twin = generate_maze(size_m=3.0, cells=4, seed=5)  # equal content
        cache = DistanceFieldCache()
        first = cache.get(grid, 1.5, FieldKind.FLOAT32)
        second = cache.get(twin, 1.5, FieldKind.FLOAT32)
        assert first is second
        assert cache.misses == 1
        assert cache.hits == 1
        assert len(cache) == 1

    def test_distinct_keys_build_distinct_fields(self, mini_world):
        grid, __ = mini_world
        cache = DistanceFieldCache()
        a = cache.get(grid, 1.5, FieldKind.FLOAT32)
        b = cache.get(grid, 1.5, FieldKind.QUANTIZED_U8)
        c = cache.get(grid, 2.0, FieldKind.FLOAT32)
        assert len({id(a), id(b), id(c)}) == 3
        assert cache.misses == 3


class TestSweepEngine:
    def test_backends_produce_identical_sweeps(self, mini_world):
        grid, sequence = mini_world
        protocol = SweepProtocol(sequence_count=1, seeds=(0, 1, 2))
        results = {}
        for backend in ("reference", "batched"):
            engine = SweepEngine(backend=backend)
            results[backend] = engine.run(
                grid, [sequence], ["fp32", "fp16qm"], [64, 128], protocol=protocol
            )
        assert _cell_signatures(results["reference"]) == _cell_signatures(
            results["batched"]
        )

    def test_field_cache_shared_across_cells(self, mini_world):
        grid, sequence = mini_world
        engine = SweepEngine(backend="batched")
        protocol = SweepProtocol(sequence_count=1, seeds=(0,))
        engine.run(grid, [sequence], ["fp32", "fp32qm", "fp16qm"], [64, 128],
                   protocol=protocol)
        # Three variants over two counts need exactly two field kinds.
        assert len(engine.field_cache) == 2
        assert engine.field_cache.misses == 2

    def test_process_fanout_matches_inline(self, mini_world):
        grid, sequence = mini_world
        protocol = SweepProtocol(sequence_count=1, seeds=(0, 1))
        inline = SweepEngine(backend="batched", jobs=1).run(
            grid, [sequence], ["fp32"], [64, 128], protocol=protocol
        )
        fanned = SweepEngine(backend="batched", jobs=2).run(
            grid, [sequence], ["fp32"], [64, 128], protocol=protocol
        )
        assert _cell_signatures(inline) == _cell_signatures(fanned)

    def test_scenario_fanout_matches_inline(self):
        # Scenario sweeps fan out at (scenario, cell) granularity; the
        # reassembled per-scenario results must match the sequential path
        # run for run (mirrors test_process_fanout_matches_inline).
        scenarios = ["corridor:2:flight_s=6.0", "office:1:flight_s=6.0"]
        protocol = SweepProtocol(sequence_count=1, seeds=(0, 1))
        inline = SweepEngine(backend="batched", jobs=1).run_scenarios(
            scenarios, ["fp32"], [16, 32], protocol=protocol
        )
        fanned = SweepEngine(backend="batched", jobs=2).run_scenarios(
            scenarios, ["fp32"], [16, 32], protocol=protocol
        )
        assert list(inline) == list(fanned)  # same scenarios, same order
        for scenario_id in inline:
            assert _cell_signatures(inline[scenario_id]) == _cell_signatures(
                fanned[scenario_id]
            )

    def test_scenario_sweep_dedupes_specs(self):
        protocol = SweepProtocol(sequence_count=1, seeds=(0,))
        results = SweepEngine(backend="batched").run_scenarios(
            ["corridor:2:flight_s=6.0", "corridor:2:flight_s=6.0"],
            ["fp32"],
            [16],
            protocol=protocol,
        )
        assert list(results) == ["corridor:2:flight_s=6.0"]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepEngine(jobs=0)

    def test_unknown_backend_rejected_eagerly(self):
        with pytest.raises(ConfigurationError):
            SweepEngine(backend="quantum")

    def test_progress_messages_per_run(self, mini_world):
        grid, sequence = mini_world
        messages = []
        run_sweep(
            grid,
            [sequence],
            ["fp32"],
            [64],
            protocol=SweepProtocol(sequence_count=1, seeds=(0, 1)),
            progress=messages.append,
            backend="batched",
        )
        assert len(messages) == 2
        assert all("fp32 N=64" in message for message in messages)

    def test_empty_sequences_rejected(self, mini_world):
        grid, __ = mini_world
        with pytest.raises(EvaluationError):
            SweepEngine().run(grid, [], ["fp32"], [64])


class TestCompareBackends:
    def test_report_structure_and_equivalence(self, mini_world, tmp_path):
        grid, sequence = mini_world
        report = compare_backends(
            grid,
            [sequence],
            variants=["fp32"],
            particle_counts=[64],
            protocol=SweepProtocol(sequence_count=1, seeds=(0, 1)),
        )
        assert report["equivalent"] is True
        # The default comparison covers every constructible backend —
        # always reference + batched, plus fast where a fused provider
        # resolves on this host.
        assert set(report["timings"]) == set(report["backends"])
        assert {"reference", "batched"} <= set(report["backends"])
        assert report["timings"]["reference"]["total_s"] > 0
        assert "batched" in report["speedup_vs_reference"]
        assert report["cpu_count"] >= 1

        path = write_backend_report(report, tmp_path / "BENCH_backends.json")
        assert path.exists()
        import json

        loaded = json.loads(path.read_text())
        assert loaded["backends"] == report["backends"]

    def test_explicit_backend_selection(self, mini_world):
        grid, sequence = mini_world
        report = compare_backends(
            grid,
            [sequence],
            variants=["fp32"],
            particle_counts=[64],
            protocol=SweepProtocol(sequence_count=1, seeds=(0,)),
            backends=("reference", "batched"),
            jobs=1,
        )
        assert report["backends"] == ["reference", "batched"]
        assert set(report["timings"]) == {"reference", "batched"}
        assert "parallel" not in report

    def test_ablated_r_max_uses_its_own_field(self, mini_world):
        # The bench must resolve distance fields per cell (kind, r_max),
        # like SweepEngine.run — an r_max-ablated spec executed against
        # the base config's truncation would silently change results
        # while still reporting "equivalent" (both backends sharing the
        # same wrong field).
        grid, sequence = mini_world
        spec = "fp32+r_max=0.5"
        protocol = SweepProtocol(sequence_count=1, seeds=(0,))
        report = compare_backends(
            grid, [sequence], variants=[spec], particle_counts=[64],
            protocol=protocol,
        )
        assert report["equivalent"] is True

        sweep = SweepEngine(backend="reference").run(
            grid, [sequence], [spec], [64], protocol=protocol
        )
        run = sweep.cells[(spec, 64)].runs[0]
        from repro.eval.bench import _run_signature

        # Re-derive the bench's cell result the way compare_backends
        # does and pin it to the sweep engine's.
        from repro.engine.backend import get_backend
        from repro.eval.sweep_engine import _cell_specs, _execute_cell

        cell = _cell_specs(MclConfig(), [spec], [64])[0]
        assert cell.config.r_max == 0.5
        field = DistanceFieldCache().get(grid, cell.config.r_max, cell.field_kind)
        bench_run = _execute_cell(
            grid, [sequence], protocol.seeds, cell, field,
            get_backend("reference"),
        )[0]
        assert _run_signature(bench_run) == _run_signature(run)
