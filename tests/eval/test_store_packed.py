"""Packed store tier: segments, index sidecars, crash-safety, tier mixes.

The contract under test: cell payload bytes are a pure function of the
cell key in *either* tier, resume is exact (zero recomputation for
intact cells, re-execution only of lost ones), and every crash mode —
torn segment tail, lost sidecar, interrupted compaction — degrades to a
recoverable state where the surviving tier is authoritative.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.common.errors import ConfigurationError, EvaluationError
from repro.core.config import MclConfig, format_override_value
from repro.eval.campaign import (
    CampaignSpec,
    merge_campaign_stores,
    pivot_report,
    run_campaign,
    shard_cells,
)
from repro.eval.store import CampaignStore, canonical_json_bytes

#: Same tiny worlds as test_campaign.py, so the session-cached .npz
#: scenarios are shared and only the first touch simulates flights.
SCENARIOS = ("corridor:2:flight_s=6.0", "office:1:flight_s=6.0")


def tiny_spec(name: str, scenarios=SCENARIOS) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        scenarios=scenarios,
        variants=("fp32",),
        particle_counts=(16, 32),
        seeds=(0, 1),
    )


def cell_bytes(store: CampaignStore) -> dict[str, bytes]:
    return dict(store.iter_cell_bytes())


@pytest.fixture(scope="module")
def reference_stores(tmp_path_factory):
    """One tiny campaign executed twice: once per write tier."""
    root = tmp_path_factory.mktemp("packed-ref")
    spec = tiny_spec("packed-ref")
    file_store = CampaignStore(spec.name, root=root / "file", tier="file")
    packed_store = CampaignStore(spec.name, root=root / "packed", tier="packed")
    run_campaign(spec, store=file_store)
    run_campaign(spec, store=packed_store)
    return spec, file_store, packed_store


class TestPackedTier:
    def test_cell_bytes_identical_across_tiers(self, reference_stores):
        spec, file_store, packed_store = reference_stores
        file_cells = cell_bytes(file_store)
        packed_cells = cell_bytes(packed_store)
        assert file_cells == packed_cells
        assert set(file_cells) == {cell.key for cell in spec.cells()}
        # The packed run wrote segments, not cell files ...
        assert list(packed_store.segments_dir.glob("seg-*.seg"))
        assert not list(packed_store.cells_dir.glob("*.json"))
        # ... and the file run did the inverse.
        assert not file_store.segments_dir.exists()

    def test_completed_keys_and_gets_match(self, reference_stores):
        spec, file_store, packed_store = reference_stores
        expected = {cell.key for cell in spec.cells()}
        assert packed_store.completed_keys() == expected
        assert file_store.completed_keys() == expected
        for cell in spec.cells():
            assert packed_store.get_cell(cell.key) == file_store.get_cell(
                cell.key
            )

    def test_iter_cells_sorted(self, reference_stores):
        __, __, packed_store = reference_stores
        keys = [key for key, __ in packed_store.iter_cells()]
        assert keys == sorted(keys) and keys

    def test_auto_tier_sticks_to_existing_layout(self, reference_stores):
        __, file_store, packed_store = reference_stores
        assert CampaignStore("x", root=file_store.root).write_tier() == "file"
        assert (
            CampaignStore("x", root=packed_store.root).write_tier() == "packed"
        )

    def test_invalid_tier_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="store tier"):
            CampaignStore("c", root=tmp_path, tier="zip")

    def test_resume_is_exact_zero_recomputation(self, reference_stores):
        spec, __, packed_store = reference_stores
        summary = run_campaign(spec, store=packed_store, resume=True)
        assert summary.executed == 0
        assert summary.skipped == summary.total_cells == len(spec.cells())

    def test_put_mismatch_raises_in_packed_tier(self, tmp_path):
        store = CampaignStore("c", root=tmp_path / "c", tier="packed")
        store.put_cell("k-1", {"v": 1})
        store.put_cell("k-1", {"v": 1})  # byte-equal re-put is a no-op
        with pytest.raises(EvaluationError, match="different bytes"):
            store.put_cell("k-1", {"v": 2})

    def test_single_writer_conflict_detected(self, tmp_path, monkeypatch):
        store = CampaignStore("c", root=tmp_path / "c", tier="packed")
        writer = store._segment_writer()
        # Simulate a racing writer grabbing the same sequence number
        # between recovery and open.
        (store.segments_dir / "seg-000000.open").write_bytes(b"")
        monkeypatch.setattr(writer, "_next_sequence", lambda: 0)
        with pytest.raises(EvaluationError, match="single-writer"):
            store.put_cell("k-1", {"v": 1})


class TestCrashSafety:
    def build(self, root: Path, cells: int = 40) -> CampaignStore:
        store = CampaignStore("crash", root=root, tier="packed")
        with store:
            for index in range(cells):
                store.put_cell(f"cell-{index:04d}", {"index": index})
        return CampaignStore("crash", root=root)

    def test_torn_sealed_tail_truncated_and_reindexed(self, tmp_path):
        store = self.build(tmp_path / "s")
        segment = sorted(store.segments_dir.glob("seg-*.seg"))[-1]
        intact = segment.read_bytes()
        segment.write_bytes(intact + b"CELL cell-9999 64\n{torn")
        # The stale sidecar (size mismatch) downgrades to a rescan that
        # stops at the tear: the half-written cell never counts.
        fresh = CampaignStore("crash", root=store.root)
        assert "cell-9999" not in fresh.completed_keys()
        assert len(fresh.completed_keys()) == 40
        repaired = fresh.recover(tmp_grace_s=0.0)
        assert segment.name in repaired
        assert segment.read_bytes() == intact
        assert len(CampaignStore("crash", root=store.root)) == 40

    def test_torn_open_segment_sealed_by_next_writer(self, tmp_path):
        root = tmp_path / "s"
        store = CampaignStore("crash", root=root, tier="packed")
        for index in range(5):
            store.put_cell(f"cell-{index:04d}", {"index": index})
        # Crash: writer never closed; its .open segment gets a torn tail.
        active = next(store.segments_dir.glob("seg-*.open"))
        store._writer._handle.close()
        store._writer = None
        active.write_bytes(active.read_bytes() + b"CELL half 999\n{")
        resumed = CampaignStore("crash", root=root)
        resumed.put_cell("cell-new", {"index": 99})
        resumed.close()
        assert not list(resumed.segments_dir.glob("seg-*.open"))
        final = CampaignStore("crash", root=root)
        assert final.completed_keys() == {
            f"cell-{index:04d}" for index in range(5)
        } | {"cell-new"}
        assert "half" not in final.completed_keys()

    def test_missing_sidecar_self_heals(self, tmp_path):
        store = self.build(tmp_path / "s")
        segment = sorted(store.segments_dir.glob("seg-*.seg"))[0]
        sidecar = segment.with_name(segment.name + ".idx.json")
        sidecar.unlink()
        fresh = CampaignStore("crash", root=store.root)
        assert len(fresh.completed_keys()) == 40  # rescan fallback
        fresh.recover(tmp_grace_s=0.0)
        payload = json.loads(sidecar.read_text())
        assert payload["bytes"] == segment.stat().st_size
        assert len(payload["records"]) > 0

    def test_interrupted_compaction_leaves_source_authoritative(
        self, tmp_path, monkeypatch
    ):
        root = tmp_path / "s"
        store = CampaignStore("crash", root=root, tier="file")
        payloads = {f"cell-{index:04d}": {"index": index} for index in range(12)}
        for key, payload in payloads.items():
            store.put_cell(key, payload)
        before = cell_bytes(store)

        # Crash mid-deletion: verification has passed, some (but not
        # all) source files are gone.  Packed copies were byte-verified
        # before the first delete, so nothing is lost either way.
        real_unlink = Path.unlink
        state = {"deletes": 0}

        def crashy_unlink(self, *args, **kwargs):
            if self.suffix == ".json" and self.parent.name == "cells":
                state["deletes"] += 1
                if state["deletes"] > 3:
                    raise OSError("simulated crash mid-compaction")
            return real_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", crashy_unlink)
        victim = CampaignStore("crash", root=root)
        with pytest.raises(OSError, match="simulated crash"):
            victim.compact()
        monkeypatch.setattr(Path, "unlink", real_unlink)

        # The store still answers every key with the original bytes.
        survivor = CampaignStore("crash", root=root)
        assert cell_bytes(survivor) == before
        assert survivor.completed_keys() == set(payloads)
        remaining = len(list(survivor.cells_dir.glob("*.json")))
        assert remaining == len(payloads) - 3
        # Re-running compaction completes the migration byte-identically:
        # every surviving file is already packed (verified pre-delete).
        summary = CampaignStore("crash", root=root).compact()
        assert summary.already_packed == remaining
        assert summary.removed_files == remaining
        compacted = CampaignStore("crash", root=root)
        assert cell_bytes(compacted) == before
        assert not list(compacted.cells_dir.glob("*.json"))

    def test_partially_packed_store_reads_consistently(self, tmp_path):
        # The moment *before* compaction deletes anything: every cell in
        # the file tier, half also packed.  Reads dedupe and agree.
        root = tmp_path / "s"
        store = CampaignStore("crash", root=root, tier="file")
        for index in range(10):
            store.put_cell(f"cell-{index:04d}", {"index": index})
        before = cell_bytes(store)
        half = CampaignStore("crash", root=root, tier="packed")
        with half:
            for index in range(5):
                half.put_cell_bytes(
                    f"cell-{index:04d}",
                    canonical_json_bytes({"index": index}),
                )
        mixed = CampaignStore("crash", root=root)
        assert cell_bytes(mixed) == before
        assert len(mixed.completed_keys()) == 10


class TestTierMixes:
    def test_shard_merge_round_trip_across_tiers(
        self, reference_stores, tmp_path
    ):
        spec, file_store, __ = reference_stores
        reference = cell_bytes(file_store)
        shards = shard_cells(spec, 2)
        shard_stores = []
        for index, tier in enumerate(("file", "packed")):
            shard_store = CampaignStore(
                spec.name, root=tmp_path / f"shard{index}", tier=tier
            )
            run_campaign(spec, store=shard_store, shard=(index, 2))
            shard_stores.append(shard_store)
            assert len(cell_bytes(shard_store)) == len(shards[index])
        for tier in ("file", "packed"):
            dest = CampaignStore(
                spec.name, root=tmp_path / f"dest-{tier}", tier=tier
            )
            first = merge_campaign_stores(dest, shard_stores[0])
            second = merge_campaign_stores(dest, shard_stores[1])
            assert first.copied == len(shards[0])
            assert second.copied == len(shards[1])
            assert cell_bytes(dest) == reference

    def test_resume_after_partial_segment_loss(
        self, reference_stores, tmp_path
    ):
        spec, file_store, packed_store = reference_stores
        reference = cell_bytes(file_store)
        root = tmp_path / "lossy"
        shutil.copytree(packed_store.root, root)
        store = CampaignStore(spec.name, root=root)
        segment = sorted(store.segments_dir.glob("seg-*.seg"))[-1]
        blob = segment.read_bytes()
        segment.write_bytes(blob[: len(blob) - 10])  # tear the last record
        segment.with_name(segment.name + ".idx.json").unlink()
        lost = len(reference) - len(store.completed_keys())
        assert lost >= 1
        summary = run_campaign(spec, store=store, resume=True)
        assert summary.executed == lost
        assert summary.skipped == len(reference) - lost
        assert cell_bytes(CampaignStore(spec.name, root=root)) == reference


class TestPivotReport:
    @pytest.fixture(scope="class")
    def ablation_store(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("pivot")
        spec = CampaignSpec(
            name="pivot-tiny",
            scenarios=(SCENARIOS[1],),
            variants=("fp32", "fp32+sigma=1.0", "fp32+beam_rows=2/3"),
            particle_counts=(16,),
            seeds=(0,),
        )
        store = CampaignStore(spec.name, root=root / "s", tier="packed")
        run_campaign(spec, store=store)
        return spec, store

    def test_pivot_by_sigma(self, ablation_store):
        spec, store = ablation_store
        report = pivot_report(spec.name, "sigma", store=store)
        rows = report[spec.scenarios[0]]
        default = format_override_value(MclConfig().sigma_obs)
        # fp32 and its sigma ablation share one base row; the beam_rows
        # variant keeps its override and forms its own row at the
        # default sigma column.
        assert set(rows[("fp32", 16)]) == {default, "1.0"}
        assert set(rows[("fp32+beam_rows=2/3", 16)]) == {default}
        for cells in rows.values():
            for aggregate in cells.values():
                assert aggregate["runs"] == 1

    def test_pivot_by_beam_rows(self, ablation_store):
        spec, store = ablation_store
        report = pivot_report(spec.name, "beam_rows", store=store)
        rows = report[spec.scenarios[0]]
        default = format_override_value(MclConfig().beam_rows)
        assert set(rows[("fp32", 16)]) == {default, "2/3"}
        assert set(rows[("fp32+sigma_obs=1.0", 16)]) == {default}

    def test_unknown_pivot_key_rejected(self, ablation_store):
        spec, store = ablation_store
        with pytest.raises(ConfigurationError, match="unknown pivot key"):
            pivot_report(spec.name, "warp", store=store)
