"""Tests for the paper's evaluation metrics."""

import math

import numpy as np
import pytest

from repro.common.errors import EvaluationError
from repro.eval.metrics import (
    CONVERGENCE_POSITION_M,
    CONVERGENCE_YAW_RAD,
    SUCCESS_ATE_LIMIT_M,
    AggregateMetrics,
    RunMetrics,
    convergence_curve,
    evaluate_run,
    first_convergence_index,
)


class TestThresholds:
    def test_paper_values(self):
        # Sec. IV-A: convergence within (36° / 0.2 m), success if ATE <= 1 m.
        assert CONVERGENCE_POSITION_M == 0.2
        assert CONVERGENCE_YAW_RAD == pytest.approx(math.radians(36))
        assert SUCCESS_ATE_LIMIT_M == 1.0


class TestFirstConvergence:
    def test_both_conditions_needed(self):
        pos = np.array([0.5, 0.1, 0.1])
        yaw = np.array([0.1, 2.0, 0.1])
        assert first_convergence_index(pos, yaw) == 2

    def test_never(self):
        assert first_convergence_index(np.array([1.0, 1.0]), np.array([0.0, 0.0])) is None

    def test_immediately(self):
        assert first_convergence_index(np.array([0.0]), np.array([0.0])) == 0


class TestEvaluateRun:
    def test_successful_run(self):
        t = np.arange(10.0)
        pos = np.array([2.0, 1.5, 0.5, 0.15, 0.1, 0.12, 0.2, 0.18, 0.1, 0.15])
        yaw = np.full(10, 0.1)
        metrics = evaluate_run(t, pos, yaw)
        assert metrics.converged
        assert metrics.convergence_time_s == 3.0
        assert metrics.success
        assert metrics.ate_mean_m == pytest.approx(np.mean(pos[3:]))
        assert metrics.ate_rmse_m == pytest.approx(np.sqrt(np.mean(pos[3:] ** 2)))
        assert metrics.ate_max_m == pytest.approx(0.2)

    def test_tracking_lost_after_convergence(self):
        t = np.arange(6.0)
        pos = np.array([0.1, 0.1, 0.1, 1.5, 0.1, 0.1])  # spike above 1 m
        yaw = np.zeros(6)
        metrics = evaluate_run(t, pos, yaw)
        assert metrics.converged
        assert not metrics.success

    def test_never_converged(self):
        t = np.arange(4.0)
        metrics = evaluate_run(t, np.full(4, 2.0), np.zeros(4))
        assert not metrics.converged
        assert not metrics.success
        assert metrics.convergence_time_s is None
        assert math.isnan(metrics.ate_mean_m)

    def test_convergence_time_relative_to_start(self):
        t = np.array([10.0, 11.0, 12.0])
        pos = np.array([1.0, 0.1, 0.1])
        metrics = evaluate_run(t, pos, np.zeros(3))
        assert metrics.convergence_time_s == 1.0

    def test_yaw_gates_convergence(self):
        t = np.arange(3.0)
        pos = np.full(3, 0.1)
        yaw = np.array([1.0, 1.0, 0.1])
        metrics = evaluate_run(t, pos, yaw)
        assert metrics.convergence_time_s == 2.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EvaluationError):
            evaluate_run(np.zeros(3), np.zeros(2), np.zeros(3))

    def test_empty_rejected(self):
        with pytest.raises(EvaluationError):
            evaluate_run(np.array([]), np.array([]), np.array([]))


class TestConvergenceCurve:
    def test_step_curve(self):
        times, probs = convergence_curve([1.0, 3.0, None], horizon_s=4.0)
        assert probs[0] == 0.0
        # After t=1: 1/3 converged; after t=3: 2/3; never reaches 1.
        assert probs[int(1.0)] == pytest.approx(1 / 3)
        assert probs[int(3.0)] == pytest.approx(2 / 3)
        assert probs[-1] == pytest.approx(2 / 3)

    def test_monotone_nondecreasing(self):
        __, probs = convergence_curve([0.5, 2.5, 7.0, None], horizon_s=10.0, resolution_s=0.5)
        assert np.all(np.diff(probs) >= 0)

    def test_rejects_empty(self):
        with pytest.raises(EvaluationError):
            convergence_curve([], horizon_s=5.0)

    def test_rejects_bad_horizon(self):
        with pytest.raises(EvaluationError):
            convergence_curve([1.0], horizon_s=0.0)


class TestAggregateMetrics:
    @staticmethod
    def _metrics(success: bool, ate: float, conv: float | None) -> RunMetrics:
        return RunMetrics(
            converged=conv is not None,
            convergence_time_s=conv,
            success=success,
            ate_mean_m=ate,
            ate_rmse_m=ate,
            ate_max_m=ate,
            yaw_mean_rad=0.1,
        )

    def test_success_rate(self):
        agg = AggregateMetrics()
        agg.add(self._metrics(True, 0.1, 5.0))
        agg.add(self._metrics(True, 0.2, 10.0))
        agg.add(self._metrics(False, float("nan"), None))
        assert agg.success_rate == pytest.approx(2 / 3)
        assert agg.run_count == 3

    def test_mean_ate_over_converged_only(self):
        agg = AggregateMetrics()
        agg.add(self._metrics(True, 0.1, 5.0))
        agg.add(self._metrics(False, float("nan"), None))
        agg.add(self._metrics(True, 0.3, 8.0))
        assert agg.mean_ate_m == pytest.approx(0.2)

    def test_mean_ate_nan_when_nothing_converged(self):
        agg = AggregateMetrics()
        agg.add(self._metrics(False, float("nan"), None))
        assert math.isnan(agg.mean_ate_m)

    def test_convergence_times_passthrough(self):
        agg = AggregateMetrics()
        agg.add(self._metrics(True, 0.1, 5.0))
        agg.add(self._metrics(False, float("nan"), None))
        assert agg.convergence_times == [5.0, None]

    def test_empty_aggregate_rejected(self):
        with pytest.raises(EvaluationError):
            AggregateMetrics().success_rate
