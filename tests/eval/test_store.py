"""Tests for the campaign result store: atomicity, recovery, determinism."""

import json
import os

import pytest

from repro.common.errors import ConfigurationError, EvaluationError
from repro.eval.store import (
    CampaignStore,
    campaigns_root,
    canonical_json_bytes,
    list_campaigns,
    sanitize_nan,
)


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        a = canonical_json_bytes({"b": 1, "a": [1, 2], "c": {"y": 1, "x": 2}})
        b = canonical_json_bytes({"c": {"x": 2, "y": 1}, "a": [1, 2], "b": 1})
        assert a == b

    def test_trailing_newline(self):
        assert canonical_json_bytes({}).endswith(b"\n")

    def test_nan_and_inf_become_null(self):
        data = json.loads(
            canonical_json_bytes(
                {"nan": float("nan"), "inf": float("inf"), "nested": [float("-inf")]}
            )
        )
        assert data == {"nan": None, "inf": None, "nested": [None]}

    def test_sanitize_preserves_finite_values(self):
        assert sanitize_nan({"x": 1.5, "y": [0, "s"], "z": (1,)}) == {
            "x": 1.5,
            "y": [0, "s"],
            "z": [1],
        }


class TestCampaignStore:
    def test_rejects_path_like_names(self):
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ConfigurationError):
                CampaignStore(bad)

    def test_put_get_roundtrip(self, tmp_path):
        store = CampaignStore("c", root=tmp_path / "c")
        payload = {"cell": {"variant": "fp32"}, "runs": []}
        path = store.put_cell("k1", payload)
        assert path.exists()
        assert store.get_cell("k1") == payload
        assert store.has_cell("k1")
        assert store.completed_keys() == {"k1"}

    def test_put_is_append_only(self, tmp_path):
        store = CampaignStore("c", root=tmp_path / "c")
        store.put_cell("k1", {"v": 1})
        store.put_cell("k1", {"v": 1})  # identical bytes: no-op
        with pytest.raises(EvaluationError):
            store.put_cell("k1", {"v": 2})  # determinism violation

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        store = CampaignStore("c", root=tmp_path / "c")
        store.put_cell("k1", {"v": 1})
        assert list(store.cells_dir.glob("*.tmp")) == []

    def test_partial_files_do_not_count_as_completed(self, tmp_path):
        store = CampaignStore("c", root=tmp_path / "c")
        store.put_cell("good", {"v": 1})
        store.cells_dir.joinpath("torn.json").write_text('{"v": 1')  # truncated
        store.cells_dir.joinpath("leftover.json.tmp").write_text("{}")
        assert store.completed_keys() == {"good"}
        assert store.get_cell("torn") is None
        assert not store.has_cell("torn")
        assert dict(store.iter_cells()) == {"good": {"v": 1}}

    def test_recover_sweeps_partials_only(self, tmp_path):
        store = CampaignStore("c", root=tmp_path / "c")
        store.put_cell("good", {"v": 1})
        store.cells_dir.joinpath("torn.json").write_text('{"v": 1')
        leftover = store.cells_dir / "leftover.json.tmp"
        leftover.write_text("{}")
        os.utime(leftover, (0, 0))  # abandoned long ago
        stale_manifest = store.root / "manifest.json.abc123.tmp"
        stale_manifest.write_text("{}")
        os.utime(stale_manifest, (0, 0))
        removed = store.recover()
        assert sorted(removed) == [
            "leftover.json.tmp",
            "manifest.json.abc123.tmp",
            "torn.json",
        ]
        assert store.completed_keys() == {"good"}
        assert store.recover() == []  # healthy store loses nothing

    def test_recover_spares_fresh_tmp_of_live_writers(self, tmp_path):
        store = CampaignStore("c", root=tmp_path / "c")
        store.cells_dir.mkdir(parents=True)
        fresh = store.cells_dir / "inflight.json.tmp"
        fresh.write_text("{}")  # a concurrent writer mid-publish
        assert store.recover() == []
        assert fresh.exists()
        assert store.recover(tmp_grace_s=0.0) == ["inflight.json.tmp"]

    def test_manifest_written_once_and_verified(self, tmp_path):
        store = CampaignStore("c", root=tmp_path / "c")
        store.write_manifest({"name": "c", "seeds": [0, 1]})
        store.write_manifest({"seeds": [0, 1], "name": "c"})  # same content ok
        with pytest.raises(EvaluationError):
            store.write_manifest({"name": "c", "seeds": [0, 2]})
        assert store.read_manifest()["seeds"] == [0, 1]
        assert store.read_manifest()["store_version"] == 1

    def test_atomic_create_is_exclusive(self, tmp_path):
        from repro.common.atomics import atomic_create

        target = tmp_path / "m.json"
        assert atomic_create(target, b"one") is True
        assert atomic_create(target, b"two") is False
        assert target.read_bytes() == b"one"  # first creator wins
        assert list(tmp_path.glob("*.tmp")) == []  # scratch cleaned up

    def test_read_manifest_missing_raises(self, tmp_path):
        with pytest.raises(EvaluationError):
            CampaignStore("nope", root=tmp_path / "nope").read_manifest()

    def test_len_counts_valid_cells(self, tmp_path):
        store = CampaignStore("c", root=tmp_path / "c")
        assert len(store) == 0
        store.put_cell("a", {})
        store.put_cell("b", {})
        assert len(store) == 2


class TestListCampaigns:
    def test_lists_only_directories_with_manifest(self, tmp_path):
        CampaignStore("one", root=tmp_path / "one").write_manifest({"name": "one"})
        (tmp_path / "junk").mkdir()
        assert list_campaigns(tmp_path) == ["one"]
        assert list_campaigns(tmp_path / "absent") == []

    def test_default_root_under_results_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert campaigns_root() == tmp_path / "campaigns"
        store = CampaignStore("env")
        assert store.root == tmp_path / "campaigns" / "env"
