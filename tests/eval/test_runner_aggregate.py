"""Tests for the evaluation runner and sweep orchestration.

These use a miniature world and short synthetic flights so the full
protocol machinery is exercised in seconds; the real paper-scale numbers
come from the benchmark harness.
"""

import numpy as np
import pytest

from repro.common.errors import EvaluationError
from repro.core.config import MclConfig
from repro.dataset.recorder import RecordedSequence
from repro.eval.aggregate import (
    SweepProtocol,
    build_shared_fields,
    run_sweep,
)
from repro.eval.runner import run_localization
from repro.maps.maze import generate_maze
from repro.maps.planning import plan_tour, snap_to_clearance
from repro.vehicle.crazyflie import CrazyflieSimulator, SimConfig


@pytest.fixture(scope="module")
def mini_world():
    # A miniature procedural maze: corridors constrain the beams the same
    # way the paper's drone maze does, just at 9 m² scale.  Hand-made
    # shelf-wall layouts tend to be rotationally near-symmetric (making
    # global localization a coin flip); the backtracker maze is not.
    grid = generate_maze(size_m=3.0, cells=4, seed=5)
    stops = [
        snap_to_clearance(grid, point, 0.15)
        for point in [(0.4, 0.4), (2.6, 0.4), (2.6, 2.6), (0.4, 2.6), (1.5, 1.5)]
    ]
    route = plan_tour(grid, stops, clearance_m=0.15)
    sim = CrazyflieSimulator(grid, route, seed=11, config=SimConfig(max_duration_s=60))
    sequence = RecordedSequence.from_sim_steps("mini", sim.run())
    return grid, sequence


class TestRunLocalization:
    def test_produces_aligned_traces(self, mini_world):
        grid, sequence = mini_world
        config = MclConfig(particle_count=512)
        result = run_localization(grid, sequence, config, seed=0)
        assert result.timestamps.shape == result.position_errors.shape
        assert result.estimate_trace.shape == (len(sequence), 3)
        assert result.update_count > 0
        assert result.variant == "fp32"
        assert result.particle_count == 512

    def test_tracks_small_world_from_known_start(self, mini_world):
        # Pose tracking (the regime any MCL must nail): seeded near the
        # true start pose, the filter must stay locked on.  Global
        # convergence at full scale is covered by the integration tests
        # on the main maze.
        grid, sequence = mini_world
        config = MclConfig(particle_count=1024)
        result = run_localization(grid, sequence, config, seed=1, tracking_init=True)
        assert result.metrics.converged
        assert result.metrics.success
        assert result.metrics.ate_mean_m < 0.35

    def test_deterministic(self, mini_world):
        grid, sequence = mini_world
        config = MclConfig(particle_count=256)
        a = run_localization(grid, sequence, config, seed=3)
        b = run_localization(grid, sequence, config, seed=3)
        np.testing.assert_allclose(a.position_errors, b.position_errors)

    def test_seeds_differ(self, mini_world):
        grid, sequence = mini_world
        config = MclConfig(particle_count=256)
        a = run_localization(grid, sequence, config, seed=4)
        b = run_localization(grid, sequence, config, seed=5)
        assert not np.allclose(a.position_errors, b.position_errors)

    def test_short_sequence_rejected(self, mini_world):
        grid, sequence = mini_world
        truncated = RecordedSequence(
            name="short",
            timestamps=sequence.timestamps[:1],
            ground_truth=sequence.ground_truth[:1],
            odometry=sequence.odometry[:1],
            tracks=[
                type(t)(
                    sensor_name=t.sensor_name,
                    ranges_m=t.ranges_m[:1],
                    status=t.status[:1],
                    azimuths=t.azimuths,
                    mount_x=t.mount_x,
                    mount_y=t.mount_y,
                )
                for t in sequence.tracks
            ],
        )
        with pytest.raises(EvaluationError):
            run_localization(grid, truncated, MclConfig(particle_count=64), seed=0)


class TestProtocol:
    def test_env_quick(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        protocol = SweepProtocol.from_env()
        assert protocol.sequence_count == 3
        assert len(protocol.seeds) == 2

    def test_env_paper(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        protocol = SweepProtocol.from_env()
        assert protocol.sequence_count == 6
        assert len(protocol.seeds) == 6

    def test_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(EvaluationError):
            SweepProtocol.from_env()


class TestSharedFields:
    def test_builds_only_needed_kinds(self, mini_world):
        grid, __ = mini_world
        fields = build_shared_fields(grid, 1.5, ["fp32"])
        assert set(fields) == {"float32"}
        fields = build_shared_fields(grid, 1.5, ["fp16qm", "fp32qm"])
        assert set(fields) == {"quantized_u8"}
        fields = build_shared_fields(grid, 1.5, ["fp32", "fp16qm"])
        assert set(fields) == {"float32", "quantized_u8"}


class TestRunSweep:
    def test_small_sweep_structure(self, mini_world):
        grid, sequence = mini_world
        protocol = SweepProtocol(sequence_count=1, seeds=(0, 1))
        messages = []
        result = run_sweep(
            grid,
            [sequence],
            variants=["fp32", "fp16qm"],
            particle_counts=[128, 512],
            protocol=protocol,
            progress=messages.append,
        )
        assert len(result.cells) == 4
        for (variant, count), cell in result.cells.items():
            assert cell.aggregate.run_count == 2  # 1 sequence x 2 seeds
            assert variant in ("fp32", "fp16qm")
            assert count in (128, 512)
        assert len(messages) == 8

    def test_series_accessors(self, mini_world):
        grid, sequence = mini_world
        protocol = SweepProtocol(sequence_count=1, seeds=(0,))
        result = run_sweep(
            grid, [sequence], ["fp32"], [128, 512], protocol=protocol
        )
        ate = result.ate_series("fp32", [128, 512])
        success = result.success_series("fp32", [128, 512])
        assert len(ate) == 2
        assert len(success) == 2
        assert all(0.0 <= s <= 100.0 for s in success)
        times = result.convergence_times("fp32", 128)
        assert len(times) == 1

    def test_empty_sequences_rejected(self, mini_world):
        grid, __ = mini_world
        with pytest.raises(EvaluationError):
            run_sweep(grid, [], ["fp32"], [64])
