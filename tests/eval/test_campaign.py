"""Tests for the campaign layer: spec expansion, resume, determinism."""

import hashlib

import pytest

from repro.common.errors import ConfigurationError, EvaluationError
from repro.eval.campaign import (
    CampaignCell,
    CampaignSpec,
    aggregate_report,
    campaign_status,
    load_campaign,
    merge_campaign_stores,
    run_campaign,
    shard_cells,
)
from repro.eval.store import CampaignStore, canonical_json_bytes
from repro.scenarios.base import ScenarioSpec

#: Deliberately tiny: two worlds, one variant, two cells per world, short
#: flights.  Scenario generation is cached in the session tmp data dir,
#: so every test after the first reuses the .npz instead of re-simulating.
SCENARIOS = ("corridor:2:flight_s=6.0", "office:1:flight_s=6.0")
VARIANTS = ("fp32",)
COUNTS = (16, 32)
SEEDS = (0, 1)


def tiny_spec(name: str = "tiny") -> CampaignSpec:
    return CampaignSpec(
        name=name,
        scenarios=SCENARIOS,
        variants=VARIANTS,
        particle_counts=COUNTS,
        seeds=SEEDS,
    )


def store_bytes(store: CampaignStore) -> dict[str, bytes]:
    return {
        path.name: path.read_bytes()
        for path in sorted(store.cells_dir.glob("*.json"))
    }


class TestCampaignSpec:
    def test_scenarios_normalized_and_deduped(self):
        spec = CampaignSpec(
            name="c",
            scenarios=("office", "office:0", "maze:1:braid=0.2+cells=5"),
            variants=("fp32",),
            particle_counts=(16,),
            seeds=(0,),
        )
        assert spec.scenarios == ("office:0", "maze:1:braid=0.2+cells=5")

    def test_all_axes_deduped(self):
        spec = CampaignSpec(
            name="c",
            scenarios=("office:0",),
            variants=("fp32", "fp32"),
            particle_counts=(16, 16, 32),
            seeds=(0, 0, 1),
        )
        assert spec.variants == ("fp32",)
        assert spec.particle_counts == (16, 32)
        assert spec.seeds == (0, 1)
        assert len(spec.cells()) == 2

    def test_validation_errors(self):
        good = dict(
            name="c",
            scenarios=("office:0",),
            variants=("fp32",),
            particle_counts=(16,),
            seeds=(0,),
        )
        for overrides in (
            {"name": ""},
            {"scenarios": ()},
            {"scenarios": ("warehouse:1",)},
            {"variants": ()},
            {"variants": ("fp64",)},
            {"particle_counts": ()},
            {"particle_counts": (0,)},
            {"seeds": ()},
        ):
            with pytest.raises(ConfigurationError):
                CampaignSpec(**{**good, **overrides})

    def test_cells_scenario_major_deterministic(self):
        cells = tiny_spec().cells()
        assert [(c.scenario, c.variant, c.particle_count) for c in cells] == [
            (scenario, variant, count)
            for scenario in tiny_spec().scenarios
            for variant in VARIANTS
            for count in COUNTS
        ]
        assert len({cell.key for cell in cells}) == len(cells)

    def test_cell_keys_independent_of_spec_spelling(self):
        a = CampaignSpec(
            name="c", scenarios=("office",), variants=("fp32",),
            particle_counts=(16,), seeds=(0,),
        )
        b = CampaignSpec(
            name="c", scenarios=("office:0",), variants=("fp32",),
            particle_counts=(16,), seeds=(0,),
        )
        assert [cell.key for cell in a.cells()] == [cell.key for cell in b.cells()]

    def test_cell_keys_depend_on_seed_protocol(self):
        a = tiny_spec().cells()[0]
        b = CampaignSpec(
            name="c", scenarios=SCENARIOS, variants=VARIANTS,
            particle_counts=COUNTS, seeds=(0, 1, 2),
        ).cells()[0]
        assert a.key != b.key

    def test_manifest_roundtrip(self):
        spec = tiny_spec()
        assert CampaignSpec.from_manifest(spec.to_manifest()) == spec

    def test_variant_validation_routes_through_config_parser(self):
        good = dict(
            name="c", scenarios=("office:0",), variants=("fp32",),
            particle_counts=(16,), seeds=(0,),
        )
        # Ablated specs are valid variants now...
        spec = CampaignSpec(**{**good, "variants": ("fp32+sigma=0.5",)})
        assert spec.variants == ("fp32+sigma_obs=0.5",)
        # ...and bad specs get the parser's real error, not a
        # PAPER_VARIANTS membership check.
        for bad in ("fp64", "fp32+warp=9", "fp32+sigma=fast"):
            with pytest.raises(ConfigurationError):
                CampaignSpec(**{**good, "variants": (bad,)})

    def test_variant_spellings_collapse_to_one_cell(self):
        spec = CampaignSpec(
            name="c", scenarios=("office:0",),
            variants=("fp32+sigma=0.5", "fp32+sigma_obs=0.5", "fp32+sigma_obs=2.0", "fp32"),
            particle_counts=(16,), seeds=(0,),
        )
        assert spec.variants == ("fp32+sigma_obs=0.5", "fp32")

    def test_default_variant_cells_keep_legacy_keys(self):
        # Pre-config-axis key algorithm, reproduced verbatim: content
        # digest over {scenario, variant, particle_count, seeds} and a
        # `<stem>-<variant>-n<N>-<digest>` filename.  Pure paper
        # variants at default params must still produce exactly this,
        # or existing stores would re-execute everything on resume.
        cell = CampaignCell("office:1", "fp32", 64, (0, 1))
        identity = {
            "scenario": "office:1",
            "variant": "fp32",
            "particle_count": 64,
            "seeds": [0, 1],
        }
        digest = hashlib.sha256(
            canonical_json_bytes(identity)
        ).hexdigest()[:12]
        stem = ScenarioSpec.parse("office:1").cache_stem
        assert cell.key == f"{stem}-fp32-n64-{digest}"

    def test_ablated_cells_fold_in_the_fingerprint(self):
        from repro.core.config import ConfigSpec

        cell = CampaignCell("office:1", "fp32+sigma_obs=0.5", 64, (0, 1))
        fingerprint = ConfigSpec.parse("fp32+sigma_obs=0.5").fingerprint()
        assert fingerprint in cell.key
        assert cell.key != CampaignCell("office:1", "fp32", 64, (0, 1)).key

    def test_shard_cells_partition_round_robin(self):
        spec = tiny_spec()
        cells = spec.cells()
        shards = shard_cells(spec, 3)
        # Disjoint, exhaustive, deterministic round-robin.
        flat = sorted(
            (cell.key for shard in shards for cell in shard)
        )
        assert flat == sorted(cell.key for cell in cells)
        for index, shard in enumerate(shards):
            assert [cell.key for cell in shard] == [
                cell.key for cell in cells[index::3]
            ]
        with pytest.raises(ConfigurationError):
            shard_cells(spec, 0)


class TestRunCampaign:
    @pytest.fixture(scope="class")
    def fresh(self, tmp_path_factory):
        """One executed campaign shared by the read-only assertions."""
        root = tmp_path_factory.mktemp("campaign") / "fresh"
        store = CampaignStore("tiny", root=root)
        summary = run_campaign(tiny_spec(), store=store)
        return store, summary

    def test_fresh_run_stores_every_cell(self, fresh):
        store, summary = fresh
        assert summary.executed == summary.total_cells == len(tiny_spec().cells())
        assert summary.skipped == 0
        assert store.completed_keys() == {c.key for c in tiny_spec().cells()}

    def test_cell_payload_shape(self, fresh):
        store, __ = fresh
        key, payload = next(iter(store.iter_cells()))
        assert set(payload) == {"cell", "runs", "aggregate"}
        assert len(payload["runs"]) == len(SEEDS)
        run = payload["runs"][0]
        assert set(run) == {"sequence", "seed", "update_count", "metrics"}
        assert payload["aggregate"]["runs"] == len(SEEDS)

    def test_resume_skips_exactly_the_completed_keys(self, fresh, tmp_path):
        store, __ = fresh
        partial = CampaignStore("tiny", root=tmp_path / "partial")
        baseline = store_bytes(store)
        # Copy all but two cells, then resume: exactly those two execute.
        missing = sorted(baseline)[:2]
        partial.write_manifest(tiny_spec().to_manifest())
        for name, data in baseline.items():
            if name not in missing:
                partial.cell_path(name.removesuffix(".json")).parent.mkdir(
                    parents=True, exist_ok=True
                )
                partial.cell_path(name.removesuffix(".json")).write_bytes(data)
        summary = run_campaign(tiny_spec(), store=partial, resume=True)
        assert summary.executed == 2
        assert summary.skipped == summary.total_cells - 2
        assert store_bytes(partial) == baseline  # fresh vs resumed: identical

    def test_resume_reexecutes_torn_cells(self, fresh, tmp_path):
        store, __ = fresh
        broken = CampaignStore("tiny", root=tmp_path / "broken")
        baseline = store_bytes(store)
        broken.write_manifest(tiny_spec().to_manifest())
        for index, (name, data) in enumerate(sorted(baseline.items())):
            stem = name.removesuffix(".json")
            broken.cell_path(stem).parent.mkdir(parents=True, exist_ok=True)
            if index == 0:  # simulate a torn write
                broken.cell_path(stem).write_bytes(data[: len(data) // 2])
            else:
                broken.cell_path(stem).write_bytes(data)
        summary = run_campaign(tiny_spec(), store=broken, resume=True)
        assert summary.executed == 1
        assert summary.recovered_files  # the torn file was swept first
        assert store_bytes(broken) == baseline

    def test_jobs_fanout_byte_identical(self, fresh, tmp_path):
        store, __ = fresh
        fanned = CampaignStore("tiny", root=tmp_path / "jobs2")
        run_campaign(tiny_spec(), store=fanned, jobs=2)
        assert store_bytes(fanned) == store_bytes(store)

    def test_backends_byte_identical(self, fresh, tmp_path):
        store, __ = fresh
        reference = CampaignStore("tiny", root=tmp_path / "reference")
        run_campaign(tiny_spec(), store=reference, backend="reference")
        assert store_bytes(reference) == store_bytes(store)

    def test_manifest_mismatch_rejected(self, fresh):
        store, __ = fresh
        other = CampaignSpec(
            name="tiny", scenarios=SCENARIOS, variants=VARIANTS,
            particle_counts=COUNTS, seeds=(7,),
        )
        with pytest.raises(EvaluationError):
            run_campaign(other, store=store, resume=True)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(tiny_spec(), jobs=0)

    def test_status_and_report(self, fresh):
        store, __ = fresh
        status = campaign_status("tiny", store=store)
        assert status["completed"] == status["total"] == len(tiny_spec().cells())
        assert set(status["scenarios"]) == set(tiny_spec().scenarios)

        assert load_campaign("tiny", store=store) == tiny_spec()

        report = aggregate_report("tiny", store=store)
        assert set(report) == set(tiny_spec().scenarios)
        for cells in report.values():
            assert set(cells) == {
                (variant, count) for variant in VARIANTS for count in COUNTS
            }
            for aggregate in cells.values():
                assert aggregate["runs"] == len(SEEDS)

    def test_report_without_cells_raises(self, tmp_path):
        empty = CampaignStore("tiny", root=tmp_path / "empty")
        empty.write_manifest(tiny_spec().to_manifest())
        with pytest.raises(EvaluationError):
            aggregate_report("tiny", store=empty)


#: The acceptance-criteria ablation grid: three sigma values over two
#: scenario families (reusing the session-cached tiny worlds).
ABLATION_VARIANTS = (
    "fp32+sigma_obs=1.0",
    "fp32",  # sigma_obs=2.0, the paper default
    "fp32+sigma_obs=4.0",
)


def ablation_spec(name: str = "ablation") -> CampaignSpec:
    return CampaignSpec(
        name=name,
        scenarios=SCENARIOS,
        variants=ABLATION_VARIANTS,
        particle_counts=(16,),
        seeds=(0,),
    )


class TestAblationCampaign:
    """An ablation campaign runs, resumes, shards and merges byte-stably."""

    @pytest.fixture(scope="class")
    def fresh(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("ablation") / "fresh"
        store = CampaignStore("ablation", root=root)
        summary = run_campaign(ablation_spec(), store=store)
        return store, summary

    def test_all_cells_execute_with_distinct_keys(self, fresh):
        store, summary = fresh
        cells = ablation_spec().cells()
        assert summary.executed == len(cells) == 6  # 2 scenarios x 3 sigmas
        assert store.completed_keys() == {cell.key for cell in cells}

    def test_resume_skips_everything_byte_identically(self, fresh):
        store, __ = fresh
        before = store_bytes(store)
        summary = run_campaign(ablation_spec(), store=store, resume=True)
        assert summary.executed == 0
        assert summary.skipped == summary.total_cells
        assert store_bytes(store) == before

    def test_backends_byte_identical(self, fresh, tmp_path):
        store, __ = fresh
        reference = CampaignStore("ablation", root=tmp_path / "reference")
        run_campaign(ablation_spec(), store=reference, backend="reference")
        assert store_bytes(reference) == store_bytes(store)

    def test_default_sigma_cell_shares_bytes_with_plain_variant_campaign(
        self, fresh, tmp_path
    ):
        # The fp32 cells of the ablation campaign are the same content
        # keys (and bytes) a variants-only campaign produces: ablation
        # axes cannot fork the identity of the default configuration.
        store, __ = fresh
        plain = CampaignStore("plain", root=tmp_path / "plain")
        plain_spec = CampaignSpec(
            name="plain", scenarios=SCENARIOS, variants=("fp32",),
            particle_counts=(16,), seeds=(0,),
        )
        run_campaign(plain_spec, store=plain)
        ablation_bytes = store_bytes(store)
        for name, data in store_bytes(plain).items():
            assert ablation_bytes[name] == data

    def test_sharded_run_merges_back_byte_identically(self, fresh, tmp_path):
        store, __ = fresh
        spec = ablation_spec()
        shards = 2
        shard_stores = []
        for index in range(shards):
            shard_store = CampaignStore(
                "ablation", root=tmp_path / f"shard{index}"
            )
            summary = run_campaign(
                spec, store=shard_store, shard=(index, shards)
            )
            assert summary.total_cells == len(shard_cells(spec, shards)[index])
            shard_stores.append(shard_store)
        merged = CampaignStore("ablation", root=tmp_path / "merged")
        for shard_store in shard_stores:
            merge_campaign_stores(merged, shard_store)
        assert store_bytes(merged) == store_bytes(store)

    def test_invalid_shard_index_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(ablation_spec(), shard=(2, 2))
