"""Tests for the campaign layer: spec expansion, resume, determinism."""

import pytest

from repro.common.errors import ConfigurationError, EvaluationError
from repro.eval.campaign import (
    CampaignSpec,
    aggregate_report,
    campaign_status,
    load_campaign,
    run_campaign,
)
from repro.eval.store import CampaignStore

#: Deliberately tiny: two worlds, one variant, two cells per world, short
#: flights.  Scenario generation is cached in the session tmp data dir,
#: so every test after the first reuses the .npz instead of re-simulating.
SCENARIOS = ("corridor:2:flight_s=6.0", "office:1:flight_s=6.0")
VARIANTS = ("fp32",)
COUNTS = (16, 32)
SEEDS = (0, 1)


def tiny_spec(name: str = "tiny") -> CampaignSpec:
    return CampaignSpec(
        name=name,
        scenarios=SCENARIOS,
        variants=VARIANTS,
        particle_counts=COUNTS,
        seeds=SEEDS,
    )


def store_bytes(store: CampaignStore) -> dict[str, bytes]:
    return {
        path.name: path.read_bytes()
        for path in sorted(store.cells_dir.glob("*.json"))
    }


class TestCampaignSpec:
    def test_scenarios_normalized_and_deduped(self):
        spec = CampaignSpec(
            name="c",
            scenarios=("office", "office:0", "maze:1:braid=0.2+cells=5"),
            variants=("fp32",),
            particle_counts=(16,),
            seeds=(0,),
        )
        assert spec.scenarios == ("office:0", "maze:1:braid=0.2+cells=5")

    def test_all_axes_deduped(self):
        spec = CampaignSpec(
            name="c",
            scenarios=("office:0",),
            variants=("fp32", "fp32"),
            particle_counts=(16, 16, 32),
            seeds=(0, 0, 1),
        )
        assert spec.variants == ("fp32",)
        assert spec.particle_counts == (16, 32)
        assert spec.seeds == (0, 1)
        assert len(spec.cells()) == 2

    def test_validation_errors(self):
        good = dict(
            name="c",
            scenarios=("office:0",),
            variants=("fp32",),
            particle_counts=(16,),
            seeds=(0,),
        )
        for overrides in (
            {"name": ""},
            {"scenarios": ()},
            {"scenarios": ("warehouse:1",)},
            {"variants": ()},
            {"variants": ("fp64",)},
            {"particle_counts": ()},
            {"particle_counts": (0,)},
            {"seeds": ()},
        ):
            with pytest.raises(ConfigurationError):
                CampaignSpec(**{**good, **overrides})

    def test_cells_scenario_major_deterministic(self):
        cells = tiny_spec().cells()
        assert [(c.scenario, c.variant, c.particle_count) for c in cells] == [
            (scenario, variant, count)
            for scenario in tiny_spec().scenarios
            for variant in VARIANTS
            for count in COUNTS
        ]
        assert len({cell.key for cell in cells}) == len(cells)

    def test_cell_keys_independent_of_spec_spelling(self):
        a = CampaignSpec(
            name="c", scenarios=("office",), variants=("fp32",),
            particle_counts=(16,), seeds=(0,),
        )
        b = CampaignSpec(
            name="c", scenarios=("office:0",), variants=("fp32",),
            particle_counts=(16,), seeds=(0,),
        )
        assert [cell.key for cell in a.cells()] == [cell.key for cell in b.cells()]

    def test_cell_keys_depend_on_seed_protocol(self):
        a = tiny_spec().cells()[0]
        b = CampaignSpec(
            name="c", scenarios=SCENARIOS, variants=VARIANTS,
            particle_counts=COUNTS, seeds=(0, 1, 2),
        ).cells()[0]
        assert a.key != b.key

    def test_manifest_roundtrip(self):
        spec = tiny_spec()
        assert CampaignSpec.from_manifest(spec.to_manifest()) == spec


class TestRunCampaign:
    @pytest.fixture(scope="class")
    def fresh(self, tmp_path_factory):
        """One executed campaign shared by the read-only assertions."""
        root = tmp_path_factory.mktemp("campaign") / "fresh"
        store = CampaignStore("tiny", root=root)
        summary = run_campaign(tiny_spec(), store=store)
        return store, summary

    def test_fresh_run_stores_every_cell(self, fresh):
        store, summary = fresh
        assert summary.executed == summary.total_cells == len(tiny_spec().cells())
        assert summary.skipped == 0
        assert store.completed_keys() == {c.key for c in tiny_spec().cells()}

    def test_cell_payload_shape(self, fresh):
        store, __ = fresh
        key, payload = next(iter(store.iter_cells()))
        assert set(payload) == {"cell", "runs", "aggregate"}
        assert len(payload["runs"]) == len(SEEDS)
        run = payload["runs"][0]
        assert set(run) == {"sequence", "seed", "update_count", "metrics"}
        assert payload["aggregate"]["runs"] == len(SEEDS)

    def test_resume_skips_exactly_the_completed_keys(self, fresh, tmp_path):
        store, __ = fresh
        partial = CampaignStore("tiny", root=tmp_path / "partial")
        baseline = store_bytes(store)
        # Copy all but two cells, then resume: exactly those two execute.
        missing = sorted(baseline)[:2]
        partial.write_manifest(tiny_spec().to_manifest())
        for name, data in baseline.items():
            if name not in missing:
                partial.cell_path(name.removesuffix(".json")).parent.mkdir(
                    parents=True, exist_ok=True
                )
                partial.cell_path(name.removesuffix(".json")).write_bytes(data)
        summary = run_campaign(tiny_spec(), store=partial, resume=True)
        assert summary.executed == 2
        assert summary.skipped == summary.total_cells - 2
        assert store_bytes(partial) == baseline  # fresh vs resumed: identical

    def test_resume_reexecutes_torn_cells(self, fresh, tmp_path):
        store, __ = fresh
        broken = CampaignStore("tiny", root=tmp_path / "broken")
        baseline = store_bytes(store)
        broken.write_manifest(tiny_spec().to_manifest())
        for index, (name, data) in enumerate(sorted(baseline.items())):
            stem = name.removesuffix(".json")
            broken.cell_path(stem).parent.mkdir(parents=True, exist_ok=True)
            if index == 0:  # simulate a torn write
                broken.cell_path(stem).write_bytes(data[: len(data) // 2])
            else:
                broken.cell_path(stem).write_bytes(data)
        summary = run_campaign(tiny_spec(), store=broken, resume=True)
        assert summary.executed == 1
        assert summary.recovered_files  # the torn file was swept first
        assert store_bytes(broken) == baseline

    def test_jobs_fanout_byte_identical(self, fresh, tmp_path):
        store, __ = fresh
        fanned = CampaignStore("tiny", root=tmp_path / "jobs2")
        run_campaign(tiny_spec(), store=fanned, jobs=2)
        assert store_bytes(fanned) == store_bytes(store)

    def test_backends_byte_identical(self, fresh, tmp_path):
        store, __ = fresh
        reference = CampaignStore("tiny", root=tmp_path / "reference")
        run_campaign(tiny_spec(), store=reference, backend="reference")
        assert store_bytes(reference) == store_bytes(store)

    def test_manifest_mismatch_rejected(self, fresh):
        store, __ = fresh
        other = CampaignSpec(
            name="tiny", scenarios=SCENARIOS, variants=VARIANTS,
            particle_counts=COUNTS, seeds=(7,),
        )
        with pytest.raises(EvaluationError):
            run_campaign(other, store=store, resume=True)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(tiny_spec(), jobs=0)

    def test_status_and_report(self, fresh):
        store, __ = fresh
        status = campaign_status("tiny", store=store)
        assert status["completed"] == status["total"] == len(tiny_spec().cells())
        assert set(status["scenarios"]) == set(tiny_spec().scenarios)

        assert load_campaign("tiny", store=store) == tiny_spec()

        report = aggregate_report("tiny", store=store)
        assert set(report) == set(tiny_spec().scenarios)
        for cells in report.values():
            assert set(cells) == {
                (variant, count) for variant in VARIANTS for count in COUNTS
            }
            for aggregate in cells.values():
                assert aggregate["runs"] == len(SEEDS)

    def test_report_without_cells_raises(self, tmp_path):
        empty = CampaignStore("tiny", root=tmp_path / "empty")
        empty.write_manifest(tiny_spec().to_manifest())
        with pytest.raises(EvaluationError):
            aggregate_report("tiny", store=empty)
