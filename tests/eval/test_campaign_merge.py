"""``campaign merge``: store union with byte-verified collisions."""

import json

import pytest

from repro.common.errors import EvaluationError
from repro.eval.campaign import (
    CampaignSpec,
    merge_campaign_stores,
    run_campaign,
)
from repro.eval.store import CampaignStore


def spec(scenarios) -> CampaignSpec:
    return CampaignSpec(
        name="merge-test",
        scenarios=tuple(scenarios),
        variants=("fp32",),
        particle_counts=(32,),
        seeds=(0,),
    )


SCENARIO_A = "office:1:flight_s=8"
SCENARIO_B = "corridor:1:flight_s=8"


@pytest.fixture(scope="module")
def sharded_stores(tmp_path_factory):
    """One campaign spec executed as two single-scenario shards plus the
    full reference store (what a single host would have produced)."""
    root = tmp_path_factory.mktemp("merge")
    full_spec = spec([SCENARIO_A, SCENARIO_B])
    shard_a = CampaignStore("merge-test", root=root / "a")
    shard_b = CampaignStore("merge-test", root=root / "b")
    reference = CampaignStore("merge-test", root=root / "ref")
    # Shards share the *full* manifest (one campaign, split cell lists):
    # execute only each shard's scenario by pre-marking the other's cells.
    run_campaign(full_spec, store=reference)
    for shard, own in ((shard_a, SCENARIO_A), (shard_b, SCENARIO_B)):
        shard.write_manifest(full_spec.to_manifest())
        for cell in full_spec.cells():
            if cell.scenario == own:
                shard.put_cell_bytes(
                    cell.key, reference.cell_path(cell.key).read_bytes()
                )
    return root, full_spec, shard_a, shard_b, reference


class TestMerge:
    def test_union_of_shards_equals_single_host_store(self, sharded_stores, tmp_path):
        root, full_spec, shard_a, shard_b, reference = sharded_stores
        dest = CampaignStore("merge-test", root=tmp_path / "dest")
        first = merge_campaign_stores(dest, shard_a)
        second = merge_campaign_stores(dest, shard_b)
        assert first.copied == 1 and second.copied == 1
        assert dest.manifest_path.read_bytes() == reference.manifest_path.read_bytes()
        for cell in full_spec.cells():
            assert (
                dest.cell_path(cell.key).read_bytes()
                == reference.cell_path(cell.key).read_bytes()
            )

    def test_byte_equal_collisions_are_verified(self, sharded_stores, tmp_path):
        __, __, shard_a, __, __ = sharded_stores
        dest = CampaignStore("merge-test", root=tmp_path / "dest")
        merge_campaign_stores(dest, shard_a)
        again = merge_campaign_stores(dest, shard_a)
        assert again.copied == 0
        assert again.verified == 1

    def test_byte_mismatch_raises(self, sharded_stores, tmp_path):
        __, full_spec, shard_a, __, __ = sharded_stores
        dest = CampaignStore("merge-test", root=tmp_path / "dest")
        merge_campaign_stores(dest, shard_a)
        key = next(
            cell.key for cell in full_spec.cells() if cell.scenario == SCENARIO_A
        )
        dest.cell_path(key).write_text('{"tampered": true}\n')
        with pytest.raises(EvaluationError, match="different bytes"):
            merge_campaign_stores(dest, shard_a)

    def test_mismatched_manifests_rejected(self, sharded_stores, tmp_path):
        __, __, shard_a, __, __ = sharded_stores
        dest = CampaignStore("other", root=tmp_path / "other")
        dest.write_manifest(spec([SCENARIO_B]).to_manifest())
        with pytest.raises(EvaluationError, match="manifests differ"):
            merge_campaign_stores(dest, shard_a)

    def test_missing_source_manifest_rejected(self, tmp_path):
        dest = CampaignStore("d", root=tmp_path / "d")
        source = CampaignStore("s", root=tmp_path / "s")
        with pytest.raises(EvaluationError, match="no manifest"):
            merge_campaign_stores(dest, source)

    def test_torn_source_cells_are_skipped(self, sharded_stores, tmp_path):
        __, __, shard_a, __, __ = sharded_stores
        torn_root = tmp_path / "torn"
        source = CampaignStore("merge-test", root=torn_root)
        # Identical manifest bytes: reuse the shard's.
        source.write_manifest(json.loads(shard_a.manifest_path.read_text()))
        source.cells_dir.mkdir(parents=True, exist_ok=True)
        (source.cells_dir / "torn.json").write_text('{"v": 1')  # truncated
        dest = CampaignStore("merge-test", root=tmp_path / "dest")
        summary = merge_campaign_stores(dest, source)
        assert summary.skipped_invalid == 1
        assert summary.copied == 0
