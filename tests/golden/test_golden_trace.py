"""Golden-trace regression: sweep cells pinned bit-for-bit.

Each golden JSON snapshots the complete observable output of one
fp32/N=64 sweep cell over a generated scenario: every scalar metric as
an exact float (``float.hex``) and every per-frame trace array as a
SHA-256 of its raw bytes.  Both backends must keep reproducing it
exactly — a refactor that drifts any resampling decision, weight, or
trace sample by one ulp fails loudly here instead of silently shifting
published numbers.

Two cells are pinned: the default fp32 configuration, and one *ablated*
config spec (``fp32+sigma_obs=1.0``) so the config-override path —
spec parsing, override application, fingerprinted identity — is held to
the same bit-for-bit standard as the paper variants.

To intentionally re-baseline after a *deliberate* numerical change:

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/golden -q

and commit the rewritten JSON alongside the change that explains it.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
from pathlib import Path

import pytest

from repro.eval.aggregate import SweepProtocol
from repro.eval.sweep_engine import SweepEngine
from repro.scenarios import build_scenario

#: The pinned world: a generated maze scenario, N=64, two seeds.
SCENARIO_SPEC = "maze:0:cells=5+flight_s=25.0+size_m=3.0"
PARTICLE_COUNT = 64
PROTOCOL = SweepProtocol(sequence_count=1, seeds=(0, 1))

#: Pinned cells: golden file name -> config spec.
GOLDEN_CELLS = {
    "golden_fp32_n64.json": "fp32",
    "golden_fp32_sigma1_n64.json": "fp32+sigma_obs=1.0",
}


def _hex(value: float | None) -> str:
    if value is None:
        return "none"
    if math.isnan(value):
        return "nan"
    return float(value).hex()


def _digest(array) -> str:
    return hashlib.sha256(array.tobytes()).hexdigest()


def _cell_snapshot(backend: str, variant: str) -> dict:
    scenario = build_scenario(SCENARIO_SPEC)
    engine = SweepEngine(backend=backend)
    result = engine.run(
        scenario.grid,
        [scenario.sequence],
        [variant],
        [PARTICLE_COUNT],
        protocol=PROTOCOL,
    )
    cell = result.cells[(variant, PARTICLE_COUNT)]
    runs = []
    for run in cell.runs:
        metrics = run.metrics
        runs.append(
            {
                "sequence": run.sequence_name,
                "seed": run.seed,
                "update_count": run.update_count,
                "converged": metrics.converged,
                "success": metrics.success,
                "convergence_time_s": _hex(metrics.convergence_time_s),
                "ate_mean_m": _hex(metrics.ate_mean_m),
                "ate_rmse_m": _hex(metrics.ate_rmse_m),
                "ate_max_m": _hex(metrics.ate_max_m),
                "yaw_mean_rad": _hex(metrics.yaw_mean_rad),
                "sha256": {
                    "timestamps": _digest(run.timestamps),
                    "position_errors": _digest(run.position_errors),
                    "yaw_errors": _digest(run.yaw_errors),
                    "estimate_trace": _digest(run.estimate_trace),
                },
            }
        )
    return {
        "scenario": SCENARIO_SPEC,
        "variant": variant,
        "particle_count": PARTICLE_COUNT,
        "seeds": list(PROTOCOL.seeds),
        "runs": runs,
    }


@pytest.mark.parametrize("golden_name", sorted(GOLDEN_CELLS))
@pytest.mark.parametrize("backend", ["reference", "batched", "fast"])
def test_golden_cell_reproduces_bit_for_bit(backend, golden_name):
    variant = GOLDEN_CELLS[golden_name]
    golden_path = Path(__file__).parent / golden_name
    if backend == "fast":
        from repro.common.errors import ConfigurationError
        from repro.engine import get_backend

        try:
            get_backend("fast")
        except ConfigurationError as exc:
            pytest.skip(f"no fused fast-backend provider available: {exc}")
    snapshot = _cell_snapshot(backend, variant)
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        golden_path.write_text(json.dumps(snapshot, indent=2) + "\n")
        pytest.skip(f"golden snapshot rewritten by {backend}")
    assert golden_path.exists(), (
        "golden snapshot missing; regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    golden = json.loads(golden_path.read_text())
    assert snapshot == golden, (
        f"{backend} backend drifted from the golden {variant}/N=64 cell; if "
        "the numerical change is intentional, re-baseline with "
        "REPRO_UPDATE_GOLDEN=1 and justify it in the commit"
    )
