"""Scenario subsystem tests: registry, spec grammar, determinism.

The load-bearing properties are the deterministic-generation contract
(same spec -> byte-identical ``.npz``; different seeds -> different
worlds) and tour safety (every planned waypoint keeps the flight
clearance), because the sweep engine and the golden-trace harness both
assume scenarios are pure functions of their spec.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.maps.planning import clearance_map
from repro.scenarios import (
    Scenario,
    ScenarioSpec,
    available_families,
    build_scenario,
    get_family,
    scenario_cache_path,
)
from repro.scenarios.base import SCENARIO_CLEARANCE_M

#: Short flights keep the suite fast; determinism is length-independent.
FAST = {"flight_s": 8.0}
ALL_FAMILIES = ("maze", "office", "corridor", "hall", "degraded")


@pytest.fixture(scope="module")
def generated():
    """One cached scenario per family (module-shared, fast flights)."""
    return {
        family: build_scenario(ScenarioSpec.of(family, 1, **FAST))
        for family in ALL_FAMILIES
    }


class TestSpec:
    def test_parse_full_grammar(self):
        spec = ScenarioSpec.parse("maze:3:cells=7+braid=0.2+label=x")
        assert spec.family == "maze"
        assert spec.seed == 3
        assert spec.param_dict == {"cells": 7, "braid": 0.2, "label": "x"}

    def test_parse_defaults(self):
        assert ScenarioSpec.parse("office") == ScenarioSpec("office")
        assert ScenarioSpec.parse("office:5") == ScenarioSpec("office", 5)

    def test_id_roundtrip(self):
        spec = ScenarioSpec.of("hall", 9, boxes=4, size_m=5.0)
        assert ScenarioSpec.parse(spec.id) == spec

    def test_params_canonical_order(self):
        a = ScenarioSpec("maze", 0, (("b", 1), ("a", 2)))
        b = ScenarioSpec("maze", 0, (("a", 2), ("b", 1)))
        assert a == b
        assert a.cache_stem == b.cache_stem

    def test_rejects_malformed(self):
        for bad in ("", ":3", "maze:x", "maze:1:braid", "maze:1:a=1:extra"):
            with pytest.raises(ConfigurationError):
                ScenarioSpec.parse(bad)

    def test_cache_stem_distinguishes_params(self):
        plain = ScenarioSpec.of("maze", 1)
        tweaked = ScenarioSpec.of("maze", 1, cells=7)
        assert plain.cache_stem != tweaked.cache_stem

    def test_string_values_canonicalize_like_the_grammar(self):
        # "7" and 7 must name the same scenario, or a spec would not
        # round-trip through the id stored in its cached .npz.
        assert ScenarioSpec.of("maze", 1, cells="7") == ScenarioSpec.of(
            "maze", 1, cells=7
        )
        spec = ScenarioSpec.of("maze", 1, label="7")
        assert ScenarioSpec.parse(spec.id) == spec

    def test_duplicate_keys_last_wins(self):
        assert ScenarioSpec.parse("maze:1:a=1+a=2").param_dict == {"a": 2}
        # Mixed types under one key must not crash the canonical sort.
        assert ScenarioSpec.parse("maze:1:a=1+a=x").param_dict == {"a": "x"}

    def test_rejects_non_scalar_values(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.of("maze", 1, cells=[5])
        with pytest.raises(ConfigurationError):
            ScenarioSpec.of("maze", 1, cells=True)


class TestRegistry:
    def test_at_least_four_families(self):
        assert len(available_families()) >= 4

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            get_family("warehouse")
        with pytest.raises(ConfigurationError):
            build_scenario("warehouse:1")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            build_scenario("maze:1:wormholes=3", cache=False)

    def test_degraded_cannot_nest(self):
        with pytest.raises(ConfigurationError):
            build_scenario("degraded:1:base=degraded", cache=False)

    def test_hall_rejects_unplaceable_box_count(self):
        # The spec must describe the generated world: an impossible box
        # count fails loudly instead of silently placing fewer.
        with pytest.raises(ConfigurationError):
            build_scenario("hall:1:boxes=50", cache=False)

    def test_every_family_lists_flight_s(self):
        for name in available_families():
            assert "flight_s" in dict(get_family(name).defaults)


class TestAtomicCacheWrites:
    """The ``.npz`` cache publishes via tmp+rename: a reader (or a
    concurrently spawning serve session / jobs>1 worker) can never
    observe a torn cache file, and a crashed generator leaves the final
    path untouched."""

    def test_generation_leaves_no_scratch_files(self):
        spec = ScenarioSpec.of("office", 3, flight_s=6.0)
        path = scenario_cache_path(spec)
        path.unlink(missing_ok=True)
        build_scenario(spec)
        assert path.exists()
        assert list(path.parent.glob("*.tmp")) == []

    def test_interrupted_write_publishes_nothing(self, monkeypatch):
        from repro.scenarios.base import Scenario

        spec = ScenarioSpec.of("office", 4, flight_s=6.0)
        path = scenario_cache_path(spec)
        path.unlink(missing_ok=True)

        def explode(self, handle):
            handle.write(b"partial bytes that must never be published")
            raise RuntimeError("simulated crash mid-serialization")

        monkeypatch.setattr(Scenario, "save_npz", explode)
        with pytest.raises(RuntimeError, match="simulated crash"):
            build_scenario(spec)
        assert not path.exists()  # no torn file at the final path
        assert list(path.parent.glob("*.tmp")) == []  # scratch cleaned up

    def test_concurrent_style_republish_is_byte_identical(self):
        spec = ScenarioSpec.of("office", 3, flight_s=6.0)
        path = scenario_cache_path(spec)
        build_scenario(spec)
        first = path.read_bytes()
        path.unlink()
        build_scenario(spec)  # a "racing" regenerator republishing
        assert path.read_bytes() == first


class TestDeterminism:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_regeneration_is_byte_identical(self, family):
        spec = ScenarioSpec.of(family, 1, **FAST)
        path = scenario_cache_path(spec)
        build_scenario(spec)
        first = hashlib.sha256(path.read_bytes()).hexdigest()
        path.unlink()
        build_scenario(spec)
        second = hashlib.sha256(path.read_bytes()).hexdigest()
        assert first == second

    @pytest.mark.parametrize("family", ("maze", "office", "corridor", "hall"))
    def test_different_seeds_differ(self, family, generated):
        other = build_scenario(ScenarioSpec.of(family, 2, **FAST))
        assert not np.array_equal(generated[family].grid.cells, other.grid.cells)

    def test_cache_roundtrip_preserves_scenario(self, generated):
        scenario = generated["office"]
        loaded = Scenario.load_npz(scenario_cache_path(scenario.spec))
        assert loaded.spec == scenario.spec
        np.testing.assert_array_equal(loaded.grid.cells, scenario.grid.cells)
        np.testing.assert_array_equal(loaded.tour, scenario.tour)
        np.testing.assert_array_equal(
            loaded.sequence.odometry, scenario.sequence.odometry
        )
        for mine, theirs in zip(scenario.sequence.tracks, loaded.sequence.tracks):
            np.testing.assert_array_equal(mine.ranges_m, theirs.ranges_m)


class TestTourSafety:
    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_tour_keeps_clearance(self, family, generated):
        scenario = generated[family]
        safe = clearance_map(scenario.grid, SCENARIO_CLEARANCE_M)
        rows, cols = scenario.grid.world_to_grid(
            scenario.tour[:, 0], scenario.tour[:, 1]
        )
        assert bool(np.all(scenario.grid.in_bounds(rows, cols)))
        assert bool(np.all(safe[rows, cols])), (
            f"{family} tour leaves the {SCENARIO_CLEARANCE_M} m clearance"
        )

    @pytest.mark.parametrize("family", ALL_FAMILIES)
    def test_flight_starts_on_tour(self, family, generated):
        scenario = generated[family]
        start = scenario.sequence.ground_truth[0]
        assert np.hypot(
            start[0] - scenario.tour[0, 0], start[1] - scenario.tour[0, 1]
        ) < 0.05


class TestSweepIntegration:
    def test_run_scenarios_accepts_spec_strings(self, generated):
        from repro.eval.aggregate import SweepProtocol
        from repro.eval.sweep_engine import SweepEngine

        engine = SweepEngine(backend="batched")
        results = engine.run_scenarios(
            [generated["maze"], f"corridor:1:flight_s={FAST['flight_s']}"],
            variants=["fp32"],
            particle_counts=[32],
            protocol=SweepProtocol(sequence_count=1, seeds=(0,)),
        )
        assert list(results) == [
            generated["maze"].spec.id,
            f"corridor:1:flight_s={FAST['flight_s']}",
        ]
        for sweep in results.values():
            assert sweep.cells[("fp32", 32)].aggregate.run_count == 1
        # The engine's keyed cache holds one distance field per distinct
        # scenario world — the reuse seam scenario sweeps rely on.
        assert len(engine.field_cache) == 2
        assert engine.field_cache.misses == 2
