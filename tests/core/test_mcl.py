"""Tests for the full Monte Carlo localization filter."""

import math

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.geometry import Pose2D
from repro.common.precision import PrecisionMode
from repro.common.rng import make_rng
from repro.core.config import MclConfig
from repro.core.mcl import MonteCarloLocalization
from repro.maps.builder import MapBuilder
from repro.maps.distance_field import DistanceField
from repro.maps.occupancy import CellState
from repro.sensors.tof import TofSensor, TofSensorSpec


def asymmetric_room():
    """A room with an off-center pillar so poses are distinguishable."""
    return (
        MapBuilder(3.0, 3.0, 0.05)
        .fill_rect(0, 0, 3, 3, CellState.FREE)
        .add_border()
        .add_box(0.8, 1.8, 1.2, 2.2)
        .add_wall(2.0, 0.0, 2.0, 1.0)
        .build()
    )


def quiet_sensor(name="tof-front", yaw=0.0):
    spec = TofSensorSpec(
        yaw_offset=yaw,
        noise_sigma_base_m=0.005,
        noise_sigma_prop=0.0,
        interference_prob=0.0,
        edge_row_dropout_prob=0.0,
    )
    return TofSensor(spec, name, make_rng(0, "s"))


def frames_at(grid, pose: Pose2D):
    return [
        quiet_sensor("tof-front", 0.0).measure(grid, pose, 0.0),
        quiet_sensor("tof-rear", math.pi).measure(grid, pose, 0.0),
    ]


class TestConstruction:
    def test_builds_field_for_mode(self):
        grid = asymmetric_room()
        mcl = MonteCarloLocalization(
            grid, MclConfig(particle_count=64, precision=PrecisionMode.FP32_QM)
        )
        assert mcl.field.data.dtype == np.uint8

    def test_accepts_prebuilt_field(self):
        grid = asymmetric_room()
        field = DistanceField.build(grid, r_max=1.5)
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=64), field=field)
        assert mcl.field is field

    def test_rejects_mismatched_field_resolution(self):
        grid = asymmetric_room()
        other = MapBuilder(3.0, 3.0, 0.1).fill_rect(0, 0, 3, 3).add_border().build()
        field = DistanceField.build(other, r_max=1.5)
        with pytest.raises(ConfigurationError):
            MonteCarloLocalization(grid, MclConfig(particle_count=64), field=field)

    def test_initial_particles_in_free_space(self):
        grid = asymmetric_room()
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=256))
        for i in range(0, 256, 37):
            assert grid.is_free(float(mcl.particles.x[i]), float(mcl.particles.y[i]))


class TestUpdateGating:
    def test_no_update_without_motion(self):
        grid = asymmetric_room()
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=64))
        report = mcl.process(frames_at(grid, Pose2D(1.5, 0.5, 0.0)))
        assert not report.motion_applied
        assert not report.observation_applied
        assert mcl.update_count == 0

    def test_small_motion_accumulates_until_threshold(self):
        grid = asymmetric_room()
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=64))
        frames = frames_at(grid, Pose2D(1.5, 0.5, 0.0))
        for _ in range(3):  # 3 x 0.04 m < 0.1 m
            mcl.add_odometry(Pose2D(0.04, 0.0, 0.0))
            report = mcl.process(frames)
        # Third call crosses the 0.1 m threshold (0.12 m accumulated).
        assert report.motion_applied
        assert mcl.update_count == 1

    def test_rotation_triggers_update(self):
        grid = asymmetric_room()
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=64))
        mcl.add_odometry(Pose2D(0.0, 0.0, 0.15))
        report = mcl.process(frames_at(grid, Pose2D(1.5, 0.5, 0.0)))
        assert report.motion_applied

    def test_pending_motion_reset_after_update(self):
        grid = asymmetric_room()
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=64))
        mcl.add_odometry(Pose2D(0.2, 0.0, 0.0))
        mcl.process(frames_at(grid, Pose2D(1.5, 0.5, 0.0)))
        assert mcl.pending_motion.x == 0.0
        assert mcl.pending_motion.theta == 0.0

    def test_beam_count_reported(self):
        grid = asymmetric_room()
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=64))
        mcl.add_odometry(Pose2D(0.2, 0.0, 0.0))
        report = mcl.process(frames_at(grid, Pose2D(1.5, 0.5, 0.0)))
        assert report.beam_count > 0


class TestSubThresholdNoOp:
    """Sub-threshold pending motion must make ``process`` a strict no-op."""

    def test_process_leaves_filter_state_untouched(self):
        grid = asymmetric_room()
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=128), seed=4)
        mcl.add_odometry(Pose2D(0.03, 0.02, 0.01))  # below d_xy and d_theta
        before_weights = mcl.particles.weights.copy()
        before_x = mcl.particles.x.copy()
        before_estimate = mcl.estimate.pose.as_array()

        report = mcl.process(frames_at(grid, Pose2D(1.5, 0.5, 0.0)))

        assert not report.motion_applied
        assert not report.observation_applied
        assert not report.resampled
        assert report.beam_count == 0
        assert mcl.update_count == 0
        np.testing.assert_array_equal(mcl.particles.weights, before_weights)
        np.testing.assert_array_equal(mcl.particles.x, before_x)
        np.testing.assert_array_equal(mcl.estimate.pose.as_array(), before_estimate)
        # The sub-threshold motion stays pending for the next instant.
        assert mcl.pending_motion.x == pytest.approx(0.03)

    def test_report_flags_on_full_update(self):
        grid = asymmetric_room()
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=128), seed=4)
        mcl.add_odometry(Pose2D(0.2, 0.0, 0.0))
        report = mcl.process(frames_at(grid, Pose2D(1.5, 0.5, 0.0)))
        assert report.motion_applied
        assert report.observation_applied
        assert report.resampled  # default ESS fraction 1.0 resamples always
        assert report.beam_count > 0
        assert mcl.update_count == 1

    def test_report_flags_without_observation(self):
        grid = asymmetric_room()
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=128), seed=4)
        mcl.add_odometry(Pose2D(0.2, 0.0, 0.0))
        report = mcl.process([])  # gate passes but no frames arrived
        assert report.motion_applied
        assert not report.observation_applied
        assert not report.resampled
        assert report.beam_count == 0
        assert mcl.update_count == 1  # the motion-only update still counts


class TestTrackingConvergence:
    def _track(self, precision: PrecisionMode, seed: int = 0) -> float:
        """Simulate tracking: start near truth, walk a square, return error."""
        grid = asymmetric_room()
        config = MclConfig(particle_count=512, precision=precision)
        mcl = MonteCarloLocalization(grid, config, seed=seed)
        truth = Pose2D(0.5, 0.5, 0.0)
        mcl.reset_at(truth, sigma_xy=0.2, sigma_theta=0.3)
        legs = [(0.15, 0.0, 0.0)] * 10 + [(0.0, 0.0, math.pi / 8)] * 4
        legs += [(0.15, 0.0, 0.0)] * 8 + [(0.0, 0.0, math.pi / 8)] * 4
        for dx, dy, dtheta in legs:
            inc = Pose2D(dx, dy, dtheta)
            truth = truth.compose(inc)
            mcl.add_odometry(inc)
            mcl.process(frames_at(grid, truth))
        return mcl.estimate.pose.distance_to(truth)

    def test_fp32_tracks(self):
        assert self._track(PrecisionMode.FP32) < 0.25

    def test_fp32qm_tracks(self):
        assert self._track(PrecisionMode.FP32_QM) < 0.25

    def test_fp16qm_tracks(self):
        assert self._track(PrecisionMode.FP16_QM) < 0.25


class TestResets:
    def test_reset_uniform_respreads(self):
        grid = asymmetric_room()
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=256))
        mcl.reset_at(Pose2D(1.0, 1.0, 0.0), sigma_xy=0.01, sigma_theta=0.01)
        assert mcl.estimate.position_std < 0.1
        mcl.reset_uniform()
        assert mcl.estimate.position_std > 0.3
        assert mcl.update_count == 0

    def test_reset_at_concentrates(self):
        grid = asymmetric_room()
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=256))
        mcl.reset_at(Pose2D(2.5, 2.5, 1.0), sigma_xy=0.05, sigma_theta=0.05)
        assert mcl.estimate.pose.distance_to(Pose2D(2.5, 2.5, 1.0)) < 0.05


class TestMemoryAccounting:
    def test_reports_all_components(self):
        grid = asymmetric_room()
        config = MclConfig(particle_count=1024)
        mcl = MonteCarloLocalization(grid, config)
        memory = mcl.memory_bytes()
        assert memory["particles"] == 1024 * 32
        assert memory["occupancy"] == grid.cells.size
        # fp32 field over the r_max-padded canvas.
        pad = int(np.ceil(config.r_max / grid.resolution))
        padded_cells = (grid.rows + 2 * pad) * (grid.cols + 2 * pad)
        assert memory["distance_field"] == padded_cells * 4

    def test_quantized_field_shrinks_map(self):
        grid = asymmetric_room()
        full = MonteCarloLocalization(grid, MclConfig(particle_count=64)).memory_bytes()
        quant = MonteCarloLocalization(
            grid, MclConfig(particle_count=64, precision=PrecisionMode.FP32_QM)
        ).memory_bytes()
        assert quant["distance_field"] * 4 == full["distance_field"]


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        grid = asymmetric_room()
        results = []
        for _ in range(2):
            mcl = MonteCarloLocalization(grid, MclConfig(particle_count=128), seed=9)
            truth = Pose2D(1.5, 0.5, 0.0)
            for _ in range(5):
                truth = truth.compose(Pose2D(0.15, 0.0, 0.1))
                mcl.add_odometry(Pose2D(0.15, 0.0, 0.1))
                mcl.process(frames_at(grid, truth))
            results.append(mcl.estimate.pose.as_array())
        np.testing.assert_allclose(results[0], results[1])
