"""Tests for the weighted-average pose computation."""

import math

import numpy as np
import pytest

from repro.common.geometry import Pose2D
from repro.core.particles import ParticleSet
from repro.core.pose_estimate import estimate_pose, pose_error


def particle_set(x, y, theta, weights=None) -> ParticleSet:
    count = len(x)
    ps = ParticleSet(count)
    ps.set_state(np.asarray(x, float), np.asarray(y, float), np.asarray(theta, float))
    if weights is not None:
        ps.weights[:] = np.asarray(weights, dtype=np.float32)
    return ps


class TestEstimatePose:
    def test_weighted_position_mean(self):
        ps = particle_set([0.0, 2.0], [0.0, 4.0], [0.0, 0.0], weights=[0.75, 0.25])
        est = estimate_pose(ps)
        assert est.pose.x == pytest.approx(0.5)
        assert est.pose.y == pytest.approx(1.0)

    def test_circular_yaw_mean_across_wrap(self):
        # Naive averaging of (pi - 0.1) and (-pi + 0.1) gives ~0; the
        # circular mean correctly gives ~pi.
        ps = particle_set([0, 0], [0, 0], [math.pi - 0.1, -math.pi + 0.1])
        est = estimate_pose(ps)
        assert abs(est.pose.theta) == pytest.approx(math.pi, abs=1e-6)

    def test_covariance_of_spread_population(self):
        rng = np.random.default_rng(0)
        x = rng.normal(1.0, 0.2, size=5000)
        y = rng.normal(2.0, 0.05, size=5000)
        ps = particle_set(x, y, np.zeros(5000))
        est = estimate_pose(ps)
        assert est.position_cov[0, 0] == pytest.approx(0.04, rel=0.15)
        assert est.position_cov[1, 1] == pytest.approx(0.0025, rel=0.2)
        assert est.position_std == pytest.approx(
            math.sqrt((0.04 + 0.0025) / 2), rel=0.15
        )

    def test_yaw_std_small_when_aligned(self):
        ps = particle_set([0] * 4, [0] * 4, [0.5, 0.5, 0.5, 0.5])
        est = estimate_pose(ps)
        assert est.yaw_std < 1e-3

    def test_yaw_std_large_when_uniform(self):
        theta = np.linspace(-math.pi, math.pi, 64, endpoint=False)
        ps = particle_set(np.zeros(64), np.zeros(64), theta)
        est = estimate_pose(ps)
        assert est.yaw_std > 2.0

    def test_degenerate_weights_fall_back_to_unweighted(self):
        ps = particle_set([1.0, 3.0], [0.0, 0.0], [0.0, 0.0], weights=[0.0, 0.0])
        est = estimate_pose(ps)
        assert est.pose.x == pytest.approx(2.0)

    def test_ess_reported(self):
        ps = particle_set([0, 0], [0, 0], [0, 0], weights=[0.5, 0.5])
        assert estimate_pose(ps).ess == pytest.approx(2.0, rel=1e-3)


class TestPoseError:
    def test_position_error(self):
        err_pos, err_yaw = pose_error(Pose2D(3.0, 4.0, 0.0), Pose2D(0.0, 0.0, 0.0))
        assert err_pos == pytest.approx(5.0)
        assert err_yaw == 0.0

    def test_yaw_error_wraps(self):
        __, err_yaw = pose_error(
            Pose2D(0, 0, math.pi - 0.05), Pose2D(0, 0, -math.pi + 0.05)
        )
        assert err_yaw == pytest.approx(0.1, abs=1e-9)
