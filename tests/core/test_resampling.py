"""Tests for systematic resampling and the parallel wheel (paper Fig. 4).

The parallel partitioning via partial sums is the paper's key resampling
contribution; the property tests here pin down its exact equivalence with
the serial wheel and the classic low-variance guarantees.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigurationError
from repro.common.rng import make_rng
from repro.core.resampling import (
    GAP9_WORKER_CORES,
    draw_wheel_offset,
    parallel_systematic_resample,
    systematic_resample,
)

WEIGHT_LISTS = st.lists(
    st.floats(min_value=1e-3, max_value=1e3), min_size=2, max_size=200
)


class TestDrawWheelOffset:
    def test_in_range(self):
        rng = make_rng(0, "r")
        for _ in range(50):
            u0 = draw_wheel_offset(rng, 16)
            assert 0.0 <= u0 < 1.0 / 16


class TestSystematicResample:
    def test_uniform_weights_identity_like(self):
        weights = np.full(8, 1.0 / 8)
        indices = systematic_resample(weights, u0=0.01)
        np.testing.assert_array_equal(indices, np.arange(8))

    def test_degenerate_weight_takes_all(self):
        weights = np.zeros(8)
        weights[3] = 1.0
        indices = systematic_resample(weights, u0=0.05)
        np.testing.assert_array_equal(indices, np.full(8, 3))

    def test_unnormalized_weights_accepted(self):
        a = systematic_resample(np.array([1.0, 3.0]), u0=0.2)
        b = systematic_resample(np.array([0.25, 0.75]), u0=0.2)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_u0(self):
        with pytest.raises(ConfigurationError):
            systematic_resample(np.full(4, 0.25), u0=0.3)  # >= 1/N
        with pytest.raises(ConfigurationError):
            systematic_resample(np.full(4, 0.25), u0=-0.01)

    def test_rejects_bad_weights(self):
        with pytest.raises(ConfigurationError):
            systematic_resample(np.zeros(4), u0=0.1)
        with pytest.raises(ConfigurationError):
            systematic_resample(np.array([0.5, -0.5]), u0=0.1)
        with pytest.raises(ConfigurationError):
            systematic_resample(np.array([np.nan, 1.0]), u0=0.1)

    @settings(max_examples=60, deadline=None)
    @given(WEIGHT_LISTS, st.integers(0, 2**31 - 1))
    def test_property_low_variance_counts(self, weights, seed):
        # Systematic resampling draws particle i either floor(N w_i) or
        # ceil(N w_i) times — the defining property of the wheel.
        weights = np.array(weights)
        count = weights.size
        u0 = draw_wheel_offset(make_rng(seed, "u"), count)
        indices = systematic_resample(weights, u0)
        assert indices.shape == (count,)
        normalized = weights / weights.sum()
        draws = np.bincount(indices, minlength=count)
        expected = count * normalized
        assert np.all(draws >= np.floor(expected) - 1e-9)
        assert np.all(draws <= np.ceil(expected) + 1e-9)

    @settings(max_examples=40, deadline=None)
    @given(WEIGHT_LISTS, st.integers(0, 2**31 - 1))
    def test_property_indices_nondecreasing(self, weights, seed):
        weights = np.array(weights)
        u0 = draw_wheel_offset(make_rng(seed, "u"), weights.size)
        indices = systematic_resample(weights, u0)
        assert np.all(np.diff(indices) >= 0)


class TestParallelResample:
    def test_matches_serial_on_random_weights(self):
        rng = make_rng(0, "w")
        for trial in range(30):
            count = int(rng.integers(8, 300))
            weights = rng.random(count) + 1e-6
            u0 = draw_wheel_offset(rng, count)
            serial = systematic_resample(weights, u0)
            parallel = parallel_systematic_resample(weights, u0, n_cores=8)
            np.testing.assert_array_equal(parallel.indices, serial)

    def test_matches_serial_any_core_count(self):
        rng = make_rng(1, "w")
        weights = rng.random(64) + 1e-6
        u0 = draw_wheel_offset(rng, 64)
        serial = systematic_resample(weights, u0)
        for cores in (1, 2, 3, 5, 8, 16):
            parallel = parallel_systematic_resample(weights, u0, n_cores=cores)
            np.testing.assert_array_equal(parallel.indices, serial)

    def test_more_cores_than_particles(self):
        weights = np.array([0.5, 0.5])
        u0 = 0.1
        parallel = parallel_systematic_resample(weights, u0, n_cores=8)
        np.testing.assert_array_equal(parallel.indices, systematic_resample(weights, u0))

    def test_rejects_bad_cores(self):
        with pytest.raises(ConfigurationError):
            parallel_systematic_resample(np.full(4, 0.25), 0.1, n_cores=0)

    def test_assignments_tile_arrows(self):
        rng = make_rng(2, "w")
        weights = rng.random(128) + 1e-6
        u0 = draw_wheel_offset(rng, 128)
        result = parallel_systematic_resample(weights, u0, n_cores=8)
        covered = []
        for a in result.assignments:
            covered.extend(range(a.arrow_lo, a.arrow_hi))
        assert covered == list(range(128))

    def test_assignments_partition_particles(self):
        rng = make_rng(3, "w")
        weights = rng.random(64) + 1e-6
        result = parallel_systematic_resample(weights, 0.001, n_cores=8)
        blocks = [(a.particle_lo, a.particle_hi) for a in result.assignments]
        assert blocks[0][0] == 0
        assert blocks[-1][1] == 64
        for (____, hi), (lo, __) in zip(blocks[:-1], blocks[1:]):
            assert hi == lo

    def test_draw_counts_sum_to_n(self):
        rng = make_rng(4, "w")
        weights = rng.random(1000) + 1e-6
        u0 = draw_wheel_offset(rng, 1000)
        result = parallel_systematic_resample(weights, u0, n_cores=8)
        assert sum(result.draw_counts()) == 1000

    def test_draw_counts_track_block_weight(self):
        # A core owning most of the weight draws most of the particles —
        # the load imbalance the paper notes for the resampling step.
        weights = np.full(64, 1e-6)
        weights[0:8] = 1.0  # core 0's block dominates
        result = parallel_systematic_resample(weights, 1e-4, n_cores=8)
        counts = result.draw_counts()
        assert counts[0] > 50

    @settings(max_examples=60, deadline=None)
    @given(WEIGHT_LISTS, st.integers(0, 2**31 - 1), st.integers(1, 12))
    def test_property_parallel_equals_serial(self, weights, seed, cores):
        weights = np.array(weights)
        u0 = draw_wheel_offset(make_rng(seed, "u"), weights.size)
        serial = systematic_resample(weights, u0)
        parallel = parallel_systematic_resample(weights, u0, n_cores=cores)
        np.testing.assert_array_equal(parallel.indices, serial)

    @settings(max_examples=30, deadline=None)
    @given(WEIGHT_LISTS, st.integers(0, 2**31 - 1))
    def test_property_block_weights_sum_to_one(self, weights, seed):
        weights = np.array(weights)
        u0 = draw_wheel_offset(make_rng(seed, "u"), weights.size)
        result = parallel_systematic_resample(weights, u0, n_cores=GAP9_WORKER_CORES)
        assert sum(a.block_weight for a in result.assignments) == pytest.approx(1.0)
