"""Property tests of full-filter numeric invariants.

Hypothesis drives random odometry/observation interleavings through the
filter in every precision mode; the invariants below must hold after any
prefix of updates — they are what "the fp16 variant works" actually means
numerically.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.geometry import Pose2D
from repro.common.precision import PrecisionMode
from repro.common.rng import make_rng
from repro.core.config import MclConfig
from repro.core.mcl import MonteCarloLocalization
from repro.maps.builder import MapBuilder
from repro.maps.distance_field import DistanceField, FieldKind
from repro.maps.occupancy import CellState
from repro.sensors.tof import TofSensor, TofSensorSpec

# One shared world + prebuilt fields keep the property runs fast.
_GRID = (
    MapBuilder(3.0, 3.0, 0.05)
    .fill_rect(0, 0, 3, 3, CellState.FREE)
    .add_border()
    .add_wall(0.0, 1.0, 2.2, 1.0)
    .add_box(2.3, 1.6, 2.7, 2.0)
    .build()
)
_FIELDS = {
    PrecisionMode.FP32: DistanceField.build(_GRID, 1.5, FieldKind.FLOAT32),
    PrecisionMode.FP32_QM: DistanceField.build(_GRID, 1.5, FieldKind.QUANTIZED_U8),
    PrecisionMode.FP16_QM: DistanceField.build(_GRID, 1.5, FieldKind.QUANTIZED_U8),
}

MOVES = st.lists(
    st.tuples(
        st.floats(-0.3, 0.3),  # dx
        st.floats(-0.1, 0.1),  # dy
        st.floats(-0.5, 0.5),  # dtheta
    ),
    min_size=1,
    max_size=8,
)


def _frames(pose: Pose2D, seed: int):
    spec = TofSensorSpec(interference_prob=0.05, edge_row_dropout_prob=0.05)
    sensor = TofSensor(spec, "tof-front", make_rng(seed, "prop"))
    return [sensor.measure(_GRID, pose, 0.0)]


@pytest.mark.parametrize("mode", list(PrecisionMode))
class TestPipelineInvariants:
    @settings(max_examples=15, deadline=None)
    @given(moves=MOVES, seed=st.integers(0, 100))
    def test_invariants_after_any_update_sequence(self, mode, moves, seed):
        config = MclConfig(particle_count=128, precision=mode)
        mcl = MonteCarloLocalization(
            _GRID, config, seed=seed, field=_FIELDS[mode]
        )
        truth = Pose2D(1.5, 0.5, 0.0)
        for dx, dy, dtheta in moves:
            increment = Pose2D(dx, dy, dtheta)
            truth = truth.compose(increment)
            mcl.add_odometry(increment)
            mcl.process(_frames(truth, seed))

            particles = mcl.particles
            # 1. Storage dtype never silently widens.
            assert particles.x.dtype == mode.particle_dtype
            assert particles.weights.dtype == mode.particle_dtype
            # 2. All state finite.
            assert np.all(np.isfinite(particles.x.astype(np.float64)))
            assert np.all(np.isfinite(particles.weights.astype(np.float64)))
            # 3. Weights non-negative and normalized (fp16 rounding slack).
            weights = particles.weights.astype(np.float64)
            assert np.all(weights >= 0.0)
            assert weights.sum() == pytest.approx(1.0, abs=0.02)
            # 4. Yaw stays wrapped.
            theta = particles.theta.astype(np.float64)
            assert np.all(theta >= -math.pi - 0.01)
            assert np.all(theta < math.pi + 0.01)
            # 5. The estimate is finite and its spread non-negative.
            estimate = mcl.estimate
            assert np.isfinite(estimate.pose.x)
            assert estimate.position_std >= 0.0
            assert 0.0 <= estimate.ess <= config.particle_count + 1e-6
