"""Tests for the beam-end-point observation model (paper Eq. 1)."""

import math

import numpy as np
import pytest

from repro.common.errors import SensorError
from repro.common.geometry import Pose2D
from repro.common.precision import PrecisionMode
from repro.common.rng import make_rng
from repro.core.config import MclConfig
from repro.core.observation import (
    BeamBundle,
    apply_observation_model,
    extract_beams,
    log_likelihoods,
)
from repro.core.particles import ParticleSet
from repro.maps.builder import MapBuilder
from repro.maps.distance_field import DistanceField, FieldKind
from repro.maps.occupancy import CellState
from repro.sensors.tof import TofSensor, TofSensorSpec, ZoneStatus


def room(size: float = 3.0):
    return (
        MapBuilder(size, size, 0.05)
        .fill_rect(0, 0, size, size, CellState.FREE)
        .add_border()
        .build()
    )


def quiet_frame(pose: Pose2D, grid=None, yaw_offset: float = 0.0, name="tof-front"):
    grid = grid if grid is not None else room()
    spec = TofSensorSpec(
        yaw_offset=yaw_offset,
        noise_sigma_base_m=0.0,
        noise_sigma_prop=0.0,
        interference_prob=0.0,
        edge_row_dropout_prob=0.0,
    )
    return TofSensor(spec, name, make_rng(0, "q")).measure(grid, pose, 0.0)


class TestExtractBeams:
    def test_collects_selected_rows(self):
        frame = quiet_frame(Pose2D(1.5, 1.5, 0.0))
        config = MclConfig(beam_rows=(3, 4))
        beams = extract_beams([frame], config)
        assert beams.beam_count == 16

    def test_skips_rear_in_single_tof_mode(self):
        front = quiet_frame(Pose2D(1.5, 1.5, 0.0), name="tof-front")
        rear = quiet_frame(Pose2D(1.5, 1.5, 0.0), yaw_offset=math.pi, name="tof-rear")
        config = MclConfig(use_rear_sensor=False)
        beams = extract_beams([front, rear], config)
        assert beams.beam_count == 16  # only the front frame's 2 rows

    def test_keeps_rear_in_dual_mode(self):
        front = quiet_frame(Pose2D(1.5, 1.5, 0.0), name="tof-front")
        rear = quiet_frame(Pose2D(1.5, 1.5, 0.0), yaw_offset=math.pi, name="tof-rear")
        beams = extract_beams([front, rear], MclConfig())
        assert beams.beam_count == 32

    def test_drops_flagged_zones(self):
        frame = quiet_frame(Pose2D(1.5, 1.5, 0.0))
        frame.status[3, :] = ZoneStatus.INTERFERENCE
        beams = extract_beams([frame], MclConfig(beam_rows=(3, 4)))
        assert beams.beam_count == 8

    def test_drops_out_of_limit_ranges(self):
        frame = quiet_frame(Pose2D(1.5, 1.5, 0.0))
        frame.ranges_m[:, :] = 5.0  # beyond max_beam_range_m
        beams = extract_beams([frame], MclConfig())
        assert beams.beam_count == 0

    def test_empty_frame_list(self):
        beams = extract_beams([], MclConfig())
        assert beams.beam_count == 0

    def test_bad_rows_rejected(self):
        frame = quiet_frame(Pose2D(1.5, 1.5, 0.0))
        with pytest.raises(SensorError):
            extract_beams([frame], MclConfig(beam_rows=(20,)))

    def test_mount_offsets_propagate(self):
        grid = room()
        spec = TofSensorSpec(
            mount_x=0.05,
            mount_y=-0.01,
            noise_sigma_base_m=0.0,
            noise_sigma_prop=0.0,
            interference_prob=0.0,
            edge_row_dropout_prob=0.0,
        )
        frame = TofSensor(spec, "tof-front", make_rng(0, "q")).measure(
            grid, Pose2D(1.5, 1.5, 0.0), 0.0
        )
        beams = extract_beams([frame], MclConfig())
        assert np.all(beams.origins_x == 0.05)
        assert np.all(beams.origins_y == -0.01)


class TestLogLikelihoods:
    def _setup(self):
        grid = room()
        field = DistanceField.build(grid, r_max=1.5)
        frame = quiet_frame(Pose2D(1.5, 1.5, 0.0))
        beams = extract_beams([frame], MclConfig())
        return grid, field, beams

    def test_true_pose_scores_best(self):
        __, field, beams = self._setup()
        ps = ParticleSet(3)
        # Particle 0 at truth, 1 shifted, 2 rotated.
        ps.set_state(
            np.array([1.5, 2.0, 1.5]),
            np.array([1.5, 1.0, 1.5]),
            np.array([0.0, 0.0, 2.0]),
        )
        ll = log_likelihoods(ps, beams, field, sigma_obs=2.0)
        assert ll[0] > ll[1]
        assert ll[0] > ll[2]

    def test_all_nonpositive(self):
        __, field, beams = self._setup()
        ps = ParticleSet(10)
        ps.init_gaussian(1.5, 1.5, 0.0, 0.5, 1.0, make_rng(1, "o"))
        ll = log_likelihoods(ps, beams, field, sigma_obs=2.0)
        assert np.all(ll <= 0.0)

    def test_sigma_scales_likelihood(self):
        __, field, beams = self._setup()
        ps = ParticleSet(1)
        ps.set_state(np.array([2.0]), np.array([1.0]), np.array([0.5]))
        sharp = log_likelihoods(ps, beams, field, sigma_obs=1.0)
        flat = log_likelihoods(ps, beams, field, sigma_obs=4.0)
        assert sharp[0] == pytest.approx(16.0 * flat[0], rel=1e-6)


class TestApplyObservationModel:
    def test_reweights_toward_truth(self):
        grid = room()
        field = DistanceField.build(grid, r_max=1.5)
        frame = quiet_frame(Pose2D(1.5, 1.5, 0.0))
        beams = extract_beams([frame], MclConfig())
        ps = ParticleSet(2)
        ps.set_state(np.array([1.5, 2.2]), np.array([1.5, 0.8]), np.array([0.0, 1.0]))
        applied = apply_observation_model(ps, beams, field, MclConfig(particle_count=2))
        assert applied
        assert float(ps.weights[0]) > float(ps.weights[1])
        assert float(np.sum(ps.weights.astype(np.float64))) == pytest.approx(1.0, rel=1e-3)

    def test_no_beams_is_noop(self):
        grid = room()
        field = DistanceField.build(grid, r_max=1.5)
        ps = ParticleSet(4)
        before = ps.weights.copy()
        empty = BeamBundle(*(np.empty(0),) * 4)
        applied = apply_observation_model(ps, empty, field, MclConfig(particle_count=4))
        assert not applied
        np.testing.assert_array_equal(ps.weights, before)

    def test_replication_sharpens(self):
        grid = room()
        field = DistanceField.build(grid, r_max=1.5)
        frame = quiet_frame(Pose2D(1.5, 1.5, 0.0))
        config_flat = MclConfig(particle_count=2, beam_replication=1.0)
        config_sharp = MclConfig(particle_count=2, beam_replication=8.0)
        beams = extract_beams([frame], config_flat)

        ps_flat = ParticleSet(2)
        ps_flat.set_state(np.array([1.5, 2.2]), np.array([1.5, 0.8]), np.array([0.0, 1.0]))
        apply_observation_model(ps_flat, beams, field, config_flat)

        ps_sharp = ParticleSet(2)
        ps_sharp.set_state(np.array([1.5, 2.2]), np.array([1.5, 0.8]), np.array([0.0, 1.0]))
        apply_observation_model(ps_sharp, beams, field, config_sharp)
        assert float(ps_sharp.weights[1]) < float(ps_flat.weights[1])

    def test_fp16_weights_do_not_collapse(self):
        grid = room()
        field = DistanceField.build(grid, r_max=1.5, kind=FieldKind.QUANTIZED_U8)
        frame = quiet_frame(Pose2D(1.5, 1.5, 0.0))
        config = MclConfig(particle_count=512, precision=PrecisionMode.FP16_QM)
        beams = extract_beams([frame], config)
        ps = ParticleSet(512, PrecisionMode.FP16_QM)
        ps.init_gaussian(1.5, 1.5, 0.0, 0.4, 0.6, make_rng(2, "o"))
        applied = apply_observation_model(ps, beams, field, config)
        assert applied
        total = float(ps.weights.astype(np.float64).sum())
        assert total == pytest.approx(1.0, rel=0.05)

    def test_quantized_field_close_to_fp32(self):
        grid = room()
        fp32 = DistanceField.build(grid, r_max=1.5, kind=FieldKind.FLOAT32)
        quant = DistanceField.build(grid, r_max=1.5, kind=FieldKind.QUANTIZED_U8)
        frame = quiet_frame(Pose2D(1.5, 1.5, 0.0))
        config = MclConfig(particle_count=64)
        beams = extract_beams([frame], config)
        a = ParticleSet(64)
        a.init_gaussian(1.5, 1.5, 0.0, 0.3, 0.5, make_rng(3, "o"))
        b = ParticleSet(64)
        b.set_state(a.x.copy(), a.y.copy(), a.theta.copy())
        apply_observation_model(a, beams, fp32, config)
        apply_observation_model(b, beams, quant, config)
        np.testing.assert_allclose(
            a.weights.astype(np.float64), b.weights.astype(np.float64), atol=0.01
        )
