"""Tests for adaptive MCL: recovery injection and KLD sizing."""

import math

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.geometry import Pose2D
from repro.common.rng import make_rng
from repro.core.adaptive import (
    AdaptiveConfig,
    AdaptiveMcl,
    kld_particle_bound,
    _normal_quantile,
)
from repro.core.config import MclConfig
from repro.maps.builder import MapBuilder
from repro.maps.occupancy import CellState
from repro.sensors.tof import TofSensor, TofSensorSpec


def corridor_room():
    return (
        MapBuilder(3.0, 3.0, 0.05)
        .fill_rect(0, 0, 3, 3, CellState.FREE)
        .add_border()
        .add_wall(0.0, 1.0, 2.2, 1.0)
        .add_box(2.3, 1.6, 2.7, 2.0)
        .build()
    )


def frames_at(grid, pose: Pose2D):
    spec = TofSensorSpec(
        noise_sigma_base_m=0.005,
        noise_sigma_prop=0.0,
        interference_prob=0.0,
        edge_row_dropout_prob=0.0,
    )
    front = TofSensor(spec, "tof-front", make_rng(0, "a"))
    rear_spec = TofSensorSpec(
        yaw_offset=math.pi,
        noise_sigma_base_m=0.005,
        noise_sigma_prop=0.0,
        interference_prob=0.0,
        edge_row_dropout_prob=0.0,
    )
    rear = TofSensor(rear_spec, "tof-rear", make_rng(0, "b"))
    return [front.measure(grid, pose, 0.0), rear.measure(grid, pose, 0.0)]


class TestAdaptiveConfig:
    def test_defaults_valid(self):
        AdaptiveConfig()

    def test_rejects_bad_alphas(self):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(alpha_fast=0.1, alpha_slow=0.5)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(alpha_slow=0.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(max_injection_fraction=1.5)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(min_particles=100, max_particles=10)


class TestKldBound:
    def test_one_bin_needs_one_particle(self):
        assert kld_particle_bound(1, 0.05, 0.01) == 1

    def test_bound_grows_with_bins(self):
        values = [kld_particle_bound(k, 0.05, 0.01) for k in (2, 10, 100, 1000)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_bound_shrinks_with_epsilon(self):
        loose = kld_particle_bound(100, 0.1, 0.01)
        tight = kld_particle_bound(100, 0.01, 0.01)
        assert tight > loose

    def test_rejects_zero_bins(self):
        with pytest.raises(ConfigurationError):
            kld_particle_bound(0, 0.05, 0.01)

    def test_known_magnitude(self):
        # A converged belief (~10 bins) needs only a few hundred particles
        # at the standard (0.05, 0.01) setting.
        bound = kld_particle_bound(10, 0.05, 0.01)
        assert 100 < bound < 400


class TestNormalQuantile:
    def test_median(self):
        assert _normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_standard_values(self):
        assert _normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert _normal_quantile(0.99) == pytest.approx(2.326348, abs=1e-4)

    def test_symmetry(self):
        assert _normal_quantile(0.25) == pytest.approx(-_normal_quantile(0.75), abs=1e-9)

    def test_rejects_bounds(self):
        with pytest.raises(ConfigurationError):
            _normal_quantile(0.0)


class TestAdaptiveMcl:
    def test_no_injection_while_consistent(self):
        grid = corridor_room()
        mcl = AdaptiveMcl(grid, MclConfig(particle_count=512), seed=0)
        truth = Pose2D(1.5, 0.5, 0.0)
        mcl.reset_at(truth, sigma_xy=0.1, sigma_theta=0.1)
        for _ in range(6):
            truth = truth.compose(Pose2D(0.12, 0.0, 0.0))
            mcl.add_odometry(Pose2D(0.12, 0.0, 0.0))
            mcl.process(frames_at(grid, truth))
        # Well-tracked: w_fast ~ w_slow, essentially no injection.
        assert mcl.last_injection_fraction < 0.05

    def test_kidnap_triggers_injection(self):
        grid = corridor_room()
        mcl = AdaptiveMcl(grid, MclConfig(particle_count=512), seed=1)
        truth = Pose2D(1.5, 0.5, 0.0)
        mcl.reset_at(truth, sigma_xy=0.05, sigma_theta=0.05)
        # Track a few steps to establish the averages.
        for _ in range(4):
            truth = truth.compose(Pose2D(0.12, 0.0, 0.0))
            mcl.add_odometry(Pose2D(0.12, 0.0, 0.0))
            mcl.process(frames_at(grid, truth))
        # Kidnap: the drone is teleported; odometry says small motion but
        # observations come from a completely different pose.
        kidnapped = Pose2D(0.5, 2.5, math.pi / 2)
        injections = []
        for _ in range(6):
            mcl.add_odometry(Pose2D(0.12, 0.0, 0.0))
            mcl.process(frames_at(grid, kidnapped))
            injections.append(mcl.last_injection_fraction)
        assert max(injections) > 0.01

    def test_injection_capped(self):
        config = AdaptiveConfig(max_injection_fraction=0.1)
        grid = corridor_room()
        mcl = AdaptiveMcl(grid, MclConfig(particle_count=256), seed=2, adaptive=config)
        truth = Pose2D(1.5, 0.5, 0.0)
        mcl.reset_at(truth, sigma_xy=0.05, sigma_theta=0.05)
        for _ in range(8):
            mcl.add_odometry(Pose2D(0.15, 0.0, 0.0))
            mcl.process(frames_at(grid, Pose2D(0.5, 2.5, 1.0)))
        assert mcl.last_injection_fraction <= 0.1 + 1e-9

    def test_occupied_bins_shrink_on_convergence(self):
        grid = corridor_room()
        mcl = AdaptiveMcl(grid, MclConfig(particle_count=1024), seed=3)
        spread_bins = mcl.occupied_bin_count()  # uniform init: many bins
        mcl.reset_at(Pose2D(1.5, 0.5, 0.0), sigma_xy=0.05, sigma_theta=0.05)
        focused_bins = mcl.occupied_bin_count()
        assert focused_bins < spread_bins

    def test_recommended_count_tracks_spread(self):
        grid = corridor_room()
        mcl = AdaptiveMcl(grid, MclConfig(particle_count=1024), seed=4)
        uniform_recommendation = mcl.recommended_particle_count()
        mcl.reset_at(Pose2D(1.5, 0.5, 0.0), sigma_xy=0.05, sigma_theta=0.05)
        converged_recommendation = mcl.recommended_particle_count()
        assert converged_recommendation < uniform_recommendation
        assert converged_recommendation >= mcl.adaptive.min_particles

    def test_resize_preserves_estimate(self):
        grid = corridor_room()
        mcl = AdaptiveMcl(grid, MclConfig(particle_count=1024), seed=5)
        mcl.reset_at(Pose2D(1.2, 0.6, 0.3), sigma_xy=0.05, sigma_theta=0.05)
        before = mcl.estimate.pose
        mcl.resize(128)
        assert mcl.particles.count == 128
        after = mcl.estimate.pose
        assert before.distance_to(after) < 0.05

    def test_resize_rejects_bad_count(self):
        grid = corridor_room()
        mcl = AdaptiveMcl(grid, MclConfig(particle_count=64), seed=6)
        with pytest.raises(ConfigurationError):
            mcl.resize(0)

    def test_resize_noop_same_count(self):
        grid = corridor_room()
        mcl = AdaptiveMcl(grid, MclConfig(particle_count=64), seed=7)
        particles = mcl.particles
        mcl.resize(64)
        assert mcl.particles is particles
