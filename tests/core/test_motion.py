"""Tests for the odometry motion model."""

import math

import numpy as np
import pytest

from repro.common.geometry import Pose2D
from repro.common.precision import PrecisionMode
from repro.common.rng import make_rng
from repro.core.config import MclConfig
from repro.core.motion import apply_motion_model
from repro.core.particles import ParticleSet


def particles_at_origin(count: int, precision=PrecisionMode.FP32) -> ParticleSet:
    ps = ParticleSet(count, precision)
    ps.set_state(np.zeros(count), np.zeros(count), np.zeros(count))
    return ps


class TestApplyMotionModel:
    def test_mean_displacement_matches_increment(self):
        ps = particles_at_origin(20000)
        config = MclConfig(particle_count=20000)
        apply_motion_model(ps, Pose2D(0.5, 0.1, 0.2), config, make_rng(0, "m"))
        assert float(np.mean(ps.x)) == pytest.approx(0.5, abs=0.01)
        assert float(np.mean(ps.y)) == pytest.approx(0.1, abs=0.01)
        assert float(np.mean(ps.theta.astype(np.float64))) == pytest.approx(0.2, abs=0.01)

    def test_noise_spread_matches_sigma(self):
        ps = particles_at_origin(20000)
        config = MclConfig(particle_count=20000)
        apply_motion_model(ps, Pose2D.identity(), config, make_rng(1, "m"))
        assert float(np.std(ps.x.astype(np.float64))) == pytest.approx(0.1, rel=0.1)
        assert float(np.std(ps.y.astype(np.float64))) == pytest.approx(0.1, rel=0.1)
        assert float(np.std(ps.theta.astype(np.float64))) == pytest.approx(0.1, rel=0.1)

    def test_increment_applied_in_body_frame(self):
        # Particles facing +y move along +y for a forward increment.
        count = 1000
        ps = ParticleSet(count)
        ps.set_state(
            np.zeros(count), np.zeros(count), np.full(count, math.pi / 2)
        )
        config = MclConfig(particle_count=count, sigma_odom_xy=1e-6, sigma_odom_theta=1e-6)
        apply_motion_model(ps, Pose2D(1.0, 0.0, 0.0), config, make_rng(2, "m"))
        assert float(np.mean(ps.y)) == pytest.approx(1.0, abs=1e-3)
        assert abs(float(np.mean(ps.x))) < 1e-3

    def test_theta_wrapped_after_update(self):
        count = 100
        ps = ParticleSet(count)
        ps.set_state(np.zeros(count), np.zeros(count), np.full(count, 3.0))
        config = MclConfig(particle_count=count)
        apply_motion_model(ps, Pose2D(0.0, 0.0, 1.0), config, make_rng(3, "m"))
        theta = ps.theta.astype(np.float64)
        assert np.all(theta >= -math.pi - 1e-3)
        assert np.all(theta < math.pi + 1e-3)

    def test_weights_untouched(self):
        ps = particles_at_origin(16)
        ps.weights[:] = np.linspace(0.01, 0.2, 16).astype(np.float32)
        before = ps.weights.copy()
        apply_motion_model(ps, Pose2D(0.1, 0.0, 0.0), MclConfig(particle_count=16), make_rng(4, "m"))
        np.testing.assert_array_equal(ps.weights, before)

    def test_fp16_storage_precision(self):
        ps = particles_at_origin(256, PrecisionMode.FP16_QM)
        config = MclConfig(particle_count=256, precision=PrecisionMode.FP16_QM)
        apply_motion_model(ps, Pose2D(1.0, 0.0, 0.0), config, make_rng(5, "m"))
        assert ps.x.dtype == np.float16
        assert float(np.mean(ps.x.astype(np.float64))) == pytest.approx(1.0, abs=0.05)

    def test_deterministic_given_rng(self):
        a = particles_at_origin(64)
        b = particles_at_origin(64)
        config = MclConfig(particle_count=64)
        apply_motion_model(a, Pose2D(0.2, 0.0, 0.1), config, make_rng(6, "m"))
        apply_motion_model(b, Pose2D(0.2, 0.0, 0.1), config, make_rng(6, "m"))
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.theta, b.theta)
