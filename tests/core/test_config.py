"""Tests for MclConfig and the paper's variant labels."""

import math

import pytest

from repro.common.errors import ConfigurationError
from repro.common.precision import PrecisionMode
from repro.core.config import PAPER_PARTICLE_COUNTS, PAPER_VARIANTS, MclConfig


class TestDefaults:
    def test_paper_parameters(self):
        # Sec. IV-A: sigma_odom=(0.1,0.1,0.1), sigma_obs=2.0, r_max=1.5,
        # d_xy=0.1, d_theta=0.1.
        config = MclConfig()
        assert config.sigma_odom_xy == 0.1
        assert config.sigma_odom_theta == 0.1
        assert config.sigma_obs == 2.0
        assert config.r_max == 1.5
        assert config.d_xy == 0.1
        assert config.d_theta == 0.1
        assert config.precision is PrecisionMode.FP32
        assert config.use_rear_sensor

    def test_paper_sweeps(self):
        assert PAPER_PARTICLE_COUNTS == (64, 256, 1024, 4096, 16384)
        assert set(PAPER_VARIANTS) == {"fp32", "fp321tof", "fp32qm", "fp16qm"}


class TestValidation:
    def test_rejects_bad_particle_count(self):
        with pytest.raises(ConfigurationError):
            MclConfig(particle_count=0)

    def test_rejects_bad_sigmas(self):
        with pytest.raises(ConfigurationError):
            MclConfig(sigma_obs=0.0)
        with pytest.raises(ConfigurationError):
            MclConfig(sigma_odom_xy=-0.1)

    def test_rejects_bad_rmax(self):
        with pytest.raises(ConfigurationError):
            MclConfig(r_max=0.0)

    def test_rejects_negative_thresholds(self):
        with pytest.raises(ConfigurationError):
            MclConfig(d_xy=-0.1)

    def test_rejects_empty_beam_rows(self):
        with pytest.raises(ConfigurationError):
            MclConfig(beam_rows=())

    def test_rejects_bad_replication(self):
        with pytest.raises(ConfigurationError):
            MclConfig(beam_replication=0.0)

    def test_rejects_bad_ess_fraction(self):
        with pytest.raises(ConfigurationError):
            MclConfig(resample_ess_fraction=0.0)
        with pytest.raises(ConfigurationError):
            MclConfig(resample_ess_fraction=1.5)


class TestVariants:
    def test_with_variant_fp32(self):
        config = MclConfig().with_variant("fp32")
        assert config.precision is PrecisionMode.FP32
        assert config.use_rear_sensor

    def test_with_variant_quantized(self):
        config = MclConfig().with_variant("fp32qm")
        assert config.precision is PrecisionMode.FP32_QM

    def test_with_variant_fp16(self):
        config = MclConfig().with_variant("fp16qm")
        assert config.precision is PrecisionMode.FP16_QM

    def test_with_variant_single_tof(self):
        config = MclConfig().with_variant("fp321tof")
        assert config.precision is PrecisionMode.FP32
        assert not config.use_rear_sensor

    def test_variant_labels_roundtrip(self):
        for variant in PAPER_VARIANTS:
            assert MclConfig().with_variant(variant).variant_label == variant

    def test_with_variant_preserves_other_fields(self):
        config = MclConfig(particle_count=123).with_variant("fp16qm")
        assert config.particle_count == 123

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            MclConfig().with_variant("fp8")


class TestMovementTrigger:
    def test_below_thresholds_no_trigger(self):
        config = MclConfig()
        assert not config.movement_trigger(0.05, 0.05, 0.05)

    def test_translation_triggers(self):
        config = MclConfig()
        assert config.movement_trigger(0.11, 0.0, 0.0)
        assert config.movement_trigger(0.08, 0.08, 0.0)  # hypot > 0.1

    def test_rotation_triggers(self):
        config = MclConfig()
        assert config.movement_trigger(0.0, 0.0, 0.11)
        assert config.movement_trigger(0.0, 0.0, -0.11)

    def test_exact_threshold_does_not_trigger(self):
        config = MclConfig()
        assert not config.movement_trigger(0.1, 0.0, 0.0)
        assert not config.movement_trigger(0.0, 0.0, math.copysign(0.1, -1))
