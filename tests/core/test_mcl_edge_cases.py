"""Edge-case behaviour of the full filter loop."""

import numpy as np
import pytest

from repro.common.geometry import Pose2D
from repro.core.config import MclConfig
from repro.core.mcl import MonteCarloLocalization
from repro.maps.builder import MapBuilder
from repro.maps.occupancy import CellState
from repro.sensors.tof import TofFrame, ZoneStatus


def small_grid():
    return (
        MapBuilder(2.0, 2.0, 0.05)
        .fill_rect(0, 0, 2, 2, CellState.FREE)
        .add_border()
        .build()
    )


def all_flagged_frame() -> TofFrame:
    """A frame whose every zone raised an error flag."""
    n = 8
    return TofFrame(
        timestamp=0.0,
        sensor_name="tof-front",
        ranges_m=np.full((n, n), 1.0),
        status=np.full((n, n), int(ZoneStatus.INTERFERENCE)),
        azimuths=np.linspace(-0.4, 0.4, n),
    )


class TestDegradedObservations:
    def test_all_flagged_frame_skips_observation(self):
        grid = small_grid()
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=64))
        mcl.add_odometry(Pose2D(0.2, 0.0, 0.0))
        report = mcl.process([all_flagged_frame()])
        # Motion still applies; the observation step reports no usable beams.
        assert report.motion_applied
        assert not report.observation_applied
        assert not report.resampled
        assert report.beam_count == 0

    def test_empty_frame_list_still_moves(self):
        grid = small_grid()
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=64))
        before = mcl.particles.x.copy()
        mcl.add_odometry(Pose2D(0.3, 0.0, 0.0))
        report = mcl.process([])
        assert report.motion_applied
        assert not np.array_equal(mcl.particles.x, before)

    def test_update_counter_counts_fired_updates_only(self):
        grid = small_grid()
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=64))
        for _ in range(5):
            mcl.process([])  # no motion -> gated, no update
        assert mcl.update_count == 0
        mcl.add_odometry(Pose2D(0.5, 0.0, 0.0))
        mcl.process([])
        assert mcl.update_count == 1


class TestSingleParticle:
    def test_filter_runs_with_one_particle(self):
        grid = small_grid()
        mcl = MonteCarloLocalization(grid, MclConfig(particle_count=1))
        mcl.add_odometry(Pose2D(0.2, 0.0, 0.0))
        report = mcl.process([all_flagged_frame()])
        assert report.motion_applied
        estimate = mcl.estimate
        assert np.isfinite(estimate.pose.x)
        assert estimate.ess == pytest.approx(1.0)


class TestEssGatedResampling:
    def test_low_ess_threshold_suppresses_resampling(self):
        grid = small_grid()
        # With threshold ~0, resampling fires only at extreme degeneracy.
        config = MclConfig(particle_count=128, resample_ess_fraction=1e-6)
        mcl = MonteCarloLocalization(grid, config)
        from repro.common.rng import make_rng
        from repro.sensors.tof import TofSensor, TofSensorSpec

        sensor = TofSensor(
            TofSensorSpec(interference_prob=0.0, edge_row_dropout_prob=0.0),
            "tof-front",
            make_rng(0, "e"),
        )
        frame = sensor.measure(grid, Pose2D(1.0, 1.0, 0.0), 0.0)
        mcl.add_odometry(Pose2D(0.2, 0.0, 0.0))
        report = mcl.process([frame])
        assert report.observation_applied
        assert not report.resampled
