"""Tests for the double-buffered SoA particle set."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, MapError
from repro.common.precision import PrecisionMode
from repro.common.rng import make_rng
from repro.core.particles import ParticleSet
from repro.maps.builder import MapBuilder
from repro.maps.occupancy import CellState


def small_grid():
    return (
        MapBuilder(2.0, 2.0, 0.1)
        .fill_rect(0, 0, 2, 2, CellState.FREE)
        .add_border()
        .build()
    )


class TestConstruction:
    def test_rejects_zero_particles(self):
        with pytest.raises(ConfigurationError):
            ParticleSet(0)

    def test_initial_weights_uniform(self):
        ps = ParticleSet(100)
        np.testing.assert_allclose(ps.weights, 0.01, rtol=1e-6)

    def test_dtype_follows_precision(self):
        assert ParticleSet(8, PrecisionMode.FP32).x.dtype == np.float32
        assert ParticleSet(8, PrecisionMode.FP16_QM).x.dtype == np.float16

    def test_len(self):
        assert len(ParticleSet(37)) == 37


class TestInit:
    def test_uniform_covers_free_space(self):
        grid = small_grid()
        ps = ParticleSet(2000)
        ps.init_uniform(grid, make_rng(0, "t"))
        for i in range(0, 2000, 97):
            assert grid.is_free(float(ps.x[i]), float(ps.y[i]))
        # Yaw spans the full circle.
        assert ps.theta.min() < -2.5
        assert ps.theta.max() > 2.5

    def test_gaussian_concentrates(self):
        ps = ParticleSet(2000)
        ps.init_gaussian(1.0, 2.0, 0.5, sigma_xy=0.1, sigma_theta=0.05, rng=make_rng(1, "t"))
        assert abs(float(np.mean(ps.x)) - 1.0) < 0.02
        assert abs(float(np.mean(ps.y)) - 2.0) < 0.02
        assert float(np.std(ps.x.astype(np.float64))) == pytest.approx(0.1, rel=0.2)

    def test_gaussian_rejects_negative_sigma(self):
        ps = ParticleSet(10)
        with pytest.raises(ConfigurationError):
            ps.init_gaussian(0, 0, 0, sigma_xy=-1.0, sigma_theta=0.1, rng=make_rng(0, "t"))

    def test_set_state_wraps_theta(self):
        ps = ParticleSet(3)
        ps.set_state(np.zeros(3), np.zeros(3), np.array([0.0, 4.0, -4.0]))
        assert np.all(ps.theta.astype(np.float64) >= -np.pi)
        assert np.all(ps.theta.astype(np.float64) < np.pi + 1e-3)


class TestWeights:
    def test_normalize(self):
        ps = ParticleSet(4)
        ps.weights[:] = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float32)
        total = ps.normalize_weights()
        assert total == pytest.approx(10.0)
        np.testing.assert_allclose(ps.weights, [0.1, 0.2, 0.3, 0.4], rtol=1e-6)

    def test_normalize_degenerate_resets_uniform(self):
        ps = ParticleSet(4)
        ps.weights[:] = 0.0
        total = ps.normalize_weights()
        assert total == 0.0
        np.testing.assert_allclose(ps.weights, 0.25)

    def test_normalize_handles_nan(self):
        ps = ParticleSet(4)
        ps.weights[:] = np.array([np.nan, 1.0, 1.0, np.nan], dtype=np.float32)
        ps.normalize_weights()
        np.testing.assert_allclose(ps.weights, [0.0, 0.5, 0.5, 0.0])

    def test_ess_uniform_equals_n(self):
        ps = ParticleSet(64)
        assert ps.effective_sample_size() == pytest.approx(64.0, rel=1e-3)

    def test_ess_degenerate_equals_one(self):
        ps = ParticleSet(64)
        ps.weights[:] = 0.0
        ps.weights[5] = 1.0
        assert ps.effective_sample_size() == pytest.approx(1.0)

    def test_fp16_weights_survive_normalization(self):
        ps = ParticleSet(16384, PrecisionMode.FP16_QM)
        ps.normalize_weights()
        # Uniform weight 1/16384 is representable in fp16 (~6.1e-5).
        assert float(ps.weights.astype(np.float64).sum()) == pytest.approx(1.0, rel=0.01)


class TestDoubleBuffer:
    def test_swap_gathers_indices(self):
        ps = ParticleSet(4)
        ps.set_state(
            np.array([0.0, 1.0, 2.0, 3.0]),
            np.array([10.0, 11.0, 12.0, 13.0]),
            np.zeros(4),
        )
        ps.swap_from_indices(np.array([3, 3, 0, 1]))
        np.testing.assert_allclose(ps.x, [3.0, 3.0, 0.0, 1.0])
        np.testing.assert_allclose(ps.y, [13.0, 13.0, 10.0, 11.0])

    def test_swap_resets_weights_uniform(self):
        ps = ParticleSet(4)
        ps.weights[:] = np.array([0.7, 0.1, 0.1, 0.1], dtype=np.float32)
        ps.swap_from_indices(np.zeros(4, dtype=np.int64))
        np.testing.assert_allclose(ps.weights, 0.25)

    def test_swap_requires_full_draw(self):
        ps = ParticleSet(4)
        with pytest.raises(MapError):
            ps.swap_from_indices(np.array([0, 1]))

    def test_double_swap_roundtrip(self):
        ps = ParticleSet(3)
        ps.set_state(np.array([1.0, 2.0, 3.0]), np.zeros(3), np.zeros(3))
        ps.swap_from_indices(np.array([2, 1, 0]))
        ps.swap_from_indices(np.array([2, 1, 0]))
        np.testing.assert_allclose(ps.x, [1.0, 2.0, 3.0])


class TestMemory:
    def test_fp32_is_32_bytes_per_particle(self):
        # Paper Sec. III-C2: double-buffered fp32 particles cost 32 bytes.
        assert ParticleSet(1024, PrecisionMode.FP32).memory_bytes() == 1024 * 32

    def test_fp16_is_16_bytes_per_particle(self):
        assert ParticleSet(1024, PrecisionMode.FP16_QM).memory_bytes() == 1024 * 16
