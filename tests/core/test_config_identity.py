"""Config identity: canonical serialization, fingerprints, the spec grammar.

The fingerprint is what keys on-disk results (campaign cells, serve
cohorts), so these tests pin its value and its invariants hard: stable
across processes and dict orderings, injective over the paper's ablation
grid, excluding N, and — via the legacy-key test in
``tests/eval/test_campaign.py`` — backward compatible for pure paper
variants.
"""

import dataclasses
import pathlib
import subprocess
import sys

import pytest

from repro.common.errors import ConfigurationError
from repro.common.precision import PrecisionMode
from repro.core.config import (
    CONFIG_OVERRIDE_FIELDS,
    PAPER_VARIANTS,
    ConfigSpec,
    MclConfig,
)

#: Pinned digest of the paper-default configuration.  Changing canonical
#: serialization (field set, types, encoding) changes every fingerprint
#: and therefore every ablated cell key in every existing store — that
#: must be a deliberate, reviewed decision, so it fails loudly here.
DEFAULT_FINGERPRINT = "2a3601d5d6f8"


class TestCanonicalDict:
    def test_round_trip_exact(self):
        config = MclConfig(
            particle_count=128,
            sigma_obs=1.25,
            r_max=2.0,
            precision=PrecisionMode.FP16_QM,
            use_rear_sensor=False,
            beam_rows=(2, 5),
        )
        assert MclConfig.from_canonical_dict(config.to_canonical_dict()) == config

    def test_json_types_only(self):
        payload = MclConfig().to_canonical_dict()
        for key, value in payload.items():
            assert isinstance(value, (int, float, str, bool, list)), key

    def test_unknown_field_rejected(self):
        payload = MclConfig().to_canonical_dict()
        payload["warp_factor"] = 9
        with pytest.raises(ConfigurationError):
            MclConfig.from_canonical_dict(payload)

    def test_covers_every_config_field(self):
        assert set(MclConfig().to_canonical_dict()) == {
            f.name for f in dataclasses.fields(MclConfig)
        }


class TestFingerprint:
    def test_default_fingerprint_pinned(self):
        assert MclConfig().fingerprint() == DEFAULT_FINGERPRINT

    def test_stable_across_processes(self):
        # A fresh interpreter (different PYTHONHASHSEED) must agree —
        # the fingerprint may never depend on hash() salting.
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.core.config import MclConfig;"
             "print(MclConfig().fingerprint())"],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345"},
            cwd=str(pathlib.Path(__file__).parents[2]),
        )
        assert out.stdout.strip() == DEFAULT_FINGERPRINT

    def test_independent_of_dict_ordering(self):
        payload = MclConfig().to_canonical_dict()
        reordered = dict(sorted(payload.items(), reverse=True))
        assert (
            MclConfig.from_canonical_dict(reordered).fingerprint()
            == DEFAULT_FINGERPRINT
        )

    def test_particle_count_excluded(self):
        # N is its own sweep/cohort axis: identity is (fingerprint, N).
        assert (
            MclConfig(particle_count=64).fingerprint()
            == MclConfig(particle_count=16384).fingerprint()
        )

    def test_injective_over_paper_grid(self):
        # Variants x sigma x r_max — the ablation space the paper's
        # figures cover — must all map to distinct fingerprints.
        fingerprints = set()
        cells = 0
        for variant in PAPER_VARIANTS:
            for sigma in (0.5, 1.0, 2.0, 4.0):
                for r_max in (1.0, 1.5, 2.0):
                    spec = (
                        ConfigSpec.parse(variant)
                        .with_override("sigma", sigma)
                        .with_override("r_max", r_max)
                    )
                    fingerprints.add(spec.fingerprint())
                    cells += 1
        assert len(fingerprints) == cells

    def test_every_override_field_moves_the_fingerprint(self):
        base = MclConfig().fingerprint()
        for name in CONFIG_OVERRIDE_FIELDS:
            changed = dataclasses.replace(
                MclConfig(), **{name: getattr(MclConfig(), name) * 0.5}
            )
            assert changed.fingerprint() != base, name


class TestDefaultVariantLabel:
    def test_all_paper_variants_recognized(self):
        for variant in PAPER_VARIANTS:
            config = MclConfig(particle_count=96).with_variant(variant)
            assert config.default_variant_label() == variant

    def test_ablated_config_not_recognized(self):
        assert (
            MclConfig(sigma_obs=1.0).default_variant_label() is None
        )


class TestConfigSpecGrammar:
    def test_bare_variant_round_trips(self):
        for variant in PAPER_VARIANTS:
            spec = ConfigSpec.parse(variant)
            assert spec.id == variant
            assert spec.is_default

    def test_overrides_canonicalize_and_round_trip(self):
        spec = ConfigSpec.parse("fp16qm+sigma=0.15+r_max=2.0")
        assert spec.id == "fp16qm+r_max=2.0+sigma_obs=0.15"
        assert ConfigSpec.parse(spec.id) == spec
        assert not spec.is_default

    def test_alias_and_full_name_share_identity(self):
        assert (
            ConfigSpec.parse("fp32+sigma=0.5").fingerprint()
            == ConfigSpec.parse("fp32+sigma_obs=0.5").fingerprint()
        )

    def test_default_valued_override_is_dropped(self):
        # fp32+sigma_obs=2.0 *is* fp32: no-op overrides cannot fork
        # identity (or break legacy keys).
        spec = ConfigSpec.parse("fp32+sigma_obs=2.0")
        assert spec.id == "fp32"
        assert spec.is_default
        assert spec.fingerprint() == DEFAULT_FINGERPRINT

    def test_last_spelling_wins(self):
        spec = ConfigSpec.parse("fp32+sigma=0.5+sigma_obs=1.0")
        assert spec.id == "fp32+sigma_obs=1.0"

    def test_materialized_config_applies_everything(self):
        config = ConfigSpec.parse("fp16qm+sigma=0.15+r_max=2.0").config(
            particle_count=96
        )
        assert config.precision is PrecisionMode.FP16_QM
        assert config.sigma_obs == 0.15
        assert config.r_max == 2.0
        assert config.particle_count == 96

    def test_default_spec_config_equals_variant_path(self):
        # The acceptance criterion's core: a default-param config spec
        # materializes the exact config the pre-spec variant path built.
        for variant in PAPER_VARIANTS:
            assert ConfigSpec.parse(variant).config(particle_count=64) == (
                MclConfig(particle_count=64).with_variant(variant)
            )

    def test_errors(self):
        for bad in (
            "",
            "fp64",
            "fp32+sigma",
            "fp32+warp=9",
            "fp32+sigma=fast",
            "fp32+particle_count=64",  # N is not an override axis
            "fp32+sigma=-1.0",  # MclConfig range check propagates
        ):
            with pytest.raises(ConfigurationError):
                ConfigSpec.parse(bad)

    def test_spec_instances_pass_through_parse(self):
        spec = ConfigSpec.parse("fp32+r_max=2.0")
        assert ConfigSpec.parse(spec) is spec
