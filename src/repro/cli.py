"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands:

* ``info``            — library, paper and platform-model summary
* ``show-map``        — render the combined evaluation world as ASCII
* ``generate-data``   — build and cache the six evaluation sequences
* ``run``             — localize one sequence with one configuration
* ``sweep``           — run an evaluation sweep through the sweep engine
* ``bench-backends``  — time reference vs batched backends on one sweep
* ``perf``            — print the Table I / Table II model predictions

Commands that execute the filter accept ``--backend {reference,batched}``
to pick the :class:`~repro.engine.backend.FilterBackend`; all backends
produce identical results, so the flag only affects throughput.
"""

from __future__ import annotations

import argparse
import math
import sys

from . import __version__
from .core.config import PAPER_PARTICLE_COUNTS, PAPER_VARIANTS, MclConfig
from .dataset.sequences import SEQUENCE_SCRIPTS, load_all_sequences, load_sequence
from .engine.backend import available_backends
from .eval.aggregate import SweepProtocol
from .eval.bench import compare_backends, write_backend_report
from .eval.runner import run_localization
from .eval.sweep_engine import SweepEngine
from .maps.maze import build_drone_maze_world
from .soc.gap9 import GAP9
from .soc.perf import Gap9PerfModel, MclStep
from .soc.power import Gap9PowerModel
from .viz.tables import format_table


def _cmd_info(_args: argparse.Namespace) -> int:
    world = build_drone_maze_world()
    print(f"repro {__version__} — nano-UAV multizone-ToF Monte Carlo localization")
    print('Reproduction of: "Fully On-board Low-Power Localization with')
    print(' Multizone Time-of-Flight Sensors on Nano-UAVs" (DATE 2023)')
    print()
    print(f"Evaluation world : {world.grid.structured_area_m2():.2f} m2 structured")
    print(f"Map resolution   : {world.grid.resolution} m/cell")
    print(f"Sequences        : {len(SEQUENCE_SCRIPTS)}")
    print(f"Paper variants   : {', '.join(PAPER_VARIANTS)}")
    print(f"Particle sweeps  : {PAPER_PARTICLE_COUNTS}")
    print(
        f"GAP9             : {GAP9.cluster_worker_cores}+1 cluster cores, "
        f"{GAP9.l1_bytes // 1024} kB L1, {GAP9.l2_bytes // 1024} kB L2, "
        f"{GAP9.max_frequency_hz / 1e6:.0f} MHz"
    )
    return 0


def _cmd_show_map(args: argparse.Namespace) -> int:
    world = build_drone_maze_world(seed=args.seed)
    print(world.grid.to_ascii())
    return 0


def _cmd_generate_data(_args: argparse.Namespace) -> int:
    sequences = load_all_sequences()
    for sequence in sequences:
        print(
            f"{sequence.name:24s} frames={len(sequence):5d} "
            f"duration={sequence.duration_s:5.1f} s"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    world = build_drone_maze_world()
    sequence = load_sequence(args.sequence, world)
    config = MclConfig(particle_count=args.particles).with_variant(args.variant)
    result = run_localization(
        world.grid, sequence, config, seed=args.seed, backend=args.backend
    )
    metrics = result.metrics
    print(f"sequence   : {sequence.name} ({sequence.duration_s:.1f} s)")
    print(f"variant    : {config.variant_label}, N={config.particle_count}, seed={args.seed}")
    print(f"backend    : {args.backend}")
    print(f"updates    : {result.update_count}")
    print(f"converged  : {metrics.converged}")
    if metrics.converged:
        print(f"conv. time : {metrics.convergence_time_s:.1f} s")
        print(f"ATE mean   : {metrics.ate_mean_m:.3f} m  (rmse {metrics.ate_rmse_m:.3f}, max {metrics.ate_max_m:.3f})")
        print(f"yaw mean   : {math.degrees(metrics.yaw_mean_rad):.1f} deg")
        print(f"success    : {metrics.success}")
    return 0


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_particles(raw: str) -> list[int]:
    counts = [_positive_int(part) for part in raw.split(",") if part.strip()]
    if not counts:
        raise argparse.ArgumentTypeError("need at least one particle count")
    return counts


def _parse_variants(raw: str) -> list[str]:
    variants = [part.strip() for part in raw.split(",") if part.strip()]
    for variant in variants:
        if variant not in PAPER_VARIANTS:
            raise argparse.ArgumentTypeError(
                f"unknown variant {variant!r}; expected from {PAPER_VARIANTS}"
            )
    if not variants:
        raise argparse.ArgumentTypeError("need at least one variant")
    return variants


def _cmd_sweep(args: argparse.Namespace) -> int:
    world = build_drone_maze_world()
    sequences = load_all_sequences(world)
    engine = SweepEngine(backend=args.backend, jobs=args.jobs)
    progress = print if args.verbose else None
    result = engine.run(
        world.grid,
        sequences,
        variants=args.variants,
        particle_counts=args.particles,
        progress=progress,
    )
    header = ["variant"] + [str(c) for c in args.particles]
    ate_rows = []
    success_rows = []
    for variant in args.variants:
        ates = result.ate_series(variant, args.particles)
        successes = result.success_series(variant, args.particles)
        ate_rows.append(
            [variant]
            + [f"{a:.3f}" if not math.isnan(a) else "n/a" for a in ates]
        )
        success_rows.append([variant] + [f"{s:.0f}%" for s in successes])
    runs = next(iter(result.cells.values())).aggregate.run_count
    print(
        format_table(
            header,
            ate_rows,
            title=f"ATE (m) vs particle number  [{runs} runs/cell]",
            footnote=f"backend={args.backend} jobs={args.jobs}",
        )
    )
    print()
    print(format_table(header, success_rows, title="success rate vs particle number"))
    return 0


def _cmd_bench_backends(args: argparse.Namespace) -> int:
    world = build_drone_maze_world()
    sequences = load_all_sequences(world)
    report = compare_backends(
        world.grid,
        sequences,
        variants=args.variants,
        particle_counts=args.particles,
        progress=print if args.verbose else None,
    )
    rows = []
    for cell in report["timings"][report["backends"][0]]["cells_s"]:
        rows.append(
            [cell]
            + [f"{report['timings'][b]['cells_s'][cell]:.2f}s" for b in report["backends"]]
        )
    rows.append(
        ["total"]
        + [f"{report['timings'][b]['total_s']:.2f}s" for b in report["backends"]]
    )
    print(
        format_table(
            ["cell"] + list(report["backends"]),
            rows,
            title="Backend sweep timing (lower is better)",
            footnote=f"equivalent results: {report['equivalent']}",
        )
    )
    baseline = report["backends"][0]
    for backend, speedup in report[f"speedup_vs_{baseline}"].items():
        print(f"speedup {backend} vs {baseline}: {speedup:.2f}x")
    path = write_backend_report(report, args.json)
    print(f"report written to {path}")
    return 0


def _cmd_perf(_args: argparse.Namespace) -> int:
    model = Gap9PerfModel()
    rows = []
    for count in PAPER_PARTICLE_COUNTS:
        row: list[object] = [count]
        for step in MclStep:
            one = model.step_time_per_particle_ns(step, count, 1)
            eight = model.step_time_per_particle_ns(step, count, 8)
            row.append(f"{one:.0f}/{eight:.0f}")
        row.append(f"{model.total_speedup(count):.2f}x")
        rows.append(row)
    print(
        format_table(
            ["N", "observation", "motion", "resampling", "pose comp.", "speedup"],
            rows,
            title="Per-particle execution time ns (1 core / 8 cores), GAP9@400MHz",
            footnote="particles stored in L2 beyond 1024 (paper Table I)",
        )
    )
    print()
    power = Gap9PowerModel()
    op_rows = []
    for freq, count in ((400e6, 1024), (12e6, 1024), (400e6, 16384), (200e6, 16384)):
        op = power.operating_point(freq, count)
        op_rows.append(
            [
                f"{op['frequency_mhz']:.0f} MHz",
                count,
                f"{op['avg_power_mw']:.0f} mW",
                f"{op['execution_time_ms']:.3f} ms",
            ]
        )
    print(
        format_table(
            ["clock", "particles", "avg power", "execution time"],
            op_rows,
            title="MCL operating points (paper Table II)",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nano-UAV multizone-ToF Monte Carlo localization (DATE 2023 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and platform summary").set_defaults(
        func=_cmd_info
    )

    show = sub.add_parser("show-map", help="render the evaluation world")
    show.add_argument("--seed", type=int, default=7, help="world layout seed")
    show.set_defaults(func=_cmd_show_map)

    sub.add_parser(
        "generate-data", help="build and cache the six evaluation sequences"
    ).set_defaults(func=_cmd_generate_data)

    run = sub.add_parser("run", help="localize one sequence")
    run.add_argument("--sequence", type=int, default=0, help="sequence index 0-5")
    run.add_argument(
        "--variant", choices=list(PAPER_VARIANTS), default="fp32", help="paper variant"
    )
    run.add_argument("--particles", type=int, default=4096)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--backend",
        choices=list(available_backends()),
        default="reference",
        help="filter backend (identical results, different throughput)",
    )
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="run an evaluation sweep through the sweep engine"
    )
    sweep.add_argument(
        "--variants",
        type=_parse_variants,
        default=list(PAPER_VARIANTS),
        help="comma-separated paper variants",
    )
    sweep.add_argument(
        "--particles",
        type=_parse_particles,
        default=list(PAPER_PARTICLE_COUNTS),
        help="comma-separated particle counts",
    )
    sweep.add_argument(
        "--backend",
        choices=list(available_backends()),
        default="batched",
        help="filter backend executing each sweep cell",
    )
    sweep.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for cell fan-out",
    )
    sweep.add_argument(
        "--verbose", action="store_true", help="print one line per completed run"
    )
    sweep.set_defaults(func=_cmd_sweep)

    bench = sub.add_parser(
        "bench-backends", help="time reference vs batched backends on one sweep"
    )
    bench.add_argument("--variants", type=_parse_variants, default=None)
    bench.add_argument("--particles", type=_parse_particles, default=None)
    bench.add_argument(
        "--json", default=None, help="report path (default results/BENCH_backends.json)"
    )
    bench.add_argument(
        "--verbose", action="store_true", help="print per-cell timings as they finish"
    )
    bench.set_defaults(func=_cmd_bench_backends)

    sub.add_parser("perf", help="print Table I / II model predictions").set_defaults(
        func=_cmd_perf
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
