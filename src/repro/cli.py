"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands:

* ``info``            — library, paper and platform-model summary
* ``show-map``        — render the combined evaluation world as ASCII
* ``generate-data``   — build and cache the six evaluation sequences
* ``scenarios``       — list scenario families / generate scenario files
* ``run``             — localize one sequence with one configuration
* ``sweep``           — run an evaluation sweep through the sweep engine
  (``--scenarios`` sweeps generated worlds instead of the canonical
  maze; ``--ablate`` expands config-override axes)
* ``campaign``        — resumable scenario-parallel sweep campaigns over
  the on-disk result store (``run`` / ``status`` / ``report`` / ``list``
  / ``merge`` / ``shard``)
* ``serve-sim``       — replay a simulated drone fleet through the
  online serving layer (multiplexed sessions, aggregate + per-session
  metrics)
* ``serve-online``    — run the asyncio session gateway (length-prefixed
  JSON protocol over TCP: per-session ordering, coalesced ticking,
  admission control, backpressure, drain/handoff migration verbs);
  ``--peer`` names fellow servers for ``migrate``-by-index, ``--replay
  FLEET`` drives a loopback demo fleet through the socket instead of
  serving forever
* ``migrate``         — move live sessions between running gateways:
  explicit session moves, whole-peer eviction (``--evict``) or a
  fleet-wide cohort-aware rebalance (``--rebalance``), each handoff
  bitwise-invisible to the migrated session's trace
* ``bench-backends``  — time reference vs batched vs fast backends on
  one sweep (``fast`` joins wherever a fused provider is available)
* ``perf``            — print the Table I / Table II model predictions
* ``obs``             — inspect telemetry: ``obs report`` renders a
  metrics/span snapshot (live registry, snapshot file, or a running
  gateway's ``metrics`` verb) as a table, JSON or Prometheus text
* ``docs-cli``        — emit the generated CLI reference (docs/cli.md)

The global ``--obs`` / ``--obs-dir DIR`` flags enable the telemetry
registry (and the JSONL event log) for any command — equivalent to the
``REPRO_OBS`` / ``REPRO_OBS_DIR`` environment variables, and guaranteed
not to change any numeric result (see ``docs/observability.md``).

Commands that execute the filter accept ``--backend
{reference,batched,fast}`` to pick the
:class:`~repro.engine.backend.FilterBackend`; all backends produce
bitwise-identical results, so the flag only affects throughput (``fast``
needs numba or a C toolchain and fails with a clear configuration error
otherwise).  Every
``--variant``/``--variants`` flag speaks the config-spec grammar
``variant[+key=value...]`` (:class:`~repro.core.config.ConfigSpec`), so
paper variants and ablated configurations are interchangeable.

The full reference is generated from this parser tree into
``docs/cli.md`` (kept in sync by a CI drift check), so every flag
documented there is guaranteed to exist.
"""

from __future__ import annotations

import argparse
import math
import sys

from . import __version__, obs
from .common.errors import ConfigurationError
from .core.config import (
    PAPER_PARTICLE_COUNTS,
    PAPER_VARIANTS,
    ConfigSpec,
)
from .dataset.sequences import SEQUENCE_SCRIPTS, load_all_sequences, load_sequence
from .engine.backend import available_backends
from .eval.aggregate import RunningCellStats, SweepProtocol
from .eval.bench import compare_backends, write_backend_report
from .eval.campaign import (
    CampaignSpec,
    aggregate_report,
    campaign_status,
    merge_campaign_stores,
    pivot_report,
    run_campaign,
)
from .eval.runner import run_localization
from .eval.store import STORE_TIERS, CampaignStore, list_campaigns
from .eval.sweep_engine import SweepEngine
from .maps.maze import build_drone_maze_world
from .scenarios import (
    FleetSpec,
    ScenarioSpec,
    available_families,
    build_scenario,
    get_family,
    scenario_cache_path,
)
from .soc.gap9 import GAP9
from .soc.perf import Gap9PerfModel, MclStep
from .soc.power import Gap9PowerModel
from .viz.tables import format_matrix, format_table


def _cmd_info(_args: argparse.Namespace) -> int:
    world = build_drone_maze_world()
    print(f"repro {__version__} — nano-UAV multizone-ToF Monte Carlo localization")
    print('Reproduction of: "Fully On-board Low-Power Localization with')
    print(' Multizone Time-of-Flight Sensors on Nano-UAVs" (DATE 2023)')
    print()
    print(f"Evaluation world : {world.grid.structured_area_m2():.2f} m2 structured")
    print(f"Map resolution   : {world.grid.resolution} m/cell")
    print(f"Sequences        : {len(SEQUENCE_SCRIPTS)}")
    print(f"Paper variants   : {', '.join(PAPER_VARIANTS)}")
    print(f"Particle sweeps  : {PAPER_PARTICLE_COUNTS}")
    print(
        f"GAP9             : {GAP9.cluster_worker_cores}+1 cluster cores, "
        f"{GAP9.l1_bytes // 1024} kB L1, {GAP9.l2_bytes // 1024} kB L2, "
        f"{GAP9.max_frequency_hz / 1e6:.0f} MHz"
    )
    return 0


def _cmd_show_map(args: argparse.Namespace) -> int:
    world = build_drone_maze_world(seed=args.seed)
    print(world.grid.to_ascii())
    return 0


def _cmd_generate_data(_args: argparse.Namespace) -> int:
    sequences = load_all_sequences()
    for sequence in sequences:
        print(
            f"{sequence.name:24s} frames={len(sequence):5d} "
            f"duration={sequence.duration_s:5.1f} s"
        )
    return 0


def _cmd_scenarios_list(_args: argparse.Namespace) -> int:
    rows = []
    for name in available_families():
        family = get_family(name)
        defaults = ", ".join(f"{k}={v}" for k, v in family.defaults)
        rows.append([name, family.description, defaults or "-"])
    print(
        format_table(
            ["family", "description", "parameters (defaults)"],
            rows,
            title=f"Scenario families ({len(rows)} registered)",
            footnote="spec grammar: family[:seed[:name=value+name=value]]",
        )
    )
    return 0


def _cmd_scenarios_generate(args: argparse.Namespace) -> int:
    for raw in args.specs:
        spec = ScenarioSpec.parse(raw)
        scenario = build_scenario(spec, cache=not args.no_cache)
        sequence = scenario.sequence
        where = "(not cached)" if args.no_cache else str(scenario_cache_path(spec))
        print(
            f"{spec.id:32s} frames={len(sequence):5d} "
            f"duration={sequence.duration_s:5.1f} s "
            f"grid={scenario.grid.rows}x{scenario.grid.cols} {where}"
        )
    return 0


def _parse_scenarios(raw: str) -> list[ScenarioSpec]:
    try:
        specs = [ScenarioSpec.parse(part) for part in raw.split(",") if part.strip()]
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    if not specs:
        raise argparse.ArgumentTypeError("need at least one scenario spec")
    for spec in specs:
        if spec.family not in available_families():
            raise argparse.ArgumentTypeError(
                f"unknown scenario family {spec.family!r}; "
                f"expected from {available_families()}"
            )
    return specs


def _cmd_run(args: argparse.Namespace) -> int:
    world = build_drone_maze_world()
    sequence = load_sequence(args.sequence, world)
    config = ConfigSpec.parse(args.variant).config(particle_count=args.particles)
    result = run_localization(
        world.grid, sequence, config, seed=args.seed, backend=args.backend
    )
    metrics = result.metrics
    print(f"sequence   : {sequence.name} ({sequence.duration_s:.1f} s)")
    print(f"variant    : {config.variant_label}, N={config.particle_count}, seed={args.seed}")
    print(f"backend    : {args.backend}")
    print(f"updates    : {result.update_count}")
    print(f"converged  : {metrics.converged}")
    if metrics.converged:
        print(f"conv. time : {metrics.convergence_time_s:.1f} s")
        print(f"ATE mean   : {metrics.ate_mean_m:.3f} m  (rmse {metrics.ate_rmse_m:.3f}, max {metrics.ate_max_m:.3f})")
        print(f"yaw mean   : {math.degrees(metrics.yaw_mean_rad):.1f} deg")
        print(f"success    : {metrics.success}")
    return 0


def _positive_int(raw: str) -> int:
    value = int(raw)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_particles(raw: str) -> list[int]:
    counts = [_positive_int(part) for part in raw.split(",") if part.strip()]
    if not counts:
        raise argparse.ArgumentTypeError("need at least one particle count")
    return counts


def _parse_config_spec(raw: str) -> str:
    """Validate one ``variant[+key=value...]`` spec; return its canonical id."""
    try:
        return ConfigSpec.parse(raw).id
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _parse_variants(raw: str) -> list[str]:
    variants = [
        _parse_config_spec(part) for part in raw.split(",") if part.strip()
    ]
    if not variants:
        raise argparse.ArgumentTypeError("need at least one config spec")
    return list(dict.fromkeys(variants))


def _parse_ablate(raw: str) -> tuple[str, list[str]]:
    """Parse one ``--ablate key=v1,v2,...`` axis.

    Key and value validation is delegated to :class:`ConfigSpec` (the
    one config grammar), so ``--ablate`` accepts exactly the overrides
    every other config-spec surface accepts — numeric values for the
    float fields, ``/``-separated rows for ``beam_rows``
    (``--ablate beam_rows=2/3,2/3/4/5``).
    """
    key, sep, values_text = raw.partition("=")
    key = key.strip()
    if not sep or not key:
        raise argparse.ArgumentTypeError(
            f"--ablate expects key=v1,v2,..., got {raw!r}"
        )
    values = [part.strip() for part in values_text.split(",") if part.strip()]
    try:
        for value in values:
            ConfigSpec("fp32", ((key, value),))
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    if not values:
        raise argparse.ArgumentTypeError(f"--ablate {key}= needs at least one value")
    return key, values


def _expand_ablations(
    variants: list[str], ablations: list[tuple[str, list[str]]] | None
) -> list[str]:
    """Cross every base config spec with every ``--ablate`` axis.

    Each axis multiplies the spec list: two base variants ablated over
    three sigmas and two r_max values become 12 config specs.  Duplicate
    canonical ids (e.g. an ablation value equal to the paper default of
    a variant already listed) collapse.
    """
    specs = [ConfigSpec.parse(variant) for variant in variants]
    for key, values in ablations or ():
        specs = [
            spec.with_override(key, value) for spec in specs for value in values
        ]
    return list(dict.fromkeys(spec.id for spec in specs))


def _print_sweep_tables(result, variants, particles, title_suffix, footnote) -> None:
    columns = [str(count) for count in particles]
    ate_cells: dict[tuple[str, str], str] = {}
    success_cells: dict[tuple[str, str], str] = {}
    for variant in variants:
        ates = result.ate_series(variant, particles)
        successes = result.success_series(variant, particles)
        for column, ate, success in zip(columns, ates, successes):
            if not math.isnan(ate):
                ate_cells[(variant, column)] = f"{ate:.3f}"
            success_cells[(variant, column)] = f"{success:.0f}%"
    runs = next(iter(result.cells.values())).aggregate.run_count
    print(
        format_matrix(
            "variant",
            list(variants),
            columns,
            ate_cells,
            title=f"ATE (m) vs particle number{title_suffix}  [{runs} runs/cell]",
            footnote=footnote,
        )
    )
    print()
    print(
        format_matrix(
            "variant",
            list(variants),
            columns,
            success_cells,
            title=f"success rate vs particle number{title_suffix}",
        )
    )


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        variants = _expand_ablations(args.variants, args.ablate)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    engine = SweepEngine(backend=args.backend, jobs=args.jobs)
    progress = print if args.verbose else None
    footnote = f"backend={args.backend} jobs={args.jobs}"
    if args.scenarios:
        results = engine.run_scenarios(
            args.scenarios,
            variants=variants,
            particle_counts=args.particles,
            progress=progress,
        )
        for index, (scenario_id, result) in enumerate(results.items()):
            if index:
                print()
            _print_sweep_tables(
                result, variants, args.particles,
                f"  — {scenario_id}", footnote,
            )
        return 0
    world = build_drone_maze_world()
    sequences = load_all_sequences(world)
    result = engine.run(
        world.grid,
        sequences,
        variants=variants,
        particle_counts=args.particles,
        progress=progress,
    )
    _print_sweep_tables(result, variants, args.particles, "", footnote)
    return 0


def _parse_seeds(raw: str) -> tuple[int, ...]:
    try:
        seeds = tuple(int(part) for part in raw.split(",") if part.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"seeds must be integers: {exc}") from exc
    if not seeds:
        raise argparse.ArgumentTypeError("need at least one seed")
    return seeds


def _campaign_spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    """Build the declarative campaign spec shared by ``run`` and ``shard``."""
    seeds = args.seeds if args.seeds is not None else SweepProtocol.from_env().seeds
    return CampaignSpec(
        name=args.name,
        scenarios=tuple(spec.id for spec in args.scenarios),
        variants=tuple(_expand_ablations(args.variants, args.ablate)),
        particle_counts=tuple(args.particles),
        seeds=seeds,
    )


def _print_campaign_summary(summary) -> None:
    print(
        f"campaign {summary.name!r}: {summary.executed} cells executed, "
        f"{summary.skipped} skipped (already stored), "
        f"{summary.total_cells} total"
    )
    if summary.recovered_files:
        print(f"recovered partial files: {', '.join(summary.recovered_files)}")
    print(f"store: {summary.store_root}")


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    try:
        spec = _campaign_spec_from_args(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = run_campaign(
        spec,
        backend=args.backend,
        jobs=args.jobs,
        resume=args.resume,
        progress=print if args.verbose else None,
        store_tier=args.store_tier,
    )
    _print_campaign_summary(summary)
    return 0


def _cmd_campaign_shard(args: argparse.Namespace) -> int:
    from .eval.campaign import shard_cells

    try:
        spec = _campaign_spec_from_args(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.index is not None and not 0 <= args.index < args.shards:
        print(
            f"error: --index must be in [0, {args.shards}), got {args.index}",
            file=sys.stderr,
        )
        return 2
    shards = shard_cells(spec, args.shards)
    if args.index is None:
        rows = [
            [
                index,
                len(cells),
                f"repro campaign shard {spec.name} ... --shards "
                f"{args.shards} --index {index}",
            ]
            for index, cells in enumerate(shards)
        ]
        print(
            format_table(
                ["shard", "cells", "run with"],
                rows,
                title=(
                    f"campaign {spec.name!r}: {len(spec.cells())} cells "
                    f"over {args.shards} shards (round-robin)"
                ),
                footnote=(
                    "each shard writes the full-spec manifest; merge the "
                    f"stores back with: repro campaign merge {spec.name} "
                    f"{spec.name}-shard<i>"
                ),
            )
        )
        return 0
    store = CampaignStore(f"{spec.name}-shard{args.index}", tier=args.store_tier)
    summary = run_campaign(
        spec,
        backend=args.backend,
        jobs=args.jobs,
        resume=args.resume,
        store=store,
        progress=print if args.verbose else None,
        shard=(args.index, args.shards),
    )
    _print_campaign_summary(summary)
    print(
        f"merge back with: repro campaign merge {spec.name} "
        f"{spec.name}-shard{args.index}"
    )
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    status = campaign_status(args.name)
    rows = [
        [scenario, f"{entry['done']}/{entry['total']}"]
        for scenario, entry in status["scenarios"].items()
    ]
    print(
        format_table(
            ["scenario", "cells done"],
            rows,
            title=(
                f"campaign {status['name']!r}: "
                f"{status['completed']}/{status['total']} cells completed"
            ),
            footnote=f"store: {status['store_root']}",
        )
    )
    return 0


def _pivot_column_order(values: set[str]) -> list[str]:
    """Sort pivot columns numerically when possible, lexically otherwise."""

    def sort_key(value: str):
        try:
            return (0, float(value), value)
        except ValueError:
            return (1, 0.0, value)

    return sorted(values, key=sort_key)


def _cmd_campaign_pivot_report(args: argparse.Namespace) -> int:
    report = pivot_report(args.name, args.pivot)
    printed = False
    for scenario, rows in report.items():
        if not rows:
            continue
        if printed:
            print()
        printed = True
        row_names = [
            f"{base} N={count}" for base, count in sorted(rows.keys())
        ]
        columns = _pivot_column_order(
            {value for cells in rows.values() for value in cells}
        )
        ate_cells: dict[tuple[str, str], str] = {}
        success_cells: dict[tuple[str, str], str] = {}
        for (base, count), cells in rows.items():
            row = f"{base} N={count}"
            for value, aggregate in cells.items():
                ate = aggregate["mean_ate_m"]
                if ate is not None:
                    ate_cells[(row, value)] = f"{ate:.3f}"
                rate = aggregate["success_rate"]
                if rate is not None:
                    success_cells[(row, value)] = f"{100 * rate:.0f}%"
        print(
            format_matrix(
                "config",
                row_names,
                columns,
                ate_cells,
                title=f"ATE (m) vs {args.pivot} — {scenario}",
            )
        )
        print()
        print(
            format_matrix(
                "config",
                row_names,
                columns,
                success_cells,
                title=f"success rate vs {args.pivot} — {scenario}",
            )
        )
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from .eval.campaign import load_campaign

    if args.pivot:
        return _cmd_campaign_pivot_report(args)
    spec = load_campaign(args.name)
    report = aggregate_report(args.name)
    columns = [str(count) for count in spec.particle_counts]
    overall = RunningCellStats()
    printed = False
    for scenario in spec.scenarios:
        cells = report[scenario]
        if not cells:
            continue
        if printed:
            print()
        printed = True
        ate_cells: dict[tuple[str, str], str] = {}
        success_cells: dict[tuple[str, str], str] = {}
        runs = 0
        for (variant, count), aggregate in cells.items():
            overall.add(aggregate)
            runs = max(runs, aggregate["runs"])
            ate = aggregate["mean_ate_m"]
            if ate is not None:
                ate_cells[(variant, str(count))] = f"{ate:.3f}"
            rate = aggregate["success_rate"]
            if rate is not None:
                success_cells[(variant, str(count))] = f"{100 * rate:.0f}%"
        print(
            format_matrix(
                "variant",
                list(spec.variants),
                columns,
                ate_cells,
                title=f"ATE (m) vs particle number — {scenario}  [{runs} runs/cell]",
            )
        )
        print()
        print(
            format_matrix(
                "variant",
                list(spec.variants),
                columns,
                success_cells,
                title=f"success rate vs particle number — {scenario}",
            )
        )
    if printed:
        rate = overall.success_rate
        ate = overall.mean_ate_m
        print()
        print(
            f"overall: {overall.cells} cells, {overall.runs} runs, "
            + (f"{100 * rate:.0f}% success" if rate is not None else "no runs")
            + (f", mean ATE {ate:.3f} m" if ate is not None else "")
        )
    return 0


def _cmd_campaign_compact(args: argparse.Namespace) -> int:
    store = CampaignStore(args.name)
    if not store.exists():
        print(f"error: campaign {args.name!r} not found", file=sys.stderr)
        return 2
    with store:
        summary = store.compact()
    print(
        f"compacted campaign {args.name!r}: {summary.packed} cells packed "
        f"into segments, {summary.already_packed} already packed, "
        f"{summary.verified} byte-verified, {summary.removed_files} cell "
        f"files removed, {summary.skipped_invalid} torn files left for "
        "recovery"
    )
    return 0


def _cmd_campaign_merge(args: argparse.Namespace) -> int:
    summary = merge_campaign_stores(
        CampaignStore(args.dest), CampaignStore(args.source)
    )
    print(
        f"merged campaign {summary.source!r} into {summary.dest!r}: "
        f"{summary.copied} cells copied, {summary.verified} byte-verified "
        f"collisions, {summary.skipped_invalid} torn source files skipped "
        f"({summary.total_source_cells} source cells)"
    )
    return 0


def _parse_fleet(raw: str) -> FleetSpec:
    try:
        return FleetSpec.parse(raw)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    from .serve import SessionManager

    manager = SessionManager(backend=args.backend)
    session_ids = manager.create_fleet(args.fleet)
    with obs.timed("cli.serve_sim") as serve_timer:
        frames = manager.run_to_completion(
            frames_per_flush=args.frames_per_flush
        )
    elapsed = serve_timer.elapsed_s

    rows = []
    successes = 0
    for session_id in session_ids:
        result = manager.close(session_id)
        metrics = result.metrics
        converged = metrics is not None and metrics.converged
        success = metrics is not None and metrics.success
        successes += 1 if success else 0
        rows.append(
            [
                session_id,
                result.spec.variant,
                result.spec.particle_count,
                len(result.trace.timestamps),
                result.trace.update_count,
                "yes" if converged else "no",
                f"{metrics.ate_mean_m:.3f}" if converged else "-",
                "yes" if success else "no",
            ]
        )
        if args.verbose:
            print(f"closed {session_id}")
    print(
        format_table(
            ["session", "variant", "N", "frames", "updates", "conv", "ate m", "ok"],
            rows,
            title=f"Fleet serving — {len(rows)} sessions, backend={args.backend}",
            footnote="each session is bitwise-identical to its solo reference run",
        )
    )
    print()
    print(
        f"aggregate: {successes}/{len(rows)} sessions successful, "
        f"{frames} frames served in {elapsed:.2f}s "
        f"({frames / elapsed:.0f} frames/s, "
        f"{len(rows) / elapsed:.2f} sessions/s)"
    )
    return 0


def _cmd_serve_online(args: argparse.Namespace) -> int:
    import asyncio

    import numpy as np

    from .serve import AdmissionPolicy, OnlineServer
    from .serve.online import drive_fleet

    policy = AdmissionPolicy(
        max_sessions=args.max_sessions,
        max_pending_frames=args.max_pending_frames,
    )

    async def serve() -> int:
        server = OnlineServer(
            backend=args.backend,
            policy=policy,
            peers=args.peer,
            handoff_timeout_s=args.handoff_timeout,
        )
        await server.start(host=args.host, port=args.port)
        host, port = server.address
        if args.replay is None:
            peers = (
                f", peers={','.join(args.peer)}" if args.peer else ""
            )
            print(
                f"serve-online listening on {host}:{port} "
                f"(backend={args.backend}, max_sessions={policy.max_sessions}, "
                f"max_pending_frames={policy.max_pending_frames}{peers}) "
                "— Ctrl-C stops"
            )
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await server.stop()
            return 0

        try:
            report = await drive_fleet(
                host,
                port,
                args.replay,
                connections=args.connections,
                frames_per_round=args.frames_per_round,
            )
        finally:
            await server.stop()

        rows = []
        successes = 0
        for session_id in sorted(report.results):
            closed = report.results[session_id]
            metrics = closed.metrics or {}
            converged = bool(metrics.get("converged"))
            success = bool(metrics.get("success"))
            successes += 1 if success else 0
            rows.append(
                [
                    session_id,
                    closed.spec.variant,
                    closed.spec.particle_count,
                    len(closed.trace.timestamps),
                    closed.trace.update_count,
                    "yes" if converged else "no",
                    f"{metrics['ate_mean_m']:.3f}" if converged else "-",
                    "yes" if success else "no",
                ]
            )
        print(
            format_table(
                ["session", "variant", "N", "frames", "updates", "conv", "ate m", "ok"],
                rows,
                title=(
                    f"Online gateway replay — {len(rows)} sessions over "
                    f"{args.connections} connection(s), backend={args.backend}"
                ),
                footnote="every trace travelled the socket bit-exactly",
            )
        )
        latency = report.step_latency
        frames = report.stats["frames_served"]
        print()
        print(
            f"aggregate: {successes}/{len(rows)} sessions successful, "
            f"{frames} frames in {report.serve_s:.2f}s "
            f"({frames / report.serve_s:.0f} frames/s, "
            f"{len(rows) / report.serve_s:.2f} sessions/s); "
            f"step latency p50 {1e3 * latency.percentile(0.50):.2f} ms, "
            f"p99 {1e3 * latency.percentile(0.99):.2f} ms over "
            f"{latency.count} barriers; "
            f"{report.stats['ticks']} ticks, {report.stats['updates']} updates"
        )
        return 0

    return asyncio.run(serve())


def _cmd_migrate(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.migrate import MigrationCoordinator, Move, Peer

    if args.rebalance and args.evict:
        print("migrate: --rebalance and --evict are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.evict and not args.source:
        print("migrate: --evict needs --source HOST:PORT", file=sys.stderr)
        return 2
    if not (args.rebalance or args.evict) and not (
        args.source and args.target
    ):
        print(
            "migrate: name an operation — --rebalance, --evict --source S, "
            "or --source S --target T [--session ID ...]",
            file=sys.stderr,
        )
        return 2

    peers = [Peer.parse(p) for p in args.peers]
    for named in (args.source, args.target):
        if named is not None and Peer.parse(named) not in peers:
            peers.append(Peer.parse(named))
    if len(peers) < 2:
        print(
            "migrate: a fleet needs >= 2 peers (--peers HOST:PORT,HOST:PORT)",
            file=sys.stderr,
        )
        return 2

    async def run() -> int:
        coordinator = MigrationCoordinator(
            peers, handoff_timeout_s=args.handoff_timeout
        )
        occupancy = coordinator.occupancy_of(await coordinator.fleet_stats())
        if args.rebalance:
            moves = coordinator.plan_rebalance(occupancy)
            operation = f"rebalance across {len(peers)} peers"
        elif args.evict:
            source = Peer.parse(args.source)
            moves = coordinator.plan_evict(occupancy, source, args.keep)
            operation = f"evict {source.id} down to {args.keep} sessions"
        else:
            source, target = Peer.parse(args.source), Peer.parse(args.target)
            sessions = args.session or sorted(
                sid
                for cohort in occupancy.get(source, {}).values()
                for sid in cohort
            )
            moves = [Move(sid, source, target) for sid in sessions]
            operation = f"move {len(moves)} session(s) {source.id} -> {target.id}"

        if not moves:
            print(f"{operation}: fleet already satisfies the plan, no moves")
            return 0
        if args.plan:
            rows = [[m.session_id, m.source.id, m.target.id] for m in moves]
            print(
                format_table(
                    ["session", "source", "target"],
                    rows,
                    title=f"Planned (not executed): {operation}",
                    footnote="re-run without --plan to execute",
                )
            )
            return 0

        results = await coordinator.execute(moves)
        rows = [
            [
                r.move.session_id,
                r.move.source.id,
                r.move.target.id,
                "ok" if r.ok else "FAILED",
                f"{1e3 * r.blackout_s:.1f}",
                r.error or "-",
            ]
            for r in results
        ]
        failures = sum(1 for r in results if not r.ok)
        blackouts = sorted(r.blackout_s for r in results if r.ok)
        footnote = "each handoff is bitwise-invisible to the session's trace"
        if blackouts:
            mid = blackouts[len(blackouts) // 2]
            footnote = (
                f"blackout p50 {1e3 * mid:.1f} ms, "
                f"max {1e3 * blackouts[-1]:.1f} ms; " + footnote
            )
        print(
            format_table(
                ["session", "source", "target", "status", "blackout ms", "error"],
                rows,
                title=f"Executed: {operation}",
                footnote=footnote,
            )
        )
        if failures:
            print(
                f"{failures}/{len(results)} handoffs failed and rolled back "
                "(sessions keep serving on their source)",
                file=sys.stderr,
            )
            return 1
        return 0

    return asyncio.run(run())


def _cmd_campaign_list(_args: argparse.Namespace) -> int:
    names = list_campaigns()
    if not names:
        print("no campaigns stored")
        return 0
    rows = []
    for name in names:
        status = campaign_status(name)
        rows.append([name, f"{status['completed']}/{status['total']}"])
    print(format_table(["campaign", "cells done"], rows))
    return 0


# ----------------------------------------------------------------------
# Generated CLI reference (docs/cli.md)
# ----------------------------------------------------------------------
def _action_invocation(action: argparse.Action) -> str:
    if not action.option_strings:
        return f"`{action.metavar or action.dest}`"
    invocation = ", ".join(f"`{opt}`" for opt in action.option_strings)
    if action.nargs != 0:
        invocation += f" `{action.metavar or action.dest.upper()}`"
    return invocation


def _action_rows(parser: argparse.ArgumentParser) -> list[str]:
    lines = []
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction) or isinstance(
            action, argparse._HelpAction
        ):
            continue
        notes = []
        if action.choices is not None:
            notes.append(
                "one of " + ", ".join(f"`{choice}`" for choice in action.choices)
            )
        if (
            action.option_strings
            and action.nargs != 0
            and action.default is not None
            and action.default is not argparse.SUPPRESS
        ):
            notes.append(f"default `{action.default}`")
        help_text = (action.help or "").strip()
        detail = " — ".join(part for part in [help_text, "; ".join(notes)] if part)
        lines.append(f"- {_action_invocation(action)}" + (f": {detail}" if detail else ""))
    return lines


def _subcommand_actions(
    parser: argparse.ArgumentParser,
) -> list[tuple[str, argparse.ArgumentParser]]:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return list(action.choices.items())
    return []


def render_cli_markdown(parser: argparse.ArgumentParser | None = None) -> str:
    """Render the full parser tree as deterministic markdown.

    This is the single source of ``docs/cli.md``: the renderer walks the
    argparse actions directly (never ``format_help``, whose line wrapping
    depends on the terminal width), so the output is byte-stable and CI
    can diff it against the committed file to catch drift.
    """
    parser = parser or build_parser()
    lines = [
        "# `repro` command-line reference",
        "",
        "<!-- Generated by `python -m repro docs-cli`. Do not edit by hand:",
        "     CI fails when this file drifts from the parser in cli.py. -->",
        "",
        parser.description or "",
        "",
        "Every command is invoked as `PYTHONPATH=src python -m repro <command>`.",
        "",
        "## Global options",
        "",
    ]
    lines.extend(_action_rows(parser))
    def describe(heading: str, sub: argparse.ArgumentParser) -> None:
        lines.extend(["", heading])
        if sub.description:
            lines.extend(["", sub.description])
        rows = _action_rows(sub)
        if rows:
            lines.append("")
            lines.extend(rows)
        elif not _subcommand_actions(sub):
            lines.extend(["", "(no options)"])

    for name, sub in _subcommand_actions(parser):
        describe(f"## `repro {name}`", sub)
        for nested_name, nested_sub in _subcommand_actions(sub):
            describe(f"### `repro {name} {nested_name}`", nested_sub)
    return "\n".join(lines).rstrip() + "\n"


def _cmd_docs_cli(_args: argparse.Namespace) -> int:
    sys.stdout.write(render_cli_markdown())
    return 0


def _cmd_bench_backends(args: argparse.Namespace) -> int:
    world = build_drone_maze_world()
    sequences = load_all_sequences(world)
    report = compare_backends(
        world.grid,
        sequences,
        variants=args.variants,
        particle_counts=args.particles,
        progress=print if args.verbose else None,
        jobs=args.jobs,
    )
    rows = []
    for cell in report["timings"][report["backends"][0]]["cells_s"]:
        rows.append(
            [cell]
            + [f"{report['timings'][b]['cells_s'][cell]:.2f}s" for b in report["backends"]]
        )
    rows.append(
        ["total"]
        + [f"{report['timings'][b]['total_s']:.2f}s" for b in report["backends"]]
    )
    footnote = (
        f"equivalent results: {report['equivalent']}; "
        f"{report['cpu_count']} core(s)"
    )
    parallel = report.get("parallel")
    if parallel:
        footnote += (
            f"; {parallel['backend']}@jobs={parallel['jobs']}: "
            f"{parallel['total_s']:.2f}s"
        )
    print(
        format_table(
            ["cell"] + list(report["backends"]),
            rows,
            title="Backend sweep timing (lower is better)",
            footnote=footnote,
        )
    )
    baseline = report["backends"][0]
    for backend, speedup in report[f"speedup_vs_{baseline}"].items():
        print(f"speedup {backend} vs {baseline}: {speedup:.2f}x")
    path = write_backend_report(report, args.json)
    print(f"report written to {path}")
    return 0


def _cmd_perf(_args: argparse.Namespace) -> int:
    model = Gap9PerfModel()
    rows = []
    for count in PAPER_PARTICLE_COUNTS:
        row: list[object] = [count]
        for step in MclStep:
            one = model.step_time_per_particle_ns(step, count, 1)
            eight = model.step_time_per_particle_ns(step, count, 8)
            row.append(f"{one:.0f}/{eight:.0f}")
        row.append(f"{model.total_speedup(count):.2f}x")
        rows.append(row)
    print(
        format_table(
            ["N", "observation", "motion", "resampling", "pose comp.", "speedup"],
            rows,
            title="Per-particle execution time ns (1 core / 8 cores), GAP9@400MHz",
            footnote="particles stored in L2 beyond 1024 (paper Table I)",
        )
    )
    print()
    power = Gap9PowerModel()
    op_rows = []
    for freq, count in ((400e6, 1024), (12e6, 1024), (400e6, 16384), (200e6, 16384)):
        op = power.operating_point(freq, count)
        op_rows.append(
            [
                f"{op['frequency_mhz']:.0f} MHz",
                count,
                f"{op['avg_power_mw']:.0f} mW",
                f"{op['execution_time_ms']:.3f} ms",
            ]
        )
    print(
        format_table(
            ["clock", "particles", "avg power", "execution time"],
            op_rows,
            title="MCL operating points (paper Table II)",
        )
    )
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    import json

    if args.connect:
        import asyncio

        from .serve.online import OnlineClient
        from .serve.protocol import parse_address

        host, port = parse_address(args.connect)

        async def fetch() -> dict:
            async with await OnlineClient.connect(host, port) as client:
                return await client.metrics()

        snapshot = asyncio.run(fetch())["metrics"]
    elif args.snapshot:
        with open(args.snapshot, encoding="utf-8") as handle:
            snapshot = json.load(handle)
    else:
        snapshot = obs.snapshot()

    if args.format == "json":
        print(json.dumps(snapshot, sort_keys=True, indent=2))
    elif args.format == "prom":
        sys.stdout.write(obs.render_prometheus(snapshot))
    else:
        print(obs.render_table(snapshot))

    if args.events:
        counts: dict[str, int] = {}
        for entry in obs.read_events(args.events):
            name = entry.get("event", "?")
            counts[name] = counts.get(name, 0) + 1
        print()
        if not counts:
            print(f"(no events under {args.events})")
        else:
            print(f"events under {args.events}:")
            width = max(len(k) for k in counts)
            for name in sorted(counts):
                print(f"  {name:<{width}}  {counts[name]}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nano-UAV multizone-ToF Monte Carlo localization (DATE 2023 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "--obs",
        action="store_true",
        help="enable in-process telemetry (metrics + spans) for this command",
    )
    parser.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="enable telemetry and write JSONL event logs under DIR "
        "(implies --obs)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and platform summary").set_defaults(
        func=_cmd_info
    )

    show = sub.add_parser("show-map", help="render the evaluation world")
    show.add_argument("--seed", type=int, default=7, help="world layout seed")
    show.set_defaults(func=_cmd_show_map)

    sub.add_parser(
        "generate-data", help="build and cache the six evaluation sequences"
    ).set_defaults(func=_cmd_generate_data)

    scenarios = sub.add_parser(
        "scenarios", help="list scenario families / generate scenario files"
    )
    scenarios_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)
    scenarios_sub.add_parser(
        "list", help="show the registered scenario families"
    ).set_defaults(func=_cmd_scenarios_list)
    generate = scenarios_sub.add_parser(
        "generate", help="generate (and cache) scenarios from spec strings"
    )
    generate.add_argument(
        "specs",
        nargs="+",
        metavar="SPEC",
        help="scenario specs, e.g. office:3 or maze:1:cells=7+braid=0.2",
    )
    generate.add_argument(
        "--no-cache",
        action="store_true",
        help="generate without writing the data-directory cache",
    )
    generate.set_defaults(func=_cmd_scenarios_generate)

    run = sub.add_parser("run", help="localize one sequence")
    run.add_argument("--sequence", type=int, default=0, help="sequence index 0-5")
    run.add_argument(
        "--variant",
        type=_parse_config_spec,
        default="fp32",
        help=(
            "config spec variant[+key=value...], e.g. fp32 or "
            "fp16qm+sigma=0.15+r_max=2.0"
        ),
    )
    run.add_argument("--particles", type=int, default=4096)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--backend",
        choices=list(available_backends()),
        default="reference",
        help="filter backend (identical results, different throughput)",
    )
    run.set_defaults(func=_cmd_run)

    sweep = sub.add_parser(
        "sweep", help="run an evaluation sweep through the sweep engine"
    )
    sweep.add_argument(
        "--variants",
        type=_parse_variants,
        default=list(PAPER_VARIANTS),
        help=(
            "comma-separated config specs (variant[+key=value...]), "
            "e.g. fp32,fp16qm+sigma=0.15"
        ),
    )
    sweep.add_argument(
        "--ablate",
        type=_parse_ablate,
        action="append",
        metavar="KEY=V1,V2,...",
        help=(
            "expand every --variants entry over these override values "
            "(repeatable; axes multiply), e.g. --ablate sigma=1.0,2.0,4.0 "
            "--ablate r_max=1.0,1.5"
        ),
    )
    sweep.add_argument(
        "--particles",
        type=_parse_particles,
        default=list(PAPER_PARTICLE_COUNTS),
        help="comma-separated particle counts",
    )
    sweep.add_argument(
        "--scenarios",
        type=_parse_scenarios,
        default=None,
        metavar="SPEC[,SPEC...]",
        help=(
            "sweep generated scenarios instead of the canonical maze "
            "sequences, e.g. office:3,maze:1:cells=7"
        ),
    )
    sweep.add_argument(
        "--backend",
        choices=list(available_backends()),
        default="batched",
        help="filter backend executing each sweep cell",
    )
    sweep.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for cell fan-out",
    )
    sweep.add_argument(
        "--verbose", action="store_true", help="print one line per completed run"
    )
    sweep.set_defaults(func=_cmd_sweep)

    campaign = sub.add_parser(
        "campaign",
        help="resumable scenario-parallel sweep campaigns (run/status/report/list)",
        description=(
            "Campaigns execute a declarative scenario x variant x particle-count "
            "grid as independent cells, streaming each finished cell into an "
            "append-only store under REPRO_RESULTS_DIR/campaigns/<name>/. "
            "Interrupted campaigns resume with --resume, skipping completed "
            "cells by content key; the finished store is byte-identical either way."
        ),
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def add_campaign_grid_args(parser_: argparse.ArgumentParser) -> None:
        """Grid + execution flags shared by ``campaign run`` and ``shard``."""
        parser_.add_argument("name", help="campaign name (store directory name)")
        parser_.add_argument(
            "--scenarios",
            type=_parse_scenarios,
            required=True,
            metavar="SPEC[,SPEC...]",
            help="comma-separated scenario specs, e.g. office:3,maze:1:cells=7",
        )
        parser_.add_argument(
            "--variants",
            type=_parse_variants,
            default=list(PAPER_VARIANTS),
            help=(
                "comma-separated config specs (variant[+key=value...]), "
                "e.g. fp32,fp32+sigma=1.0"
            ),
        )
        parser_.add_argument(
            "--ablate",
            type=_parse_ablate,
            action="append",
            metavar="KEY=V1,V2,...",
            help=(
                "expand every --variants entry over these override values "
                "(repeatable; axes multiply)"
            ),
        )
        parser_.add_argument(
            "--particles",
            type=_parse_particles,
            default=list(PAPER_PARTICLE_COUNTS),
            help="comma-separated particle counts",
        )
        parser_.add_argument(
            "--seeds",
            type=_parse_seeds,
            default=None,
            help="comma-separated filter seeds (default: the REPRO_SCALE protocol seeds)",
        )
        parser_.add_argument(
            "--backend",
            choices=list(available_backends()),
            default="batched",
            help="filter backend executing each cell",
        )
        parser_.add_argument(
            "--jobs",
            type=_positive_int,
            default=1,
            help="worker processes for (scenario, cell) fan-out",
        )
        parser_.add_argument(
            "--resume",
            action="store_true",
            help="skip cells already completed in the store (by content key)",
        )
        parser_.add_argument(
            "--store-tier",
            choices=list(STORE_TIERS),
            default="auto",
            help=(
                "storage layout for a fresh store: 'packed' appends cells "
                "into indexed segment files (the 10^5-cell shape), 'file' "
                "writes one JSON file per cell; 'auto' (default) keeps "
                "whatever tier the store already has (file for new stores). "
                "Cell bytes are identical in every tier."
            ),
        )
        parser_.add_argument(
            "--verbose", action="store_true", help="print one line per completed cell"
        )

    campaign_run = campaign_sub.add_parser(
        "run",
        help="execute (or resume) a campaign into the result store",
        description=(
            "Expand the campaign grid, execute the cells not yet stored, and "
            "stream each result into the campaign's store. Results never depend "
            "on --backend or --jobs (bitwise-equivalence contract)."
        ),
    )
    add_campaign_grid_args(campaign_run)
    campaign_run.set_defaults(func=_cmd_campaign_run)

    campaign_shard = campaign_sub.add_parser(
        "shard",
        help="split a campaign's cell list across hosts (round-robin)",
        description=(
            "Deterministically split the campaign grid into --shards "
            "round-robin cell lists. Without --index, print the shard "
            "assignment; with --index i, execute only shard i into the "
            "store <name>-shard<i> (carrying the full-spec manifest), so "
            "completed shard stores union back byte-identically with "
            "'repro campaign merge <name> <name>-shard<i>'."
        ),
    )
    add_campaign_grid_args(campaign_shard)
    campaign_shard.add_argument(
        "--shards",
        type=_positive_int,
        required=True,
        help="total number of shards the cell list is split into",
    )
    campaign_shard.add_argument(
        "--index",
        type=int,
        default=None,
        help="execute this shard (0-based); omit to just print the split",
    )
    campaign_shard.set_defaults(func=_cmd_campaign_shard)

    campaign_status_parser = campaign_sub.add_parser(
        "status", help="show completed vs expected cells of a campaign"
    )
    campaign_status_parser.add_argument("name", help="campaign name")
    campaign_status_parser.set_defaults(func=_cmd_campaign_status)

    campaign_report = campaign_sub.add_parser(
        "report",
        help="render aggregate ATE / success tables from the store",
        description=(
            "Stream the store once and render per-scenario ATE and success "
            "tables (variant rows x particle-count columns). With --pivot, "
            "rows become base config specs and columns the pivoted "
            "override's values — the shape of an ablation study."
        ),
    )
    campaign_report.add_argument("name", help="campaign name")
    campaign_report.add_argument(
        "--pivot",
        default=None,
        metavar="KEY",
        help=(
            "pivot the tables by this config override (e.g. sigma, r_max, "
            "beam_rows): columns are the override's values across the "
            "stored cells"
        ),
    )
    campaign_report.set_defaults(func=_cmd_campaign_report)

    campaign_compact = campaign_sub.add_parser(
        "compact",
        help="fold a file-per-cell store into packed segments",
        description=(
            "Migrate a campaign store to the packed tier: every cell file "
            "is appended into indexed segment files, byte-verified back "
            "out of the segments, and only then removed. Interrupting at "
            "any point leaves the file tier authoritative; cell bytes "
            "never change. Subsequent runs of the campaign append packed "
            "automatically."
        ),
    )
    campaign_compact.add_argument("name", help="campaign name")
    campaign_compact.set_defaults(func=_cmd_campaign_compact)

    campaign_sub.add_parser(
        "list", help="list stored campaigns and their progress"
    ).set_defaults(func=_cmd_campaign_list)

    campaign_merge = campaign_sub.add_parser(
        "merge",
        help="union one campaign store into another (multi-host scale-out)",
        description=(
            "Copy the source campaign's cell files into the destination "
            "store. Both stores must carry byte-identical manifests (shards "
            "of one campaign spec); colliding cells are verified "
            "byte-for-byte — equal bytes are fine, a mismatch errors. A "
            "destination name without a store adopts the source manifest."
        ),
    )
    campaign_merge.add_argument("dest", help="destination campaign name")
    campaign_merge.add_argument("source", help="source campaign name")
    campaign_merge.set_defaults(func=_cmd_campaign_merge)

    serve = sub.add_parser(
        "serve-sim",
        help="replay a simulated drone fleet through the serving layer",
        description=(
            "Open one live localization session per fleet member and serve "
            "them to completion through the multiplexing scheduler: pending "
            "per-session steps are packed into shared (R, N)-stacked backend "
            "calls, so mixed fleets of small-N filters run at batched-sweep "
            "throughput. Reports aggregate and per-session metrics; every "
            "session's trace is bitwise-identical to the same (scenario, "
            "variant, N, seed) stepped alone through the reference backend."
        ),
    )
    serve.add_argument(
        "--fleet",
        type=_parse_fleet,
        required=True,
        metavar="MEMBER[,MEMBER...]",
        help=(
            "fleet spec: scenario[@config[@particles]][*replicas][~seed0] "
            "groups (config = variant[+key=value...]), e.g. "
            "office:1@fp32@64*4,corridor:2@fp16qm+sigma=0.15@128*2~10"
        ),
    )
    serve.add_argument(
        "--backend",
        choices=list(available_backends()),
        default="batched",
        help="filter backend stepping the fleet (identical results)",
    )
    serve.add_argument(
        "--frames-per-flush",
        type=_positive_int,
        default=16,
        help="observation frames each session queues per scheduler flush",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="print one line per closed session"
    )
    serve.set_defaults(func=_cmd_serve_sim)

    online = sub.add_parser(
        "serve-online",
        help="run the asyncio session gateway (length-prefixed JSON over TCP)",
        description=(
            "Serve live localization sessions over a TCP socket: a "
            "length-prefixed JSON protocol (create / create_fleet / submit / "
            "flush / query / snapshot / restore / close / stats) with "
            "per-session request ordering, frames coalesced into packed "
            "scheduler ticks, admission control (--max-sessions) and ingest "
            "backpressure (--max-pending-frames). Every served trace stays "
            "bitwise identical to its solo reference run, end to end through "
            "the socket. Live sessions can be handed to other gateways "
            "through the drain / migrate / accept verbs (see `repro "
            "migrate`); --peer names fellow servers so clients can say "
            "migrate-to-peer-i without knowing addresses. Without --replay "
            "the server runs until interrupted; with --replay FLEET it "
            "drives the fleet through a loopback client and reports "
            "throughput, step latency and per-session metrics."
        ),
    )
    online.add_argument(
        "--host", default="127.0.0.1", help="interface to bind"
    )
    online.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 picks a free port and prints it)",
    )
    online.add_argument(
        "--backend",
        choices=list(available_backends()),
        default="batched",
        help="filter backend stepping the sessions (identical results)",
    )
    online.add_argument(
        "--max-sessions",
        type=_positive_int,
        default=1024,
        help="admission control: live-session cap",
    )
    online.add_argument(
        "--max-pending-frames",
        type=_positive_int,
        default=65536,
        help="backpressure: cap on accepted-but-unserved frames",
    )
    online.add_argument(
        "--peer",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help=(
            "fellow gateway for migration (repeatable); the migrate verb "
            "accepts peer indexes into this list"
        ),
    )
    online.add_argument(
        "--handoff-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help=(
            "cap on each network leg of one outgoing handoff; an "
            "unresponsive target rolls the migration back"
        ),
    )
    online.add_argument(
        "--replay",
        type=_parse_fleet,
        default=None,
        metavar="MEMBER[,MEMBER...]",
        help=(
            "loopback demo: serve this fleet spec through the socket and "
            "exit (same grammar as serve-sim --fleet)"
        ),
    )
    online.add_argument(
        "--connections",
        type=_positive_int,
        default=4,
        help="client connections driving a --replay fleet",
    )
    online.add_argument(
        "--frames-per-round",
        type=_positive_int,
        default=1,
        help="frames each session submits per --replay step barrier",
    )
    online.set_defaults(func=_cmd_serve_online)

    migrate = sub.add_parser(
        "migrate",
        help="move live sessions between running serve-online gateways",
        description=(
            "Live session migration between running serve-online gateways: "
            "each handoff drains the session at a frame boundary, ships its "
            "byte-stable snapshot plus frozen queue to the target's accept "
            "verb, and rolls back onto the source if the target rejects or "
            "dies — bitwise-invisible to the session's trace either way. "
            "Three operations: explicit moves (--source + --target, "
            "optionally --session ID per session, otherwise everything on "
            "the source), whole-peer eviction (--evict --source, shedding "
            "down to --keep sessions across --peers), and a fleet-wide "
            "cohort-aware rebalance (--rebalance over --peers). Plans are "
            "deterministic functions of observed fleet occupancy; --plan "
            "prints the moves without executing them."
        ),
    )
    migrate.add_argument(
        "--peers",
        type=lambda text: [p for p in text.split(",") if p],
        default=[],
        metavar="HOST:PORT,...",
        help="the gateway fleet to observe and move sessions across",
    )
    migrate.add_argument(
        "--source", default=None, metavar="HOST:PORT",
        help="gateway sessions move away from",
    )
    migrate.add_argument(
        "--target", default=None, metavar="HOST:PORT",
        help="gateway explicit moves land on",
    )
    migrate.add_argument(
        "--session",
        action="append",
        default=[],
        metavar="ID",
        help="session to move explicitly (repeatable; default: all on --source)",
    )
    migrate.add_argument(
        "--rebalance",
        action="store_true",
        help="equalize session counts across --peers, cohort-aware",
    )
    migrate.add_argument(
        "--evict",
        action="store_true",
        help="move sessions off --source onto the rest of --peers",
    )
    migrate.add_argument(
        "--keep",
        type=int,
        default=0,
        metavar="N",
        help="sessions --evict leaves on the source (default 0: empty it)",
    )
    migrate.add_argument(
        "--plan",
        action="store_true",
        help="print the planned moves without executing any handoff",
    )
    migrate.add_argument(
        "--handoff-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-handoff cap; a timed-out handoff rolls back on the source",
    )
    migrate.set_defaults(func=_cmd_migrate)

    bench = sub.add_parser(
        "bench-backends",
        help="time reference vs batched (vs fast, when available) on one sweep",
    )
    bench.add_argument("--variants", type=_parse_variants, default=None)
    bench.add_argument("--particles", type=_parse_particles, default=None)
    bench.add_argument(
        "--json", default=None, help="report path (default results/BENCH_backends.json)"
    )
    bench.add_argument(
        "--verbose", action="store_true", help="print per-cell timings as they finish"
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "workers for the extra process-parallel timing row "
            "(default: auto on multi-core hosts, 1 disables)"
        ),
    )
    bench.set_defaults(func=_cmd_bench_backends)

    sub.add_parser("perf", help="print Table I / II model predictions").set_defaults(
        func=_cmd_perf
    )

    obs_parser = sub.add_parser(
        "obs", help="inspect telemetry (metrics, spans, event logs)"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report",
        help="render a telemetry snapshot as a table, JSON or Prometheus text",
    )
    obs_report.add_argument(
        "--snapshot",
        default=None,
        metavar="FILE",
        help="read a canonical snapshot JSON file instead of the live registry",
    )
    obs_report.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="fetch the snapshot from a running gateway's `metrics` verb",
    )
    obs_report.add_argument(
        "--events",
        default=None,
        metavar="DIR",
        help="additionally summarize the JSONL event logs under DIR",
    )
    obs_report.add_argument(
        "--format",
        choices=("table", "json", "prom"),
        default="table",
        help="output rendering (default: table)",
    )
    obs_report.set_defaults(func=_cmd_obs_report)

    # Hidden (no help string): emits the generated CLI reference; CI diffs
    # its output against docs/cli.md to catch documentation drift.
    docs_cli = sub.add_parser(
        "docs-cli",
        description="write the generated markdown CLI reference to stdout",
    )
    docs_cli.set_defaults(func=_cmd_docs_cli)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.obs_dir:
        obs.enable(args.obs_dir)
    elif args.obs:
        obs.enable()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
