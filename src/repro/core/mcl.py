"""Monte Carlo localization: the paper's full filter loop (Sec. III-C).

The filter wires together the four steps of Fig. 3 — motion model,
observation model, resampling, pose computation — with the paper's
asynchronous update policy:

* odometry increments are **accumulated** as they arrive;
* when accumulated motion exceeds ``d_xy`` or ``d_theta`` *and* a new ToF
  observation is available, one full update fires: the motion model
  samples the accumulated increment with ``sigma_odom`` noise, the
  observation model re-weights against the distance field, the population
  is (wheel-)resampled and the weighted-average pose recomputed;
* without sufficient motion, observations are ignored ("we only consider
  new observations if the drone moves more than d_xy or rotates more than
  d_theta") — the belief is not sharpened by redundant data while
  hovering.

Precision variants: the distance field is stored per the configured mode
(fp32 or quantized uint8), particle state/weights in fp32 or fp16; all
arithmetic policies live in the step implementations, this class only
selects storage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigurationError
from ..common.geometry import Pose2D
from ..common.rng import make_rng
from ..maps.distance_field import DistanceField
from ..maps.occupancy import OccupancyGrid
from ..sensors.tof import TofFrame
from .config import MclConfig
from .motion import apply_motion_model
from .observation import apply_observation_model, extract_beams
from .particles import ParticleSet
from .pose_estimate import PoseEstimate, estimate_pose
from .resampling import draw_wheel_offset, systematic_resample
from .snapshot import FilterStateSnapshot


@dataclass
class McUpdateReport:
    """What happened during one ``process`` call (for logging/analysis)."""

    motion_applied: bool = False
    observation_applied: bool = False
    resampled: bool = False
    beam_count: int = 0


class MonteCarloLocalization:
    """The on-board localization filter, faithful to the paper's design."""

    def __init__(
        self,
        grid: OccupancyGrid,
        config: MclConfig | None = None,
        seed: int = 0,
        field: DistanceField | None = None,
    ) -> None:
        self.grid = grid
        self.config = config or MclConfig()
        self._rng = make_rng(seed, "mcl")
        if field is None:
            field = DistanceField.build_for_mode(
                grid, self.config.r_max, self.config.precision
            )
        if abs(field.resolution - grid.resolution) > 1e-12:
            raise ConfigurationError(
                "distance field resolution does not match the occupancy grid"
            )
        self.field = field
        self.particles = ParticleSet(self.config.particle_count, self.config.precision)
        self.particles.init_uniform(grid, self._rng)
        self._pending = Pose2D.identity()
        self._estimate = estimate_pose(self.particles)
        self.update_count = 0

    # ------------------------------------------------------------------
    # Initialization modes
    # ------------------------------------------------------------------
    def reset_uniform(self) -> None:
        """Restart global localization (uniform over free space)."""
        self.particles.init_uniform(self.grid, self._rng)
        self._pending = Pose2D.identity()
        self._estimate = estimate_pose(self.particles)
        self.update_count = 0

    def reset_at(self, pose: Pose2D, sigma_xy: float = 0.3, sigma_theta: float = 0.2) -> None:
        """Restart in pose-tracking mode around a known pose."""
        self.particles.init_gaussian(
            pose.x, pose.y, pose.theta, sigma_xy, sigma_theta, self._rng
        )
        self._pending = Pose2D.identity()
        self._estimate = estimate_pose(self.particles)
        self.update_count = 0

    # ------------------------------------------------------------------
    # Filter loop
    # ------------------------------------------------------------------
    @property
    def estimate(self) -> PoseEstimate:
        """The most recent weighted-average pose estimate."""
        return self._estimate

    @property
    def pending_motion(self) -> Pose2D:
        """Odometry accumulated since the last fired update."""
        return self._pending

    def add_odometry(self, increment: Pose2D) -> None:
        """Accumulate one body-frame odometry increment (u_t component)."""
        self._pending = self._pending.compose(increment)

    def process(self, frames: list[TofFrame]) -> McUpdateReport:
        """Offer one observation instant to the filter.

        Fires a full update only when the accumulated motion passes the
        movement thresholds; otherwise this is a cheap no-op, exactly like
        the on-board gating.
        """
        report = McUpdateReport()
        if not self.config.movement_trigger(
            self._pending.x, self._pending.y, self._pending.theta
        ):
            return report

        apply_motion_model(self.particles, self._pending, self.config, self._rng)
        self._pending = Pose2D.identity()
        report.motion_applied = True

        beams = extract_beams(frames, self.config)
        report.beam_count = beams.beam_count
        report.observation_applied = apply_observation_model(
            self.particles, beams, self.field, self.config
        )

        if report.observation_applied:
            ess = self.particles.effective_sample_size()
            threshold = self.config.resample_ess_fraction * self.particles.count
            if ess <= threshold:
                u0 = draw_wheel_offset(self._rng, self.particles.count)
                # Weights are normalized by the observation model; the
                # fast path skips the redundant renormalizing divide.
                indices = systematic_resample(
                    self.particles.weights.astype(np.float64), u0, normalized=True
                )
                self.particles.swap_from_indices(indices)
                report.resampled = True

        self._estimate = estimate_pose(self.particles)
        self.update_count += 1
        return report

    def step(self, increment: Pose2D, frames: list[TofFrame]) -> McUpdateReport:
        """Convenience: add odometry then process the observation."""
        self.add_odometry(increment)
        return self.process(frames)

    # ------------------------------------------------------------------
    # State snapshot / restore (exact-continuation serialization)
    # ------------------------------------------------------------------
    def export_state(self) -> FilterStateSnapshot:
        """Capture the filter's complete dynamic state.

        The snapshot pins the particle population at storage precision,
        the RNG stream position, the pending odometry and the update
        counter — restoring it (here or in another process) continues
        the filter **bit-for-bit**: same draws, same resampling
        decisions, same estimates.
        """
        return FilterStateSnapshot.capture(
            self.particles.x,
            self.particles.y,
            self.particles.theta,
            self.particles.weights,
            self._rng,
            self.update_count,
            self._estimate.pose.as_array(),
            pending=self._pending,
        )

    def restore_state(self, snapshot: FilterStateSnapshot) -> None:
        """Resume exactly from an :meth:`export_state` snapshot.

        The snapshot must match this filter's particle count and
        precision (state is copied verbatim, never cast).  The estimate
        is recomputed from the restored population — a pure function of
        state, so it lands on the captured value.
        """
        snapshot.check_compatible(
            self.particles.count, self.config.precision.particle_dtype
        )
        self.particles.x[:] = snapshot.x
        self.particles.y[:] = snapshot.y
        self.particles.theta[:] = snapshot.theta
        self.particles.weights[:] = snapshot.weights
        self._rng = snapshot.make_rng()
        self.update_count = int(snapshot.update_count)
        self._pending = Pose2D(
            float(snapshot.pending[0]),
            float(snapshot.pending[1]),
            float(snapshot.pending[2]),
        )
        self._estimate = estimate_pose(self.particles)

    # ------------------------------------------------------------------
    # Memory accounting (feeds the Fig. 9 capacity model)
    # ------------------------------------------------------------------
    def memory_bytes(self) -> dict[str, int]:
        """Bytes used by particles, occupancy and the distance field."""
        return {
            "particles": self.particles.memory_bytes(),
            "occupancy": self.grid.memory_bytes(),
            "distance_field": self.field.memory_bytes(),
        }
