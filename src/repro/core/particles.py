"""Particle storage in structure-of-arrays layout with double buffering.

Mirrors the paper's on-board memory layout (Sec. III-C2): each particle is
four numbers — x, y, yaw, weight — stored either as 32-bit floats (16 bytes)
or half-precision floats (8 bytes).  Because the resampling step reads the
old particle set while writing the new one, the storage is **double
buffered**, doubling the per-particle cost to 32 / 16 bytes.  The
``memory_bytes`` accounting below is what feeds the Fig. 9 capacity model.

Arithmetic that is sensitive to rounding (weight normalization, sums) runs
in float64 regardless of the storage dtype; results are rounded back to
storage precision, emulating GAP9 writing back fp16 registers.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import ConfigurationError, MapError
from ..common.geometry import wrap_angle
from ..common.precision import PrecisionMode
from ..engine import kernels
from ..maps.occupancy import OccupancyGrid


class ParticleSet:
    """A double-buffered SoA particle population.

    Attributes ``x``, ``y``, ``theta``, ``weights`` expose the *front*
    buffer.  ``swap_from_indices`` performs the resampling gather into the
    back buffer and swaps, exactly like the embedded implementation.
    """

    def __init__(self, count: int, precision: PrecisionMode = PrecisionMode.FP32) -> None:
        if count < 1:
            raise ConfigurationError(f"particle count must be >= 1, got {count}")
        self.count = int(count)
        self.precision = precision
        dtype = precision.particle_dtype
        # Front and back buffers for the four per-particle numbers.
        self._buffers = [
            {
                "x": np.zeros(count, dtype=dtype),
                "y": np.zeros(count, dtype=dtype),
                "theta": np.zeros(count, dtype=dtype),
                "weights": np.full(count, 1.0 / count, dtype=dtype),
            }
            for _ in range(2)
        ]
        self._front = 0

    # ------------------------------------------------------------------
    # Buffer access
    # ------------------------------------------------------------------
    @property
    def x(self) -> np.ndarray:
        return self._buffers[self._front]["x"]

    @property
    def y(self) -> np.ndarray:
        return self._buffers[self._front]["y"]

    @property
    def theta(self) -> np.ndarray:
        return self._buffers[self._front]["theta"]

    @property
    def weights(self) -> np.ndarray:
        return self._buffers[self._front]["weights"]

    def set_state(
        self,
        x: np.ndarray,
        y: np.ndarray,
        theta: np.ndarray,
        weights: np.ndarray | None = None,
    ) -> None:
        """Overwrite the front buffer (rounding to storage precision)."""
        front = self._buffers[self._front]
        dtype = self.precision.particle_dtype
        front["x"][:] = np.asarray(x).astype(dtype)
        front["y"][:] = np.asarray(y).astype(dtype)
        front["theta"][:] = wrap_angle(np.asarray(theta, dtype=np.float64)).astype(dtype)
        if weights is not None:
            front["weights"][:] = np.asarray(weights).astype(dtype)

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def init_uniform(self, grid: OccupancyGrid, rng: np.random.Generator) -> None:
        """Global localization init: uniform over FREE space, uniform yaw."""
        x, y = grid.sample_free_points(self.count, rng)
        theta = rng.uniform(-np.pi, np.pi, size=self.count)
        self.set_state(x, y, theta, np.full(self.count, 1.0 / self.count))

    def init_gaussian(
        self,
        mean_x: float,
        mean_y: float,
        mean_theta: float,
        sigma_xy: float,
        sigma_theta: float,
        rng: np.random.Generator,
    ) -> None:
        """Pose-tracking init: Gaussian cloud around a known pose."""
        if sigma_xy < 0 or sigma_theta < 0:
            raise ConfigurationError("init sigmas must be non-negative")
        x = rng.normal(mean_x, sigma_xy, size=self.count)
        y = rng.normal(mean_y, sigma_xy, size=self.count)
        theta = rng.normal(mean_theta, sigma_theta, size=self.count)
        self.set_state(x, y, theta, np.full(self.count, 1.0 / self.count))

    # ------------------------------------------------------------------
    # Weights
    # ------------------------------------------------------------------
    def normalize_weights(self) -> float:
        """Normalize weights to sum 1; returns the pre-normalization sum.

        The sum runs in float64 (the paper's parallel implementation keeps
        a full-precision accumulator per core for the same reason).  A
        fully degenerate population (all weights zero or non-finite) is
        reset to uniform — the filter lost, but must stay operational.
        """
        total = kernels.normalize_weights(self.weights, self.precision.particle_dtype)
        total = float(total)
        return total if total > 0.0 else 0.0

    def effective_sample_size(self) -> float:
        """ESS = 1 / sum(w^2); ranges from 1 (degenerate) to N (uniform)."""
        return float(kernels.effective_sample_size(self.weights))

    # ------------------------------------------------------------------
    # Resampling support
    # ------------------------------------------------------------------
    def swap_from_indices(self, indices: np.ndarray) -> None:
        """Gather ``indices`` from the front buffer into the back and swap.

        After the call, the front buffer holds the resampled population
        with uniform weights — the systematic-resampling post-state.
        """
        indices = np.asarray(indices)
        if indices.shape != (self.count,):
            raise MapError(
                f"resampling must draw exactly {self.count} particles, got {indices.shape}"
            )
        front = self._buffers[self._front]
        back = self._buffers[1 - self._front]
        for key in ("x", "y", "theta"):
            np.take(front[key], indices, out=back[key])
        back["weights"][:] = np.asarray(
            1.0 / self.count, dtype=self.precision.particle_dtype
        )
        self._front = 1 - self._front

    # ------------------------------------------------------------------
    # Memory accounting (paper Sec. III-C2 / Fig. 9)
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Bytes of particle storage including the double buffer."""
        return self.count * self.precision.bytes_per_particle

    def __len__(self) -> int:
        return self.count
