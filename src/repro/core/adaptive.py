"""Adaptive MCL extensions: recovery injection and KLD-style sizing.

Two classic extensions of the paper's fixed-size filter, both from the
probabilistic-robotics canon the paper builds on:

* **Augmented MCL** (recovery): track short- and long-term averages of
  the observation likelihood; when the short-term average collapses
  relative to the long-term one (kidnapped robot, severe aliasing), a
  proportional fraction of particles is re-drawn uniformly from free
  space — the filter can escape a wrong basin the plain version is stuck
  in.
* **KLD sizing**: bound the number of particles needed so the sampled
  approximation stays within a KL divergence ``epsilon`` of the true
  posterior with confidence ``1 - delta``; the bound grows with the
  number of occupied histogram bins (i.e. with how spread the belief is),
  so a converged filter can run with far fewer particles.  The embedded
  relevance is direct: Table I's latency is linear in N.

These live outside the paper's evaluated configuration — benchmarks use
the faithful fixed filter — but they are natural adopter knobs and are
exercised by tests and ``examples/adaptive_mcl.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigurationError
from ..maps.occupancy import OccupancyGrid
from ..sensors.tof import TofFrame
from .config import MclConfig
from .mcl import McUpdateReport, MonteCarloLocalization
from .observation import extract_beams, log_likelihoods
from .particles import ParticleSet
from .pose_estimate import estimate_pose
from .resampling import draw_wheel_offset


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tunables of the recovery and sizing extensions."""

    #: Short-term likelihood average decay (Thrun's alpha_fast).
    alpha_fast: float = 0.6
    #: Long-term likelihood average decay (alpha_slow << alpha_fast).
    alpha_slow: float = 0.05
    #: Cap on the per-update injected fraction.
    max_injection_fraction: float = 0.2
    #: KLD bound parameters.
    kld_epsilon: float = 0.05
    kld_delta: float = 0.01
    #: Histogram bin size for KLD spread estimation (m, m, rad).
    bin_xy_m: float = 0.5
    bin_theta_rad: float = math.pi / 4
    #: Particle-count bounds for KLD resizing.
    min_particles: int = 64
    max_particles: int = 16384

    def __post_init__(self) -> None:
        if not 0 < self.alpha_slow < self.alpha_fast <= 1.0:
            raise ConfigurationError("need 0 < alpha_slow < alpha_fast <= 1")
        if not 0.0 <= self.max_injection_fraction <= 1.0:
            raise ConfigurationError("max_injection_fraction must be a fraction")
        if self.kld_epsilon <= 0 or not 0 < self.kld_delta < 1:
            raise ConfigurationError("invalid KLD parameters")
        if self.min_particles < 1 or self.max_particles < self.min_particles:
            raise ConfigurationError("invalid particle bounds")


def kld_particle_bound(occupied_bins: int, epsilon: float, delta: float) -> int:
    """Number of particles for a KL error bound (Fox 2003, Eq. 12).

    ``n >= (k-1)/(2 eps) * (1 - 2/(9(k-1)) + sqrt(2/(9(k-1))) z_{1-delta})^3``
    with k occupied bins.  One bin needs a single particle.
    """
    if occupied_bins < 1:
        raise ConfigurationError("need at least one occupied bin")
    if occupied_bins == 1:
        return 1
    k = occupied_bins
    # Upper 1-delta quantile of the standard normal via a rational
    # approximation (Beasley-Springer/Moro would be overkill here).
    z = _normal_quantile(1.0 - delta)
    a = 2.0 / (9.0 * (k - 1))
    n = (k - 1) / (2.0 * epsilon) * (1.0 - a + math.sqrt(a) * z) ** 3
    return int(math.ceil(n))


def _normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's approximation, ~1e-9 abs)."""
    if not 0.0 < p < 1.0:
        raise ConfigurationError("quantile argument must be in (0, 1)")
    # Coefficients of Peter Acklam's rational approximation.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= 1 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )


class AdaptiveMcl(MonteCarloLocalization):
    """The paper's filter plus augmented recovery and KLD diagnostics."""

    def __init__(
        self,
        grid: OccupancyGrid,
        config: MclConfig | None = None,
        seed: int = 0,
        adaptive: AdaptiveConfig | None = None,
        field=None,
    ) -> None:
        super().__init__(grid, config, seed=seed, field=field)
        self.adaptive = adaptive or AdaptiveConfig()
        self._w_fast = 0.0
        self._w_slow = 0.0
        self.last_injection_fraction = 0.0

    # ------------------------------------------------------------------
    # Augmented-MCL recovery
    # ------------------------------------------------------------------
    def process(self, frames: list[TofFrame]) -> McUpdateReport:
        """One gated update with likelihood tracking and injection."""
        beams = extract_beams(frames, self.config)
        triggered = self.config.movement_trigger(
            self._pending.x, self._pending.y, self._pending.theta
        )
        if triggered and beams.beam_count > 0:
            # Mean observation likelihood before the weight update.
            log_lik = log_likelihoods(
                self.particles, beams, self.field, self.config.sigma_obs
            )
            mean_likelihood = float(np.mean(np.exp(log_lik)))
            if self._w_slow == 0.0:
                self._w_slow = mean_likelihood
                self._w_fast = mean_likelihood
            else:
                self._w_fast += self.adaptive.alpha_fast * (
                    mean_likelihood - self._w_fast
                )
                self._w_slow += self.adaptive.alpha_slow * (
                    mean_likelihood - self._w_slow
                )

        report = super().process(frames)

        if report.observation_applied:
            self.last_injection_fraction = self._injection_fraction()
            if self.last_injection_fraction > 0.0:
                self._inject_uniform(self.last_injection_fraction)
                self._estimate = estimate_pose(self.particles)
        return report

    def _injection_fraction(self) -> float:
        if self._w_slow <= 0.0:
            return 0.0
        raw = max(0.0, 1.0 - self._w_fast / self._w_slow)
        return min(raw, self.adaptive.max_injection_fraction)

    def _inject_uniform(self, fraction: float) -> None:
        count = int(round(fraction * self.particles.count))
        if count == 0:
            return
        x, y = self.grid.sample_free_points(count, self._rng)
        theta = self._rng.uniform(-np.pi, np.pi, size=count)
        slots = self._rng.choice(self.particles.count, size=count, replace=False)
        dtype = self.particles.precision.particle_dtype
        self.particles.x[slots] = x.astype(dtype)
        self.particles.y[slots] = y.astype(dtype)
        self.particles.theta[slots] = theta.astype(dtype)
        # Injected mass shares the average weight; renormalize.
        self.particles.weights[slots] = np.asarray(
            1.0 / self.particles.count, dtype=dtype
        )
        self.particles.normalize_weights()

    # ------------------------------------------------------------------
    # KLD diagnostics / resizing
    # ------------------------------------------------------------------
    def occupied_bin_count(self) -> int:
        """Occupied (x, y, theta) histogram bins of the current belief."""
        adaptive = self.adaptive
        x = self.particles.x.astype(np.float64)
        y = self.particles.y.astype(np.float64)
        theta = self.particles.theta.astype(np.float64)
        bins_x = np.floor(x / adaptive.bin_xy_m).astype(np.int64)
        bins_y = np.floor(y / adaptive.bin_xy_m).astype(np.int64)
        bins_t = np.floor((theta + math.pi) / adaptive.bin_theta_rad).astype(np.int64)
        keys = (bins_x * 10_000 + bins_y) * 100 + bins_t
        return int(np.unique(keys).size)

    def recommended_particle_count(self) -> int:
        """KLD-bounded particle count for the current belief spread."""
        adaptive = self.adaptive
        bound = kld_particle_bound(
            self.occupied_bin_count(), adaptive.kld_epsilon, adaptive.kld_delta
        )
        return int(np.clip(bound, adaptive.min_particles, adaptive.max_particles))

    def resize(self, new_count: int) -> None:
        """Resample the population into a new size (systematic draw).

        Used with :meth:`recommended_particle_count` to shrink the filter
        after convergence — the latency model says each step is linear in
        N, so this is a direct compute saving.
        """
        if new_count < 1:
            raise ConfigurationError(f"new_count must be >= 1, got {new_count}")
        if new_count == self.particles.count:
            return
        weights = self.particles.weights.astype(np.float64)
        total = weights.sum()
        weights = (
            weights / total if total > 0 else np.full(len(weights), 1.0 / len(weights))
        )
        # Systematic draw of new_count source indices from the old set.
        u0 = draw_wheel_offset(self._rng, new_count)
        positions = u0 + np.arange(new_count) / new_count
        cumulative = np.cumsum(weights)
        cumulative[-1] = 1.0
        indices = np.searchsorted(cumulative, positions, side="right")

        old = self.particles
        resized = ParticleSet(new_count, self.config.precision)
        resized.set_state(
            old.x.astype(np.float64)[indices],
            old.y.astype(np.float64)[indices],
            old.theta.astype(np.float64)[indices],
            np.full(new_count, 1.0 / new_count),
        )
        self.particles = resized
        self._estimate = estimate_pose(self.particles)
