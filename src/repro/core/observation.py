"""Beam-end-point observation model (paper Eq. 1).

Each ToF zone contributes one beam: a body-frame azimuth and a measured
range.  For a particle pose ``x_t``, the beam's end point is projected into
the map and scored by its distance to the nearest obstacle — looked up in
the precomputed (truncated, possibly quantized) EDT:

    p(z_t^k | x_t, m) = N(EDT(z_hat_t^k); 0, sigma_obs)

The per-beam likelihoods multiply over the K beams of an observation; in
log space the exponents sum, and the common Gaussian normalization constant
cancels during weight normalization.  The implementation subtracts the
max log-likelihood before exponentiation so the fp16 variant cannot
underflow to an all-zero weight vector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import SensorError
from ..engine import kernels
from ..maps.distance_field import DistanceField
from ..sensors.tof import TofFrame
from .config import MclConfig
from .particles import ParticleSet


@dataclass
class BeamBundle:
    """Preprocessed beams of one observation instant.

    ``azimuths`` are body-frame beam directions (sensor mounting yaw
    already folded in), ``ranges`` the measured distances, and
    ``origins_x/y`` the body-frame sensor positions each beam starts from.
    Only beams that survived flag filtering are present.
    """

    azimuths: np.ndarray
    ranges: np.ndarray
    origins_x: np.ndarray
    origins_y: np.ndarray

    @property
    def beam_count(self) -> int:
        return int(self.azimuths.size)

    def endpoints_body(self) -> tuple[np.ndarray, np.ndarray]:
        """Body-frame beam end points (K,) pair."""
        end_x = self.origins_x + self.ranges * np.cos(self.azimuths)
        end_y = self.origins_y + self.ranges * np.sin(self.azimuths)
        return end_x, end_y


def extract_beams(frames: list[TofFrame], config: MclConfig) -> BeamBundle:
    """Filter and flatten sensor frames into the observation beam set.

    Applies the paper's data hygiene: zones with raised error flags are
    dropped, as are ranges at/after the sensor limit; the rear sensor is
    skipped entirely in the single-ToF variant.  ``config.beam_rows``
    selects the zone-matrix rows that become beams.
    """
    azimuths = []
    ranges = []
    origins_x = []
    origins_y = []
    for frame in frames:
        if not config.use_rear_sensor and frame.sensor_name == "tof-rear":
            continue
        rows = tuple(r for r in config.beam_rows if r < frame.zones_per_side)
        if not rows:
            raise SensorError(
                f"beam_rows {config.beam_rows} selects nothing from a "
                f"{frame.zones_per_side}x{frame.zones_per_side} frame"
            )
        az, rng_m, valid = frame.beams(rows=rows)
        keep = valid & (rng_m < config.max_beam_range_m)
        kept = int(np.count_nonzero(keep))
        azimuths.append(az[keep])
        ranges.append(rng_m[keep])
        # One origin allocation per frame, count hoisted out of the fills.
        origins = np.empty((2, kept), dtype=np.float64)
        origins[0] = frame.mount_x
        origins[1] = frame.mount_y
        origins_x.append(origins[0])
        origins_y.append(origins[1])
    if azimuths:
        return BeamBundle(
            azimuths=np.concatenate(azimuths),
            ranges=np.concatenate(ranges),
            origins_x=np.concatenate(origins_x),
            origins_y=np.concatenate(origins_y),
        )
    empty = np.empty(0, dtype=np.float64)
    return BeamBundle(empty, empty, empty, empty)


def log_likelihoods(
    particles: ParticleSet, beams: BeamBundle, field: DistanceField, sigma_obs: float
) -> np.ndarray:
    """Per-particle observation log-likelihood, shape ``(N,)``.

    Computes the beam end points of every (particle, beam) pair, looks up
    the truncated EDT, and sums ``-d^2 / (2 sigma_obs^2)`` over beams.
    The Gaussian normalization constant is omitted (it cancels).
    """
    end_x, end_y = beams.endpoints_body()
    return kernels.beam_log_likelihoods(
        particles.x.astype(np.float64),
        particles.y.astype(np.float64),
        particles.theta.astype(np.float64),
        end_x,
        end_y,
        field,
        sigma_obs,
    )


def apply_observation_model(
    particles: ParticleSet,
    beams: BeamBundle,
    field: DistanceField,
    config: MclConfig,
) -> bool:
    """Re-weight the particle population against one observation.

    Multiplies current weights by the beam likelihood (max-shifted for
    numerical stability), stores back at particle precision and
    normalizes.  Returns False — leaving weights untouched — when no
    usable beams survived filtering.
    """
    if beams.beam_count == 0:
        return False
    log_lik = log_likelihoods(particles, beams, field, config.sigma_obs)
    updated = kernels.posterior_log_weights(
        particles.weights, log_lik, config.beam_replication
    )
    particles.weights[:] = updated.astype(particles.precision.particle_dtype)
    particles.normalize_weights()
    return True
