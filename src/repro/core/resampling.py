"""Systematic (wheel) resampling and its parallel decomposition (Fig. 4).

The paper uses systematic resampling [22]: one random number ``u0`` places
the first of N equally spaced arrows on the cumulative-weight wheel; arrow
``i`` sits at position ``(u0 + i) / N`` of the total weight and selects the
particle whose cumulative interval contains it.

The parallel scheme follows the paper exactly:

1. **Partial sums.**  Particles are split into one contiguous block per
   core.  During weight normalization each core computes its block sum;
   the exclusive prefix over block sums tells every core where its block
   starts on the wheel.
2. **Arrow ownership.**  Because arrow positions are an arithmetic
   progression, the sub-range of arrows falling inside a block's weight
   interval is computed in O(1) from the partial sums — no core needs the
   other cores' individual weights.
3. **Local draw.**  Each core walks only its own block's cumulative
   weights to resolve its arrows into particle indices.

The parallel result equals the serial wheel except for degenerate
floating-point ties where an arrow lands within one ulp of a block
boundary (probability zero for continuous random ``u0``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigurationError
from ..engine.kernels import _normalized, draw_wheel_offset, systematic_resample

__all__ = [
    "GAP9_WORKER_CORES",
    "draw_wheel_offset",
    "systematic_resample",
    "CoreAssignment",
    "ParallelResampleResult",
    "parallel_systematic_resample",
]

#: Number of worker cores in the GAP9 cluster (paper Sec. III-B).
GAP9_WORKER_CORES = 8

# The serial wheel (``draw_wheel_offset`` + ``systematic_resample``) now
# lives in :mod:`repro.engine.kernels` so all backends share one
# implementation; both names are re-exported here unchanged.


@dataclass
class CoreAssignment:
    """What one core contributes to the parallel wheel.

    ``particle_lo:particle_hi`` is the block of *source* particles whose
    weights the core summed; ``arrow_lo:arrow_hi`` the range of output
    slots (arrows) it resolves; ``block_weight`` its partial sum.
    """

    core: int
    particle_lo: int
    particle_hi: int
    arrow_lo: int
    arrow_hi: int
    block_weight: float

    @property
    def draw_count(self) -> int:
        """How many new particles this core draws."""
        return self.arrow_hi - self.arrow_lo


@dataclass
class ParallelResampleResult:
    """Indices plus the per-core schedule (for the multicore simulator)."""

    indices: np.ndarray
    assignments: list[CoreAssignment]

    def draw_counts(self) -> list[int]:
        """Per-core draw counts — the load balance of the resampling step."""
        return [a.draw_count for a in self.assignments]


def parallel_systematic_resample(
    weights: np.ndarray, u0: float, n_cores: int = GAP9_WORKER_CORES
) -> ParallelResampleResult:
    """Parallel wheel resampling via partial sums (paper Fig. 4).

    Produces the same indices as :func:`systematic_resample` while only
    using block-local cumulative weights plus the shared block partial
    sums, mirroring the GAP9 implementation's data dependencies.
    """
    if n_cores < 1:
        raise ConfigurationError(f"n_cores must be >= 1, got {n_cores}")
    weights = _normalized(weights)
    count = weights.size
    if not 0.0 <= u0 < 1.0 / count:
        raise ConfigurationError(f"u0 must be in [0, 1/N), got {u0}")

    blocks = np.array_split(np.arange(count), n_cores)
    # Phase 1 (normalization pass): per-core partial sums.
    block_sums = [float(weights[b].sum()) if b.size else 0.0 for b in blocks]
    # Exclusive prefix of the partial sums = each block's wheel offset.
    prefix = np.concatenate([[0.0], np.cumsum(block_sums)])
    prefix[-1] = 1.0  # guard rounding so the last arrow stays in range

    indices = np.empty(count, dtype=np.int64)
    assignments: list[CoreAssignment] = []
    for core, block in enumerate(blocks):
        if block.size == 0:
            assignments.append(CoreAssignment(core, 0, 0, 0, 0, 0.0))
            continue
        lo_weight = prefix[core]
        hi_weight = prefix[core + 1]
        # Arrows at (u0 + i)/N land in [lo_weight, hi_weight):
        #   i >= N*lo_weight - N*u0  and  i < N*hi_weight - N*u0.
        arrow_lo = int(np.ceil(count * lo_weight - count * u0 - 1e-12))
        arrow_hi = int(np.ceil(count * hi_weight - count * u0 - 1e-12))
        arrow_lo = max(arrow_lo, 0)
        arrow_hi = min(arrow_hi, count)
        if arrow_hi > arrow_lo:
            positions = u0 + np.arange(arrow_lo, arrow_hi, dtype=np.float64) / count
            local_cum = lo_weight + np.cumsum(weights[block])
            local_cum[-1] = hi_weight  # consistent with the prefix table
            local = np.searchsorted(local_cum, positions, side="right")
            local = np.minimum(local, block.size - 1)
            indices[arrow_lo:arrow_hi] = block[0] + local
        assignments.append(
            CoreAssignment(
                core=core,
                particle_lo=int(block[0]),
                particle_hi=int(block[-1]) + 1,
                arrow_lo=arrow_lo,
                arrow_hi=arrow_hi,
                block_weight=block_sums[core],
            )
        )
    return ParallelResampleResult(indices=indices, assignments=assignments)
