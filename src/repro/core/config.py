"""Configuration of the Monte Carlo localization filter.

Defaults are the paper's experimental parameters (Sec. IV-A):

* ``sigma_odom = (0.1 m, 0.1 m, 0.1 rad)`` — motion-model sampling noise,
* ``sigma_obs = 2.0`` — beam-end-point likelihood width (Eq. 1),
* ``r_max = 1.5 m`` — EDT truncation,
* ``d_xy = 0.1 m``, ``d_theta = 0.1 rad`` — movement thresholds gating the
  filter updates ("we only consider new observations if the drone moves
  more than d_xy or rotates more than d_theta"),
* map resolution 0.05 m (owned by the grid, not this config).

The particle counts swept by the paper's figures are exposed as
:data:`PAPER_PARTICLE_COUNTS`.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from ..common.errors import ConfigurationError
from ..common.precision import PrecisionMode

#: Particle counts used across Fig. 6, 7, 10 and Tab. I.
PAPER_PARTICLE_COUNTS: tuple[int, ...] = (64, 256, 1024, 4096, 16384)

#: The four configurations plotted in Fig. 6-8.
PAPER_VARIANTS: tuple[str, ...] = ("fp32", "fp321tof", "fp32qm", "fp16qm")


@dataclass(frozen=True)
class MclConfig:
    """All tunables of the localization filter.

    ``beam_rows`` selects which zone-matrix rows feed the observation
    model; the default middle-row pair keeps pure-Python sweeps tractable
    while preserving the full azimuth diversity (all 8 columns), see
    DESIGN.md.  ``use_rear_sensor=False`` reproduces the paper's
    single-ToF ablation (``fp321tof``).
    """

    particle_count: int = 4096
    sigma_odom_xy: float = 0.1
    sigma_odom_theta: float = 0.1
    sigma_obs: float = 2.0
    r_max: float = 1.5
    d_xy: float = 0.1
    d_theta: float = 0.1
    precision: PrecisionMode = PrecisionMode.FP32
    use_rear_sensor: bool = True
    beam_rows: tuple[int, ...] = (3, 4)
    #: Measurements at or beyond this range are discarded (sensor limit).
    max_beam_range_m: float = 4.0
    #: How many physical zone rows each configured beam row stands for.
    #: In the 2-D projection every row of a zone column shares the same
    #: azimuth, so feeding 2 rows with replication 4 is statistically
    #: equivalent to the paper's full 8-row (64 zone) update at a quarter
    #: of the compute: the observation log-likelihood scales linearly in
    #: the number of (conditionally independent) zone measurements.
    beam_replication: float = 4.0
    #: Resample only when the effective sample size falls below this
    #: fraction of N; ``1.0`` resamples on every correction (paper).
    resample_ess_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.particle_count < 1:
            raise ConfigurationError(f"particle_count must be >= 1, got {self.particle_count}")
        for name in ("sigma_odom_xy", "sigma_odom_theta", "sigma_obs"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.r_max <= 0:
            raise ConfigurationError(f"r_max must be positive, got {self.r_max}")
        if self.d_xy < 0 or self.d_theta < 0:
            raise ConfigurationError("movement thresholds must be non-negative")
        if not self.beam_rows:
            raise ConfigurationError("beam_rows must select at least one row")
        if self.max_beam_range_m <= 0:
            raise ConfigurationError("max_beam_range_m must be positive")
        if self.beam_replication <= 0:
            raise ConfigurationError("beam_replication must be positive")
        if not 0.0 < self.resample_ess_fraction <= 1.0:
            raise ConfigurationError("resample_ess_fraction must be in (0, 1]")

    # ------------------------------------------------------------------
    # Paper variants
    # ------------------------------------------------------------------
    def with_variant(self, variant: str) -> "MclConfig":
        """Return a copy configured as one of the paper's four variants.

        ``"fp32"``, ``"fp32qm"``, ``"fp16qm"`` set the precision mode with
        both sensors; ``"fp321tof"`` is fp32 with the rear sensor disabled.
        """
        if variant == "fp321tof":
            return dataclasses.replace(
                self, precision=PrecisionMode.FP32, use_rear_sensor=False
            )
        mode = PrecisionMode.from_label(variant)
        return dataclasses.replace(self, precision=mode, use_rear_sensor=True)

    @property
    def variant_label(self) -> str:
        """The paper's figure-legend label for this configuration."""
        if not self.use_rear_sensor and self.precision is PrecisionMode.FP32:
            return "fp321tof"
        return self.precision.value

    def movement_trigger(self, dx: float, dy: float, dtheta: float) -> bool:
        """True when accumulated motion warrants a filter update."""
        return math.hypot(dx, dy) > self.d_xy or abs(dtheta) > self.d_theta
