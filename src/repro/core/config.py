"""Configuration of the Monte Carlo localization filter.

Defaults are the paper's experimental parameters (Sec. IV-A):

* ``sigma_odom = (0.1 m, 0.1 m, 0.1 rad)`` — motion-model sampling noise,
* ``sigma_obs = 2.0`` — beam-end-point likelihood width (Eq. 1),
* ``r_max = 1.5 m`` — EDT truncation,
* ``d_xy = 0.1 m``, ``d_theta = 0.1 rad`` — movement thresholds gating the
  filter updates ("we only consider new observations if the drone moves
  more than d_xy or rotates more than d_theta"),
* map resolution 0.05 m (owned by the grid, not this config).

The particle counts swept by the paper's figures are exposed as
:data:`PAPER_PARTICLE_COUNTS`.

Config identity
---------------
This module is also where **configuration identity** is defined, the way
:mod:`repro.scenarios.registry` defines scenario identity:

* :meth:`MclConfig.to_canonical_dict` / :meth:`MclConfig.from_canonical_dict`
  give every config one canonical (JSON-stable) serialization;
* :meth:`MclConfig.fingerprint` digests that serialization into a short
  stable id — the unit of config identity everywhere results are keyed
  (sweep cells, campaign content keys, serve cohorts).  The particle
  count is deliberately *excluded*: N is a first-class sweep axis of its
  own, so a full identity is always the pair ``(fingerprint, N)``;
* :class:`ConfigSpec` is the one parser of the config-spec grammar
  ``variant[+key=value...]`` (e.g. ``fp16qm+sigma=0.15+r_max=2.0``) that
  every CLI flag, fleet declaration and campaign axis accepts.  A spec
  with no overrides canonicalizes to the bare paper-variant name, which
  is what keeps default-param results keyed exactly as before the
  config axis existed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from dataclasses import dataclass

from ..common.errors import ConfigurationError
from ..common.precision import PrecisionMode

#: Particle counts used across Fig. 6, 7, 10 and Tab. I.
PAPER_PARTICLE_COUNTS: tuple[int, ...] = (64, 256, 1024, 4096, 16384)

#: The four configurations plotted in Fig. 6-8.
PAPER_VARIANTS: tuple[str, ...] = ("fp32", "fp321tof", "fp32qm", "fp16qm")


@dataclass(frozen=True)
class MclConfig:
    """All tunables of the localization filter.

    ``beam_rows`` selects which zone-matrix rows feed the observation
    model; the default middle-row pair keeps pure-Python sweeps tractable
    while preserving the full azimuth diversity (all 8 columns), see
    DESIGN.md.  ``use_rear_sensor=False`` reproduces the paper's
    single-ToF ablation (``fp321tof``).
    """

    particle_count: int = 4096
    sigma_odom_xy: float = 0.1
    sigma_odom_theta: float = 0.1
    sigma_obs: float = 2.0
    r_max: float = 1.5
    d_xy: float = 0.1
    d_theta: float = 0.1
    precision: PrecisionMode = PrecisionMode.FP32
    use_rear_sensor: bool = True
    beam_rows: tuple[int, ...] = (3, 4)
    #: Measurements at or beyond this range are discarded (sensor limit).
    max_beam_range_m: float = 4.0
    #: How many physical zone rows each configured beam row stands for.
    #: In the 2-D projection every row of a zone column shares the same
    #: azimuth, so feeding 2 rows with replication 4 is statistically
    #: equivalent to the paper's full 8-row (64 zone) update at a quarter
    #: of the compute: the observation log-likelihood scales linearly in
    #: the number of (conditionally independent) zone measurements.
    beam_replication: float = 4.0
    #: Resample only when the effective sample size falls below this
    #: fraction of N; ``1.0`` resamples on every correction (paper).
    resample_ess_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.particle_count < 1:
            raise ConfigurationError(f"particle_count must be >= 1, got {self.particle_count}")
        for name in ("sigma_odom_xy", "sigma_odom_theta", "sigma_obs"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.r_max <= 0:
            raise ConfigurationError(f"r_max must be positive, got {self.r_max}")
        if self.d_xy < 0 or self.d_theta < 0:
            raise ConfigurationError("movement thresholds must be non-negative")
        if not self.beam_rows:
            raise ConfigurationError("beam_rows must select at least one row")
        if self.max_beam_range_m <= 0:
            raise ConfigurationError("max_beam_range_m must be positive")
        if self.beam_replication <= 0:
            raise ConfigurationError("beam_replication must be positive")
        if not 0.0 < self.resample_ess_fraction <= 1.0:
            raise ConfigurationError("resample_ess_fraction must be in (0, 1]")

    # ------------------------------------------------------------------
    # Paper variants
    # ------------------------------------------------------------------
    def with_variant(self, variant: str) -> "MclConfig":
        """Return a copy configured as one of the paper's four variants.

        ``"fp32"``, ``"fp32qm"``, ``"fp16qm"`` set the precision mode with
        both sensors; ``"fp321tof"`` is fp32 with the rear sensor disabled.
        """
        if variant == "fp321tof":
            return dataclasses.replace(
                self, precision=PrecisionMode.FP32, use_rear_sensor=False
            )
        mode = PrecisionMode.from_label(variant)
        return dataclasses.replace(self, precision=mode, use_rear_sensor=True)

    @property
    def variant_label(self) -> str:
        """The paper's figure-legend label for this configuration."""
        if not self.use_rear_sensor and self.precision is PrecisionMode.FP32:
            return "fp321tof"
        return self.precision.value

    def movement_trigger(self, dx: float, dy: float, dtheta: float) -> bool:
        """True when accumulated motion warrants a filter update."""
        return math.hypot(dx, dy) > self.d_xy or abs(dtheta) > self.d_theta

    # ------------------------------------------------------------------
    # Canonical serialization and fingerprinting
    # ------------------------------------------------------------------
    def to_canonical_dict(self) -> dict:
        """Every tunable as canonical JSON types (floats, ints, lists).

        The encoding is construction-order independent (the fingerprint
        sorts keys) and round-trips exactly through
        :meth:`from_canonical_dict`; the precision mode serializes as its
        paper label.
        """
        return {
            "particle_count": int(self.particle_count),
            "sigma_odom_xy": float(self.sigma_odom_xy),
            "sigma_odom_theta": float(self.sigma_odom_theta),
            "sigma_obs": float(self.sigma_obs),
            "r_max": float(self.r_max),
            "d_xy": float(self.d_xy),
            "d_theta": float(self.d_theta),
            "precision": self.precision.value,
            "use_rear_sensor": bool(self.use_rear_sensor),
            "beam_rows": [int(row) for row in self.beam_rows],
            "max_beam_range_m": float(self.max_beam_range_m),
            "beam_replication": float(self.beam_replication),
            "resample_ess_fraction": float(self.resample_ess_fraction),
        }

    @staticmethod
    def from_canonical_dict(payload: dict) -> "MclConfig":
        """Rebuild a config from :meth:`to_canonical_dict` output."""
        data = dict(payload)
        unknown = set(data) - {f.name for f in dataclasses.fields(MclConfig)}
        if unknown:
            raise ConfigurationError(
                f"unknown MclConfig fields in canonical dict: {sorted(unknown)}"
            )
        if "precision" in data:
            data["precision"] = PrecisionMode.from_label(data["precision"])
        if "beam_rows" in data:
            data["beam_rows"] = tuple(int(row) for row in data["beam_rows"])
        return MclConfig(**data)

    def fingerprint(self) -> str:
        """Short stable digest of the configuration, excluding N.

        SHA-256 of the canonical JSON (sorted keys) of
        :meth:`to_canonical_dict` minus ``particle_count``, truncated to
        12 hex characters.  Identical on every machine, process and
        session (no ``hash()`` salting), so it can key on-disk results:
        under the bitwise backend-equivalence contract, identical
        ``(fingerprint, N, scenario, seed)`` implies identical trace
        bytes across backends, jobs, resume and serving.  Particle count
        is excluded because N is its own sweep/cohort axis everywhere —
        a full config identity is the pair ``(fingerprint, N)``.
        """
        payload = self.to_canonical_dict()
        del payload["particle_count"]
        encoded = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(encoded).hexdigest()[:12]

    def default_variant_label(self) -> str | None:
        """The paper-variant name this config is a pure instance of.

        Returns the variant whose default-parameter config (at this
        config's N) equals this config exactly, or ``None`` when any
        field was ablated away from the paper defaults.  This is what
        preserves legacy result keys: only configs recognized here may
        use the plain variant string as their identity.
        """
        for variant in PAPER_VARIANTS:
            if self == MclConfig(particle_count=self.particle_count).with_variant(
                variant
            ):
                return variant
        return None


# ----------------------------------------------------------------------
# The config-spec grammar: ``variant[+key=value...]``
# ----------------------------------------------------------------------
#: MclConfig fields the grammar may override with one numeric value.
#: ``particle_count`` is deliberately absent (N is its own axis
#: everywhere), as are ``precision``/``use_rear_sensor`` (named by the
#: variant).  ``beam_rows`` is the one tuple-valued override and has its
#: own ``/``-separated value grammar (see :data:`TUPLE_OVERRIDE_FIELDS`).
CONFIG_OVERRIDE_FIELDS: tuple[str, ...] = (
    "sigma_odom_xy",
    "sigma_odom_theta",
    "sigma_obs",
    "r_max",
    "d_xy",
    "d_theta",
    "max_beam_range_m",
    "beam_replication",
    "resample_ess_fraction",
)

#: Tuple-valued overrides: values are ``/``-separated integers, e.g.
#: ``fp32+beam_rows=2/3/4/5``.  Rows canonicalize to a sorted, deduped
#: tuple; the materialized config carries exactly that tuple, so row
#: gather order (and therefore the bitwise trace) is a function of the
#: canonical spec — every spelling of one row set shares one
#: fingerprint *and* one execution.
TUPLE_OVERRIDE_FIELDS: tuple[str, ...] = ("beam_rows",)

#: Grammar shorthands, resolved during parsing so aliased and full
#: spellings canonicalize (and fingerprint) identically.
CONFIG_OVERRIDE_ALIASES: dict[str, str] = {
    "sigma": "sigma_obs",
    "trigger_xy": "d_xy",
    "trigger_theta": "d_theta",
}

#: The paper-default tunables, used to drop no-op overrides during spec
#: canonicalization (``fp32+sigma_obs=2.0`` *is* ``fp32``).
_DEFAULT_CONFIG = MclConfig()


def _coerce_row_tuple(name: str, value: object) -> tuple[int, ...]:
    """Canonicalize a beam-row override to a sorted, deduped int tuple.

    Accepts the grammar's ``/``-separated string (``"2/3"``), an already
    materialized sequence of ints, or a lone integer.  Rows are bounded
    to the 8x8 sensor grid here; geometry-dependent validity for smaller
    frames stays in the observation model (``SensorError``), which sees
    the actual zone count.
    """
    if isinstance(value, str):
        parts = [part.strip() for part in value.split("/")]
        try:
            rows = [int(part) for part in parts]
        except ValueError as exc:
            raise ConfigurationError(
                f"config override {name!r} needs '/'-separated integer "
                f"rows (e.g. 2/3/4), got {value!r}"
            ) from exc
    elif isinstance(value, (tuple, list)):
        rows = []
        for item in value:
            if isinstance(item, bool) or int(item) != item:
                raise ConfigurationError(
                    f"config override {name!r} needs integer rows, "
                    f"got {value!r}"
                )
            rows.append(int(item))
    elif isinstance(value, int) and not isinstance(value, bool):
        rows = [value]
    else:
        raise ConfigurationError(
            f"config override {name!r} needs '/'-separated integer rows "
            f"(e.g. 2/3/4), got {value!r}"
        )
    if not rows:
        raise ConfigurationError(f"config override {name!r} needs >=1 row")
    if any(row < 0 or row > 7 for row in rows):
        raise ConfigurationError(
            f"config override {name!r} rows must be within 0..7, "
            f"got {value!r}"
        )
    return tuple(sorted(set(rows)))


def format_override_value(value: "float | tuple[int, ...] | list") -> str:
    """Render a canonical override value in the spec grammar's spelling.

    Used for :attr:`ConfigSpec.id` and anywhere an override value labels
    output (e.g. pivot-report columns): floats render as ``repr``, row
    tuples as the ``/``-joined form the grammar parses back.
    """
    if isinstance(value, (tuple, list)):
        return "/".join(str(row) for row in value)
    return repr(value)


@dataclass(frozen=True)
class ConfigSpec:
    """One parsed config spec: a paper variant plus canonical overrides.

    This is the single grammar every configuration axis speaks —
    ``variant[+key=value...]``, e.g. ``fp32``, ``fp16qm+sigma=0.15``,
    ``fp32+r_max=2.0+d_xy=0.05``.  Construction canonicalizes: aliases
    resolve to field names, values coerce to float — or, for
    :data:`TUPLE_OVERRIDE_FIELDS`, to a sorted ``/``-separated row tuple
    (``fp32+beam_rows=2/3``) — last spelling wins,
    overrides sort by name, and overrides equal to the paper default are
    dropped — so every spelling of one configuration shares one
    :attr:`id` and one :meth:`fingerprint`, and a spec with no effective
    overrides (:attr:`is_default`) is indistinguishable from the bare
    variant, keeping legacy keys and stores valid.

    Identity is therefore defined **relative to the paper defaults**:
    an override spelled at its default value is a no-op and does not
    survive canonicalization, even if :meth:`config` is later given a
    ``base`` whose field differs (``fp32+sigma=2.0`` over a
    ``sigma_obs=1.0`` base yields 1.0).  Every keyed path in this
    repository — campaigns, serving, the CLI — materializes specs over
    the paper-default base, where spec identity and materialized config
    agree exactly; custom ``base`` configs are an advanced API-only path
    and do not participate in config identity.
    """

    variant: str
    overrides: tuple[tuple[str, "float | tuple[int, ...]"], ...] = ()

    def __post_init__(self) -> None:
        if self.variant not in PAPER_VARIANTS:
            raise ConfigurationError(
                f"unknown variant {self.variant!r}; expected from {PAPER_VARIANTS}"
            )
        canonical: dict[str, float | tuple[int, ...]] = {}
        for key, value in self.overrides:
            name = CONFIG_OVERRIDE_ALIASES.get(key, key)
            if name in TUPLE_OVERRIDE_FIELDS:
                value = _coerce_row_tuple(name, value)
            elif name in CONFIG_OVERRIDE_FIELDS:
                try:
                    value = float(value)
                except (TypeError, ValueError) as exc:
                    raise ConfigurationError(
                        f"config override {key!r} needs a numeric value, "
                        f"got {value!r}"
                    ) from exc
            else:
                valid = ", ".join(
                    sorted(
                        (
                            *CONFIG_OVERRIDE_FIELDS,
                            *TUPLE_OVERRIDE_FIELDS,
                            *CONFIG_OVERRIDE_ALIASES,
                        )
                    )
                )
                raise ConfigurationError(
                    f"unknown config override {key!r}; expected one of: {valid}"
                )
            if value == getattr(_DEFAULT_CONFIG, name):
                canonical.pop(name, None)  # no-op: equals the paper default
            else:
                canonical[name] = value
        object.__setattr__(self, "overrides", tuple(sorted(canonical.items())))
        self.config()  # validate eagerly (range checks live in MclConfig)

    @staticmethod
    def parse(text: "str | ConfigSpec") -> "ConfigSpec":
        """Parse ``variant[+key=value...]`` (specs pass through).

        Values stay raw strings here; canonicalization (float coercion,
        ``/``-separated row tuples, alias resolution, no-op dropping)
        happens in ``__post_init__`` so every construction path — parse,
        :meth:`with_override`, direct instantiation — speaks one rule.
        """
        if isinstance(text, ConfigSpec):
            return text
        parts = [part.strip() for part in text.strip().split("+")]
        if not parts or not parts[0]:
            raise ConfigurationError(f"empty config spec in {text!r}")
        overrides = []
        for item in parts[1:]:
            if "=" not in item:
                raise ConfigurationError(
                    f"config override {item!r} must look like key=value "
                    f"(in spec {text!r})"
                )
            key, raw = item.split("=", 1)
            overrides.append((key.strip(), raw.strip()))
        try:
            return ConfigSpec(parts[0], tuple(overrides))
        except ConfigurationError as exc:
            raise ConfigurationError(f"{exc} (in spec {text!r})") from exc

    @property
    def id(self) -> str:
        """Canonical spec string (round-trips through :meth:`parse`)."""
        if not self.overrides:
            return self.variant
        return self.variant + "".join(
            f"+{key}={format_override_value(value)}"
            for key, value in self.overrides
        )

    @property
    def is_default(self) -> bool:
        """True when this is a pure paper variant at default parameters."""
        return not self.overrides

    def with_override(
        self, key: str, value: "float | str | tuple[int, ...]"
    ) -> "ConfigSpec":
        """A copy with one more override (aliases and no-ops handled)."""
        return ConfigSpec(self.variant, (*self.overrides, (key, value)))

    def config(
        self,
        base: MclConfig | None = None,
        particle_count: int | None = None,
    ) -> MclConfig:
        """Materialize the full :class:`MclConfig` this spec names.

        Starting from ``base`` (paper defaults when omitted): apply the
        variant, then the overrides, then ``particle_count`` if given.
        """
        config = (base or _DEFAULT_CONFIG).with_variant(self.variant)
        if self.overrides:
            config = dataclasses.replace(config, **dict(self.overrides))
        if particle_count is not None:
            config = dataclasses.replace(config, particle_count=particle_count)
        return config

    def fingerprint(self) -> str:
        """The spec's config fingerprint under the paper-default base.

        Distinct canonical spec ids always map to distinct fingerprints
        (canonicalization already dropped every no-op override), so
        fingerprint equality is spec-identity equality.
        """
        return self.config().fingerprint()
