"""Byte-exact serialization of live filter state.

A :class:`FilterStateSnapshot` captures everything that determines a
filter's future behaviour — the particle population *at storage
precision*, the position of its ``make_rng(seed, "mcl")`` stream, the
update counter and the current estimate — so a restored filter continues
**bit-for-bit** where the original would have: same draws, same
resampling decisions, same trace.  This is the foundation of the serve
layer's snapshot/restore (session migration, exact replay) and of
:meth:`~repro.core.mcl.MonteCarloLocalization.export_state`.

Two invariants keep snapshots exact:

* arrays are stored verbatim at the particle dtype (no round-trip
  through float64 — ``astype`` back would be lossless for values but
  would hide dtype mismatches between writer and reader, so dtypes are
  checked instead);
* the RNG is serialized as the PCG64 bit-generator state (two 128-bit
  integers plus the cached-uint32 pair), not as the seed — a mid-run
  stream cannot be reconstructed from its seed without replaying every
  draw.

The payload is a flat ``{name: ndarray}`` dict (prefix-namespaced) so it
embeds into any ``.npz``-style archive the same way
:meth:`RecordedSequence.to_npz_payload` does; serialization through
``np.savez_compressed`` with sorted keys is byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigurationError
from ..common.geometry import Pose2D

#: Snapshot payload format version (bump on incompatible layout changes).
SNAPSHOT_VERSION = 1

#: Mask of one 64-bit limb of a 128-bit PCG64 state integer.
_U64 = (1 << 64) - 1


def pack_rng_state(rng: np.random.Generator) -> np.ndarray:
    """Serialize a PCG64 Generator's position as a ``(6,)`` uint64 array.

    Layout: ``[state_lo, state_hi, inc_lo, inc_hi, has_uint32, uinteger]``
    — the 128-bit LCG state and increment split into little-endian 64-bit
    limbs, plus numpy's cached half-drawn uint32 (a Generator that has
    produced an odd number of 32-bit draws holds one).
    """
    state = rng.bit_generator.state
    if state.get("bit_generator") != "PCG64":
        raise ConfigurationError(
            "filter snapshots require the PCG64 bit generator "
            f"(make_rng streams), got {state.get('bit_generator')!r}"
        )
    inner = state["state"]
    return np.array(
        [
            inner["state"] & _U64,
            (inner["state"] >> 64) & _U64,
            inner["inc"] & _U64,
            (inner["inc"] >> 64) & _U64,
            int(state["has_uint32"]),
            int(state["uinteger"]),
        ],
        dtype=np.uint64,
    )


def unpack_rng_state(packed: np.ndarray) -> np.random.Generator:
    """Rebuild the Generator whose next draw matches the packed stream."""
    packed = np.asarray(packed, dtype=np.uint64)
    if packed.shape != (6,):
        raise ConfigurationError(
            f"packed RNG state must have shape (6,), got {packed.shape}"
        )
    values = [int(v) for v in packed]
    bit_generator = np.random.PCG64()
    bit_generator.state = {
        "bit_generator": "PCG64",
        "state": {
            "state": values[0] | (values[1] << 64),
            "inc": values[2] | (values[3] << 64),
        },
        "has_uint32": values[4],
        "uinteger": values[5],
    }
    return np.random.Generator(bit_generator)


@dataclass
class FilterStateSnapshot:
    """One filter's complete dynamic state, copied at capture time.

    ``pending`` is the accumulated-but-ungated odometry of the scalar
    filter; serve-layer sessions keep it zero because pending motion
    lives in their replay plans.
    """

    x: np.ndarray
    y: np.ndarray
    theta: np.ndarray
    weights: np.ndarray
    rng: np.ndarray  # packed uint64 (6,), see pack_rng_state
    update_count: int
    estimate: np.ndarray  # (3,) float64 pose at capture time
    pending: np.ndarray  # (3,) float64 accumulated odometry

    @staticmethod
    def capture(
        x: np.ndarray,
        y: np.ndarray,
        theta: np.ndarray,
        weights: np.ndarray,
        rng: np.random.Generator,
        update_count: int,
        estimate: np.ndarray,
        pending: Pose2D | None = None,
    ) -> "FilterStateSnapshot":
        """Copy live state into an immutable-by-convention snapshot."""
        pending_array = (
            np.zeros(3, dtype=np.float64)
            if pending is None
            else np.array([pending.x, pending.y, pending.theta], dtype=np.float64)
        )
        return FilterStateSnapshot(
            x=np.array(x, copy=True),
            y=np.array(y, copy=True),
            theta=np.array(theta, copy=True),
            weights=np.array(weights, copy=True),
            rng=pack_rng_state(rng),
            update_count=int(update_count),
            estimate=np.asarray(estimate, dtype=np.float64).copy(),
            pending=pending_array,
        )

    # ------------------------------------------------------------------
    # Payload embedding (one flat dict of arrays, prefix-namespaced)
    # ------------------------------------------------------------------
    def to_payload(self, prefix: str = "state_") -> dict[str, np.ndarray]:
        """Flatten into ``{prefix+name: ndarray}`` for archive embedding."""
        return {
            f"{prefix}x": self.x,
            f"{prefix}y": self.y,
            f"{prefix}theta": self.theta,
            f"{prefix}weights": self.weights,
            f"{prefix}rng": self.rng,
            f"{prefix}update_count": np.int64(self.update_count),
            f"{prefix}estimate": self.estimate,
            f"{prefix}pending": self.pending,
        }

    @staticmethod
    def from_payload(data, prefix: str = "state_") -> "FilterStateSnapshot":
        """Rebuild from a payload written by :meth:`to_payload`."""
        try:
            return FilterStateSnapshot(
                x=np.asarray(data[f"{prefix}x"]),
                y=np.asarray(data[f"{prefix}y"]),
                theta=np.asarray(data[f"{prefix}theta"]),
                weights=np.asarray(data[f"{prefix}weights"]),
                rng=np.asarray(data[f"{prefix}rng"], dtype=np.uint64),
                update_count=int(data[f"{prefix}update_count"]),
                estimate=np.asarray(data[f"{prefix}estimate"], dtype=np.float64),
                pending=np.asarray(data[f"{prefix}pending"], dtype=np.float64),
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"filter-state payload is missing key {exc.args[0]!r}"
            ) from exc

    def make_rng(self) -> np.random.Generator:
        """The Generator continuing exactly where the captured one was."""
        return unpack_rng_state(self.rng)

    def check_compatible(self, count: int, dtype: np.dtype) -> None:
        """Raise unless this snapshot fits an (N=count, dtype) population."""
        for name in ("x", "y", "theta", "weights"):
            array = getattr(self, name)
            if array.shape != (count,):
                raise ConfigurationError(
                    f"snapshot {name} has shape {array.shape}, expected "
                    f"({count},) — particle counts differ"
                )
            if array.dtype != dtype:
                raise ConfigurationError(
                    f"snapshot {name} has dtype {array.dtype}, expected "
                    f"{dtype} — precision variants differ"
                )

    def check_no_pending(self) -> None:
        """Raise if the snapshot carries accumulated-but-ungated odometry.

        Stack rows (serve sessions) keep pending motion in their replay
        plans, not in filter state — importing a scalar-filter snapshot
        taken mid-accumulation would silently drop that motion, so the
        mismatch must be an error, not drift.
        """
        if np.any(self.pending != 0.0):
            raise ConfigurationError(
                "snapshot carries pending odometry "
                f"{self.pending.tolist()} — stack rows cannot represent "
                "ungated motion; restore it into a scalar filter "
                "(MonteCarloLocalization.restore_state) or snapshot after "
                "the accumulated motion has been consumed"
            )

    def estimate_pose(self) -> Pose2D:
        """The captured estimate as a :class:`Pose2D`."""
        return Pose2D(
            float(self.estimate[0]),
            float(self.estimate[1]),
            float(self.estimate[2]),
        )
