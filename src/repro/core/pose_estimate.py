"""Pose computation: the weighted average over all particles.

The paper adds a fourth step to classic MCL: "pose computation, where the
pose estimation is computed as the weighted average over all particles"
(Sec. III-C1).  Position averages linearly; yaw must average circularly
(via the weighted mean direction) or the estimate breaks at the +-pi wrap.

The returned estimate also carries the position covariance and circular
yaw spread so callers (and the convergence metric) can reason about how
concentrated the belief is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.geometry import Pose2D, angle_difference
from ..engine import kernels
from .particles import ParticleSet


@dataclass(frozen=True)
class PoseEstimate:
    """Weighted-average pose plus spread diagnostics."""

    pose: Pose2D
    #: 2x2 position covariance (metres^2), weighted.
    position_cov: np.ndarray
    #: Circular standard deviation of yaw, radians.
    yaw_std: float
    #: Effective sample size at estimation time.
    ess: float

    @property
    def position_std(self) -> float:
        """Root-mean of the covariance eigenvalues: a scalar spread."""
        return float(np.sqrt(max(np.trace(self.position_cov) / 2.0, 0.0)))


def estimate_pose(particles: ParticleSet) -> PoseEstimate:
    """Compute the weighted mean pose of the population.

    Weights are re-normalized defensively in float64; a degenerate
    population falls back to the unweighted mean.
    """
    x = particles.x.astype(np.float64)
    y = particles.y.astype(np.float64)
    theta = particles.theta.astype(np.float64)

    weights, mean_x, mean_y, mean_theta = kernels.weighted_mean_pose(
        x, y, theta, particles.weights
    )
    cov, yaw_std = kernels.weighted_pose_spread(x, y, theta, weights, mean_x, mean_y)
    ess = particles.effective_sample_size()
    return PoseEstimate(
        pose=Pose2D(mean_x, mean_y, mean_theta),
        position_cov=cov,
        yaw_std=yaw_std,
        ess=ess,
    )


def pose_error(estimate: Pose2D, ground_truth: Pose2D) -> tuple[float, float]:
    """(position error metres, absolute yaw error radians) pair."""
    return (
        estimate.distance_to(ground_truth),
        abs(angle_difference(estimate.theta, ground_truth.theta)),
    )
