"""Odometry motion model: sampling the proposal p(x_t | x_{t-1}, u_t).

"When odometry is available, we sample from the proposal distribution
p(x_t | x_{t-1}, u_t) with odometry noise sigma_odom in R^3" (paper
Sec. III-C1).  The odometry input ``u_t`` is the body-frame SE(2) increment
reported by the on-board state estimate; each particle composes its pose
with the increment perturbed by independent Gaussian noise in
(x, y, theta).

Computation runs in float64 and rounds back to the particle storage dtype,
matching the fp16 variant's behaviour on GAP9.
"""

from __future__ import annotations

import numpy as np

from ..common.geometry import Pose2D
from ..engine.kernels import compose_increment, sample_motion_noise
from .config import MclConfig
from .particles import ParticleSet


def apply_motion_model(
    particles: ParticleSet,
    increment: Pose2D,
    config: MclConfig,
    rng: np.random.Generator,
) -> None:
    """Propagate all particles through one noisy odometry increment.

    The noise is additive on the body-frame increment (sigma_odom per
    update).  A stationary drone escapes diffusion only because the
    filter's movement gating skips the update entirely; this function
    always injects noise, exactly like the on-board implementation does
    per triggered update.
    """
    noise_x, noise_y, noise_theta = sample_motion_noise(
        rng, particles.count, config.sigma_odom_xy, config.sigma_odom_theta
    )
    new_x, new_y, new_theta = compose_increment(
        particles.x.astype(np.float64),
        particles.y.astype(np.float64),
        particles.theta.astype(np.float64),
        increment.x + noise_x,
        increment.y + noise_y,
        increment.theta + noise_theta,
    )
    particles.set_state(new_x, new_y, new_theta)
