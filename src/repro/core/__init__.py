"""Monte Carlo localization: the paper's primary contribution."""

from .config import (
    CONFIG_OVERRIDE_ALIASES,
    CONFIG_OVERRIDE_FIELDS,
    PAPER_PARTICLE_COUNTS,
    PAPER_VARIANTS,
    ConfigSpec,
    MclConfig,
)
from .mcl import McUpdateReport, MonteCarloLocalization
from .motion import apply_motion_model
from .observation import (
    BeamBundle,
    apply_observation_model,
    extract_beams,
    log_likelihoods,
)
from .particles import ParticleSet
from .pose_estimate import PoseEstimate, estimate_pose, pose_error
from .resampling import (
    GAP9_WORKER_CORES,
    CoreAssignment,
    ParallelResampleResult,
    draw_wheel_offset,
    parallel_systematic_resample,
    systematic_resample,
)

__all__ = [
    "CONFIG_OVERRIDE_ALIASES",
    "CONFIG_OVERRIDE_FIELDS",
    "PAPER_PARTICLE_COUNTS",
    "PAPER_VARIANTS",
    "ConfigSpec",
    "MclConfig",
    "McUpdateReport",
    "MonteCarloLocalization",
    "apply_motion_model",
    "BeamBundle",
    "apply_observation_model",
    "extract_beams",
    "log_likelihoods",
    "ParticleSet",
    "PoseEstimate",
    "estimate_pose",
    "pose_error",
    "GAP9_WORKER_CORES",
    "CoreAssignment",
    "ParallelResampleResult",
    "draw_wheel_offset",
    "parallel_systematic_resample",
    "systematic_resample",
]
