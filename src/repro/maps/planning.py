"""Grid path planning with clearance — the paper's stated extension.

The paper closes with "Future works will extend the proposed system to
applications such as path planning"; this module implements that extension
and, more importantly for the reproduction, generates the collision-free
waypoint routes flown by the six evaluation sequences.

Planning runs A* over the occupancy grid restricted to cells whose EDT
clearance exceeds the drone's safety radius, then simplifies the cell path
into a short waypoint list with line-of-sight shortcutting (every shortcut
is verified to keep the same clearance).
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from ..common.errors import MapError
from .edt import euclidean_distance_field
from .occupancy import CellState, OccupancyGrid

#: Default clearance radius in metres (Crazyflie rotor radius + margin).
DEFAULT_CLEARANCE_M = 0.18

_SQRT2 = math.sqrt(2.0)
#: 8-connected neighbourhood: (d_row, d_col, step_cost).
_NEIGHBOURS = (
    (-1, 0, 1.0), (1, 0, 1.0), (0, -1, 1.0), (0, 1, 1.0),
    (-1, -1, _SQRT2), (-1, 1, _SQRT2), (1, -1, _SQRT2), (1, 1, _SQRT2),
)


def clearance_map(grid: OccupancyGrid, clearance_m: float = DEFAULT_CLEARANCE_M) -> np.ndarray:
    """Boolean mask of cells that are FREE with EDT >= ``clearance_m``."""
    if clearance_m < 0:
        raise MapError(f"clearance must be non-negative, got {clearance_m}")
    edt = euclidean_distance_field(grid, r_max=clearance_m + 1.0)
    return (grid.cells == CellState.FREE) & (edt >= clearance_m)


def _astar(
    traversable: np.ndarray, start: tuple[int, int], goal: tuple[int, int]
) -> list[tuple[int, int]]:
    """A* over a boolean traversability mask; returns the cell path.

    Octile-distance heuristic (admissible for the 8-connected costs).
    Raises :class:`MapError` when no path exists.
    """
    rows, cols = traversable.shape

    def heuristic(cell: tuple[int, int]) -> float:
        dr = abs(cell[0] - goal[0])
        dc = abs(cell[1] - goal[1])
        return (dr + dc) + (_SQRT2 - 2.0) * min(dr, dc)

    open_heap: list[tuple[float, tuple[int, int]]] = [(heuristic(start), start)]
    g_score = {start: 0.0}
    came_from: dict[tuple[int, int], tuple[int, int]] = {}
    closed: set[tuple[int, int]] = set()

    while open_heap:
        __, current = heapq.heappop(open_heap)
        if current == goal:
            path = [current]
            while current in came_from:
                current = came_from[current]
                path.append(current)
            path.reverse()
            return path
        if current in closed:
            continue
        closed.add(current)
        row, col = current
        for d_row, d_col, step in _NEIGHBOURS:
            nxt = (row + d_row, col + d_col)
            if not (0 <= nxt[0] < rows and 0 <= nxt[1] < cols):
                continue
            if not traversable[nxt]:
                continue
            # Forbid diagonal corner cutting through blocked cells.
            if d_row != 0 and d_col != 0:
                if not (traversable[row + d_row, col] and traversable[row, col + d_col]):
                    continue
            tentative = g_score[current] + step
            if tentative < g_score.get(nxt, math.inf):
                g_score[nxt] = tentative
                came_from[nxt] = current
                heapq.heappush(open_heap, (tentative + heuristic(nxt), nxt))
    raise MapError(f"no path from {start} to {goal} at the requested clearance")


def _segment_clear(
    traversable: np.ndarray, a: tuple[int, int], b: tuple[int, int]
) -> bool:
    """True when every cell sampled along segment a->b is traversable."""
    length = max(abs(b[0] - a[0]), abs(b[1] - a[1]))
    if length == 0:
        return bool(traversable[a])
    steps = np.linspace(0.0, 1.0, 2 * length + 1)
    rows = np.round(a[0] + (b[0] - a[0]) * steps).astype(int)
    cols = np.round(a[1] + (b[1] - a[1]) * steps).astype(int)
    return bool(np.all(traversable[rows, cols]))


def _shortcut(
    traversable: np.ndarray, path: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Greedy line-of-sight simplification of a cell path."""
    if len(path) <= 2:
        return path
    simplified = [path[0]]
    anchor = 0
    while anchor < len(path) - 1:
        # Find the furthest visible cell from the current anchor.
        reach = anchor + 1
        for candidate in range(len(path) - 1, anchor, -1):
            if _segment_clear(traversable, path[anchor], path[candidate]):
                reach = candidate
                break
        simplified.append(path[reach])
        anchor = reach
    return simplified


def snap_to_clearance(
    grid: OccupancyGrid,
    point_xy: tuple[float, float],
    clearance_m: float = DEFAULT_CLEARANCE_M,
) -> tuple[float, float]:
    """Return the nearest clearance-valid cell center to ``point_xy``.

    Lets routes be specified from approximate hand-picked coordinates: if
    the point already satisfies the clearance it is returned unchanged,
    otherwise the closest traversable cell center is used.  Raises
    :class:`MapError` if the whole map lacks clearance-valid cells.
    """
    traversable = clearance_map(grid, clearance_m)
    row, col = grid.world_to_grid(*point_xy)
    if (
        0 <= row < grid.rows
        and 0 <= col < grid.cols
        and traversable[int(row), int(col)]
    ):
        return (float(point_xy[0]), float(point_xy[1]))
    rows, cols = np.nonzero(traversable)
    if rows.size == 0:
        raise MapError(f"no cell satisfies the {clearance_m} m clearance")
    xs, ys = grid.grid_to_world(rows, cols)
    best = int(np.argmin((xs - point_xy[0]) ** 2 + (ys - point_xy[1]) ** 2))
    return (float(xs[best]), float(ys[best]))


def plan_route(
    grid: OccupancyGrid,
    start_xy: tuple[float, float],
    goal_xy: tuple[float, float],
    clearance_m: float = DEFAULT_CLEARANCE_M,
) -> list[tuple[float, float]]:
    """Plan a clearance-safe waypoint route between two world points.

    Returns world-coordinate waypoints, endpoints included.  Raises
    :class:`MapError` when either endpoint lacks clearance or no route
    exists.
    """
    traversable = clearance_map(grid, clearance_m)
    start = tuple(int(v) for v in grid.world_to_grid(*start_xy))
    goal = tuple(int(v) for v in grid.world_to_grid(*goal_xy))
    for name, cell in (("start", start), ("goal", goal)):
        if not (0 <= cell[0] < grid.rows and 0 <= cell[1] < grid.cols):
            raise MapError(f"{name} {cell} lies outside the map")
        if not traversable[cell]:
            raise MapError(f"{name} cell {cell} violates the {clearance_m} m clearance")
    cell_path = _astar(traversable, start, goal)
    cell_path = _shortcut(traversable, cell_path)
    waypoints = []
    for row, col in cell_path:
        x, y = grid.grid_to_world(row, col)
        waypoints.append((float(x), float(y)))
    # Pin exact endpoints (cell centers may be half a cell off).
    waypoints[0] = (float(start_xy[0]), float(start_xy[1]))
    waypoints[-1] = (float(goal_xy[0]), float(goal_xy[1]))
    return waypoints


def plan_tour(
    grid: OccupancyGrid,
    stops: list[tuple[float, float]],
    clearance_m: float = DEFAULT_CLEARANCE_M,
) -> list[tuple[float, float]]:
    """Chain :func:`plan_route` through a list of stops.

    Consecutive duplicate waypoints at the junctions are removed.
    """
    if len(stops) < 2:
        raise MapError("a tour needs at least two stops")
    waypoints: list[tuple[float, float]] = []
    for leg_start, leg_goal in zip(stops[:-1], stops[1:]):
        leg = plan_route(grid, leg_start, leg_goal, clearance_m)
        if waypoints:
            leg = leg[1:]
        waypoints.extend(leg)
    return waypoints
