"""Distance-field storage variants: fp32, fp16 and quantized uint8.

The paper compares three in-memory representations of the precomputed EDT
(Sec. III-C2): 32-bit floats, 16-bit floats and 8-bit quantized unsigned
integers.  All three are exposed here behind one lookup API so the
observation model is agnostic to the storage choice; the memory accounting
(bytes per cell) feeds the Fig. 9 capacity analysis.

Lookups happen in world coordinates.  Points outside the stored grid
return ``r_max`` — off-map space is maximally far from any known obstacle,
which makes the beam-end-point likelihood saturate exactly like a truncated
in-map cell.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..common.errors import MapError
from ..common.precision import (
    QUANT_LEVELS,
    PrecisionMode,
    dequantize_distances,
    quantize_distances,
)
from .edt import euclidean_distance_field
from .occupancy import CellState, OccupancyGrid


class FieldKind(Enum):
    """Storage representation of the distance field."""

    FLOAT32 = "float32"
    FLOAT16 = "float16"
    QUANTIZED_U8 = "quantized_u8"

    @property
    def bytes_per_cell(self) -> int:
        """Bytes per cell of the EDT payload alone (occupancy excluded)."""
        return {"float32": 4, "float16": 2, "quantized_u8": 1}[self.value]

    @staticmethod
    def for_mode(mode: PrecisionMode) -> "FieldKind":
        """Field kind used by a paper precision mode (fp32 vs *qm)."""
        return FieldKind.QUANTIZED_U8 if mode.edt_quantized else FieldKind.FLOAT32


@dataclass
class DistanceField:
    """A truncated EDT over a metric grid with pluggable storage.

    Attributes
    ----------
    data:
        ``(rows, cols)`` array in the storage dtype (float32/float16/uint8).
    kind:
        Which representation ``data`` uses.
    r_max:
        Truncation distance in metres; also the quantization full scale.
    resolution, origin_x, origin_y:
        Metric frame, identical to the source occupancy grid's.
    """

    data: np.ndarray
    kind: FieldKind
    r_max: float
    resolution: float
    origin_x: float
    origin_y: float

    #: Lazily built payloads of :meth:`lookup_squared_world` (not part of
    #: the dataclass comparison/serialization surface).
    _sq64: np.ndarray | None = dataclasses.field(
        default=None, repr=False, compare=False
    )
    _sq64_lut: np.ndarray | None = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.data.ndim != 2:
            raise MapError(f"distance field must be 2-D, got shape {self.data.shape}")
        if self.r_max <= 0:
            raise MapError(f"r_max must be positive, got {self.r_max}")
        expected = {
            FieldKind.FLOAT32: np.float32,
            FieldKind.FLOAT16: np.float16,
            FieldKind.QUANTIZED_U8: np.uint8,
        }[self.kind]
        if self.data.dtype != np.dtype(expected):
            raise MapError(
                f"{self.kind.value} field requires dtype {np.dtype(expected)}, got {self.data.dtype}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def build(
        grid: OccupancyGrid, r_max: float, kind: FieldKind = FieldKind.FLOAT32
    ) -> "DistanceField":
        """Compute the truncated EDT of ``grid`` and store it as ``kind``.

        The EDT is evaluated on a canvas **padded by r_max** on every side:
        a measured range that overshoots a border wall by a few
        centimetres (plain ranging noise) must score as "centimetres from
        an obstacle", not as the maximal off-map penalty — otherwise maps
        whose walls coincide with the grid edge punish the *true* pose.
        Beyond the padding the lookup saturates at ``r_max``, which is
        exact because no obstacle can be closer than the padding width.
        """
        if r_max <= 0:
            raise MapError(f"r_max must be positive, got {r_max}")
        pad = int(np.ceil(r_max / grid.resolution))
        padded_cells = np.full(
            (grid.rows + 2 * pad, grid.cols + 2 * pad),
            int(CellState.UNKNOWN),
            dtype=np.uint8,
        )
        padded_cells[pad : pad + grid.rows, pad : pad + grid.cols] = grid.cells
        padded = OccupancyGrid(
            padded_cells,
            resolution=grid.resolution,
            origin_x=grid.origin_x - pad * grid.resolution,
            origin_y=grid.origin_y - pad * grid.resolution,
        )
        metric = euclidean_distance_field(padded, r_max)
        if kind is FieldKind.FLOAT32:
            data = metric.astype(np.float32)
        elif kind is FieldKind.FLOAT16:
            data = metric.astype(np.float16)
        else:
            data = quantize_distances(metric, r_max)
        return DistanceField(
            data=data,
            kind=kind,
            r_max=float(r_max),
            resolution=padded.resolution,
            origin_x=padded.origin_x,
            origin_y=padded.origin_y,
        )

    @staticmethod
    def build_for_mode(
        grid: OccupancyGrid, r_max: float, mode: PrecisionMode
    ) -> "DistanceField":
        """Build the field variant a paper precision mode calls for."""
        return DistanceField.build(grid, r_max, FieldKind.for_mode(mode))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def values_metres(self) -> np.ndarray:
        """The full field decoded to float32 metres (copies for quantized)."""
        if self.kind is FieldKind.QUANTIZED_U8:
            return dequantize_distances(self.data, self.r_max)
        return self.data.astype(np.float32)

    def lookup_world(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Distances (float32, metres) at world points of any shape.

        Out-of-bounds points return ``r_max``.  This is the hot path of the
        observation model: it must stay fully vectorized, and it works on
        owned temporaries in place — every operation produces the exact
        values of the straightforward ``floor((p - origin) / res)`` +
        per-axis-clipped gather formulation, with about half the
        full-size temporaries.
        """
        col = self._world_to_index(x, self.origin_x)
        row = self._world_to_index(y, self.origin_y)
        rows, cols = self.data.shape
        inside = row >= 0
        inside &= row < rows
        inside &= col >= 0
        inside &= col < cols
        # Flat gather with clipped indices: out-of-range flat positions
        # read an arbitrary in-range cell, which the mask overwrites with
        # r_max below — exactly what the per-axis clip achieved.
        row *= cols
        row += col
        raw = self.data.take(row, mode="clip")
        if self.kind is FieldKind.QUANTIZED_U8:
            dist = dequantize_distances(raw, self.r_max)
        else:
            dist = raw if raw.dtype == np.float32 else raw.astype(np.float32)
        np.copyto(dist, np.float32(self.r_max), where=~inside)
        return dist

    def _world_to_index(self, coord: np.ndarray, origin: float) -> np.ndarray:
        """``floor((coord - origin) / resolution)`` as int64, via one temp."""
        scaled = np.asarray(coord) - origin
        scaled /= self.resolution
        np.floor(scaled, out=scaled)
        return scaled.astype(np.int64)

    def lookup_squared_world(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """``lookup_world(x, y) ** 2`` in float64, without the wide passes.

        The observation model only ever consumes ``d**2`` in float64.
        Squaring commutes with the gather: because float32 -> float64
        conversion is exact, squaring each *cell value* once up front
        (into a float64 payload, or a 256-entry code table for the
        quantized field) yields bit-identical results to gathering,
        widening and squaring every beam end point — while skipping two
        full-size array passes per observation.
        """
        col = self._world_to_index(x, self.origin_x)
        row = self._world_to_index(y, self.origin_y)
        rows, cols = self.data.shape
        inside = row >= 0
        inside &= row < rows
        inside &= col >= 0
        inside &= col < cols
        row *= cols
        row += col
        if self.kind is FieldKind.QUANTIZED_U8:
            raw = self.data.take(row, mode="clip")
            sq = self.squared_lut().take(raw)
        else:
            sq = self.squared_table().take(row, mode="clip")
        np.copyto(sq, self.border_squared(), where=~inside)
        return sq

    def squared_lut(self) -> np.ndarray:
        """256-entry float64 code -> squared-metres table (quantized only).

        Built lazily once per field; shared by :meth:`lookup_squared_world`
        and the fast backend's fused gather kernels, so both consume the
        exact same per-code values.
        """
        if self.kind is not FieldKind.QUANTIZED_U8:
            raise MapError("squared_lut is only defined for quantized fields")
        if self._sq64_lut is None:
            codes = np.arange(QUANT_LEVELS, dtype=np.uint8)
            lut = dequantize_distances(codes, self.r_max).astype(np.float64)
            self._sq64_lut = np.square(lut)
        return self._sq64_lut

    def squared_table(self) -> np.ndarray:
        """Flat float64 squared-metres payload (float storage kinds).

        One entry per cell in row-major order; float->float64 widening is
        exact, so squaring each cell once up front is bit-identical to
        widening and squaring per lookup.
        """
        if self.kind is FieldKind.QUANTIZED_U8:
            raise MapError("squared_table is not defined for quantized fields")
        if self._sq64 is None:
            sq64 = self.data.astype(np.float64)
            np.square(sq64, out=sq64)
            self._sq64 = sq64.reshape(-1)
        return self._sq64

    def border_squared(self) -> float:
        """Out-of-bounds squared distance: ``float64(float32(r_max)) ** 2``."""
        return float(np.float64(np.float32(self.r_max)) ** 2)

    # ------------------------------------------------------------------
    # Memory accounting (Fig. 9)
    # ------------------------------------------------------------------
    @property
    def bytes_per_cell(self) -> int:
        """Bytes per cell of the EDT payload."""
        return self.kind.bytes_per_cell

    def memory_bytes(self) -> int:
        """Total bytes of the stored field."""
        return int(self.data.nbytes)

    def max_abs_error_metres(self) -> float:
        """Worst-case representation error of this storage kind in metres.

        fp32 is treated as exact; fp16 error is bounded by half ULP at
        ``r_max``; quantized error is half a quantization step.
        """
        if self.kind is FieldKind.QUANTIZED_U8:
            return self.r_max / (2 * 255)
        if self.kind is FieldKind.FLOAT16:
            return float(np.spacing(np.float16(self.r_max))) / 2
        return 0.0
