"""Distance-field storage variants: fp32, fp16 and quantized uint8.

The paper compares three in-memory representations of the precomputed EDT
(Sec. III-C2): 32-bit floats, 16-bit floats and 8-bit quantized unsigned
integers.  All three are exposed here behind one lookup API so the
observation model is agnostic to the storage choice; the memory accounting
(bytes per cell) feeds the Fig. 9 capacity analysis.

Lookups happen in world coordinates.  Points outside the stored grid
return ``r_max`` — off-map space is maximally far from any known obstacle,
which makes the beam-end-point likelihood saturate exactly like a truncated
in-map cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..common.errors import MapError
from ..common.precision import (
    PrecisionMode,
    dequantize_distances,
    quantize_distances,
)
from .edt import euclidean_distance_field
from .occupancy import CellState, OccupancyGrid


class FieldKind(Enum):
    """Storage representation of the distance field."""

    FLOAT32 = "float32"
    FLOAT16 = "float16"
    QUANTIZED_U8 = "quantized_u8"

    @property
    def bytes_per_cell(self) -> int:
        """Bytes per cell of the EDT payload alone (occupancy excluded)."""
        return {"float32": 4, "float16": 2, "quantized_u8": 1}[self.value]

    @staticmethod
    def for_mode(mode: PrecisionMode) -> "FieldKind":
        """Field kind used by a paper precision mode (fp32 vs *qm)."""
        return FieldKind.QUANTIZED_U8 if mode.edt_quantized else FieldKind.FLOAT32


@dataclass
class DistanceField:
    """A truncated EDT over a metric grid with pluggable storage.

    Attributes
    ----------
    data:
        ``(rows, cols)`` array in the storage dtype (float32/float16/uint8).
    kind:
        Which representation ``data`` uses.
    r_max:
        Truncation distance in metres; also the quantization full scale.
    resolution, origin_x, origin_y:
        Metric frame, identical to the source occupancy grid's.
    """

    data: np.ndarray
    kind: FieldKind
    r_max: float
    resolution: float
    origin_x: float
    origin_y: float

    def __post_init__(self) -> None:
        if self.data.ndim != 2:
            raise MapError(f"distance field must be 2-D, got shape {self.data.shape}")
        if self.r_max <= 0:
            raise MapError(f"r_max must be positive, got {self.r_max}")
        expected = {
            FieldKind.FLOAT32: np.float32,
            FieldKind.FLOAT16: np.float16,
            FieldKind.QUANTIZED_U8: np.uint8,
        }[self.kind]
        if self.data.dtype != np.dtype(expected):
            raise MapError(
                f"{self.kind.value} field requires dtype {np.dtype(expected)}, got {self.data.dtype}"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def build(
        grid: OccupancyGrid, r_max: float, kind: FieldKind = FieldKind.FLOAT32
    ) -> "DistanceField":
        """Compute the truncated EDT of ``grid`` and store it as ``kind``.

        The EDT is evaluated on a canvas **padded by r_max** on every side:
        a measured range that overshoots a border wall by a few
        centimetres (plain ranging noise) must score as "centimetres from
        an obstacle", not as the maximal off-map penalty — otherwise maps
        whose walls coincide with the grid edge punish the *true* pose.
        Beyond the padding the lookup saturates at ``r_max``, which is
        exact because no obstacle can be closer than the padding width.
        """
        if r_max <= 0:
            raise MapError(f"r_max must be positive, got {r_max}")
        pad = int(np.ceil(r_max / grid.resolution))
        padded_cells = np.full(
            (grid.rows + 2 * pad, grid.cols + 2 * pad),
            int(CellState.UNKNOWN),
            dtype=np.uint8,
        )
        padded_cells[pad : pad + grid.rows, pad : pad + grid.cols] = grid.cells
        padded = OccupancyGrid(
            padded_cells,
            resolution=grid.resolution,
            origin_x=grid.origin_x - pad * grid.resolution,
            origin_y=grid.origin_y - pad * grid.resolution,
        )
        metric = euclidean_distance_field(padded, r_max)
        if kind is FieldKind.FLOAT32:
            data = metric.astype(np.float32)
        elif kind is FieldKind.FLOAT16:
            data = metric.astype(np.float16)
        else:
            data = quantize_distances(metric, r_max)
        return DistanceField(
            data=data,
            kind=kind,
            r_max=float(r_max),
            resolution=padded.resolution,
            origin_x=padded.origin_x,
            origin_y=padded.origin_y,
        )

    @staticmethod
    def build_for_mode(
        grid: OccupancyGrid, r_max: float, mode: PrecisionMode
    ) -> "DistanceField":
        """Build the field variant a paper precision mode calls for."""
        return DistanceField.build(grid, r_max, FieldKind.for_mode(mode))

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def values_metres(self) -> np.ndarray:
        """The full field decoded to float32 metres (copies for quantized)."""
        if self.kind is FieldKind.QUANTIZED_U8:
            return dequantize_distances(self.data, self.r_max)
        return self.data.astype(np.float32)

    def lookup_world(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Distances (float32, metres) at world points of any shape.

        Out-of-bounds points return ``r_max``.  This is the hot path of the
        observation model: it must stay fully vectorized.
        """
        col = np.floor((np.asarray(x) - self.origin_x) / self.resolution).astype(np.int64)
        row = np.floor((np.asarray(y) - self.origin_y) / self.resolution).astype(np.int64)
        rows, cols = self.data.shape
        inside = (row >= 0) & (row < rows) & (col >= 0) & (col < cols)
        # Clip to gather safely, then overwrite out-of-bounds with r_max.
        row_safe = np.clip(row, 0, rows - 1)
        col_safe = np.clip(col, 0, cols - 1)
        raw = self.data[row_safe, col_safe]
        if self.kind is FieldKind.QUANTIZED_U8:
            dist = dequantize_distances(raw, self.r_max)
        else:
            dist = raw.astype(np.float32)
        return np.where(inside, dist, np.float32(self.r_max))

    # ------------------------------------------------------------------
    # Memory accounting (Fig. 9)
    # ------------------------------------------------------------------
    @property
    def bytes_per_cell(self) -> int:
        """Bytes per cell of the EDT payload."""
        return self.kind.bytes_per_cell

    def memory_bytes(self) -> int:
        """Total bytes of the stored field."""
        return int(self.data.nbytes)

    def max_abs_error_metres(self) -> float:
        """Worst-case representation error of this storage kind in metres.

        fp32 is treated as exact; fp16 error is bounded by half ULP at
        ``r_max``; quantized error is half a quantization step.
        """
        if self.kind is FieldKind.QUANTIZED_U8:
            return self.r_max / (2 * 255)
        if self.kind is FieldKind.FLOAT16:
            return float(np.spacing(np.float16(self.r_max))) / 2
        return 0.0
