"""Three-state occupancy grid map (paper Sec. III-C2).

The map cells carry one of three states — FREE, OCCUPIED, UNKNOWN — which
would fit in 2 bits; following the paper, each cell is stored as one byte
"to simplify the memory access".  The grid lives in a metric frame: cell
``(row, col)`` covers the square
``[origin_x + col*res, origin_x + (col+1)*res) x [origin_y + row*res, ...)``,
with ``row`` indexing y and ``col`` indexing x.

The default resolution everywhere in this reproduction is the paper's
0.05 m per cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from pathlib import Path

import numpy as np

from ..common.errors import MapError

#: The paper's map resolution in metres per cell.
PAPER_RESOLUTION = 0.05


class CellState(IntEnum):
    """Occupancy states; values are the stored byte codes."""

    FREE = 0
    OCCUPIED = 1
    UNKNOWN = 2


#: Characters used by the ASCII map format (and map rendering).
_ASCII_OF_STATE = {CellState.FREE: ".", CellState.OCCUPIED: "#", CellState.UNKNOWN: " "}
_STATE_OF_ASCII = {char: state for state, char in _ASCII_OF_STATE.items()}


@dataclass
class OccupancyGrid:
    """A 2-D three-state occupancy grid in a metric world frame.

    Attributes
    ----------
    cells:
        ``(rows, cols)`` uint8 array of :class:`CellState` codes.
    resolution:
        Cell edge length in metres.
    origin_x, origin_y:
        World coordinates of the lower-left corner of cell ``(0, 0)``.
    """

    cells: np.ndarray
    resolution: float = PAPER_RESOLUTION
    origin_x: float = 0.0
    origin_y: float = 0.0

    def __post_init__(self) -> None:
        cells = np.asarray(self.cells)
        if cells.ndim != 2:
            raise MapError(f"occupancy grid must be 2-D, got shape {cells.shape}")
        if cells.size == 0:
            raise MapError("occupancy grid must not be empty")
        if self.resolution <= 0:
            raise MapError(f"resolution must be positive, got {self.resolution}")
        valid = np.isin(cells, [int(s) for s in CellState])
        if not bool(np.all(valid)):
            raise MapError("occupancy grid contains invalid state codes")
        self.cells = cells.astype(np.uint8)

    # ------------------------------------------------------------------
    # Shape and extent
    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        """Number of rows (y direction)."""
        return int(self.cells.shape[0])

    @property
    def cols(self) -> int:
        """Number of columns (x direction)."""
        return int(self.cells.shape[1])

    @property
    def width_m(self) -> float:
        """Map extent along x in metres."""
        return self.cols * self.resolution

    @property
    def height_m(self) -> float:
        """Map extent along y in metres."""
        return self.rows * self.resolution

    @property
    def area_m2(self) -> float:
        """Total mapped area in square metres (all states)."""
        return self.width_m * self.height_m

    def structured_area_m2(self) -> float:
        """Area of non-UNKNOWN cells in square metres.

        This is the paper's "structured area" figure of merit: the combined
        maze map covers 31.2 m² of structured (free or occupied) space.
        """
        known = np.count_nonzero(self.cells != CellState.UNKNOWN)
        return known * self.resolution**2

    def memory_bytes(self) -> int:
        """Bytes used to store occupancy (1 byte/cell, paper Sec. III-C2)."""
        return self.cells.size

    # ------------------------------------------------------------------
    # World <-> grid transforms
    # ------------------------------------------------------------------
    def world_to_grid(self, x, y):
        """Convert world coordinates to (row, col) indices.

        Accepts scalars or arrays; indices are floor-divided, so points on
        the map boundary fall outside.  No bounds check is applied — use
        :meth:`in_bounds`.
        """
        col = np.floor((np.asarray(x) - self.origin_x) / self.resolution).astype(np.int64)
        row = np.floor((np.asarray(y) - self.origin_y) / self.resolution).astype(np.int64)
        return row, col

    def grid_to_world(self, row, col):
        """Convert (row, col) indices to the world coordinates of the cell center."""
        x = self.origin_x + (np.asarray(col) + 0.5) * self.resolution
        y = self.origin_y + (np.asarray(row) + 0.5) * self.resolution
        return x, y

    def in_bounds(self, row, col):
        """Elementwise check that (row, col) lies inside the grid."""
        row = np.asarray(row)
        col = np.asarray(col)
        return (row >= 0) & (row < self.rows) & (col >= 0) & (col < self.cols)

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    def state_at(self, x: float, y: float) -> CellState:
        """State of the cell containing world point ``(x, y)``.

        Points outside the grid are reported as UNKNOWN, matching how the
        localizer treats off-map space.
        """
        row, col = self.world_to_grid(x, y)
        if not bool(self.in_bounds(row, col)):
            return CellState.UNKNOWN
        return CellState(int(self.cells[row, col]))

    def is_free(self, x: float, y: float) -> bool:
        """True if the world point lies in a FREE cell."""
        return self.state_at(x, y) is CellState.FREE

    def occupied_mask(self) -> np.ndarray:
        """Boolean ``(rows, cols)`` mask of OCCUPIED cells."""
        return self.cells == CellState.OCCUPIED

    def free_mask(self) -> np.ndarray:
        """Boolean ``(rows, cols)`` mask of FREE cells."""
        return self.cells == CellState.FREE

    def free_cell_count(self) -> int:
        """Number of FREE cells."""
        return int(np.count_nonzero(self.free_mask()))

    # ------------------------------------------------------------------
    # Sampling (used for uniform global particle initialization)
    # ------------------------------------------------------------------
    def sample_free_points(
        self, count: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``count`` world points uniformly over the FREE area.

        Each draw picks a FREE cell uniformly and then a uniform position
        inside that cell, which is exactly uniform over free space.
        Raises :class:`MapError` if the map has no free cells.
        """
        free_rows, free_cols = np.nonzero(self.free_mask())
        if free_rows.size == 0:
            raise MapError("cannot sample free points: map has no FREE cells")
        picks = rng.integers(0, free_rows.size, size=count)
        jitter_x = rng.uniform(0.0, self.resolution, size=count)
        jitter_y = rng.uniform(0.0, self.resolution, size=count)
        x = self.origin_x + free_cols[picks] * self.resolution + jitter_x
        y = self.origin_y + free_rows[picks] * self.resolution + jitter_y
        return x, y

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def save_npz(self, path: str | Path) -> None:
        """Serialize the grid (cells + frame) to an ``.npz`` file."""
        np.savez_compressed(
            Path(path),
            cells=self.cells,
            resolution=np.float64(self.resolution),
            origin=np.array([self.origin_x, self.origin_y], dtype=np.float64),
        )

    @staticmethod
    def load_npz(path: str | Path) -> "OccupancyGrid":
        """Load a grid previously written by :meth:`save_npz`."""
        path = Path(path)
        if not path.exists():
            raise MapError(f"map file not found: {path}")
        with np.load(path) as data:
            return OccupancyGrid(
                cells=data["cells"],
                resolution=float(data["resolution"]),
                origin_x=float(data["origin"][0]),
                origin_y=float(data["origin"][1]),
            )

    def to_ascii(self) -> str:
        """Render the grid as ASCII art (row 0 at the bottom, like a plot)."""
        lookup = np.empty(3, dtype="<U1")
        for state, char in _ASCII_OF_STATE.items():
            lookup[int(state)] = char
        lines = ["".join(lookup[row]) for row in self.cells[::-1]]
        return "\n".join(lines)

    @staticmethod
    def from_ascii(
        art: str,
        resolution: float = PAPER_RESOLUTION,
        origin_x: float = 0.0,
        origin_y: float = 0.0,
    ) -> "OccupancyGrid":
        """Parse ASCII art into a grid (inverse of :meth:`to_ascii`).

        ``.`` is FREE, ``#`` is OCCUPIED, space is UNKNOWN.  The first text
        line is the top map row.  Short lines are padded with UNKNOWN.
        """
        lines = [line for line in art.splitlines() if line.strip("\n") != ""]
        if not lines:
            raise MapError("empty ASCII map")
        cols = max(len(line) for line in lines)
        rows = len(lines)
        cells = np.full((rows, cols), int(CellState.UNKNOWN), dtype=np.uint8)
        for text_row, line in enumerate(lines):
            grid_row = rows - 1 - text_row
            for col, char in enumerate(line):
                if char not in _STATE_OF_ASCII:
                    raise MapError(f"invalid map character {char!r}")
                cells[grid_row, col] = int(_STATE_OF_ASCII[char])
        return OccupancyGrid(cells, resolution, origin_x, origin_y)
