"""Exact Euclidean distance transform (EDT) of an occupancy grid.

The observation model (paper Eq. 1) scores a beam endpoint by its distance
to the nearest obstacle; those distances are precomputed per cell with the
exact EDT algorithm of Felzenszwalb & Huttenlocher, *Distance Transforms of
Sampled Functions* (Theory of Computing, 2012) — the very algorithm the
paper cites ([21]).

The algorithm computes the squared distance transform as the lower envelope
of parabolas in two separable 1-D passes (columns then rows).  It is exact
(no chamfer approximation) and O(n) per 1-D pass.  The result is converted
to metres and truncated at ``r_max`` (paper Sec. III-C1).
"""

from __future__ import annotations

import numpy as np

from ..common.errors import MapError
from .occupancy import OccupancyGrid

#: Squared-distance value representing "no obstacle in this 1-D slice yet".
_INF = np.float64(1e20)


def _edt_1d_squared(f: np.ndarray) -> np.ndarray:
    """1-D squared distance transform of a sampled function ``f``.

    Computes ``d[q] = min_p ((q - p)^2 + f[p])`` via the lower envelope of
    the parabolas ``y = (q - p)^2 + f[p]``.  This is the exact 1-D kernel
    from Felzenszwalb & Huttenlocher (2012), Fig. 1.
    """
    n = f.shape[0]
    d = np.empty(n, dtype=np.float64)
    v = np.zeros(n, dtype=np.int64)  # locations of parabolas in the envelope
    z = np.empty(n + 1, dtype=np.float64)  # boundaries between parabolas
    k = 0
    z[0] = -_INF
    z[1] = _INF
    for q in range(1, n):
        s = ((f[q] + q * q) - (f[v[k]] + v[k] * v[k])) / (2 * q - 2 * v[k])
        while s <= z[k]:
            k -= 1
            s = ((f[q] + q * q) - (f[v[k]] + v[k] * v[k])) / (2 * q - 2 * v[k])
        k += 1
        v[k] = q
        z[k] = s
        z[k + 1] = _INF
    k = 0
    for q in range(n):
        while z[k + 1] < q:
            k += 1
        d[q] = (q - v[k]) ** 2 + f[v[k]]
    return d


def squared_edt(obstacle_mask: np.ndarray) -> np.ndarray:
    """Exact squared EDT (in cells²) of a boolean obstacle mask.

    Cells where ``obstacle_mask`` is True have distance 0.  Returns a
    float64 array of squared cell distances.  A mask with no obstacles
    returns ``inf``-like values (``>= 1e20``) everywhere.
    """
    mask = np.asarray(obstacle_mask, dtype=bool)
    if mask.ndim != 2:
        raise MapError(f"obstacle mask must be 2-D, got shape {mask.shape}")
    rows, cols = mask.shape
    # Seed: 0 on obstacles, +inf elsewhere.
    dist_sq = np.where(mask, 0.0, _INF)
    # Pass 1: transform each column independently.
    for col in range(cols):
        dist_sq[:, col] = _edt_1d_squared(dist_sq[:, col])
    # Pass 2: transform each row of the column result.
    for row in range(rows):
        dist_sq[row, :] = _edt_1d_squared(dist_sq[row, :])
    return dist_sq


def euclidean_distance_field(
    grid: OccupancyGrid, r_max: float | None = None
) -> np.ndarray:
    """Truncated metric EDT of an occupancy grid, as a float64 array.

    Distances are measured from each cell center to the nearest OCCUPIED
    cell center, in metres.  When ``r_max`` is given, values are clipped to
    it — the paper truncates at ``r_max = 1.5 m`` so that far-from-wall
    endpoints saturate to a common worst score, which also enables the
    uint8 quantization.

    A grid with no occupied cell yields ``r_max`` everywhere (or raises
    if no truncation was requested, since distances would be undefined).
    """
    mask = grid.occupied_mask()
    if not bool(mask.any()):
        if r_max is None:
            raise MapError("grid has no occupied cells and no r_max was given")
        return np.full(mask.shape, float(r_max), dtype=np.float64)
    dist = np.sqrt(squared_edt(mask)) * grid.resolution
    if r_max is not None:
        if r_max <= 0:
            raise MapError(f"r_max must be positive, got {r_max}")
        np.clip(dist, 0.0, float(r_max), out=dist)
    return dist


def brute_force_edt(obstacle_mask: np.ndarray) -> np.ndarray:
    """O(n²) reference EDT in cells, for testing the fast implementation.

    Only suitable for small grids; used by the unit and property tests as
    an independent oracle alongside ``scipy.ndimage``.
    """
    mask = np.asarray(obstacle_mask, dtype=bool)
    rows, cols = mask.shape
    obs_r, obs_c = np.nonzero(mask)
    if obs_r.size == 0:
        return np.full(mask.shape, np.sqrt(_INF))
    grid_r, grid_c = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    dr = grid_r[:, :, None] - obs_r[None, None, :]
    dc = grid_c[:, :, None] - obs_c[None, None, :]
    return np.sqrt(np.min(dr * dr + dc * dc, axis=2).astype(np.float64))
