"""Occupancy grids, distance fields and the evaluation maze worlds."""

from .builder import MapBuilder
from .distance_field import DistanceField, FieldKind
from .edt import brute_force_edt, euclidean_distance_field, squared_edt
from .maze import (
    ARTIFICIAL_MAZE_SIZE_M,
    MAIN_MAZE_SIZE_M,
    TOTAL_STRUCTURED_AREA_M2,
    DroneWorld,
    MazePlacement,
    build_drone_maze_world,
    generate_maze,
    main_drone_maze,
)
from .occupancy import PAPER_RESOLUTION, CellState, OccupancyGrid
from .planning import DEFAULT_CLEARANCE_M, clearance_map, plan_route, plan_tour

__all__ = [
    "MapBuilder",
    "DistanceField",
    "FieldKind",
    "brute_force_edt",
    "euclidean_distance_field",
    "squared_edt",
    "ARTIFICIAL_MAZE_SIZE_M",
    "MAIN_MAZE_SIZE_M",
    "TOTAL_STRUCTURED_AREA_M2",
    "DroneWorld",
    "MazePlacement",
    "build_drone_maze_world",
    "generate_maze",
    "main_drone_maze",
    "PAPER_RESOLUTION",
    "CellState",
    "OccupancyGrid",
    "DEFAULT_CLEARANCE_M",
    "clearance_map",
    "plan_route",
    "plan_tour",
]
