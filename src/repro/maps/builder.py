"""Rasterization of geometric primitives into occupancy grids.

The paper's map was acquired "by manually measuring the maze objects"
(Sec. IV-A): walls and boxes measured in metres, rasterized onto a 0.05 m
grid.  :class:`MapBuilder` mirrors that workflow — declare free regions,
wall segments and boxes in world coordinates, then :meth:`build` the grid.
"""

from __future__ import annotations

import numpy as np

from ..common.errors import MapError
from .occupancy import PAPER_RESOLUTION, CellState, OccupancyGrid

#: Default physical wall thickness in metres (one grid cell).
DEFAULT_WALL_THICKNESS = 0.05


class MapBuilder:
    """Accumulates primitives and rasterizes them into an :class:`OccupancyGrid`.

    Cells start as UNKNOWN.  Primitives are applied in call order, so a wall
    drawn after a free region overwrites it (walls win), which matches how
    a physical maze is assembled inside a room.
    """

    def __init__(
        self,
        width_m: float,
        height_m: float,
        resolution: float = PAPER_RESOLUTION,
        origin_x: float = 0.0,
        origin_y: float = 0.0,
    ) -> None:
        if width_m <= 0 or height_m <= 0:
            raise MapError(f"map extent must be positive, got {width_m} x {height_m}")
        if resolution <= 0:
            raise MapError(f"resolution must be positive, got {resolution}")
        self.resolution = float(resolution)
        self.origin_x = float(origin_x)
        self.origin_y = float(origin_y)
        self._cols = int(round(width_m / resolution))
        self._rows = int(round(height_m / resolution))
        self._cells = np.full((self._rows, self._cols), int(CellState.UNKNOWN), dtype=np.uint8)

    # ------------------------------------------------------------------
    # Coordinate helpers
    # ------------------------------------------------------------------
    def _cell_centers(self) -> tuple[np.ndarray, np.ndarray]:
        """World coordinates of all cell centers as ``(X, Y)`` meshgrids."""
        xs = self.origin_x + (np.arange(self._cols) + 0.5) * self.resolution
        ys = self.origin_y + (np.arange(self._rows) + 0.5) * self.resolution
        return np.meshgrid(xs, ys)

    def _clip_index_range(self, lo: float, hi: float, origin: float, count: int) -> tuple[int, int]:
        """Convert a world interval into a clipped half-open cell index range."""
        first = int(np.floor((lo - origin) / self.resolution))
        last = int(np.ceil((hi - origin) / self.resolution))
        return max(first, 0), min(last, count)

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def fill_rect(
        self, x0: float, y0: float, x1: float, y1: float, state: CellState = CellState.FREE
    ) -> "MapBuilder":
        """Set all cells whose centers lie in ``[x0, x1] x [y0, y1]`` to ``state``."""
        if x1 < x0 or y1 < y0:
            raise MapError(f"degenerate rectangle ({x0},{y0})-({x1},{y1})")
        col_lo, col_hi = self._clip_index_range(x0, x1, self.origin_x, self._cols)
        row_lo, row_hi = self._clip_index_range(y0, y1, self.origin_y, self._rows)
        self._cells[row_lo:row_hi, col_lo:col_hi] = int(state)
        return self

    def add_box(self, x0: float, y0: float, x1: float, y1: float) -> "MapBuilder":
        """Mark a solid rectangular obstacle as OCCUPIED."""
        return self.fill_rect(x0, y0, x1, y1, CellState.OCCUPIED)

    def add_wall(
        self,
        x0: float,
        y0: float,
        x1: float,
        y1: float,
        thickness: float = DEFAULT_WALL_THICKNESS,
    ) -> "MapBuilder":
        """Rasterize a wall segment of the given physical thickness.

        A cell becomes OCCUPIED when its center lies within ``thickness/2``
        of the segment.  The working window is the segment's bounding box
        expanded by the thickness, so long maps stay cheap to edit.
        """
        if thickness <= 0:
            raise MapError(f"wall thickness must be positive, got {thickness}")
        half = thickness / 2.0 + 1e-9
        margin = half + self.resolution
        col_lo, col_hi = self._clip_index_range(
            min(x0, x1) - margin, max(x0, x1) + margin, self.origin_x, self._cols
        )
        row_lo, row_hi = self._clip_index_range(
            min(y0, y1) - margin, max(y0, y1) + margin, self.origin_y, self._rows
        )
        if col_lo >= col_hi or row_lo >= row_hi:
            return self

        xs = self.origin_x + (np.arange(col_lo, col_hi) + 0.5) * self.resolution
        ys = self.origin_y + (np.arange(row_lo, row_hi) + 0.5) * self.resolution
        grid_x, grid_y = np.meshgrid(xs, ys)

        seg_dx = x1 - x0
        seg_dy = y1 - y0
        seg_len_sq = seg_dx * seg_dx + seg_dy * seg_dy
        if seg_len_sq == 0.0:
            dist = np.hypot(grid_x - x0, grid_y - y0)
        else:
            t = ((grid_x - x0) * seg_dx + (grid_y - y0) * seg_dy) / seg_len_sq
            t = np.clip(t, 0.0, 1.0)
            dist = np.hypot(grid_x - (x0 + t * seg_dx), grid_y - (y0 + t * seg_dy))

        window = self._cells[row_lo:row_hi, col_lo:col_hi]
        window[dist <= half] = int(CellState.OCCUPIED)
        return self

    def add_border(self, thickness: float = DEFAULT_WALL_THICKNESS) -> "MapBuilder":
        """Draw OCCUPIED walls along the full map perimeter."""
        x_max = self.origin_x + self._cols * self.resolution
        y_max = self.origin_y + self._rows * self.resolution
        self.add_wall(self.origin_x, self.origin_y, x_max, self.origin_y, thickness)
        self.add_wall(self.origin_x, y_max, x_max, y_max, thickness)
        self.add_wall(self.origin_x, self.origin_y, self.origin_x, y_max, thickness)
        self.add_wall(x_max, self.origin_y, x_max, y_max, thickness)
        return self

    def stamp(self, grid: OccupancyGrid, at_x: float, at_y: float) -> "MapBuilder":
        """Copy another grid's non-UNKNOWN cells into this map.

        ``(at_x, at_y)`` is the world position where the source grid's
        origin lands.  Both grids must share the same resolution.  Used to
        compose the combined evaluation map from individual mazes.
        """
        if not np.isclose(grid.resolution, self.resolution):
            raise MapError(
                f"resolution mismatch: builder {self.resolution} vs stamp {grid.resolution}"
            )
        col_off = int(round((at_x - self.origin_x) / self.resolution))
        row_off = int(round((at_y - self.origin_y) / self.resolution))
        if (
            row_off < 0
            or col_off < 0
            or row_off + grid.rows > self._rows
            or col_off + grid.cols > self._cols
        ):
            raise MapError("stamped grid does not fit inside the builder extent")
        target = self._cells[row_off : row_off + grid.rows, col_off : col_off + grid.cols]
        known = grid.cells != int(CellState.UNKNOWN)
        target[known] = grid.cells[known]
        return self

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def build(self) -> OccupancyGrid:
        """Return the rasterized occupancy grid (a copy; the builder stays usable)."""
        return OccupancyGrid(
            self._cells.copy(), self.resolution, self.origin_x, self.origin_y
        )
