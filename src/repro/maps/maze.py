"""The evaluation worlds: the "drone maze" and its artificial extensions.

The paper flies in a physical 4 m x 4 m "drone maze" (Fig. 5) inside a
16 m² mocap volume, and extends the localization map with **three artificial
mazes** to a total of **31.2 m² of structured area** — making global
localization genuinely ambiguous (Fig. 1 shows the estimate starting in the
wrong maze).

This module reproduces that setup:

* :func:`main_drone_maze` — a hand-crafted 4 m x 4 m maze with corridors,
  wall stubs and boxes, raster-measured onto the 0.05 m grid exactly like
  the paper's manually measured map;
* :func:`generate_maze` — recursive-backtracker procedural mazes used for
  the three artificial extensions (structurally distinct per seed);
* :func:`build_drone_maze_world` — the combined evaluation map
  (31.19 m² structured area at 0.05 m/cell) plus per-maze placement
  metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import MapError
from ..common.rng import make_rng
from .builder import MapBuilder
from .occupancy import PAPER_RESOLUTION, CellState, OccupancyGrid

#: Side length of the main physical maze in metres (16 m² mocap area).
MAIN_MAZE_SIZE_M = 4.0

#: Side length of each artificial maze in metres.
ARTIFICIAL_MAZE_SIZE_M = 2.25

#: Number of corridor cells per side of an artificial maze.
ARTIFICIAL_MAZE_CELLS = 5

#: Paper's total structured area: 16 + 3 * 5.0625 = 31.1875 ~= 31.2 m².
TOTAL_STRUCTURED_AREA_M2 = (
    MAIN_MAZE_SIZE_M**2 + 3 * ARTIFICIAL_MAZE_SIZE_M**2
)

#: Wall segments of the main maze: (x0, y0, x1, y1) in metres.
#: Horizontal shelf walls with staggered gaps create a serpentine corridor
#: system roughly 0.9 m wide, with short stubs and boxes adding structure.
MAIN_MAZE_WALLS: tuple[tuple[float, float, float, float], ...] = (
    # Horizontal walls with alternating gaps (gap positions in comments).
    (0.0, 1.0, 3.0, 1.0),  # gap at x in (3.0, 4.0)
    (1.0, 2.0, 4.0, 2.0),  # gap at x in (0.0, 1.0)
    (0.0, 3.0, 2.5, 3.0),  # first part; gap at x in (2.5, 3.2)
    (3.2, 3.0, 4.0, 3.0),  # second part
    # Vertical stubs breaking corridor symmetry.
    (2.0, 0.0, 2.0, 0.5),
    (1.2, 1.0, 1.2, 1.45),
    (2.8, 2.0, 2.8, 2.5),
    (1.6, 3.0, 1.6, 3.45),
)

#: Boxes (obstacles) of the main maze: (x0, y0, x1, y1) in metres.
MAIN_MAZE_BOXES: tuple[tuple[float, float, float, float], ...] = (
    (3.3, 0.25, 3.7, 0.6),
    (0.3, 2.3, 0.65, 2.65),
)


def main_drone_maze(resolution: float = PAPER_RESOLUTION) -> OccupancyGrid:
    """Build the 4 m x 4 m main drone maze at the given resolution.

    The returned grid has its origin at (0, 0); all interior non-wall cells
    are FREE.
    """
    builder = MapBuilder(MAIN_MAZE_SIZE_M, MAIN_MAZE_SIZE_M, resolution)
    builder.fill_rect(0.0, 0.0, MAIN_MAZE_SIZE_M, MAIN_MAZE_SIZE_M, CellState.FREE)
    builder.add_border()
    for x0, y0, x1, y1 in MAIN_MAZE_WALLS:
        builder.add_wall(x0, y0, x1, y1)
    for x0, y0, x1, y1 in MAIN_MAZE_BOXES:
        builder.add_box(x0, y0, x1, y1)
    return builder.build()


def _carve_passages(cells: int, rng: np.random.Generator) -> tuple[set, set]:
    """Run a recursive backtracker over a ``cells x cells`` lattice.

    Returns the sets of carved passages as frozenset cell-index pairs:
    ``(horizontal_open, vertical_open)`` where a horizontal passage opens
    the wall between ``(r, c)`` and ``(r, c+1)`` and a vertical one between
    ``(r, c)`` and ``(r+1, c)``.
    """
    visited = np.zeros((cells, cells), dtype=bool)
    horizontal_open: set[tuple[int, int]] = set()
    vertical_open: set[tuple[int, int]] = set()
    stack = [(0, 0)]
    visited[0, 0] = True
    while stack:
        row, col = stack[-1]
        neighbours = []
        if col + 1 < cells and not visited[row, col + 1]:
            neighbours.append((row, col + 1, "h", (row, col)))
        if col - 1 >= 0 and not visited[row, col - 1]:
            neighbours.append((row, col - 1, "h", (row, col - 1)))
        if row + 1 < cells and not visited[row + 1, col]:
            neighbours.append((row + 1, col, "v", (row, col)))
        if row - 1 >= 0 and not visited[row - 1, col]:
            neighbours.append((row - 1, col, "v", (row - 1, col)))
        if not neighbours:
            stack.pop()
            continue
        next_row, next_col, direction, wall_key = neighbours[rng.integers(len(neighbours))]
        if direction == "h":
            horizontal_open.add(wall_key)
        else:
            vertical_open.add(wall_key)
        visited[next_row, next_col] = True
        stack.append((next_row, next_col))
    return horizontal_open, vertical_open


def generate_maze(
    size_m: float = ARTIFICIAL_MAZE_SIZE_M,
    cells: int = ARTIFICIAL_MAZE_CELLS,
    seed: int = 0,
    resolution: float = PAPER_RESOLUTION,
    braid_fraction: float = 0.35,
) -> OccupancyGrid:
    """Generate a procedural maze grid with a recursive backtracker.

    Parameters
    ----------
    size_m:
        Physical side length of the maze.
    cells:
        Corridor cells per side; corridor pitch is ``size_m / cells``.
    seed:
        Layout seed — different seeds give structurally distinct mazes,
        which is what makes the combined map's global localization
        disambiguable.
    braid_fraction:
        Fraction of remaining interior walls knocked out after carving.
        A perfect maze (0.0) has many dead ends a drone cannot sensibly
        fly; braiding opens loops like the paper's corridor mazes.
    """
    if cells < 2:
        raise MapError(f"maze needs at least 2 cells per side, got {cells}")
    rng = make_rng(seed, "maze-layout")
    horizontal_open, vertical_open = _carve_passages(cells, rng)

    # Braiding: open a random subset of the still-closed interior walls.
    closed_h = [
        (r, c) for r in range(cells) for c in range(cells - 1)
        if (r, c) not in horizontal_open
    ]
    closed_v = [
        (r, c) for r in range(cells - 1) for c in range(cells)
        if (r, c) not in vertical_open
    ]
    for walls, opened in ((closed_h, horizontal_open), (closed_v, vertical_open)):
        knockouts = int(round(braid_fraction * len(walls)))
        if knockouts and walls:
            picks = rng.choice(len(walls), size=min(knockouts, len(walls)), replace=False)
            for pick in np.atleast_1d(picks):
                opened.add(walls[int(pick)])

    pitch = size_m / cells
    builder = MapBuilder(size_m, size_m, resolution)
    builder.fill_rect(0.0, 0.0, size_m, size_m, CellState.FREE)
    builder.add_border()
    # Walls between horizontally adjacent cells (vertical segments).
    for row in range(cells):
        for col in range(cells - 1):
            if (row, col) not in horizontal_open:
                x = (col + 1) * pitch
                builder.add_wall(x, row * pitch, x, (row + 1) * pitch)
    # Walls between vertically adjacent cells (horizontal segments).
    for row in range(cells - 1):
        for col in range(cells):
            if (row, col) not in vertical_open:
                y = (row + 1) * pitch
                builder.add_wall(col * pitch, y, (col + 1) * pitch, y)
    return builder.build()


@dataclass
class MazePlacement:
    """Where one maze sits inside the combined world."""

    name: str
    origin_x: float
    origin_y: float
    size_m: float

    def contains(self, x: float, y: float) -> bool:
        """True if the world point lies inside this maze's square."""
        return (
            self.origin_x <= x < self.origin_x + self.size_m
            and self.origin_y <= y < self.origin_y + self.size_m
        )


@dataclass
class DroneWorld:
    """The combined evaluation world (paper Sec. IV-A).

    ``grid`` is the full localization map; ``main`` is the physical maze
    the drone actually flies in; ``artificial`` are the three map-only
    extensions.  Space between mazes is UNKNOWN — the localizer never
    places mass there because particles are initialized over FREE cells.
    """

    grid: OccupancyGrid
    main: MazePlacement
    artificial: list[MazePlacement] = field(default_factory=list)

    @property
    def placements(self) -> list[MazePlacement]:
        """All mazes, main first."""
        return [self.main, *self.artificial]

    def maze_containing(self, x: float, y: float) -> MazePlacement | None:
        """Which maze (if any) contains a world point."""
        for placement in self.placements:
            if placement.contains(x, y):
                return placement
        return None


def build_drone_maze_world(
    seed: int = 7, resolution: float = PAPER_RESOLUTION
) -> DroneWorld:
    """Build the paper's combined evaluation map.

    Layout: the 4 m main maze in the lower-left, three artificial
    2.25 m mazes (distinct layout seeds derived from ``seed``) in the other
    quadrants, separated by UNKNOWN space.  Structured area is
    16 + 3 * 5.0625 = 31.19 m², the paper's 31.2 m² figure.
    """
    gap = 0.75
    world_size = MAIN_MAZE_SIZE_M + gap + ARTIFICIAL_MAZE_SIZE_M + 2 * gap
    builder = MapBuilder(world_size, world_size, resolution)

    main_origin = (gap, gap)
    art_x = gap + MAIN_MAZE_SIZE_M + gap
    art_positions = (
        (art_x, gap),  # right of the main maze
        (gap, gap + MAIN_MAZE_SIZE_M + gap),  # above the main maze
        (art_x, gap + MAIN_MAZE_SIZE_M + gap),  # diagonal
    )

    builder.stamp(main_drone_maze(resolution), *main_origin)
    artificial = []
    for index, (pos_x, pos_y) in enumerate(art_positions):
        maze = generate_maze(seed=seed * 101 + index, resolution=resolution)
        builder.stamp(maze, pos_x, pos_y)
        artificial.append(
            MazePlacement(f"artificial-{index}", pos_x, pos_y, ARTIFICIAL_MAZE_SIZE_M)
        )

    grid = builder.build()
    main = MazePlacement("main", main_origin[0], main_origin[1], MAIN_MAZE_SIZE_M)
    return DroneWorld(grid=grid, main=main, artificial=artificial)
