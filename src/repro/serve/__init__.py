"""Fleet serving: multiplexed online localization sessions.

This package turns the filter into a *service*: a
:class:`SessionManager` owns many concurrent :class:`FilterSession`s —
one per simulated drone, mixing scenarios, precision variants, particle
counts and seeds — and a deterministic :class:`StepScheduler` packs
their pending observation steps into shared ``(R, N)``-stacked backend
calls, so fleet throughput inherits the batched backend's small-N win
instead of paying one scalar filter loop per drone.

Sessions support create / step (submit + flush) / query / close plus
byte-stable snapshot / restore; every session's trace is **bitwise
identical** to the same (scenario, variant, N, seed) run stepped alone
through the reference backend.  See ``docs/serving.md``.

The network edge lives in :mod:`repro.serve.online`
(:class:`OnlineServer` / :class:`OnlineClient`, the asyncio gateway with
per-session ordering, coalesced ticking, admission control and
backpressure) over the wire protocol of :mod:`repro.serve.protocol`.
Live sessions move *between* servers through the drain/handoff verbs
and the fleet-level :class:`MigrationCoordinator` of
:mod:`repro.serve.migrate` — migration is bitwise-invisible to the
migrated session's trace.
"""

from .manager import FlushReport, SessionManager
from .migrate import MigrationCoordinator, Move, MoveResult, Peer
from .online import AdmissionPolicy, OnlineClient, OnlineServer
from .protocol import PROTOCOL_VERSION, ErrorCode, OnlineError, ProtocolError
from .scheduler import StepScheduler
from .session import (
    FilterSession,
    SessionResult,
    SessionSpec,
    SessionStatus,
    snapshot_from_bytes,
    snapshot_to_bytes,
)

__all__ = [
    "AdmissionPolicy",
    "ErrorCode",
    "FilterSession",
    "FlushReport",
    "MigrationCoordinator",
    "Move",
    "MoveResult",
    "OnlineClient",
    "OnlineError",
    "OnlineServer",
    "PROTOCOL_VERSION",
    "Peer",
    "ProtocolError",
    "SessionManager",
    "SessionResult",
    "SessionSpec",
    "SessionStatus",
    "StepScheduler",
    "snapshot_from_bytes",
    "snapshot_to_bytes",
]
