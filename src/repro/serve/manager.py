"""The session manager: the serving layer's one front door.

A :class:`SessionManager` owns many concurrent
:class:`~repro.serve.session.FilterSession`s — an arbitrary mix of
scenarios, filter configurations (config specs
``variant[+key=value...]``, so ablated and default-parameter filters
serve side by side), particle counts and seeds — and serves them
through a deterministic :class:`~repro.serve.scheduler.StepScheduler`
over shared stacked backend calls, cohorted by
``(config fingerprint, N)``.  The lifecycle verbs:

* :meth:`create` / :meth:`create_fleet` — open sessions (worlds and
  distance fields resolved through per-manager caches; replay plans
  shared per (scenario, gating signature));
* :meth:`submit` + :meth:`flush` — queue observation frames per session,
  then execute everything queued in packed scheduler ticks (the serving
  analogue of a request queue + batcher);
* :meth:`query` — live progress, estimate and metrics-so-far;
* :meth:`snapshot` / :meth:`restore` — byte-stable full-state
  serialization: a restored session continues **bit-for-bit**;
* :meth:`close` — retire a session, returning its trace + metrics.

Equivalence contract: a fully served session's trace and metrics are
bitwise identical to the same (scenario, variant, N, seed) executed
alone through the reference backend, regardless of fleet composition,
flush sizes, or backend choice (``tests/serve/``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..common.errors import ConfigurationError, EvaluationError
from ..core.config import MclConfig
from ..engine.backend import RunSpec
from ..engine.replay import ReplayPlan
from ..eval.metrics import AggregateMetrics
from ..eval.sweep_engine import DistanceFieldCache
from ..maps.distance_field import FieldKind
from ..scenarios.base import Scenario
from ..scenarios.fleet import FleetSpec
from ..scenarios.registry import build_scenario
from .scheduler import StepScheduler
from .session import (
    FilterSession,
    SessionResult,
    SessionSpec,
    SessionStatus,
    snapshot_from_bytes,
    snapshot_to_bytes,
)

#: Bounds on what a manager caches per distinct world: EDTs, loaded
#: scenarios, and replay plans (mirrors the sweep workers' bounded
#: caches — a serving process is long-lived by design, so every keyed
#: cache must evict).  Oldest insertion goes first; live sessions hold
#: their own references, so eviction only affects future creates.
_FIELD_CACHE_LIMIT = 32
_SCENARIO_CACHE_LIMIT = 32
_PLAN_CACHE_LIMIT = 64  # ~2 gating signatures per cached scenario


@dataclass
class FlushReport:
    """What one :meth:`SessionManager.flush` call did."""

    ticks: int
    frames: int
    updates: int


class SessionManager:
    """Multiplexes live localization sessions over one filter backend."""

    def __init__(
        self,
        backend: str = "batched",
        base_config: MclConfig | None = None,
        cache: bool = True,
    ) -> None:
        self.base_config = base_config or MclConfig()
        self.scheduler = StepScheduler(backend)
        self.cache = cache
        self._sessions: dict[str, FilterSession] = {}
        self._scenarios: dict[str, Scenario] = {}
        self._plans: dict[tuple, ReplayPlan] = {}
        self._field_cache = DistanceFieldCache(limit=_FIELD_CACHE_LIMIT)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sessions)

    def session_ids(self) -> list[str]:
        """Active session ids in scheduler (lexicographic) order."""
        return sorted(self._sessions)

    def _session(self, session_id: str) -> FilterSession:
        session = self._sessions.get(session_id)
        if session is None:
            raise EvaluationError(f"unknown session {session_id!r}")
        return session

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create(self, spec: SessionSpec) -> str:
        """Open one session; returns its id.

        Creation is transactional: if row initialization fails after the
        scheduler admitted the session, the row (and a cohort grown just
        for it) is evicted before the error propagates, leaving the
        manager exactly as if the call had never been made.
        """
        if spec.session_id in self._sessions:
            raise ConfigurationError(
                f"session {spec.session_id!r} already exists"
            )
        session = self._materialize(spec)
        self.scheduler.admit(session)
        try:
            stack = self.scheduler.stack(session)
            stack.init_row(
                session.row,
                session.scenario.grid,
                RunSpec(sequence=session.scenario.sequence, seed=spec.seed),
            )
        except BaseException:
            self.scheduler.evict(session)
            raise
        self._sessions[spec.session_id] = session
        return spec.session_id

    def create_fleet(self, fleet: "FleetSpec | str") -> list[str]:
        """Open one session per fleet declaration; returns their ids.

        Atomic: if any declaration fails, the sessions already created
        by this call are closed again before the error propagates —
        a fleet either comes up whole or not at all.  Sessions that
        existed before the call are never touched.
        """
        if isinstance(fleet, str):
            fleet = FleetSpec.parse(fleet)
        created: list[str] = []
        try:
            for decl in fleet.declarations():
                created.append(self.create(SessionSpec.from_declaration(decl)))
        except BaseException:
            for session_id in reversed(created):
                self.close(session_id)
            raise
        return created

    def close(self, session_id: str) -> SessionResult:
        """Retire a session, returning the trace served so far."""
        session = self._session(session_id)
        stack = self.scheduler.stack(session)
        result = SessionResult(
            spec=session.spec,
            trace=session.trace(stack.updates(session.row)),
            metrics=session.metrics(),
        )
        self.scheduler.evict(session)
        del self._sessions[session_id]
        return result

    def discard(self, session_id: str) -> None:
        """Drop a session without building its result.

        The migration commit path: once the target has accepted the
        snapshot, the source copy is forgotten — its trace travelled
        inside the blob, so nothing is lost.
        """
        session = self._session(session_id)
        self.scheduler.evict(session)
        del self._sessions[session_id]

    def _materialize(self, spec: SessionSpec) -> FilterSession:
        """Resolve a spec's world, config, field and replay plan."""
        scenario = self._scenarios.get(spec.scenario)
        if scenario is None:
            obs.counter("serve.scenario_cache.misses").inc()
            scenario = build_scenario(spec.scenario, cache=self.cache)
            while len(self._scenarios) >= _SCENARIO_CACHE_LIMIT:
                self._scenarios.pop(next(iter(self._scenarios)))
            self._scenarios[spec.scenario] = scenario
        else:
            obs.counter("serve.scenario_cache.hits").inc()
        config = spec.config(self.base_config)
        field = self._field_cache.get(
            scenario.grid, config.r_max, FieldKind.for_mode(config.precision)
        )
        plan_key = (spec.scenario, ReplayPlan.signature(config))
        plan = self._plans.get(plan_key)
        if plan is None:
            obs.counter("serve.plan_cache.misses").inc()
            plan = ReplayPlan(scenario.sequence, config)
            while len(self._plans) >= _PLAN_CACHE_LIMIT:
                self._plans.pop(next(iter(self._plans)))
            self._plans[plan_key] = plan
        else:
            obs.counter("serve.plan_cache.hits").inc()
        return FilterSession(spec, scenario, config, plan, field)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def submit(self, session_id: str, frames: int = 1) -> int:
        """Queue up to ``frames`` observation frames for one session.

        Queues never extend past the session's sequence; returns how
        many frames are now queued.
        """
        if frames < 0:
            raise ConfigurationError(f"frames must be >= 0, got {frames}")
        session = self._session(session_id)
        if session.draining:
            raise EvaluationError(
                f"session {session_id!r} is draining (migration in "
                "flight); new frames are not admitted"
            )
        session.queued = min(session.queued + frames, session.remaining)
        return session.queued

    def submit_all(self, frames: int = 1) -> None:
        """Queue ``frames`` for every active, unfinished, non-draining
        session."""
        for session_id in self.session_ids():
            if not self._sessions[session_id].draining:
                self.submit(session_id, frames)

    def queued(self, session_id: str) -> int:
        """Frames currently queued (accepted, unserved) for one session."""
        return self._session(session_id).queued

    def pending_frames(self) -> int:
        """Total frames queued across all sessions (the ingest backlog)."""
        return sum(session.queued for session in self._sessions.values())

    def servable_frames(self) -> int:
        """Queued frames :meth:`flush` is allowed to serve right now —
        the backlog minus frozen (draining) sessions' queues."""
        return sum(
            session.queued
            for session in self._sessions.values()
            if not session.draining
        )

    # ------------------------------------------------------------------
    # Drain / resume (the migration freeze)
    # ------------------------------------------------------------------
    def drain(self, session_id: str) -> int:
        """Freeze one session for handoff; returns its queued backlog.

        A draining session admits no new frames (:meth:`submit` raises)
        and is skipped by :meth:`flush`, so its filter state holds at the
        current frame boundary and its queued count stays exactly what
        the migration ships.  Idempotent.
        """
        session = self._session(session_id)
        session.draining = True
        return session.queued

    def resume(self, session_id: str) -> int:
        """Unfreeze a drained session (migration rollback); returns its
        queued backlog, which is servable again.  Idempotent."""
        session = self._session(session_id)
        session.draining = False
        return session.queued

    def is_draining(self, session_id: str) -> bool:
        return self._session(session_id).draining

    def flush(self, max_ticks: int | None = None) -> FlushReport:
        """Serve queued frames in packed scheduler ticks.

        Each tick advances every session with queued work by one frame;
        ticks repeat until all queues drain (or ``max_ticks`` ticks ran
        — the online server serves tick-by-tick so new submissions can
        coalesce into the next packed call).  Sessions at different
        replay positions and of different cohorts interleave freely —
        packing is the scheduler's deterministic function of ids.
        """
        ticks = frames = updates = 0
        while max_ticks is None or ticks < max_ticks:
            pending = [
                s
                for s in self._sessions.values()
                if s.queued > 0 and not s.draining
            ]
            if not pending:
                break
            updates += self.scheduler.tick(pending)
            for session in pending:
                session.queued -= 1
            frames += len(pending)
            ticks += 1
        return FlushReport(ticks=ticks, frames=frames, updates=updates)

    def run_to_completion(self, frames_per_flush: int = 16) -> int:
        """Serve every session to the end of its sequence.

        Frames are queued in ``frames_per_flush`` slices (as a real
        ingest loop would) purely for pacing — slicing cannot change
        results.  Returns the total number of frames served.
        """
        if frames_per_flush < 1:
            raise ConfigurationError(
                f"frames_per_flush must be >= 1, got {frames_per_flush}"
            )
        total = 0
        while any(
            not s.done and not s.draining for s in self._sessions.values()
        ):
            self.submit_all(frames_per_flush)
            total += self.flush().frames
        return total

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, session_id: str) -> SessionStatus:
        """Progress, live estimate and metrics-so-far of one session."""
        session = self._session(session_id)
        stack = self.scheduler.stack(session)
        return SessionStatus(
            session_id=session.spec.session_id,
            scenario=session.spec.scenario,
            variant=session.spec.variant,
            particle_count=session.spec.particle_count,
            seed=session.spec.seed,
            cursor=session.cursor,
            frames_total=session.frames_total,
            queued=session.queued,
            update_count=stack.updates(session.row),
            done=session.done,
            estimate=stack.estimate(session.row),
            metrics=session.metrics(),
        )

    def cohort_occupancy(self) -> dict[tuple[str, int], dict]:
        """Scheduler row usage per ``(fingerprint, N)`` cohort, plus the
        session ids packed into each — the placement-policy view (and
        what the ``stats`` verb publishes), so callers can assert packing
        without reaching into scheduler internals."""
        occupancy: dict[tuple[str, int], dict] = {
            key: dict(entry, sessions=[])
            for key, entry in self.scheduler.occupancy().items()
        }
        for session_id in self.session_ids():
            cohort_key = self._sessions[session_id].cohort_key
            occupancy[cohort_key]["sessions"].append(session_id)
        return occupancy

    def fleet_metrics(self) -> AggregateMetrics:
        """Aggregate metrics over every active session with frames served."""
        aggregate = AggregateMetrics()
        for session_id in self.session_ids():
            metrics = self._sessions[session_id].metrics()
            if metrics is not None:
                aggregate.add(metrics)
        return aggregate

    # ------------------------------------------------------------------
    # Snapshot / restore (migration and exact replay)
    # ------------------------------------------------------------------
    def snapshot(self, session_id: str) -> bytes:
        """Serialize one session completely (byte-stable)."""
        session = self._session(session_id)
        stack = self.scheduler.stack(session)
        return snapshot_to_bytes(session, stack.export_row(session.row))

    def restore(self, data: bytes, session_id: str | None = None) -> str:
        """Recreate a session from snapshot bytes; returns its id.

        The restored session continues bit-for-bit: filter state, RNG
        position, cursor and trace all resume exactly.  ``session_id``
        optionally renames it (results are id-independent).
        """
        spec, cursor, state, trace = snapshot_from_bytes(data, session_id)
        if spec.session_id in self._sessions:
            raise ConfigurationError(
                f"session {spec.session_id!r} already exists"
            )
        session = self._materialize(spec)
        if cursor > session.plan.length:
            raise EvaluationError(
                f"snapshot cursor {cursor} exceeds sequence length "
                f"{session.plan.length} — scenario definition drifted"
            )
        self.scheduler.admit(session)
        try:
            self.scheduler.stack(session).import_row(session.row, state)
        except BaseException:
            # Same transactionality as create: a snapshot that fails to
            # import (dtype/shape drift, truncated state) must not leak
            # the admitted scheduler row or its grown cohort stack.
            self.scheduler.evict(session)
            raise
        session.cursor = cursor
        session.timestamps = [float(t) for t in trace["trace_timestamps"]]
        session.position_errors = [
            float(v) for v in trace["trace_position_errors"]
        ]
        session.yaw_errors = [float(v) for v in trace["trace_yaw_errors"]]
        session.estimate_rows = list(trace["trace_estimates"])
        self._sessions[spec.session_id] = session
        return spec.session_id
