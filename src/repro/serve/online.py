"""The online gateway: an asyncio network edge over ``SessionManager``.

:class:`OnlineServer` turns the in-process serving library into a
long-lived network service speaking the length-prefixed JSON protocol of
:mod:`repro.serve.protocol` (create / create_fleet / submit / flush /
query / snapshot / restore / close / stats).  Three properties define
the server, each load-bearing for the "millions of users" axis:

**Per-session request ordering.**  All state mutation happens on one
event loop — there are no threads — and each connection's requests are
processed strictly in arrival order.  A session's verbs therefore apply
in the order its client sent them; interleaving across *different*
sessions is unconstrained (and is where the throughput comes from).

**Coalesced ticking.**  ``submit`` only *queues* frames; a single
background step task drains all queues through
``SessionManager.flush(max_ticks=1)``, yielding to the event loop
between ticks.  Frames submitted by any number of connections while a
tick executes coalesce into the *next* packed tick, so the scheduler's
``(fingerprint, N)`` cohort batching — the ~4x multiplexing win —
survives heavy mixed traffic instead of degrading to one tiny stacked
call per request.  ``flush`` (and ``submit`` with ``wait=true``) is a
barrier: it resolves once the named sessions' queues are empty.

**Admission control and backpressure.**  ``max_sessions`` bounds live
sessions (``create`` / ``create_fleet`` / ``restore`` beyond it are
rejected with the structured code ``admission_rejected``; a fleet is
admitted whole or not at all).  ``max_pending_frames`` bounds the
accepted-but-unserved ingest backlog: submissions that would exceed it
are rejected with ``overloaded`` and the client retries after draining —
the server's memory and tick latency stay bounded no matter how fast
clients push.  Below both sits transport backpressure: frames are read
one at a time per connection and responses are written with ``drain()``.

**Live migration.**  A session can move between servers without its
client observing anything but a short blackout: ``drain`` freezes a
session at its current frame boundary (new submissions answer the
structured code ``draining``; its queued backlog is held, not served),
``migrate`` ships the byte-stable snapshot plus the frozen queue count
to a peer server's ``accept`` verb (admission-checked, cohort-aware —
the restored session joins the target's ``(fingerprint, N)`` cohort
stack), and on success the source forgets its copy.  If the target
rejects the handoff or dies mid-``accept``, the source rolls back —
``resume`` unfreezes the session and it keeps serving locally, so a
failed migration is invisible in the trace.  Fleet-level policy
(evict-by-load, rebalance-to-cohort) lives in
:class:`repro.serve.migrate.MigrationCoordinator`.

Everything served through the socket keeps the serve layer's bitwise
contract: a session's trace returned by ``close`` decodes to arrays
bit-for-bit identical to the same (scenario, variant, N, seed) executed
alone through the reference backend (asserted end-to-end in
``tests/serve/test_online.py`` and ``benchmarks/bench_serve_online.py``);
a *migrated* session's trace is byte-identical to its uninterrupted solo
run, including under injected handoff faults
(``tests/serve/test_migration.py``, ``tests/serve/test_migration_chaos.py``,
``benchmarks/bench_migrate.py``).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from .. import obs
from ..common.errors import ConfigurationError, EvaluationError, ReproError
from ..core.config import MclConfig
from ..engine.backend import RunTrace
from ..eval.metrics import RunMetrics
from ..scenarios.fleet import FleetSpec
from .manager import SessionManager
from .protocol import (
    PROTOCOL_VERSION,
    ErrorCode,
    OnlineError,
    ProtocolError,
    blob_from_json,
    blob_to_json,
    parse_address,
    read_frame,
    trace_from_json,
    trace_to_json,
    write_frame,
)
from .session import SessionSpec, SessionStatus


@dataclass(frozen=True)
class AdmissionPolicy:
    """What the gateway lets in before structured rejection kicks in."""

    #: Live-session cap; ``create``/``create_fleet``/``restore`` past it
    #: answer ``admission_rejected``.
    max_sessions: int = 1024
    #: Cap on frames accepted but not yet served (the ingest backlog);
    #: ``submit`` past it answers ``overloaded``.
    max_pending_frames: int = 65536

    def __post_init__(self) -> None:
        if self.max_sessions < 1:
            raise ConfigurationError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        if self.max_pending_frames < 1:
            raise ConfigurationError(
                "max_pending_frames must be >= 1, got "
                f"{self.max_pending_frames}"
            )


def _metrics_to_json(metrics: RunMetrics | None) -> dict | None:
    if metrics is None:
        return None
    return {
        "converged": bool(metrics.converged),
        "convergence_time_s": (
            None
            if metrics.convergence_time_s is None
            else float(metrics.convergence_time_s)
        ),
        "success": bool(metrics.success),
        "ate_mean_m": float(metrics.ate_mean_m),
        "ate_rmse_m": float(metrics.ate_rmse_m),
        "ate_max_m": float(metrics.ate_max_m),
        "yaw_mean_rad": float(metrics.yaw_mean_rad),
    }


def _status_to_json(status: SessionStatus) -> dict:
    return {
        "session_id": status.session_id,
        "scenario": status.scenario,
        "variant": status.variant,
        "particle_count": status.particle_count,
        "seed": status.seed,
        "cursor": status.cursor,
        "frames_total": status.frames_total,
        "queued": status.queued,
        "update_count": status.update_count,
        "done": status.done,
        "estimate": [status.estimate.x, status.estimate.y, status.estimate.theta],
        "metrics": _metrics_to_json(status.metrics),
    }


class OnlineServer:
    """Asyncio session gateway; one instance owns one ``SessionManager``."""

    def __init__(
        self,
        backend: str = "batched",
        base_config: MclConfig | None = None,
        policy: AdmissionPolicy | None = None,
        manager: SessionManager | None = None,
        peers: "list[tuple[str, int] | str] | None" = None,
        handoff_timeout_s: float = 10.0,
    ) -> None:
        self.manager = manager or SessionManager(
            backend=backend, base_config=base_config
        )
        self.policy = policy or AdmissionPolicy()
        #: Known peer servers; the ``migrate`` verb accepts ``"peer": i``
        #: as an index into this list instead of an explicit address.
        self.peers: list[tuple[str, int]] = [
            parse_address(peer) if isinstance(peer, str) else (peer[0], int(peer[1]))
            for peer in (peers or [])
        ]
        #: Cap on each network leg of one handoff (connect, accept
        #: round-trip); an unresponsive target rolls the migration back.
        self.handoff_timeout_s = handoff_timeout_s
        self._server: asyncio.AbstractServer | None = None
        self._step_task: asyncio.Task | None = None
        self._work = asyncio.Event()
        self._tick_waiters: list[asyncio.Future] = []
        self._migrating: set[str] = set()
        # Per-server telemetry registry (always on — these counters
        # predate the obs subsystem and the `stats` verb's wire format
        # is pinned by tests).  A private registry, not the process
        # global one, so several servers in one process never cross-talk.
        self.obs = obs.LocalObs()
        for key in self._STAT_KEYS:
            self.obs.counter("serve." + key)

    #: The legacy ``stats`` dict keys, in their historical order; the
    #: ``stats`` verb's wire format is the flat projection of these.
    _STAT_KEYS = (
        "ticks",
        "frames_served",
        "updates",
        "connections",
        "requests",
        "rejected_admission",
        "rejected_overload",
        "protocol_errors",
        "drains",
        "migrations_out",
        "migrations_in",
        "migrations_failed",
    )

    @property
    def stats(self) -> dict:
        """The legacy counter view, now a projection of the obs registry.

        Same keys, same int values as the ad-hoc dict this replaced —
        callers (benchmarks, the ``stats`` verb) are unchanged.
        """
        return {
            key: int(self.obs.counter("serve." + key).value)
            for key in self._STAT_KEYS
        }

    def _count(self, key: str, amount: int = 1) -> None:
        self.obs.counter("serve." + key).inc(amount)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start serving; ``port=0`` picks a free port."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port
        )
        self._step_task = asyncio.ensure_future(self._step_loop())

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — useful with ``port=0``."""
        if self._server is None or not self._server.sockets:
            raise EvaluationError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        if self._server is None:
            raise EvaluationError("server is not started")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, cancel the step loop, release waiters."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._step_task is not None:
            self._step_task.cancel()
            try:
                await self._step_task
            except asyncio.CancelledError:
                pass
            self._step_task = None
        self._resolve_tick_waiters()

    async def __aenter__(self) -> "OnlineServer":
        if self._server is None:
            await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # The step loop (coalesced ticking)
    # ------------------------------------------------------------------
    async def _step_loop(self) -> None:
        while True:
            await self._work.wait()
            self._work.clear()
            # Draining sessions' frozen queues are excluded: they are
            # not servable here, so looping on them would busy-spin.
            while self.manager.servable_frames() > 0:
                report = self.manager.flush(max_ticks=1)
                self._count("ticks", report.ticks)
                self._count("frames_served", report.frames)
                self._count("updates", report.updates)
                # Tick packing efficiency (frames coalesced per packed
                # tick) and the post-tick ingest backlog.
                if report.ticks:
                    self.obs.histogram(
                        "serve.tick.frames", obs.COUNT_BOUNDS
                    ).observe(report.frames)
                self.obs.gauge("serve.queue_depth").set(
                    self.manager.pending_frames()
                )
                self._resolve_tick_waiters()
                # Yield so connections can ingest new submissions; those
                # frames join the *next* packed tick.
                await asyncio.sleep(0)
            self._resolve_tick_waiters()

    def _resolve_tick_waiters(self) -> None:
        waiters, self._tick_waiters = self._tick_waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    def _kick(self) -> None:
        self._work.set()

    async def _wait_drained(self, session_ids: list[str]) -> None:
        """Resolve when every named session's queue is empty.

        Sessions that are draining (or have migrated away) count as
        drained: their frozen frames will be served by the target server
        after handoff, and waiting on them here would deadlock the
        barrier against the migration.
        """

        def pending() -> bool:
            return any(
                sid in self.manager._sessions
                and self.manager._sessions[sid].queued > 0
                and not self.manager._sessions[sid].draining
                for sid in session_ids
            )

        while pending():
            waiter: asyncio.Future = asyncio.get_running_loop().create_future()
            self._tick_waiters.append(waiter)
            await waiter

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._count("connections")
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    # Framing is broken — answer once and hang up; the
                    # sessions this connection touched are server-side
                    # state and keep serving.
                    self._count("protocol_errors")
                    await self._safe_error(
                        writer, ErrorCode.BAD_REQUEST, str(exc)
                    )
                    break
                if request is None:
                    break  # clean EOF (or reset) — sessions live on
                response = await self._dispatch(request)
                try:
                    await write_frame(writer, response)
                except (ConnectionResetError, BrokenPipeError):
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _safe_error(
        self, writer: asyncio.StreamWriter, code: str, message: str
    ) -> None:
        try:
            await write_frame(
                writer,
                {"ok": False, "error": {"code": code, "message": message}},
            )
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _dispatch(self, request: dict) -> dict:
        self._count("requests")
        op = request.get("op")
        handler = self._HANDLERS.get(op)
        if handler is None:
            return _error(
                ErrorCode.BAD_REQUEST,
                f"unknown op {op!r}; expected one of: "
                + ", ".join(sorted(self._HANDLERS)),
            )
        version = request.get("v", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            return _error(
                ErrorCode.BAD_REQUEST,
                f"protocol version {version!r} is not supported "
                f"(server speaks {PROTOCOL_VERSION})",
            )
        # Per-verb latency: a span (count/total/min/max) plus a fixed-
        # bound histogram, both under the same name.  The span measures
        # the full handler, error paths included — rejections are real
        # latency a client observed.
        span = self.obs.span("serve.verb." + op)
        with span:
            try:
                response = await handler(self, request)
            except _Rejection as exc:
                response = _error(exc.code, str(exc))
            except ConfigurationError as exc:
                response = _error(ErrorCode.CONFIGURATION, str(exc))
            except EvaluationError as exc:
                response = _error(ErrorCode.EVALUATION, str(exc))
            except ReproError as exc:
                response = _error(ErrorCode.BAD_REQUEST, str(exc))
            except Exception as exc:  # noqa: BLE001 — one request, not the server
                response = _error(
                    ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"
                )
        self.obs.histogram("serve.verb." + op).observe(span.elapsed_s)
        return response

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _admit_sessions(self, new_sessions: int) -> None:
        if len(self.manager) + new_sessions > self.policy.max_sessions:
            self._count("rejected_admission")
            raise _Rejection(
                ErrorCode.ADMISSION_REJECTED,
                f"admitting {new_sessions} session(s) would exceed the "
                f"cap of {self.policy.max_sessions} "
                f"({len(self.manager)} live)",
            )

    def _admit_frames(self, new_frames: int) -> None:
        backlog = self.manager.pending_frames()
        if backlog + new_frames > self.policy.max_pending_frames:
            self._count("rejected_overload")
            raise _Rejection(
                ErrorCode.OVERLOADED,
                f"submitting {new_frames} frame(s) would exceed the "
                f"ingest bound of {self.policy.max_pending_frames} "
                f"({backlog} queued); drain with flush and retry",
            )

    # ------------------------------------------------------------------
    # Op handlers
    # ------------------------------------------------------------------
    async def _op_create(self, request: dict) -> dict:
        spec = SessionSpec(
            session_id=_require(request, "session_id", str),
            scenario=_require(request, "scenario", str),
            variant=request.get("variant", "fp32"),
            particle_count=request.get("particle_count", 64),
            seed=request.get("seed", 0),
        )
        self._admit_sessions(1)
        return _ok(session_id=self.manager.create(spec))

    async def _op_create_fleet(self, request: dict) -> dict:
        fleet = FleetSpec.parse(_require(request, "fleet", str))
        self._admit_sessions(len(fleet))
        return _ok(session_ids=self.manager.create_fleet(fleet))

    async def _op_submit(self, request: dict) -> dict:
        session_ids = _session_list(request)
        frames = request.get("frames", 1)
        if not isinstance(frames, int) or frames < 0:
            raise _Rejection(
                ErrorCode.BAD_REQUEST, f"frames must be an int >= 0, got {frames!r}"
            )
        for sid in session_ids:  # validate before mutating anything
            self.manager._session(sid)
            if self.manager.is_draining(sid):
                raise _Rejection(
                    ErrorCode.DRAINING,
                    f"session {sid!r} is draining (migration in flight); "
                    "retry after the handoff settles",
                )
        self._admit_frames(frames * len(session_ids))
        queued = {sid: self.manager.submit(sid, frames) for sid in session_ids}
        self._kick()
        if request.get("wait", False):
            await self._wait_drained(session_ids)
        return _ok(queued=queued, pending=self.manager.pending_frames())

    async def _op_flush(self, request: dict) -> dict:
        session_ids = (
            _session_list(request)
            if ("session" in request or "sessions" in request)
            else self.manager.session_ids()
        )
        self._kick()
        await self._wait_drained(session_ids)
        return _ok(
            ticks=int(self.obs.counter("serve.ticks").value),
            frames_served=int(self.obs.counter("serve.frames_served").value),
            pending=self.manager.pending_frames(),
        )

    async def _op_query(self, request: dict) -> dict:
        status = self.manager.query(_require(request, "session", str))
        return _ok(status=_status_to_json(status))

    async def _op_snapshot(self, request: dict) -> dict:
        session_id = _require(request, "session", str)
        self._guard_migrating(session_id)
        blob = self.manager.snapshot(session_id)
        return _ok(snapshot=blob_to_json(blob))

    async def _op_restore(self, request: dict) -> dict:
        blob = blob_from_json(_require(request, "snapshot", str))
        session_id = request.get("session_id")
        self._admit_sessions(1)
        return _ok(session_id=self.manager.restore(blob, session_id))

    async def _op_close(self, request: dict) -> dict:
        session_id = _require(request, "session", str)
        self._guard_migrating(session_id)
        result = self.manager.close(session_id)
        return _ok(
            session_id=result.spec.session_id,
            scenario=result.spec.scenario,
            variant=result.spec.variant,
            particle_count=result.spec.particle_count,
            seed=result.spec.seed,
            trace=trace_to_json(result.trace),
            metrics=_metrics_to_json(result.metrics),
        )

    async def _op_stats(self, _request: dict) -> dict:
        return _ok(
            protocol=PROTOCOL_VERSION,
            sessions=len(self.manager),
            pending_frames=self.manager.pending_frames(),
            cohorts=self.manager.scheduler.cohort_count(),
            cohort_occupancy={
                f"{fingerprint}/{particles}": entry
                for (fingerprint, particles), entry in sorted(
                    self.manager.cohort_occupancy().items()
                )
            },
            peers=[f"{host}:{port}" for host, port in self.peers],
            max_sessions=self.policy.max_sessions,
            max_pending_frames=self.policy.max_pending_frames,
            **self.stats,
        )

    async def _op_metrics(self, request: dict) -> dict:
        """Full telemetry snapshot: this server's registry merged over
        the process-global one (engine/sweep instrumentation, when
        enabled).  ``format="prom"`` returns the Prometheus text
        exposition instead of the canonical JSON sections."""
        fmt = request.get("format", "json")
        snap = obs.merge_snapshots(obs.snapshot(), self.obs.snapshot())
        if fmt == "prom":
            return _ok(format="prom", exposition=obs.render_prometheus(snap))
        if fmt != "json":
            raise _Rejection(
                ErrorCode.BAD_REQUEST,
                f"unknown metrics format {fmt!r}; expected 'json' or 'prom'",
            )
        return _ok(format="json", metrics=snap)

    # ------------------------------------------------------------------
    # Migration (drain / handoff / rollback)
    # ------------------------------------------------------------------
    def _guard_migrating(self, session_id: str) -> None:
        """Reject state-changing verbs racing an in-flight handoff."""
        if session_id in self._migrating:
            raise _Rejection(
                ErrorCode.DRAINING,
                f"session {session_id!r} has a migration in flight; "
                "retry after it settles",
            )

    def _resolve_target(self, request: dict) -> tuple[str, int]:
        if "target" in request:
            return parse_address(_require(request, "target", str))
        peer = request.get("peer")
        if isinstance(peer, int) and 0 <= peer < len(self.peers):
            return self.peers[peer]
        raise _Rejection(
            ErrorCode.BAD_REQUEST,
            "migrate needs 'target' (\"host:port\") or 'peer' (an index "
            f"into the {len(self.peers)} configured peer(s)), got "
            f"peer={peer!r}",
        )

    async def _op_drain(self, request: dict) -> dict:
        session_id = _require(request, "session", str)
        self._guard_migrating(session_id)
        queued = self.manager.drain(session_id)
        self._count("drains")
        return _ok(
            session_id=session_id,
            draining=True,
            queued=queued,
            cursor=self.manager._session(session_id).cursor,
        )

    async def _op_resume(self, request: dict) -> dict:
        session_id = _require(request, "session", str)
        self._guard_migrating(session_id)
        queued = self.manager.resume(session_id)
        self._kick()  # the frozen backlog is servable again
        return _ok(session_id=session_id, draining=False, queued=queued)

    async def _op_accept(self, request: dict) -> dict:
        """Target side of a handoff: restore the blob, requeue frames.

        Exactly the admission rules of ``create`` + ``submit`` apply —
        a target at capacity answers ``admission_rejected`` and the
        source rolls back.  The restored session joins this manager's
        ``(fingerprint, N)`` cohort stack, so rebalancing preserves the
        batching win by construction.
        """
        blob = blob_from_json(_require(request, "snapshot", str))
        queued = request.get("queued", 0)
        if not isinstance(queued, int) or queued < 0:
            raise _Rejection(
                ErrorCode.BAD_REQUEST,
                f"queued must be an int >= 0, got {queued!r}",
            )
        self._admit_sessions(1)
        self._admit_frames(queued)
        with self.obs.span("serve.migrate.accept"):
            session_id = self.manager.restore(blob, request.get("session_id"))
            if queued:
                self.manager.submit(session_id, queued)
                self._kick()
        self._count("migrations_in")
        obs.event("serve.migrate.in", session=session_id, queued=queued)
        return _ok(
            session_id=session_id, queued=self.manager.queued(session_id)
        )

    async def _op_migrate(self, request: dict) -> dict:
        """Source side of a handoff: drain, ship, redirect — or roll back.

        The session is frozen at its current frame boundary, its
        snapshot plus frozen queue count shipped to the target's
        ``accept``.  Only a positive acknowledgement commits (the source
        forgets its copy); *any* other outcome — structured rejection,
        connection refused, target dying mid-``accept``, timeout — rolls
        back, leaving the session serving here exactly as if the call
        had never been made.  An ambiguous outcome (timeout after the
        accept frame was sent) also rolls back: the source stays
        authoritative, and a duplicate on the target is harmless because
        traces are deterministic — close it.
        """
        session_id = _require(request, "session", str)
        session = self.manager._session(session_id)
        host, port = self._resolve_target(request)
        self._guard_migrating(session_id)
        self._migrating.add(session_id)
        try:
            # The source-side blackout span covers drain through commit
            # (or rollback) — the window in which this server will not
            # admit frames for the session.
            with self.obs.span("serve.migrate.blackout"):
                with self.obs.span("serve.migrate.drain"):
                    queued = self.manager.drain(session_id)
                    self._count("drains")
                    cursor = session.cursor
                    blob = self.manager.snapshot(session_id)
                handoff = self.obs.span("serve.migrate.handoff")
                try:
                    with handoff:
                        reader, writer = await asyncio.wait_for(
                            asyncio.open_connection(host, port),
                            timeout=self.handoff_timeout_s,
                        )
                        client = OnlineClient(reader, writer)
                        try:
                            response = await asyncio.wait_for(
                                client.request(
                                    "accept",
                                    snapshot=blob_to_json(blob),
                                    queued=queued,
                                    session_id=session_id,
                                ),
                                timeout=self.handoff_timeout_s,
                            )
                        finally:
                            await client.close()
                except OnlineError as exc:
                    self._rollback(session_id)
                    raise _Rejection(
                        ErrorCode.MIGRATION_FAILED,
                        f"target {host}:{port} rejected the handoff "
                        f"([{exc.code}] {exc}); session {session_id!r} "
                        "rolled back and keeps serving here",
                    )
                except (ProtocolError, OSError, asyncio.TimeoutError) as exc:
                    self._rollback(session_id)
                    raise _Rejection(
                        ErrorCode.MIGRATION_FAILED,
                        f"target {host}:{port} died mid-handoff "
                        f"({type(exc).__name__}: {exc}); session "
                        f"{session_id!r} rolled back and keeps serving here",
                    )
                # Committed on the target: forget the source copy and
                # wake any barrier waiting on this session's (now
                # remote) queue.
                self.manager.discard(session_id)
                self._kick()
                self._count("migrations_out")
            obs.event(
                "serve.migrate.out",
                session=session_id,
                target=f"{host}:{port}",
                queued=queued,
            )
            return _ok(
                session_id=response.get("session_id", session_id),
                target=f"{host}:{port}",
                cursor=cursor,
                queued=queued,
            )
        finally:
            self._migrating.discard(session_id)

    def _rollback(self, session_id: str) -> None:
        self._count("migrations_failed")
        obs.event("serve.migrate.rollback", session=session_id)
        self.manager.resume(session_id)
        self._kick()

    _HANDLERS = {
        "create": _op_create,
        "create_fleet": _op_create_fleet,
        "submit": _op_submit,
        "flush": _op_flush,
        "query": _op_query,
        "snapshot": _op_snapshot,
        "restore": _op_restore,
        "close": _op_close,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "drain": _op_drain,
        "resume": _op_resume,
        "migrate": _op_migrate,
        "accept": _op_accept,
    }


class _Rejection(ReproError):
    """Internal: a structured rejection with a protocol error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def _ok(**fields) -> dict:
    return {"ok": True, **fields}


def _error(code: str, message: str) -> dict:
    return {"ok": False, "error": {"code": code, "message": message}}


def _require(request: dict, key: str, kind: type) -> object:
    value = request.get(key)
    if not isinstance(value, kind):
        raise _Rejection(
            ErrorCode.BAD_REQUEST,
            f"request field {key!r} must be a {kind.__name__}, "
            f"got {type(value).__name__}",
        )
    return value


def _session_list(request: dict) -> list[str]:
    if "session" in request:
        return [_require(request, "session", str)]
    sessions = request.get("sessions")
    if (
        not isinstance(sessions, list)
        or not sessions
        or not all(isinstance(sid, str) for sid in sessions)
    ):
        raise _Rejection(
            ErrorCode.BAD_REQUEST,
            "request needs 'session' (str) or 'sessions' (non-empty "
            "list of str)",
        )
    return sessions


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
@dataclass
class ClosedSession:
    """What ``OnlineClient.close_session`` returns, decoded."""

    spec: SessionSpec
    trace: RunTrace
    metrics: dict | None


class OnlineClient:
    """Asyncio client of one :class:`OnlineServer` connection.

    One client = one ordered request stream: every call sends one frame
    and awaits its response, so a session driven by one client sees its
    verbs applied in call order (the server's per-connection guarantee).
    Server-side rejections raise :class:`~repro.serve.protocol.OnlineError`
    carrying the structured code.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "OnlineClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def request(self, op: str, **params) -> dict:
        await write_frame(self._writer, {"op": op, **params})
        response = await read_frame(self._reader)
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        if not response.get("ok", False):
            error = response.get("error") or {}
            raise OnlineError(
                error.get("code", ErrorCode.INTERNAL),
                error.get("message", "unspecified server error"),
            )
        return response

    async def create(self, spec: SessionSpec) -> str:
        response = await self.request(
            "create",
            session_id=spec.session_id,
            scenario=spec.scenario,
            variant=spec.variant,
            particle_count=spec.particle_count,
            seed=spec.seed,
        )
        return response["session_id"]

    async def create_fleet(self, fleet: "FleetSpec | str") -> list[str]:
        spec = fleet if isinstance(fleet, str) else fleet.id
        response = await self.request("create_fleet", fleet=spec)
        return response["session_ids"]

    async def submit(
        self,
        sessions: "str | list[str]",
        frames: int = 1,
        wait: bool = False,
    ) -> dict:
        params: dict = {"frames": frames, "wait": wait}
        if isinstance(sessions, str):
            params["session"] = sessions
        else:
            params["sessions"] = sessions
        return await self.request("submit", **params)

    async def submit_with_retry(
        self,
        sessions: "str | list[str]",
        frames: int = 1,
        wait: bool = False,
        attempts: int = 8,
        base_delay_s: float = 0.05,
        max_delay_s: float = 1.0,
        retry_codes: tuple = (ErrorCode.OVERLOADED,),
    ) -> dict:
        """``submit`` with bounded retry on transient backpressure.

        ``overloaded`` means the ingest bound would be exceeded and
        *nothing was queued* — the correct response is to let the step
        loop drain and retry, not to raise through a fleet driver.  The
        backoff schedule is deterministic (no jitter, so fleet runs
        replay identically): ``base_delay_s * 2**attempt`` capped at
        ``max_delay_s``, for at most ``attempts`` submissions.  Any
        other code — and ``retry_codes`` exhaustion — raises the
        underlying :class:`OnlineError`.
        """
        if attempts < 1:
            raise ConfigurationError(f"attempts must be >= 1, got {attempts}")
        delay_s = base_delay_s
        for attempt in range(attempts):
            try:
                return await self.submit(sessions, frames, wait)
            except OnlineError as exc:
                if exc.code not in retry_codes or attempt == attempts - 1:
                    raise
            await asyncio.sleep(min(delay_s, max_delay_s))
            delay_s *= 2.0
        raise AssertionError("unreachable")  # pragma: no cover

    async def flush(self, sessions: "list[str] | None" = None) -> dict:
        if sessions is None:
            return await self.request("flush")
        return await self.request("flush", sessions=sessions)

    async def query(self, session_id: str) -> dict:
        return (await self.request("query", session=session_id))["status"]

    async def snapshot(self, session_id: str) -> bytes:
        response = await self.request("snapshot", session=session_id)
        return blob_from_json(response["snapshot"])

    async def restore(
        self, blob: bytes, session_id: "str | None" = None
    ) -> str:
        params: dict = {"snapshot": blob_to_json(blob)}
        if session_id is not None:
            params["session_id"] = session_id
        return (await self.request("restore", **params))["session_id"]

    async def drain(self, session_id: str) -> dict:
        return await self.request("drain", session=session_id)

    async def resume(self, session_id: str) -> dict:
        return await self.request("resume", session=session_id)

    async def migrate(
        self,
        session_id: str,
        target: "str | None" = None,
        peer: "int | None" = None,
    ) -> dict:
        """Move one session to ``target`` (``"host:port"``) or the
        source server's configured ``peer`` index; returns the redirect
        (``target``, ``cursor``, ``queued``).  Raises ``OnlineError``
        with code ``migration_failed`` if the handoff rolled back."""
        params: dict = {"session": session_id}
        if target is not None:
            params["target"] = target
        if peer is not None:
            params["peer"] = peer
        return await self.request("migrate", **params)

    async def accept(
        self,
        blob: bytes,
        queued: int = 0,
        session_id: "str | None" = None,
    ) -> str:
        params: dict = {"snapshot": blob_to_json(blob), "queued": queued}
        if session_id is not None:
            params["session_id"] = session_id
        return (await self.request("accept", **params))["session_id"]

    async def close_session(self, session_id: str) -> ClosedSession:
        response = await self.request("close", session=session_id)
        return ClosedSession(
            spec=SessionSpec(
                session_id=response["session_id"],
                scenario=response["scenario"],
                variant=response["variant"],
                particle_count=response["particle_count"],
                seed=response["seed"],
            ),
            trace=trace_from_json(response["trace"]),
            metrics=response["metrics"],
        )

    async def stats(self) -> dict:
        return await self.request("stats")

    async def metrics(self, format: str | None = None) -> dict:
        if format is None:
            return await self.request("metrics")
        return await self.request("metrics", format=format)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "OnlineClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


# ----------------------------------------------------------------------
# Fleet driver (CLI demo + benchmark harness)
# ----------------------------------------------------------------------
@dataclass
class FleetDriveReport:
    """What :func:`drive_fleet` measured over one served fleet."""

    #: Closed sessions by id (full traces, decoded from the wire).
    results: dict
    #: Fixed-bound histogram of per-(connection, round) step-barrier
    #: latency — each observation is the wall time from submitting one
    #: frame per owned session to all of them being served.  Bounded
    #: memory regardless of drive length (was an unbounded list).
    step_latency: "obs.Histogram"
    #: Serving wall clock: first submit to last queue drained.
    serve_s: float
    #: Server-side counters at the end of the drive.
    stats: dict


async def drive_fleet(
    host: str,
    port: int,
    fleet: "FleetSpec | str",
    connections: int = 4,
    frames_per_round: int = 1,
) -> FleetDriveReport:
    """Serve one fleet to completion through the socket gateway.

    Opens ``connections`` client connections, partitions the fleet's
    sessions round-robin across them, and has every connection submit
    ``frames_per_round`` frames per owned session with ``wait=true`` —
    a step barrier per connection per round, timed individually.
    Connections run concurrently and unsynchronized, so the server sees
    heavy mixed traffic at staggered replay positions and its tick
    coalescing is what keeps the cohort batching intact.
    """
    control = await OnlineClient.connect(host, port)
    session_ids = await control.create_fleet(
        fleet if isinstance(fleet, str) else fleet.id
    )
    connections = max(1, min(connections, len(session_ids)))
    groups: list[list[str]] = [[] for _ in range(connections)]
    remaining: dict[str, int] = {}
    for index, sid in enumerate(session_ids):
        groups[index % connections].append(sid)
        status = await control.query(sid)
        remaining[sid] = status["frames_total"]

    step_latency = obs.Histogram(
        "serve.client.step_barrier", obs.LATENCY_BOUNDS_S
    )

    async def run_group(owned: list[str]) -> None:
        async with await OnlineClient.connect(host, port) as client:
            while any(remaining[sid] > 0 for sid in owned):
                live = [sid for sid in owned if remaining[sid] > 0]
                # Bounded retry-after-drain: transient `overloaded`
                # rejections (the ingest bound) drain and resolve rather
                # than aborting the drive.
                with obs.timed("serve.client.step_barrier") as barrier:
                    await client.submit_with_retry(
                        live, frames=frames_per_round, wait=True
                    )
                step_latency.observe(barrier.elapsed_s)
                for sid in live:
                    remaining[sid] -= min(frames_per_round, remaining[sid])

    with obs.timed("serve.client.drive_fleet") as drive_timer:
        await asyncio.gather(*(run_group(group) for group in groups if group))
    serve_s = drive_timer.elapsed_s

    results = {sid: await control.close_session(sid) for sid in session_ids}
    stats = await control.stats()
    await control.close()
    return FleetDriveReport(
        results=results,
        step_latency=step_latency,
        serve_s=serve_s,
        stats=stats,
    )
