"""The online serving wire protocol: length-prefixed JSON frames.

One *frame* is one request or one response.  The encoding is
deliberately primitive — debuggable with ``nc`` and implementable in a
few lines from any language:

.. code-block:: text

    frame  := header payload
    header := ASCII decimal byte-length of payload, then "\\n"
    payload:= canonical JSON object (sorted keys, compact), then "\\n"

The length prefix makes framing binary-safe and O(1) (no scanning for
delimiters inside payloads); the JSON-lines payload keeps every frame a
single human-readable line.  Binary values (session snapshots) travel
base64-encoded.  Floats round-trip exactly: Python's JSON writer emits
the shortest ``repr`` that parses back to the identical IEEE-754 double,
which is what lets the serve layer's *bitwise* equivalence contract
extend across the socket (``tests/serve/test_online.py`` asserts it).

Requests are ``{"op": <verb>, ...params}``; responses are
``{"ok": true, ...result}`` or ``{"ok": false, "error": {"code": ...,
"message": ...}}``.  The verbs and their semantics (ordering,
backpressure, admission) are documented in ``docs/serving.md`` and
implemented by :class:`repro.serve.online.OnlineServer`.
"""

from __future__ import annotations

import asyncio
import base64
import json

import numpy as np

from ..common.errors import ReproError
from ..engine.backend import RunTrace

#: Protocol revision; servers reject frames from a different major.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's payload, enforced by readers on the length
#: header *before* allocating — a corrupt or hostile header can never
#: make the server buffer gigabytes.  Snapshots of large-N sessions are
#: the biggest legitimate frames; 64 MiB clears them by orders of
#: magnitude.
MAX_FRAME_BYTES = 64 * 1024 * 1024


# ----------------------------------------------------------------------
# Error codes (structured rejections)
# ----------------------------------------------------------------------
class ErrorCode:
    """Stable error codes carried by ``{"ok": false}`` responses."""

    BAD_REQUEST = "bad_request"  # malformed frame / unknown op / bad params
    CONFIGURATION = "configuration"  # ConfigurationError from the library
    EVALUATION = "evaluation"  # EvaluationError (unknown session, drift)
    ADMISSION_REJECTED = "admission_rejected"  # session cap reached
    OVERLOADED = "overloaded"  # ingest queue full (backpressure)
    DRAINING = "draining"  # session is mid-drain/migration; not admitting
    MIGRATION_FAILED = "migration_failed"  # handoff failed; rolled back
    INTERNAL = "internal"  # unexpected server-side failure


class ProtocolError(ReproError):
    """A frame violated the wire protocol (framing, not semantics)."""


class OnlineError(ReproError):
    """A structured server-side rejection, re-raised client-side.

    ``code`` is one of the :class:`ErrorCode` constants, so callers can
    distinguish backpressure (retryable) from semantic errors.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


# ----------------------------------------------------------------------
# Frame encoding
# ----------------------------------------------------------------------
def encode_frame(message: dict) -> bytes:
    """Serialize one message as a length-prefixed canonical JSON line."""
    payload = (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol limit"
        )
    return f"{len(payload)}\n".encode("ascii") + payload


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF before a header.

    Raises :class:`ProtocolError` on garbage headers, oversized lengths,
    truncated payloads or non-object payloads.
    """
    try:
        header = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    except ValueError as exc:
        # The stream's line limit tripped: a header longer than any
        # legal decimal length (a hostile probe, or line noise with no
        # newline).  Surface it as a framing error so the server answers
        # once and hangs up instead of the connection task dying raw.
        raise ProtocolError("frame header exceeds the line limit") from exc
    if not header:
        return None
    try:
        length = int(header.decode("ascii").strip())
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"bad frame header {header[:32]!r}") from exc
    if length < 2 or length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} outside protocol bounds")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("frame payload is not valid JSON") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


async def write_frame(writer: asyncio.StreamWriter, message: dict) -> None:
    """Encode and send one frame, honouring transport backpressure."""
    writer.write(encode_frame(message))
    await writer.drain()


def parse_address(text: str) -> tuple[str, int]:
    """Parse a ``host:port`` peer address (IPv6 hosts may be bracketed)."""
    body = text.strip()
    if body.startswith("["):  # [::1]:7410
        host, _, rest = body[1:].partition("]")
        if not rest.startswith(":"):
            raise ProtocolError(f"malformed peer address {text!r}")
        port_text = rest[1:]
    else:
        host, sep, port_text = body.rpartition(":")
        if not sep:
            raise ProtocolError(
                f"malformed peer address {text!r} (expected host:port)"
            )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ProtocolError(
            f"malformed peer address {text!r} (bad port {port_text!r})"
        ) from exc
    if not host or not 0 < port < 65536:
        raise ProtocolError(f"malformed peer address {text!r}")
    return host, port


# ----------------------------------------------------------------------
# Payload helpers (exact value round-trips)
# ----------------------------------------------------------------------
def blob_to_json(blob: bytes) -> str:
    """Binary payloads (snapshots) as base64 text."""
    return base64.b64encode(blob).decode("ascii")


def blob_from_json(text: str) -> bytes:
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:  # binascii.Error, UnicodeEncodeError
        raise ProtocolError("blob field is not valid base64") from exc


def trace_to_json(trace: RunTrace) -> dict:
    """A :class:`RunTrace` as JSON-safe lists (float64-exact).

    ``float(np.float64)`` is the identical double and JSON carries it
    via shortest-repr, so decoding reproduces every array bit-for-bit.
    """
    return {
        "timestamps": [float(v) for v in trace.timestamps],
        "position_errors": [float(v) for v in trace.position_errors],
        "yaw_errors": [float(v) for v in trace.yaw_errors],
        "estimate_trace": [
            [float(v) for v in row] for row in trace.estimate_trace
        ],
        "update_count": int(trace.update_count),
    }


def trace_from_json(data: dict) -> RunTrace:
    """Rebuild the exact :class:`RunTrace` arrays from the wire form."""
    estimates = np.array(data["estimate_trace"], dtype=np.float64)
    if estimates.size == 0:
        estimates = estimates.reshape(0, 3)
    return RunTrace(
        timestamps=np.array(data["timestamps"], dtype=np.float64),
        position_errors=np.array(data["position_errors"], dtype=np.float64),
        yaw_errors=np.array(data["yaw_errors"], dtype=np.float64),
        estimate_trace=estimates,
        update_count=int(data["update_count"]),
    )
