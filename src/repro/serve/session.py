"""Live localization sessions: one filter served per simulated drone.

A :class:`FilterSession` is one client of the serving layer: a filter
replaying one scenario under one (config spec, N, seed), advanced one
observation frame at a time.  Its particle state lives as a *row* in a
shared :class:`~repro.engine.backend.SessionStack` owned by the
scheduler's cohort for its ``(config fingerprint, N)`` — the session's
:attr:`~FilterSession.cohort_key`, computed from the materialized
config; the session itself owns
everything per-client — the replay cursor, the pending-frame queue, and
the accumulated error trace.

The trace a fully stepped session accumulates is **bitwise identical**
to the :class:`~repro.engine.backend.RunTrace` of the same
(sequence, seed) executed alone through the reference backend — that is
the serve layer's extension of the engine's equivalence contract, and
``tests/serve/test_fleet_equivalence.py`` asserts it for mixed fleets.

Snapshots (:func:`snapshot_to_bytes` / :func:`snapshot_from_bytes`)
serialize a session completely — filter state, cursor, trace — as one
byte-stable ``.npz`` blob: the same session state always produces the
same bytes, and a restored session continues bit-for-bit, enabling
migration between managers/hosts and exact replay.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass

import numpy as np

from ..common.errors import ConfigurationError
from ..common.geometry import Pose2D
from ..core.config import ConfigSpec, MclConfig
from ..core.pose_estimate import pose_error
from ..core.snapshot import SNAPSHOT_VERSION, FilterStateSnapshot
from ..engine.backend import RunTrace
from ..engine.replay import ReplayPlan
from ..eval.metrics import RunMetrics, evaluate_partial_run
from ..scenarios.base import Scenario
from ..scenarios.fleet import FleetSessionDecl
from ..scenarios.registry import canonical_scenario_id


@dataclass(frozen=True)
class SessionSpec:
    """The declaration of one serving session.

    ``scenario`` is normalized to its canonical id on construction, so
    two spellings of the same world declare the same session workload.
    ``variant`` is a config spec (``variant[+key=value...]``), likewise
    normalized — one fleet can mix paper variants and ablated filters.
    """

    session_id: str
    scenario: str
    variant: str = "fp32"
    particle_count: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.session_id:
            raise ConfigurationError("session needs a non-empty id")
        object.__setattr__(
            self, "scenario", canonical_scenario_id(self.scenario)
        )
        object.__setattr__(self, "variant", ConfigSpec.parse(self.variant).id)
        if self.particle_count < 1:
            raise ConfigurationError(
                f"particle count must be >= 1, got {self.particle_count}"
            )
        object.__setattr__(self, "particle_count", int(self.particle_count))
        object.__setattr__(self, "seed", int(self.seed))

    @staticmethod
    def from_declaration(decl: FleetSessionDecl) -> "SessionSpec":
        return SessionSpec(
            session_id=decl.session_id,
            scenario=decl.scenario,
            variant=decl.variant,
            particle_count=decl.particle_count,
            seed=decl.seed,
        )

    def config(self, base: MclConfig) -> MclConfig:
        """The full filter config this session runs under."""
        return ConfigSpec.parse(self.variant).config(
            base=base, particle_count=self.particle_count
        )


@dataclass
class SessionStatus:
    """A live snapshot of one session's progress (``manager.query``)."""

    session_id: str
    scenario: str
    variant: str
    particle_count: int
    seed: int
    cursor: int
    frames_total: int
    queued: int
    update_count: int
    done: bool
    estimate: Pose2D
    metrics: RunMetrics | None


@dataclass
class SessionResult:
    """What closing a session returns: its full trace plus metrics.

    ``trace``/``metrics`` cover the frames actually served; for a
    completely stepped session they equal the offline evaluation of the
    same (sequence, seed) bit for bit.
    """

    spec: SessionSpec
    trace: RunTrace
    metrics: RunMetrics | None


class FilterSession:
    """Mutable serving state of one session (scheduler-internal).

    The session references — but does not own — its stack row; the
    scheduler assigns and recycles rows as sessions come and go.
    """

    def __init__(
        self,
        spec: SessionSpec,
        scenario: Scenario,
        config: MclConfig,
        plan: ReplayPlan,
        field,
    ) -> None:
        self.spec = spec
        self.scenario = scenario
        self.config = config
        self.plan = plan
        self.field = field
        # Cohort identity of the *materialized* config: sessions sharing
        # this key share one stack, so it must pin every numeric facet —
        # the fingerprint does (N fixes the array shapes).
        self.cohort_key = (config.fingerprint(), config.particle_count)
        self.row = -1  # assigned by the scheduler
        self.cursor = 0
        self.queued = 0
        # A draining session (migration in flight) admits no new frames
        # and is skipped by flush ticks: its queued backlog is frozen at
        # the value the handoff ships, and the filter state stays at the
        # exact frame boundary the snapshot captured.
        self.draining = False
        self.timestamps: list[float] = []
        self.position_errors: list[float] = []
        self.yaw_errors: list[float] = []
        self.estimate_rows: list[np.ndarray] = []

    @property
    def frames_total(self) -> int:
        return self.plan.length

    @property
    def done(self) -> bool:
        return self.cursor >= self.plan.length

    @property
    def remaining(self) -> int:
        return self.plan.length - self.cursor

    def record(self, estimate: Pose2D, estimate_array: np.ndarray) -> None:
        """Append the current frame's estimate-vs-truth errors and advance."""
        ground_truth = self.plan.ground_truth[self.cursor]
        err_pos, err_yaw = pose_error(estimate, ground_truth)
        self.timestamps.append(self.plan.timestamps[self.cursor])
        self.position_errors.append(err_pos)
        self.yaw_errors.append(err_yaw)
        self.estimate_rows.append(estimate_array)
        self.cursor += 1

    def trace(self, update_count: int) -> RunTrace:
        """The trace served so far, in backend ``RunTrace`` form."""
        estimates = (
            np.stack(self.estimate_rows)
            if self.estimate_rows
            else np.empty((0, 3), dtype=np.float64)
        )
        return RunTrace(
            timestamps=np.array(self.timestamps),
            position_errors=np.array(self.position_errors),
            yaw_errors=np.array(self.yaw_errors),
            estimate_trace=estimates,
            update_count=int(update_count),
        )

    def metrics(self) -> RunMetrics | None:
        """Paper metrics of the trace so far (None before any frame)."""
        return evaluate_partial_run(
            np.array(self.timestamps),
            np.array(self.position_errors),
            np.array(self.yaw_errors),
        )


# ----------------------------------------------------------------------
# Snapshot serialization (byte-stable .npz blobs)
# ----------------------------------------------------------------------
def snapshot_to_bytes(
    session: FilterSession, state: FilterStateSnapshot
) -> bytes:
    """Serialize a session + its filter state as one byte-stable blob.

    The payload is written with sorted keys through
    ``np.savez_compressed`` (fixed zip timestamps), so identical session
    state always yields identical bytes — snapshots can themselves be
    content-addressed, diffed, and byte-verified after migration.
    """
    meta = {
        "format": SNAPSHOT_VERSION,
        "kind": "serve-session",
        "session_id": session.spec.session_id,
        "scenario": session.spec.scenario,
        "variant": session.spec.variant,
        "particle_count": session.spec.particle_count,
        "seed": session.spec.seed,
        "cursor": session.cursor,
    }
    payload = state.to_payload(prefix="state_")
    payload["serve_meta"] = np.array(json.dumps(meta, sort_keys=True))
    payload["trace_timestamps"] = np.array(session.timestamps, dtype=np.float64)
    payload["trace_position_errors"] = np.array(
        session.position_errors, dtype=np.float64
    )
    payload["trace_yaw_errors"] = np.array(session.yaw_errors, dtype=np.float64)
    payload["trace_estimates"] = (
        np.stack(session.estimate_rows).astype(np.float64)
        if session.estimate_rows
        else np.empty((0, 3), dtype=np.float64)
    )
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer, **{key: payload[key] for key in sorted(payload)}
    )
    return buffer.getvalue()


def snapshot_from_bytes(
    data: bytes, session_id: str | None = None
) -> tuple[SessionSpec, int, FilterStateSnapshot, dict[str, np.ndarray]]:
    """Parse a snapshot blob back into its parts.

    Returns ``(spec, cursor, filter_state, trace_arrays)``;
    ``session_id`` optionally renames the restored session (state and
    results are id-independent — only scheduler packing order changes).
    """
    try:
        archive = np.load(io.BytesIO(data))
    except Exception as exc:  # zipfile.BadZipFile, ValueError, OSError
        raise ConfigurationError(
            "snapshot bytes are not a readable npz archive"
        ) from exc
    with archive:
        try:
            meta = json.loads(str(archive["serve_meta"]))
        except KeyError as exc:
            raise ConfigurationError(
                "not a serve-session snapshot (missing serve_meta)"
            ) from exc
        if meta.get("kind") != "serve-session":
            raise ConfigurationError(
                f"unexpected snapshot kind {meta.get('kind')!r}"
            )
        if meta.get("format") != SNAPSHOT_VERSION:
            raise ConfigurationError(
                f"snapshot format {meta.get('format')!r} is not supported "
                f"(expected {SNAPSHOT_VERSION})"
            )
        spec = SessionSpec(
            session_id=session_id or meta["session_id"],
            scenario=meta["scenario"],
            variant=meta["variant"],
            particle_count=meta["particle_count"],
            seed=meta["seed"],
        )
        state = FilterStateSnapshot.from_payload(archive, prefix="state_")
        trace = {
            key: np.array(archive[key])
            for key in (
                "trace_timestamps",
                "trace_position_errors",
                "trace_yaw_errors",
                "trace_estimates",
            )
        }
    return spec, int(meta["cursor"]), state, trace
