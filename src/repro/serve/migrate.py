"""Fleet-level live migration: the drain/handoff control plane.

The gateway's ``drain`` / ``migrate`` / ``accept`` verbs move one
session between two servers; this module decides *which* sessions move
*where*.  A :class:`MigrationCoordinator` speaks to a set of peer
servers through their ``stats`` verbs (per-cohort occupancy is part of
the payload), plans moves as a **pure, deterministic function** of the
observed occupancy, and executes them one handoff at a time, timing each
session's blackout (the drain-to-redirect round-trip).

Two policies ship:

* **evict-by-load** (:meth:`MigrationCoordinator.plan_evict`) — move
  sessions off one peer (all of them, or down to a cap) onto the rest
  of the fleet: the rolling-restart / scale-in primitive;
* **rebalance-to-cohort** (:meth:`MigrationCoordinator.plan_rebalance`)
  — equalize session counts across peers while preferring placements
  that co-locate ``(fingerprint, N)`` cohorts, so the scheduler's
  stacked-batching win survives the shuffle instead of fragmenting into
  one-row stacks.

Planning never talks to the network (it takes the occupancy mapping and
returns :class:`Move` values), so policies are unit-testable and any
observed fleet state always plans the same moves.  Execution is
sequential and source-ordered; a failed handoff rolls back on the
source (the gateway's guarantee) and is reported, not raised — one bad
peer cannot wedge a fleet-wide rebalance.

Every move is bitwise-invisible: the migrated session's trace equals
its uninterrupted solo run (``tests/serve/test_migration.py``), and
``benchmarks/bench_migrate.py`` measures the blackout this control
plane imposes at fleet sizes 64–256.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from .. import obs
from ..common.errors import ConfigurationError
from .online import OnlineClient
from .protocol import OnlineError, ProtocolError, parse_address


@dataclass(frozen=True, order=True)
class Peer:
    """One serve-online server, addressed as ``host:port``."""

    host: str
    port: int

    @staticmethod
    def parse(text: str) -> "Peer":
        host, port = parse_address(text)
        return Peer(host, port)

    @property
    def id(self) -> str:
        return f"{self.host}:{self.port}"


@dataclass(frozen=True)
class Move:
    """One planned handoff: a session leaving ``source`` for ``target``."""

    session_id: str
    source: Peer
    target: Peer


@dataclass
class MoveResult:
    """One executed handoff and what it cost.

    ``blackout_s`` is the session's full unavailability window as the
    coordinator observes it: drain, snapshot, ship, restore and
    redirect — the time during which neither server admits frames for
    the session.
    """

    move: Move
    ok: bool
    blackout_s: float
    error: str | None = None


#: The occupancy mapping planning consumes: for every peer, its cohort
#: ids (the ``stats`` verb's ``"fingerprint/N"`` strings) to the session
#: ids packed in that cohort.
Occupancy = "dict[Peer, dict[str, list[str]]]"


class MigrationCoordinator:
    """Plans and drives whole-fleet session moves across peer servers."""

    def __init__(
        self, peers: "list[Peer | str]", handoff_timeout_s: float = 30.0
    ) -> None:
        resolved = [
            Peer.parse(peer) if isinstance(peer, str) else peer
            for peer in peers
        ]
        if len(set(resolved)) != len(resolved):
            raise ConfigurationError("duplicate peer addresses")
        if len(resolved) < 2:
            raise ConfigurationError(
                f"a migration fleet needs >= 2 peers, got {len(resolved)}"
            )
        #: Sorted: every fleet-wide iteration below is address-ordered,
        #: which (with the pure planners) makes whole rebalances
        #: deterministic functions of the observed fleet state.
        self.peers: list[Peer] = sorted(resolved)
        self.handoff_timeout_s = handoff_timeout_s

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    async def fleet_stats(self) -> "dict[Peer, dict]":
        """The ``stats`` payload of every peer (serially, in order)."""
        stats: dict[Peer, dict] = {}
        for peer in self.peers:
            async with await OnlineClient.connect(peer.host, peer.port) as c:
                stats[peer] = await c.stats()
        return stats

    @staticmethod
    def occupancy_of(stats: "dict[Peer, dict]") -> "dict[Peer, dict[str, list[str]]]":
        """Reduce ``stats`` payloads to the planners' occupancy view."""
        return {
            peer: {
                cohort: list(entry["sessions"])
                for cohort, entry in payload["cohort_occupancy"].items()
            }
            for peer, payload in stats.items()
        }

    # ------------------------------------------------------------------
    # Planning (pure + deterministic)
    # ------------------------------------------------------------------
    @staticmethod
    def plan_rebalance(
        occupancy: "dict[Peer, dict[str, list[str]]]",
    ) -> list[Move]:
        """Equalize session counts, preferring cohort co-location.

        Targets are the balanced partition of the total (address-ordered
        peers absorb the remainder first).  While any peer exceeds its
        target, the most-loaded peer donates one session to the
        least-loaded: the donated session is chosen from the donor's
        smallest cohort that the receiver *already hosts* (growing an
        existing stack — ``rebalance-to-cohort``), falling back to the
        donor's smallest cohort outright (evacuating minorities keeps
        cohorts whole), ties broken lexicographically throughout.
        """
        peers = sorted(occupancy)
        if not peers:
            return []
        # Virtual state the planner mutates as it assigns moves.
        state: dict[Peer, dict[str, list[str]]] = {
            peer: {c: sorted(sids) for c, sids in sorted(occupancy[peer].items())}
            for peer in peers
        }
        loads = {p: sum(len(s) for s in state[p].values()) for p in peers}
        total = sum(loads.values())
        base, extra = divmod(total, len(peers))
        target = {
            peer: base + (1 if index < extra else 0)
            for index, peer in enumerate(peers)
        }
        moves: list[Move] = []
        while True:
            donors = [p for p in peers if loads[p] > target[p]]
            receivers = [p for p in peers if loads[p] < target[p]]
            if not donors or not receivers:
                break
            donor = max(donors, key=lambda p: (loads[p] - target[p], p))
            receiver = min(
                receivers, key=lambda p: (loads[p] - target[p], p)
            )
            cohort, session_id = _pick_donation(state[donor], state[receiver])
            moves.append(Move(session_id, donor, receiver))
            state[donor][cohort].remove(session_id)
            if not state[donor][cohort]:
                del state[donor][cohort]
            state[receiver].setdefault(cohort, []).append(session_id)
            loads[donor] -= 1
            loads[receiver] += 1
        return moves

    @staticmethod
    def plan_evict(
        occupancy: "dict[Peer, dict[str, list[str]]]",
        source: Peer,
        max_sessions: int = 0,
    ) -> list[Move]:
        """Move ``source`` down to ``max_sessions`` live sessions.

        The evict-by-load hook: ``max_sessions=0`` empties the peer (a
        rolling restart), a positive cap sheds overload.  Receivers are
        the other peers, least-loaded first; each evicted session goes
        to the least-loaded receiver that already hosts its cohort, or
        the least-loaded outright.  Sessions leave smallest-cohort-first
        (lexicographic ties), mirroring :meth:`plan_rebalance`.
        """
        if source not in occupancy:
            raise ConfigurationError(f"unknown source peer {source.id}")
        if max_sessions < 0:
            raise ConfigurationError(
                f"max_sessions must be >= 0, got {max_sessions}"
            )
        receivers = sorted(p for p in occupancy if p != source)
        if not receivers:
            raise ConfigurationError("eviction needs at least one other peer")
        state = {
            peer: {c: sorted(s) for c, s in sorted(occupancy[peer].items())}
            for peer in sorted(occupancy)
        }
        loads = {p: sum(len(s) for s in state[p].values()) for p in state}
        moves: list[Move] = []
        while loads[source] > max_sessions:
            # Least-loaded receiver hosting the would-be-donated cohort
            # wins; otherwise plain least-loaded.
            best: tuple | None = None
            for receiver in receivers:
                cohort, session_id = _pick_donation(
                    state[source], state[receiver]
                )
                affinity = 0 if cohort in state[receiver] else 1
                key = (affinity, loads[receiver], receiver, cohort, session_id)
                if best is None or key < best[0]:
                    best = (key, receiver, cohort, session_id)
            _, receiver, cohort, session_id = best
            moves.append(Move(session_id, source, receiver))
            state[source][cohort].remove(session_id)
            if not state[source][cohort]:
                del state[source][cohort]
            state[receiver].setdefault(cohort, []).append(session_id)
            loads[source] -= 1
            loads[receiver] += 1
        return moves

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    async def execute(self, moves: list[Move]) -> list[MoveResult]:
        """Drive planned moves one handoff at a time, timing blackouts.

        One connection per distinct source is held open across its
        moves.  A failed handoff (structured rejection, dead peer) is
        recorded with ``ok=False`` — the source rolled the session back,
        so execution continues with the remaining moves.
        """
        results: list[MoveResult] = []
        clients: dict[Peer, OnlineClient] = {}
        try:
            for move in moves:
                timer = obs.timed("migrate.blackout").start()
                try:
                    client = clients.get(move.source)
                    if client is None:
                        client = await OnlineClient.connect(
                            move.source.host, move.source.port
                        )
                        clients[move.source] = client
                    await asyncio.wait_for(
                        client.migrate(move.session_id, target=move.target.id),
                        timeout=self.handoff_timeout_s,
                    )
                    timer.stop()
                    obs.counter("migrate.moves_ok").inc()
                    results.append(MoveResult(move, True, timer.elapsed_s))
                except (
                    OnlineError,
                    ProtocolError,
                    OSError,
                    asyncio.TimeoutError,
                ) as exc:
                    timer.stop()
                    clients.pop(move.source, None)
                    obs.counter("migrate.moves_failed").inc()
                    results.append(
                        MoveResult(
                            move,
                            False,
                            timer.elapsed_s,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    )
                obs.event(
                    "migrate.move",
                    session=move.session_id,
                    source=move.source.id,
                    target=move.target.id,
                    ok=results[-1].ok,
                    blackout_s=results[-1].blackout_s,
                )
        finally:
            for client in clients.values():
                await client.close()
        return results

    async def rebalance(self) -> list[MoveResult]:
        """Observe the fleet, plan an equalizing shuffle, execute it."""
        occupancy = self.occupancy_of(await self.fleet_stats())
        return await self.execute(self.plan_rebalance(occupancy))

    async def drain_peer(
        self, source: "Peer | str", max_sessions: int = 0
    ) -> list[MoveResult]:
        """Evict ``source`` down to ``max_sessions`` across the fleet."""
        if isinstance(source, str):
            source = Peer.parse(source)
        occupancy = self.occupancy_of(await self.fleet_stats())
        return await self.execute(
            self.plan_evict(occupancy, source, max_sessions)
        )


def _pick_donation(
    donor: "dict[str, list[str]]", receiver: "dict[str, list[str]]"
) -> tuple[str, str]:
    """Which (cohort, session) the donor gives this receiver.

    Prefer the donor's smallest cohort the receiver already hosts
    (growing an existing stack instead of opening a new one); otherwise
    the donor's smallest cohort outright, so minority cohorts evacuate
    whole.  Lexicographic ties; the lowest session id in the chosen
    cohort moves.
    """
    if not donor:
        raise ConfigurationError("donor peer has no sessions to give")
    shared = [c for c in donor if c in receiver]
    pool = shared if shared else list(donor)
    cohort = min(pool, key=lambda c: (len(donor[c]), c))
    return cohort, min(donor[cohort])
