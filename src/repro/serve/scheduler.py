"""The step scheduler: deterministic packing of session steps.

Every scheduler *tick* advances a set of pending sessions by one
observation frame each.  Sessions whose movement gate fires are packed
into shared stacked-kernel calls so a fleet of small-N filters pays one
numpy dispatch per stage instead of one per drone — the same
amortization that makes the batched backend ~3x faster than the scalar
loop on small-N sweep cells, now applied to *live, heterogeneous*
sessions at arbitrary replay positions.

**Packing is a pure function of session ids and specs.**  Within a
tick:

1. sessions are ordered by ``session_id`` (lexicographic);
2. firing sessions group into **cohorts** by ``(config fingerprint, N)``
   — the facets that fix the stack's array shapes and its full numeric
   config, so one fleet can mix ablated and default-parameter filters —
   processed in sorted cohort-key order;
3. inside a cohort, sessions sharing ``(scenario, cursor)`` — and hence
   the identical replay step and distance field — form one
   :class:`~repro.engine.backend.StepWork` item, in first-session order.

Because every stack operation is per-row deterministic (see
:class:`~repro.engine.backend.SessionStack`), the packing cannot change
any session's numbers — it is pinned anyway so that a fleet's execution
schedule is reproducible from its declaration, which keeps scheduling
regressions observable and wall-clock comparisons meaningful.

Rows are recycled: closing a session frees its row for the next session
of the same cohort (lowest free row first — again deterministic), and a
cohort whose last row is released is retired entirely — its stacked
arrays are dropped, so a long-lived manager serving a churning mix of
configurations never accumulates dead stacks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from .. import obs
from ..core.config import MclConfig
from ..engine.backend import FilterBackend, SessionStack, StepWork, get_backend
from .session import FilterSession


@dataclass
class _Cohort:
    """One (config fingerprint, N) stack plus its row bookkeeping.

    ``free_rows`` is a min-heap, so recycling always hands out the
    lowest free row without re-sorting the pool on every assignment.
    """

    config: MclConfig
    stack: SessionStack
    rows_used: int = 0
    free_rows: list[int] = field(default_factory=list)

    def assign_row(self) -> int:
        """Lowest free row, growing the stack when none is available."""
        if self.free_rows:
            return heapq.heappop(self.free_rows)
        row = self.rows_used
        self.rows_used += 1
        self.stack.ensure_capacity(self.rows_used)
        return row

    def release_row(self, row: int) -> None:
        heapq.heappush(self.free_rows, row)

    @property
    def active_rows(self) -> int:
        """Rows currently owned by live sessions."""
        return self.rows_used - len(self.free_rows)


class StepScheduler:
    """Packs pending per-session steps into shared stacked calls."""

    def __init__(self, backend: "str | FilterBackend" = "batched") -> None:
        self.backend = get_backend(backend)
        self._cohorts: dict[tuple[str, int], _Cohort] = {}

    # ------------------------------------------------------------------
    # Cohort/row management
    # ------------------------------------------------------------------
    def cohort(self, key: tuple[str, int], config: MclConfig) -> _Cohort:
        entry = self._cohorts.get(key)
        if entry is None:
            entry = _Cohort(config=config, stack=self.backend.open_stack(config))
            self._cohorts[key] = entry
        return entry

    def admit(self, session: FilterSession) -> None:
        """Assign the session a stack row (state not yet initialized)."""
        entry = self.cohort(session.cohort_key, session.config)
        session.row = entry.assign_row()

    def evict(self, session: FilterSession) -> None:
        """Return the session's row to its cohort's free pool.

        A cohort whose last active row is released is retired with its
        stacked arrays: under a churning mix of configurations the
        cohort map stays proportional to the *live* fleet, not to every
        ``(fingerprint, N)`` ever served.
        """
        if session.row >= 0:
            cohort = self._cohorts[session.cohort_key]
            cohort.release_row(session.row)
            session.row = -1
            if cohort.active_rows == 0:
                del self._cohorts[session.cohort_key]

    def cohort_count(self) -> int:
        """How many live (fingerprint, N) cohort stacks exist right now."""
        return len(self._cohorts)

    def occupancy(self) -> dict[tuple[str, int], dict[str, int]]:
        """Per-cohort row usage, keyed by ``(fingerprint, N)``.

        ``rows_allocated`` is the stack's grown capacity, ``rows_active``
        the rows owned by live sessions, ``rows_free`` the recyclable
        remainder — enough for placement policy (and tests) to reason
        about packing without reaching into the cohort map.
        """
        return {
            key: {
                "rows_allocated": cohort.rows_used,
                "rows_active": cohort.active_rows,
                "rows_free": len(cohort.free_rows),
            }
            for key, cohort in sorted(self._cohorts.items())
        }

    def stack(self, session: FilterSession) -> SessionStack:
        return self._cohorts[session.cohort_key].stack

    # ------------------------------------------------------------------
    # Ticking
    # ------------------------------------------------------------------
    @staticmethod
    def plan_tick(
        sessions: list[FilterSession],
    ) -> tuple[list[FilterSession], dict[tuple[str, int], list[list[FilterSession]]]]:
        """The tick's deterministic packing, without executing it.

        Returns ``(ordered_sessions, packing)`` where ``packing`` maps
        each cohort key (sorted consumption order) to its work groups —
        lists of firing sessions sharing one ``(scenario, cursor)``.
        Pure function of the sessions' ids, specs and cursors; exposed
        separately so tests can pin the schedule itself.
        """
        ordered = sorted(sessions, key=lambda s: s.spec.session_id)
        packing: dict[tuple[str, int], dict[tuple[str, int], list[FilterSession]]] = {}
        for session in ordered:
            if session.done:
                continue
            if not session.plan.steps[session.cursor].fires:
                continue
            groups = packing.setdefault(session.cohort_key, {})
            groups.setdefault(
                (session.spec.scenario, session.cursor), []
            ).append(session)
        return ordered, {
            key: list(groups.values()) for key, groups in sorted(packing.items())
        }

    def tick(self, sessions: list[FilterSession]) -> int:
        """Advance every given session by exactly one frame.

        Firing sessions are stepped through their cohort stacks in the
        packed order; every session (firing or not) then records its
        current estimate against ground truth and moves its cursor.
        Returns the number of gated updates executed.
        """
        with obs.span("serve.sched.tick"):
            ordered, packing = self.plan_tick(sessions)
            fired = 0
            stack_calls = 0
            for key, groups in packing.items():
                stack = self._cohorts[key].stack
                work = [
                    StepWork(
                        rows=[s.row for s in group],
                        step=group[0].plan.steps[group[0].cursor],
                        field=group[0].field,
                    )
                    for group in groups
                ]
                stack.step(work)
                stack_calls += len(work)
                fired += sum(len(item.rows) for item in work)
            for session in ordered:
                if session.done:
                    continue
                stack = self._cohorts[session.cohort_key].stack
                session.record(
                    stack.estimate(session.row), stack.estimate_array(session.row)
                )
        obs.counter("serve.sched.ticks").inc()
        obs.counter("serve.sched.fired").inc(fired)
        obs.counter("serve.sched.stack_calls").inc(stack_calls)
        if fired:
            # Packing efficiency: gated updates per stacked kernel call.
            obs.histogram("serve.sched.rows_per_call", obs.COUNT_BOUNDS).observe(
                fired / stack_calls
            )
        return fired
