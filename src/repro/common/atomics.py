"""Atomic filesystem publication primitives (tmp + rename / link).

Every on-disk cache in this repository — campaign cell files, the
scenario ``.npz`` cache, serve-layer snapshots written by callers — has
the same durability need: a reader (or a concurrently spawning worker)
must observe either a *complete* file or *no* file, never a torn one.
These helpers are the one implementation of that pattern:

* :func:`write_scratch` — write bytes to a unique ``*.tmp`` sibling
  (``mkstemp``-unique, fsynced, umask-respecting permissions);
* :func:`atomic_write` — scratch + ``os.replace``: last racing writer
  wins, which is harmless wherever equal keys imply equal bytes;
* :func:`atomic_create` — scratch + ``os.link``: create-if-absent that
  stays atomic even on shared network mounts;
* :func:`atomic_binary_writer` — a context manager handing out a scratch
  file handle, publishing on clean exit — for writers that stream
  (``np.savez_compressed``) instead of producing one ``bytes`` blob.

The ``*.tmp`` suffix is part of the contract: sweepers (e.g.
``CampaignStore.recover``) identify abandoned scratch files by it.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path
from typing import IO, Iterator


def write_scratch(path: Path, data: bytes) -> str:
    """Write ``data`` to a unique tmp sibling of ``path``; return its name.

    The tmp name is unique per writer (``mkstemp``), so two processes
    racing to publish the same file never share a scratch file.  mkstemp
    creates 0600 scratch files; umask-derived permissions are restored so
    stores shared between users stay readable.
    """
    with _scratch_handle(path) as (handle, tmp_name):
        handle.write(data)
    return tmp_name


@contextlib.contextmanager
def _scratch_handle(path: Path) -> Iterator[tuple[IO[bytes], str]]:
    """Open a unique, umask-respecting ``*.tmp`` sibling for writing.

    Flushes and fsyncs on clean exit; the caller owns the scratch file
    afterwards (publish or unlink).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f"{path.name}.", suffix=".tmp"
    )
    umask = os.umask(0)
    os.umask(umask)
    os.fchmod(fd, 0o666 & ~umask)
    with os.fdopen(fd, "wb") as handle:
        yield handle, tmp_name
        handle.flush()
        os.fsync(handle.fileno())


def atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (unique tmp + rename).

    ``os.replace`` makes whichever racing writer lands last win —
    harmless wherever equal paths imply equal bytes (content-addressed
    caches and stores).
    """
    tmp_name = write_scratch(path, data)
    try:
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


def atomic_create(path: Path, data: bytes) -> bool:
    """Publish ``data`` at ``path`` only if nothing exists there yet.

    Uses ``os.link`` from a unique scratch file — an atomic
    create-if-absent even on shared network mounts — so two processes
    racing to create the same file cannot both succeed.  Returns True if
    this caller published, False if ``path`` already existed (complete:
    files published this way are never partial).
    """
    tmp_name = write_scratch(path, data)
    try:
        os.link(tmp_name, path)
        return True
    except FileExistsError:
        return False
    finally:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)


@contextlib.contextmanager
def atomic_binary_writer(path: str | Path) -> Iterator[IO[bytes]]:
    """Yield a scratch handle; publish it at ``path`` on clean exit.

    For streaming writers (``np.savez_compressed`` and friends) that
    want a file object rather than assembling one ``bytes`` payload.  On
    any exception the scratch file is removed and nothing is published,
    so readers can never observe a torn file.
    """
    path = Path(path)
    tmp_name: str | None = None
    try:
        with _scratch_handle(path) as (handle, tmp_name):
            yield handle
        os.replace(tmp_name, path)
        tmp_name = None
    finally:
        if tmp_name is not None:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
