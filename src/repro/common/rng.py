"""Deterministic random-number management.

The paper repeats every localization experiment with six random seeds
(Sec. IV-B).  To make such sweeps reproducible while keeping subsystems
statistically independent, this module derives one ``numpy`` Generator per
named stream from a single root seed using ``SeedSequence.spawn`` semantics:
the same ``(root_seed, stream_name)`` pair always yields the same stream,
and distinct names yield independent streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Seeds used by the paper-style evaluation protocol (six repetitions).
PAPER_SEEDS: tuple[int, ...] = (0, 1, 2, 3, 4, 5)


def _stream_entropy(name: str) -> int:
    """Map a stream name to a stable 64-bit integer.

    ``hash()`` is salted per process, so we use SHA-256 for stability
    across runs and machines.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(root_seed: int, stream: str = "default") -> np.random.Generator:
    """Create an independent, reproducible Generator for a named stream.

    Parameters
    ----------
    root_seed:
        The experiment-level seed (e.g. one of :data:`PAPER_SEEDS`).
    stream:
        Subsystem name, e.g. ``"mcl"``, ``"tof-front"``, ``"odometry"``.
        Different streams derived from the same root seed are independent.
    """
    seq = np.random.SeedSequence([int(root_seed) & 0xFFFFFFFF, _stream_entropy(stream)])
    return np.random.Generator(np.random.PCG64(seq))


class RngPool:
    """A lazy registry of named RNG streams sharing one root seed.

    Subsystems ask the pool for their stream by name; the pool guarantees
    each name maps to exactly one Generator instance for the lifetime of
    the pool, so repeated lookups keep advancing the same stream.
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, stream: str) -> np.random.Generator:
        """Return (creating on first use) the Generator for ``stream``."""
        if stream not in self._streams:
            self._streams[stream] = make_rng(self.root_seed, stream)
        return self._streams[stream]

    def fork(self, salt: str) -> "RngPool":
        """Derive a child pool whose streams are independent of this pool's.

        Useful when one experiment spawns several repetitions that must not
        share randomness: ``pool.fork(f"rep-{i}")``.
        """
        child_seed = (self.root_seed * 0x9E3779B1 + _stream_entropy(salt)) & 0xFFFFFFFF
        return RngPool(child_seed)
