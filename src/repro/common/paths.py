"""Filesystem roots shared by the data caches.

Both the canonical-sequence cache (``data/sequences``) and the scenario
cache (``data/scenarios``) live under one data root so a single
``REPRO_DATA_DIR`` redirects everything — tests point it at a tmpdir,
deployments at shared storage.
"""

from __future__ import annotations

import os
from pathlib import Path


def data_root() -> Path:
    """The data directory root (env ``REPRO_DATA_DIR``, default ``./data``)."""
    return Path(os.environ.get("REPRO_DATA_DIR", os.path.join(os.getcwd(), "data")))
