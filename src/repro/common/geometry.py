"""2-D rigid-body geometry used throughout the localization stack.

The nano-UAV flies at a fixed height and localizes in a 2-D occupancy grid
map (paper Sec. III-C1), so its state is an element of SE(2): position
``(x, y)`` in metres plus yaw ``theta`` in radians, normalized to
``[-pi, pi)``.

This module provides:

* :class:`Pose2D` — an immutable SE(2) element with compose / inverse /
  relative-pose operations,
* angle utilities (:func:`wrap_angle`, :func:`angle_difference`,
  :func:`circular_mean`),
* vectorized helpers used by the particle filter
  (:func:`transform_points`, :func:`compose_arrays`).

All vectorized helpers take and return ``numpy`` arrays and never mutate
their inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

TWO_PI = 2.0 * math.pi


def wrap_angle(angle):
    """Normalize an angle (scalar or array) to the interval ``[-pi, pi)``.

    The scalar fast path computes the identical IEEE-754 result as the
    array path (Python's float ``%`` matches numpy's elementwise ``%``),
    without the ``asarray`` round-trip — this sits on the ``Pose2D`` hot
    path of sequence replay.

    >>> wrap_angle(math.pi)
    -3.141592653589793
    >>> wrap_angle(0.5)
    0.5
    """
    if isinstance(angle, float):
        return (angle + math.pi) % TWO_PI - math.pi
    wrapped = (np.asarray(angle, dtype=np.float64) + math.pi) % TWO_PI - math.pi
    if np.ndim(angle) == 0:
        return float(wrapped)
    return wrapped


def angle_difference(a, b):
    """Smallest signed difference ``a - b`` between two angles.

    The result lies in ``[-pi, pi)``.  Works on scalars and arrays alike.
    """
    if isinstance(a, float) and isinstance(b, float):
        return wrap_angle(a - b)
    return wrap_angle(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))


def circular_mean(angles: np.ndarray, weights: np.ndarray | None = None) -> float:
    """Weighted circular mean of ``angles`` (radians).

    This is the correct way to average yaw across particles: averaging raw
    radians breaks at the ``+-pi`` wrap.  With all-zero weights (a degenerate
    particle set) the unweighted mean is returned instead of NaN.
    """
    angles = np.asarray(angles, dtype=np.float64)
    if weights is None:
        weights = np.ones_like(angles)
    else:
        weights = np.asarray(weights, dtype=np.float64)
    total = float(np.sum(weights))
    if total <= 0.0 or not math.isfinite(total):
        weights = np.ones_like(angles)
        total = float(angles.size)
    sin_sum = float(np.dot(weights, np.sin(angles)))
    cos_sum = float(np.dot(weights, np.cos(angles)))
    eps = 1e-9 * max(1.0, total)
    if abs(sin_sum) < eps and abs(cos_sum) < eps:
        # Perfectly opposed angles: the mean direction is undefined;
        # return 0 by convention rather than amplifying rounding noise.
        return 0.0
    return math.atan2(sin_sum / total, cos_sum / total)


@dataclass(frozen=True)
class Pose2D:
    """An SE(2) pose: position in metres, yaw in radians.

    Instances are immutable; all operations return new poses.  Yaw is
    normalized on construction, so ``Pose2D(0, 0, 3 * math.pi).theta``
    equals ``-pi``... wrapped into ``[-pi, pi)``.
    """

    x: float
    y: float
    theta: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "theta", wrap_angle(float(self.theta)))
        object.__setattr__(self, "x", float(self.x))
        object.__setattr__(self, "y", float(self.y))

    # ------------------------------------------------------------------
    # SE(2) group operations
    # ------------------------------------------------------------------
    def compose(self, other: "Pose2D") -> "Pose2D":
        """Return ``self * other``: ``other`` expressed in the world frame
        when ``other`` is given in the frame of ``self``.

        Used to apply a body-frame odometry increment to a world pose.
        """
        cos_t = math.cos(self.theta)
        sin_t = math.sin(self.theta)
        return Pose2D(
            self.x + cos_t * other.x - sin_t * other.y,
            self.y + sin_t * other.x + cos_t * other.y,
            self.theta + other.theta,
        )

    def inverse(self) -> "Pose2D":
        """Return the SE(2) inverse of this pose."""
        cos_t = math.cos(self.theta)
        sin_t = math.sin(self.theta)
        return Pose2D(
            -(cos_t * self.x + sin_t * self.y),
            -(-sin_t * self.x + cos_t * self.y),
            -self.theta,
        )

    def between(self, other: "Pose2D") -> "Pose2D":
        """Return the body-frame increment taking ``self`` to ``other``.

        Satisfies ``self.compose(self.between(other)) == other``; this is
        how odometry inputs ``u_t`` are produced from consecutive state
        estimates.
        """
        return self.inverse().compose(other)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def transform_point(self, px: float, py: float) -> tuple[float, float]:
        """Map a body-frame point into the world frame."""
        cos_t = math.cos(self.theta)
        sin_t = math.sin(self.theta)
        return (
            self.x + cos_t * px - sin_t * py,
            self.y + sin_t * px + cos_t * py,
        )

    def distance_to(self, other: "Pose2D") -> float:
        """Euclidean distance between the two positions (yaw ignored)."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def heading_error_to(self, other: "Pose2D") -> float:
        """Absolute yaw difference to ``other`` in radians, in ``[0, pi]``."""
        return abs(angle_difference(self.theta, other.theta))

    def as_array(self) -> np.ndarray:
        """Return ``[x, y, theta]`` as a float64 array."""
        return np.array([self.x, self.y, self.theta], dtype=np.float64)

    @staticmethod
    def from_array(arr) -> "Pose2D":
        """Build a pose from any length-3 sequence ``[x, y, theta]``."""
        return Pose2D(float(arr[0]), float(arr[1]), float(arr[2]))

    @staticmethod
    def identity() -> "Pose2D":
        """The identity element of SE(2)."""
        return Pose2D(0.0, 0.0, 0.0)


# ----------------------------------------------------------------------
# Vectorized helpers for particle arrays
# ----------------------------------------------------------------------
def transform_points(
    x: np.ndarray, y: np.ndarray, theta: np.ndarray, px: np.ndarray, py: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Map body-frame points into world frame for many poses at once.

    ``x, y, theta`` have shape ``(N,)`` (one per particle); ``px, py`` have
    shape ``(K,)`` (one per beam endpoint).  Returns two ``(N, K)`` arrays
    with the world coordinates of every (particle, point) combination.
    This is the hot path of the observation model.
    """
    cos_t = np.cos(theta)[:, None]
    sin_t = np.sin(theta)[:, None]
    world_x = x[:, None] + cos_t * px[None, :] - sin_t * py[None, :]
    world_y = y[:, None] + sin_t * px[None, :] + cos_t * py[None, :]
    return world_x, world_y


def compose_arrays(
    x: np.ndarray,
    y: np.ndarray,
    theta: np.ndarray,
    dx: float | np.ndarray,
    dy: float | np.ndarray,
    dtheta: float | np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Apply a body-frame increment to arrays of poses.

    ``dx, dy, dtheta`` may be scalars (shared increment) or ``(N,)`` arrays
    (per-particle noisy increments, as drawn by the motion model).  Returns
    new ``(N,)`` arrays; yaw is wrapped to ``[-pi, pi)``.
    """
    cos_t = np.cos(theta)
    sin_t = np.sin(theta)
    new_x = x + cos_t * dx - sin_t * dy
    new_y = y + sin_t * dx + cos_t * dy
    new_theta = wrap_angle(np.asarray(theta + dtheta))
    return new_x, new_y, new_theta
