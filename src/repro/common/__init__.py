"""Shared primitives: geometry, RNG streams, precision policies, errors."""

from .errors import (
    ConfigurationError,
    DatasetError,
    EvaluationError,
    MapError,
    PlatformModelError,
    ReproError,
    SensorError,
)
from .geometry import (
    Pose2D,
    angle_difference,
    circular_mean,
    compose_arrays,
    transform_points,
    wrap_angle,
)
from .precision import (
    PrecisionMode,
    dequantize_distances,
    quantization_step,
    quantize_distances,
    round_to_storage,
)
from .rng import PAPER_SEEDS, RngPool, make_rng

__all__ = [
    "ConfigurationError",
    "DatasetError",
    "EvaluationError",
    "MapError",
    "PlatformModelError",
    "ReproError",
    "SensorError",
    "Pose2D",
    "angle_difference",
    "circular_mean",
    "compose_arrays",
    "transform_points",
    "wrap_angle",
    "PrecisionMode",
    "dequantize_distances",
    "quantization_step",
    "quantize_distances",
    "round_to_storage",
    "PAPER_SEEDS",
    "RngPool",
    "make_rng",
]
