"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A configuration object contains inconsistent or invalid values."""


class MapError(ReproError):
    """An occupancy-grid or distance-field operation is invalid.

    Typical causes: indexing outside the grid, maps with no free space,
    or a resolution that does not match between grid and field.
    """


class SensorError(ReproError):
    """A sensor model was configured or driven outside its envelope."""


class DatasetError(ReproError):
    """A recorded sequence is missing, corrupt, or inconsistent."""


class PlatformModelError(ReproError):
    """A SoC/board model was queried outside its calibrated domain.

    For example: asking the GAP9 performance model for a core count the
    calibration does not cover, or a memory placement that does not fit.
    """


class EvaluationError(ReproError):
    """An evaluation run was set up inconsistently (e.g. empty sweep)."""
