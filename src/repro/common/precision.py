"""Numeric-precision policies for the memory-optimized MCL variants.

The paper evaluates three implementations (Sec. IV-C):

* ``fp32``    — 32-bit floats for the EDT and for particle state/weights,
* ``fp32qm``  — 8-bit quantized EDT ("qm" = quantized map), fp32 particles,
* ``fp16qm``  — 8-bit quantized EDT and 16-bit half-precision particles.

This module centralizes what those modes mean numerically:

* :class:`PrecisionMode` names the variant and knows its storage dtypes and
  per-particle / per-cell byte costs (used by the Fig. 9 memory model),
* :func:`quantize_distances` / :func:`dequantize_distances` implement the
  uint8 EDT encoding ``q = round(d / r_max * 255)``,
* :func:`round_to_storage` emulates GAP9's behaviour of computing in a wide
  register and writing back to a narrow storage type at kernel boundaries.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from .errors import ConfigurationError

#: Number of quantization levels of the uint8 EDT encoding.
QUANT_LEVELS = 256


class PrecisionMode(Enum):
    """The three evaluated implementations of the paper.

    The member value is the label used in the paper's figures, so series
    printed by the benchmark harness match Fig. 6-8 legends verbatim.
    """

    FP32 = "fp32"
    FP32_QM = "fp32qm"
    FP16_QM = "fp16qm"

    # ------------------------------------------------------------------
    # Storage dtypes
    # ------------------------------------------------------------------
    @property
    def particle_dtype(self) -> np.dtype:
        """Storage dtype of particle state and weight arrays."""
        if self is PrecisionMode.FP16_QM:
            return np.dtype(np.float16)
        return np.dtype(np.float32)

    @property
    def edt_quantized(self) -> bool:
        """Whether the distance field is stored as quantized uint8."""
        return self in (PrecisionMode.FP32_QM, PrecisionMode.FP16_QM)

    # ------------------------------------------------------------------
    # Memory accounting (paper Sec. III-C2 / Fig. 9)
    # ------------------------------------------------------------------
    @property
    def bytes_per_particle(self) -> int:
        """Bytes per particle including resampling double buffering.

        A particle is four numbers (x, y, yaw, weight).  fp32 costs
        16 bytes which doubles to 32 with the second buffer; fp16 costs
        8 bytes doubling to 16 (paper Sec. III-C2).
        """
        return 4 * 2 * self.particle_dtype.itemsize

    @property
    def bytes_per_map_cell(self) -> int:
        """Bytes per map cell: 1 byte occupancy + the EDT value.

        The 3-state occupancy needs 2 bits but is stored as one byte for
        access simplicity (paper Sec. III-C2).  The EDT adds 4 bytes in
        fp32 and 1 byte when quantized.
        """
        edt_bytes = 1 if self.edt_quantized else 4
        return 1 + edt_bytes

    @classmethod
    def from_label(cls, label: str) -> "PrecisionMode":
        """Parse a paper label such as ``"fp16qm"`` into a mode."""
        for mode in cls:
            if mode.value == label:
                return mode
        valid = ", ".join(m.value for m in cls)
        raise ConfigurationError(f"unknown precision mode {label!r}; expected one of: {valid}")


def quantize_distances(distances: np.ndarray, r_max: float) -> np.ndarray:
    """Encode truncated EDT values into uint8.

    ``q = round(clip(d, 0, r_max) / r_max * 255)``.  The encoding is exact at
    0 and ``r_max`` and has a worst-case absolute error of
    ``r_max / (2 * 255)`` (~2.9 mm for the paper's 1.5 m truncation), which
    is why the paper observes no accuracy loss.
    """
    if r_max <= 0:
        raise ConfigurationError(f"r_max must be positive, got {r_max}")
    clipped = np.clip(np.asarray(distances, dtype=np.float64), 0.0, r_max)
    return np.round(clipped / r_max * (QUANT_LEVELS - 1)).astype(np.uint8)


def dequantize_distances(codes: np.ndarray, r_max: float) -> np.ndarray:
    """Decode uint8 EDT codes back to metres (float32)."""
    if r_max <= 0:
        raise ConfigurationError(f"r_max must be positive, got {r_max}")
    return (np.asarray(codes, dtype=np.float32) * (np.float32(r_max) / (QUANT_LEVELS - 1)))


def quantization_step(r_max: float) -> float:
    """Size in metres of one uint8 quantization step."""
    return r_max / (QUANT_LEVELS - 1)


def round_to_storage(values: np.ndarray, mode: PrecisionMode) -> np.ndarray:
    """Round computed values to the mode's particle storage precision.

    Emulates writing fp32 intermediate results back to fp16 storage: the
    returned array has the storage dtype, so downstream arithmetic sees
    exactly the precision the on-board implementation would.
    """
    return np.asarray(values).astype(mode.particle_dtype)
