"""Evaluation: the paper's metrics, run harness and sweep protocol."""

from .aggregate import (
    SweepCell,
    SweepProtocol,
    SweepResult,
    build_shared_fields,
    run_sweep,
)
from .bench import compare_backends, write_backend_report
from .campaign import (
    CampaignCell,
    CampaignRunSummary,
    CampaignSpec,
    aggregate_report,
    campaign_status,
    load_campaign,
    run_campaign,
    shard_cells,
)
from .diagnostics import (
    BeliefMode,
    FilterTrace,
    belief_modes,
    trace_filter_health,
)
from .metrics import (
    CONVERGENCE_POSITION_M,
    CONVERGENCE_YAW_RAD,
    SUCCESS_ATE_LIMIT_M,
    AggregateMetrics,
    RunMetrics,
    convergence_curve,
    evaluate_run,
    first_convergence_index,
)
from .runner import RunResult, run_localization, run_localization_batch
from .store import CampaignStore, campaigns_root, list_campaigns
from .sweep_engine import DistanceFieldCache, SweepEngine

__all__ = [
    "compare_backends",
    "write_backend_report",
    "CampaignCell",
    "CampaignRunSummary",
    "CampaignSpec",
    "CampaignStore",
    "aggregate_report",
    "campaign_status",
    "campaigns_root",
    "list_campaigns",
    "load_campaign",
    "run_campaign",
    "shard_cells",
    "DistanceFieldCache",
    "SweepEngine",
    "run_localization_batch",
    "SweepCell",
    "SweepProtocol",
    "SweepResult",
    "build_shared_fields",
    "run_sweep",
    "BeliefMode",
    "FilterTrace",
    "belief_modes",
    "trace_filter_health",
    "CONVERGENCE_POSITION_M",
    "CONVERGENCE_YAW_RAD",
    "SUCCESS_ATE_LIMIT_M",
    "AggregateMetrics",
    "RunMetrics",
    "convergence_curve",
    "evaluate_run",
    "first_convergence_index",
    "RunResult",
    "run_localization",
]
