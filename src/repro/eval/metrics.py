"""The paper's evaluation metrics (Sec. IV-A).

Three accuracy aspects are measured:

* **Convergence**: the estimate first comes within 0.2 m *and* 36° of the
  ground-truth pose;
* **Success**: "the pose tracking remains reliable from convergence until
  the end of the sequence, meaning that the ATE does not exceed 1 m";
* **ATE after convergence**: the absolute trajectory error over the
  post-convergence segment (we report the mean — the paper quotes "mean
  localization errors" when comparing to UWB — and the RMSE alongside).

:func:`convergence_curve` turns many runs into the Fig. 8 empirical
probability-of-convergence-over-time series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..common.errors import EvaluationError

#: Convergence thresholds (paper: "within a distance of (36° / 0.2 m)").
CONVERGENCE_POSITION_M = 0.2
CONVERGENCE_YAW_RAD = math.radians(36.0)

#: Tracking is lost (run unsuccessful) if post-convergence error exceeds this.
SUCCESS_ATE_LIMIT_M = 1.0


@dataclass
class RunMetrics:
    """Scalar metrics of one localization run."""

    converged: bool
    convergence_time_s: float | None
    success: bool
    ate_mean_m: float
    ate_rmse_m: float
    ate_max_m: float
    yaw_mean_rad: float

    @staticmethod
    def failed() -> "RunMetrics":
        """Metrics of a run that never converged."""
        nan = float("nan")
        return RunMetrics(
            converged=False,
            convergence_time_s=None,
            success=False,
            ate_mean_m=nan,
            ate_rmse_m=nan,
            ate_max_m=nan,
            yaw_mean_rad=nan,
        )


def first_convergence_index(
    position_errors: np.ndarray,
    yaw_errors: np.ndarray,
    position_threshold: float = CONVERGENCE_POSITION_M,
    yaw_threshold: float = CONVERGENCE_YAW_RAD,
) -> int | None:
    """Index of the first sample meeting both convergence thresholds."""
    hits = (position_errors < position_threshold) & (yaw_errors < yaw_threshold)
    indices = np.nonzero(hits)[0]
    if indices.size == 0:
        return None
    return int(indices[0])


def evaluate_run(
    timestamps: np.ndarray,
    position_errors: np.ndarray,
    yaw_errors: np.ndarray,
) -> RunMetrics:
    """Compute the paper's metrics for one error trajectory.

    All three arrays must be aligned per observation instant.
    """
    timestamps = np.asarray(timestamps, dtype=np.float64)
    position_errors = np.asarray(position_errors, dtype=np.float64)
    yaw_errors = np.asarray(yaw_errors, dtype=np.float64)
    if not (timestamps.shape == position_errors.shape == yaw_errors.shape):
        raise EvaluationError("metric arrays must share one shape")
    if timestamps.size == 0:
        raise EvaluationError("cannot evaluate an empty run")

    start = first_convergence_index(position_errors, yaw_errors)
    if start is None:
        return RunMetrics.failed()

    post_position = position_errors[start:]
    post_yaw = yaw_errors[start:]
    ate_max = float(post_position.max())
    return RunMetrics(
        converged=True,
        convergence_time_s=float(timestamps[start] - timestamps[0]),
        success=ate_max <= SUCCESS_ATE_LIMIT_M,
        ate_mean_m=float(post_position.mean()),
        ate_rmse_m=float(np.sqrt(np.mean(post_position**2))),
        ate_max_m=ate_max,
        yaw_mean_rad=float(post_yaw.mean()),
    )


def evaluate_partial_run(
    timestamps: np.ndarray,
    position_errors: np.ndarray,
    yaw_errors: np.ndarray,
) -> RunMetrics | None:
    """Metrics of a *live* trace prefix (serve-layer session queries).

    Unlike :func:`evaluate_run`, an empty prefix is a legal state for a
    session that has not been stepped yet — it yields ``None`` rather
    than an error.  A non-empty prefix is evaluated exactly like a
    finished run: the metrics are "as if the run ended here", so
    ``success`` may still flip while the session keeps streaming.
    """
    if np.asarray(timestamps).size == 0:
        return None
    return evaluate_run(timestamps, position_errors, yaw_errors)


def convergence_curve(
    convergence_times: list[float | None],
    horizon_s: float,
    resolution_s: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical P(converged by t) over a set of runs (Fig. 8).

    Runs that never converged count as never-converging mass (the curve
    saturates below 1).  Returns ``(times, probabilities)``.
    """
    if horizon_s <= 0 or resolution_s <= 0:
        raise EvaluationError("horizon and resolution must be positive")
    if not convergence_times:
        raise EvaluationError("need at least one run")
    times = np.arange(0.0, horizon_s + resolution_s / 2, resolution_s)
    total = len(convergence_times)
    probabilities = np.empty_like(times)
    for i, t in enumerate(times):
        converged = sum(
            1 for ct in convergence_times if ct is not None and ct <= t
        )
        probabilities[i] = converged / total
    return times, probabilities


@dataclass
class AggregateMetrics:
    """Paper-style aggregation over runs (sequences x seeds)."""

    run_metrics: list[RunMetrics] = field(default_factory=list)

    def add(self, metrics: RunMetrics) -> None:
        self.run_metrics.append(metrics)

    @property
    def run_count(self) -> int:
        return len(self.run_metrics)

    @property
    def success_rate(self) -> float:
        """Fraction of successful runs, in [0, 1] (Fig. 7 series)."""
        if not self.run_metrics:
            raise EvaluationError("no runs aggregated")
        return sum(1 for m in self.run_metrics if m.success) / self.run_count

    @property
    def mean_ate_m(self) -> float:
        """Mean ATE over converged runs (Fig. 6 series).

        Runs that never converged have no defined ATE; like the paper's
        figure, the average is over runs that produced a trajectory.
        Returns NaN when no run converged.
        """
        values = [m.ate_mean_m for m in self.run_metrics if m.converged]
        if not values:
            return float("nan")
        return float(np.mean(values))

    @property
    def convergence_times(self) -> list[float | None]:
        """Per-run convergence instants (None = never), for Fig. 8."""
        return [m.convergence_time_s for m in self.run_metrics]
