"""Append-only, atomic on-disk result store for sweep campaigns.

A campaign's results live under ``REPRO_RESULTS_DIR/campaigns/<name>/``:

* ``manifest.json`` — the declarative campaign spec, written once when
  the campaign starts; resumed runs must present an identical spec.
* ``cells/<key>.json`` — one file per completed cell, keyed by the
  cell's stable content key (scenario spec id, canonical config spec,
  particle count and protocol seeds; ablated configs additionally fold
  in their :meth:`~repro.core.config.MclConfig.fingerprint`, while pure
  paper variants at default parameters keep the legacy key so old
  stores stay resumable; never the backend or job count — those only
  pick an execution strategy).

**Invariants** (these are what make campaigns resumable and the store
byte-comparable):

* *Atomicity* — every file is written to a ``*.tmp`` sibling and
  ``os.replace``-d into place, so a killed campaign leaves either a
  complete cell file or no cell file, never a torn one.  Leftover
  ``*.tmp`` files and unparseable cell files are treated as absent and
  swept by :meth:`CampaignStore.recover`.
* *Determinism* — payloads are serialized as canonical JSON (sorted
  keys, fixed indentation, NaN mapped to ``null`` before encoding, one
  trailing newline).  Because the filter backends are bitwise
  equivalent and run order inside a cell is fixed, the bytes of every
  cell file are a pure function of the cell key: ``jobs=1`` vs
  ``jobs=N``, fresh vs resumed, ``reference`` vs ``batched`` all
  produce **byte-identical** stores.
* *Append-only* — a completed cell is never rewritten; re-putting an
  existing key verifies the bytes instead (a mismatch means the
  equivalence contract was broken and raises).
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Any, Iterator

from ..common.atomics import atomic_create, atomic_write
from ..common.errors import ConfigurationError, EvaluationError
from ..viz.export import results_directory

#: Store format version, recorded in every manifest.
STORE_VERSION = 1

#: Minimum age before :meth:`CampaignStore.recover` treats a ``*.tmp``
#: file as abandoned.  Younger tmp files may belong to a concurrently
#: running writer mid-``atomic_write`` (several processes may legally
#: share one store); deleting those would crash that writer's publish.
TMP_GRACE_S = 300.0


def campaigns_root() -> Path:
    """Directory holding all campaign stores (``REPRO_RESULTS_DIR``)."""
    return results_directory() / "campaigns"


def sanitize_nan(value: Any) -> Any:
    """Recursively map NaN/inf floats to ``None`` for canonical JSON.

    ``json`` would happily emit the non-standard tokens ``NaN`` and
    ``Infinity``; mapping them to ``null`` keeps cell files valid JSON
    and keeps "no value" representable in every reader.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: sanitize_nan(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_nan(item) for item in value]
    return value


def canonical_json_bytes(payload: dict) -> bytes:
    """Encode a payload as canonical (byte-stable) JSON.

    Sorted keys and fixed indentation make the encoding independent of
    construction order; :func:`sanitize_nan` runs first so the encoder
    can reject any remaining non-finite float (``allow_nan=False``).
    """
    text = json.dumps(
        sanitize_nan(payload), sort_keys=True, indent=2, allow_nan=False
    )
    return (text + "\n").encode("utf-8")


class CampaignStore:
    """One campaign's on-disk results: a manifest plus per-cell files."""

    def __init__(self, name: str, root: str | Path | None = None) -> None:
        if not name or "/" in name or name.startswith("."):
            raise ConfigurationError(
                f"campaign name must be a plain directory name, got {name!r}"
            )
        self.name = name
        self.root = Path(root) if root is not None else campaigns_root() / name

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @property
    def cells_dir(self) -> Path:
        return self.root / "cells"

    def cell_path(self, key: str) -> Path:
        return self.cells_dir / f"{key}.json"

    def exists(self) -> bool:
        return self.manifest_path.exists()

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def write_manifest(self, manifest: dict) -> None:
        """Record the campaign spec (first run) or verify it (resume).

        The manifest pins what the cell keys were derived from; letting
        a resumed run proceed under a different spec would silently mix
        incompatible cells in one store.
        """
        manifest = dict(manifest, store_version=STORE_VERSION)
        data = canonical_json_bytes(manifest)
        if atomic_create(self.manifest_path, data):
            return
        # Exactly one racing creator wins; everyone else (including this
        # late re-check) must match the published spec byte for byte.
        if self.manifest_path.read_bytes() != data:
            raise EvaluationError(
                f"campaign {self.name!r} already exists with a different "
                f"spec; choose a new name or delete {self.root}"
            )

    def read_manifest(self) -> dict:
        if not self.manifest_path.exists():
            raise EvaluationError(
                f"campaign {self.name!r} not found under {self.root.parent}"
            )
        return json.loads(self.manifest_path.read_text())

    # ------------------------------------------------------------------
    # Cells
    # ------------------------------------------------------------------
    def put_cell(self, key: str, payload: dict) -> Path:
        """Stream one finished cell into the store (atomic, append-only).

        Re-putting an existing key is a no-op when the bytes match and an
        error when they do not — a byte mismatch for the same content key
        means determinism was lost somewhere below the store.
        """
        path = self.cell_path(key)
        data = canonical_json_bytes(payload)
        if path.exists():
            if path.read_bytes() != data:
                raise EvaluationError(
                    f"cell {key} already stored with different bytes — "
                    "determinism violation (backend or protocol drift?)"
                )
            return path
        atomic_write(path, data)
        return path

    def put_cell_bytes(self, key: str, data: bytes) -> Path:
        """Append one cell's *already-canonical* bytes (merge/copy path).

        Same append-only semantics as :meth:`put_cell`, but trusts the
        caller to supply canonical JSON produced by another store —
        verifying it parses — instead of re-encoding a payload.  This is
        what lets ``campaign merge`` union stores byte-for-byte.
        """
        try:
            json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise EvaluationError(
                f"cell {key} bytes are not valid JSON — refusing to merge "
                f"a torn source file: {exc}"
            ) from exc
        path = self.cell_path(key)
        if path.exists():
            if path.read_bytes() != data:
                raise EvaluationError(
                    f"cell {key} already stored with different bytes — "
                    "the two stores disagree (determinism violation or "
                    "mismatched campaign specs)"
                )
            return path
        atomic_write(path, data)
        return path

    def get_cell(self, key: str) -> dict | None:
        """Load one cell, or ``None`` if absent or unreadable (partial)."""
        return self._load(self.cell_path(key))

    def has_cell(self, key: str) -> bool:
        return self.get_cell(key) is not None

    def completed_keys(self) -> set[str]:
        """Keys of every *valid* completed cell file.

        Unparseable files (torn writes from a crashed process that
        somehow bypassed the atomic path) do not count as completed, so
        a resumed campaign re-executes them.
        """
        keys = set()
        if not self.cells_dir.is_dir():
            return keys
        for path in sorted(self.cells_dir.glob("*.json")):
            if self._load(path) is not None:
                keys.add(path.stem)
        return keys

    def iter_cells(self) -> Iterator[tuple[str, dict]]:
        """Yield ``(key, payload)`` for every valid cell, sorted by key."""
        if not self.cells_dir.is_dir():
            return
        for path in sorted(self.cells_dir.glob("*.json")):
            payload = self._load(path)
            if payload is not None:
                yield path.stem, payload

    def recover(self, tmp_grace_s: float = TMP_GRACE_S) -> list[str]:
        """Sweep partial files; returns the names of removed files.

        Removes abandoned ``*.tmp`` leftovers (interrupted atomic writes
        older than ``tmp_grace_s`` — younger ones may belong to a live
        concurrent writer and are left alone) and cell files that no
        longer parse as JSON.  Safe to call at the start of every run —
        a healthy store loses nothing.
        """
        removed = []
        now = time.time()
        tmp_dirs = [d for d in (self.root, self.cells_dir) if d.is_dir()]
        for path in sorted(p for d in tmp_dirs for p in d.glob("*.tmp")):
            try:
                if now - path.stat().st_mtime < tmp_grace_s:
                    continue
                path.unlink()
            except OSError:
                continue  # already published or swept by another process
            removed.append(path.name)
        if not self.cells_dir.is_dir():
            return removed
        for path in sorted(self.cells_dir.glob("*.json")):
            if self._load(path) is None:
                path.unlink(missing_ok=True)
                removed.append(path.name)
        return removed

    @staticmethod
    def _load(path: Path) -> dict | None:
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def __len__(self) -> int:
        return len(self.completed_keys())


def list_campaigns(root: str | Path | None = None) -> list[str]:
    """Names of every campaign with a manifest under the results root."""
    base = Path(root) if root is not None else campaigns_root()
    if not base.is_dir():
        return []
    return sorted(
        entry.name
        for entry in base.iterdir()
        if (entry / "manifest.json").exists()
    )
