"""Append-only, atomic on-disk result store for sweep campaigns.

A campaign's results live under ``REPRO_RESULTS_DIR/campaigns/<name>/``:

* ``manifest.json`` — the declarative campaign spec, written once when
  the campaign starts; resumed runs must present an identical spec.
* ``cells/<key>.json`` — the **file tier**: one file per completed cell,
  keyed by the cell's stable content key (scenario spec id, canonical
  config spec, particle count and protocol seeds; ablated configs
  additionally fold in their
  :meth:`~repro.core.config.MclConfig.fingerprint`, while pure paper
  variants at default parameters keep the legacy key so old stores stay
  resumable; never the backend or job count — those only pick an
  execution strategy).
* ``segments/seg-NNNNNN.seg`` — the **packed tier**: append-only segment
  files of length-prefixed cell records, each with a write-once
  ``*.seg.idx.json`` sidecar mapping content keys to byte ranges.  This
  is the million-cell shape: ``put_cell`` is an append instead of a file
  create, ``completed_keys`` reads one sidecar per segment instead of
  statting and parsing every cell, and :meth:`CampaignStore.stream_cells`
  scans segments sequentially in memory bounded by one segment, not by
  the store.

**Two tiers, one contract.**  A record's payload bytes are exactly the
canonical JSON the file tier would write for the same key, so the two
tiers are byte-interchangeable: reads merge both, ``merge`` and
``compact`` move cells between them byte-for-byte, and every invariant
below holds regardless of tier.  Tier selection: ``tier="file"`` and
``tier="packed"`` force a write tier; the default ``tier="auto"``
appends packed iff ``segments/`` already exists — so legacy stores keep
their layout and a store created packed stays packed, with no flag
re-required on resume.

**Invariants** (these are what make campaigns resumable and the store
byte-comparable):

* *Atomicity* — file-tier cells and index sidecars are written to a
  ``*.tmp`` sibling and ``os.replace``-d into place; segments are
  appended as ``seg-NNNNNN.open`` and renamed to ``.seg`` once sealed.
  A killed campaign leaves either a complete record or a torn tail that
  recovery truncates — completed cells are never lost, partial ones
  never count.  Leftover ``*.tmp`` files, unparseable cell files and
  torn segment tails are swept by :meth:`CampaignStore.recover`.
* *Determinism* — payloads are serialized as canonical JSON (sorted
  keys, fixed indentation, NaN mapped to ``null`` before encoding, one
  trailing newline).  Because the filter backends are bitwise
  equivalent and run order inside a cell is fixed, the bytes of every
  cell payload are a pure function of the cell key: ``jobs=1`` vs
  ``jobs=N``, fresh vs resumed, ``reference`` vs ``batched``, file tier
  vs packed tier all produce **byte-identical** cells.
* *Append-only* — a completed cell is never rewritten; re-putting an
  existing key verifies the bytes instead (a mismatch means the
  equivalence contract was broken and raises).

The packed tier is **single-writer by contract**: ``run_campaign``
funnels every ``put_cell`` through the parent process even when cells
execute on a pool, and shards write disjoint stores that merge later.
A second concurrent packed writer is detected (the ``.open`` segment is
created with ``O_EXCL``) and refused.  Multi-process *readers* are
always safe: sealed segments and sidecars are immutable once published.
"""

from __future__ import annotations

import json
import math
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from .. import obs
from ..common.atomics import atomic_create, atomic_write
from ..common.errors import ConfigurationError, EvaluationError
from ..viz.export import results_directory

#: Store format version, recorded in every manifest.
STORE_VERSION = 1

#: Minimum age before :meth:`CampaignStore.recover` treats a ``*.tmp``
#: file (or a torn ``*.open`` segment) as abandoned.  Younger ones may
#: belong to a concurrently running writer mid-publish (several
#: processes may legally share one *file-tier* store); deleting those
#: would crash that writer's publish.
TMP_GRACE_S = 300.0

#: The write tiers a store can be asked for.  ``auto`` resolves to
#: ``packed`` iff the store already has a ``segments/`` directory.
STORE_TIERS = ("auto", "file", "packed")

#: Seal thresholds for packed segments.  Small enough that a segment
#: scan stays cache-friendly and a torn tail forfeits little work,
#: large enough that a 10^6-cell store is ~10^3 segments, not 10^6
#: files.
SEGMENT_MAX_BYTES = 1 << 20
SEGMENT_MAX_RECORDS = 1024

_SEGMENT_NAME = re.compile(r"^seg-(\d{6})\.(seg|open)$")
_KEY_PATTERN = re.compile(r"^[A-Za-z0-9._=-]+$")


def campaigns_root() -> Path:
    """Directory holding all campaign stores (``REPRO_RESULTS_DIR``)."""
    return results_directory() / "campaigns"


def sanitize_nan(value: Any) -> Any:
    """Recursively map NaN/inf floats to ``None`` for canonical JSON.

    ``json`` would happily emit the non-standard tokens ``NaN`` and
    ``Infinity``; mapping them to ``null`` keeps cell files valid JSON
    and keeps "no value" representable in every reader.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {key: sanitize_nan(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize_nan(item) for item in value]
    return value


def canonical_json_bytes(payload: dict) -> bytes:
    """Encode a payload as canonical (byte-stable) JSON.

    Sorted keys and fixed indentation make the encoding independent of
    construction order; :func:`sanitize_nan` runs first so the encoder
    can reject any remaining non-finite float (``allow_nan=False``).
    """
    text = json.dumps(
        sanitize_nan(payload), sort_keys=True, indent=2, allow_nan=False
    )
    return (text + "\n").encode("utf-8")


# ----------------------------------------------------------------------
# Packed-segment record format
# ----------------------------------------------------------------------
# One record per cell:  b"CELL <key> <payload_len>\n" + payload.  The
# payload is byte-identical to the file the file tier would write for
# the same key, so slicing a record out of a segment *is* reading the
# cell file.  The header is self-delimiting ASCII: a sequential scan
# needs no index, and a torn tail (crash mid-append) is detected as the
# first record whose header is malformed or whose payload runs past
# end-of-file — everything before it is intact by append order.


def _encode_record(key: str, data: bytes) -> bytes:
    if not _KEY_PATTERN.match(key):
        raise ConfigurationError(
            f"cell key {key!r} is not a plain content key"
        )
    return b"CELL %s %d\n" % (key.encode("ascii"), len(data)) + data


def _scan_records(
    blob: bytes, validate_json: bool = False
) -> tuple[list[tuple[str, int, int]], int]:
    """Parse the valid record prefix of a segment blob.

    Returns ``([(key, payload_offset, payload_length), ...], valid_bytes)``
    — the scan stops at the first structural break (torn header, short
    payload, or, with ``validate_json``, an unparseable payload), so
    ``valid_bytes`` is the length recovery may truncate the segment to.
    """
    records: list[tuple[str, int, int]] = []
    pos = 0
    size = len(blob)
    while pos < size:
        newline = blob.find(b"\n", pos)
        if newline == -1:
            break
        header = blob[pos:newline].split(b" ")
        if len(header) != 3 or header[0] != b"CELL":
            break
        try:
            key = header[1].decode("ascii")
            length = int(header[2])
        except (UnicodeDecodeError, ValueError):
            break
        start = newline + 1
        end = start + length
        if length < 0 or end > size:
            break
        if validate_json:
            try:
                json.loads(blob[start:end])
            except (UnicodeDecodeError, json.JSONDecodeError):
                break
        records.append((key, start, length))
        pos = end
    return records, pos


def _sidecar_path(segment: Path) -> Path:
    return segment.with_name(segment.name + ".idx.json")


def _load_sidecar_payload(segment: Path) -> dict | None:
    """A sealed segment's raw sidecar payload, size-checked.

    The sidecar is trusted only when its recorded size matches the
    segment on disk — a mismatch (or a missing/torn sidecar, e.g. a
    crash between seal and index publish) silently degrades to a
    sequential rescan, so the index is a pure accelerator and never an
    additional source of truth.
    """
    try:
        payload = json.loads(_sidecar_path(segment).read_text())
        if payload.get("bytes") != segment.stat().st_size:
            return None
        if not isinstance(payload.get("records"), dict):
            return None
        return payload
    except (OSError, json.JSONDecodeError, ValueError, KeyError, TypeError):
        return None


def _load_sidecar(segment: Path) -> dict[str, tuple[int, int]] | None:
    """A sealed segment's key index, or ``None`` when it must be rescanned."""
    payload = _load_sidecar_payload(segment)
    if payload is None:
        return None
    try:
        return {
            key: (int(span[0]), int(span[1]))
            for key, span in payload["records"].items()
        }
    except (ValueError, TypeError, IndexError):
        return None


def _seal_segment(
    open_path: Path, records: list[tuple[str, int, int]], total_bytes: int
) -> Path:
    """Publish an ``.open`` segment: rename to ``.seg``, write its index."""
    final = open_path.with_suffix(".seg")
    os.replace(open_path, final)
    sidecar = {
        "bytes": total_bytes,
        "records": {key: [offset, length] for key, offset, length in records},
    }
    atomic_write(_sidecar_path(final), canonical_json_bytes(sidecar))
    obs.counter("store.segments_sealed").inc()
    return final


class _SegmentWriter:
    """Appender for the packed tier (single-writer by contract).

    Records go to a ``seg-NNNNNN.open`` file, flushed per append so a
    crash loses at most the torn tail of the last record; the segment is
    fsynced and renamed to ``.seg`` (then indexed) when it reaches the
    seal thresholds or the writer closes.  On open, any abandoned
    ``.open`` segment from a crashed predecessor is recovered: its valid
    record prefix is sealed, its torn tail truncated away.
    """

    def __init__(self, store: "CampaignStore") -> None:
        self._store = store
        self._dir = store.segments_dir
        self._dir.mkdir(parents=True, exist_ok=True)
        self._handle = None
        self._path: Path | None = None
        self._records: list[tuple[str, int, int]] = []
        self._bytes = 0
        self._recover_open_segments()

    def _recover_open_segments(self) -> None:
        for path in sorted(self._dir.glob("seg-*.open")):
            blob = path.read_bytes()
            records, valid = _scan_records(blob, validate_json=True)
            if not records:
                path.unlink(missing_ok=True)
                continue
            if valid != len(blob):
                with open(path, "r+b") as handle:
                    handle.truncate(valid)
                    os.fsync(handle.fileno())
            _seal_segment(path, records, valid)

    def _next_sequence(self) -> int:
        highest = -1
        for path in self._dir.iterdir():
            match = _SEGMENT_NAME.match(path.name)
            if match:
                highest = max(highest, int(match.group(1)))
        return highest + 1

    def _open_segment(self) -> None:
        path = self._dir / f"seg-{self._next_sequence():06d}.open"
        try:
            self._handle = open(path, "xb")
        except FileExistsError:
            raise EvaluationError(
                f"packed store {self._store.name!r} already has an active "
                f"writer ({path.name} exists) — the packed tier is "
                "single-writer; shard the campaign instead"
            ) from None
        self._path = path
        self._records = []
        self._bytes = 0

    def append(self, key: str, data: bytes) -> tuple[Path, int, int]:
        """Append one record; returns its ``(segment, offset, length)``."""
        if self._handle is None:
            self._open_segment()
        record = _encode_record(key, data)
        offset = self._bytes + (len(record) - len(data))
        self._handle.write(record)
        self._handle.flush()
        self._records.append((key, offset, len(data)))
        self._bytes = offset + len(data)
        obs.counter("store.segment_appends").inc()
        path = self._path
        if (
            self._bytes >= SEGMENT_MAX_BYTES
            or len(self._records) >= SEGMENT_MAX_RECORDS
        ):
            path = self.seal()
        return path, offset, len(data)

    def seal(self) -> Path:
        """Fsync, close and publish the active segment; returns its path."""
        assert self._handle is not None and self._path is not None
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        final = _seal_segment(self._path, self._records, self._bytes)
        self._store._relocate_index(self._records, final)
        self._handle = None
        self._path = None
        self._records = []
        self._bytes = 0
        return final

    def close(self) -> None:
        if self._handle is None:
            return
        if self._records:
            self.seal()
        else:
            self._handle.close()
            self._path.unlink(missing_ok=True)
            self._handle = None
            self._path = None


@dataclass
class CompactSummary:
    """What one :meth:`CampaignStore.compact` call did."""

    packed: int
    already_packed: int
    verified: int
    removed_files: int
    skipped_invalid: int


class CampaignStore:
    """One campaign's on-disk results: a manifest plus keyed cells.

    Cells live in one or both of two tiers (file-per-cell and packed
    segments — see the module docstring); every read merges them and
    every cell's payload bytes are identical in either, so the tier is
    an implementation detail of throughput, never of content.
    """

    def __init__(
        self,
        name: str,
        root: str | Path | None = None,
        tier: str = "auto",
    ) -> None:
        if not name or "/" in name or name.startswith("."):
            raise ConfigurationError(
                f"campaign name must be a plain directory name, got {name!r}"
            )
        if tier not in STORE_TIERS:
            raise ConfigurationError(
                f"store tier must be one of {STORE_TIERS}, got {tier!r}"
            )
        self.name = name
        self.tier = tier
        self.root = Path(root) if root is not None else campaigns_root() / name
        self._index_cache: dict[str, tuple[Path, int, int]] | None = None
        self._writer: _SegmentWriter | None = None

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @property
    def cells_dir(self) -> Path:
        return self.root / "cells"

    @property
    def segments_dir(self) -> Path:
        return self.root / "segments"

    def cell_path(self, key: str) -> Path:
        return self.cells_dir / f"{key}.json"

    def exists(self) -> bool:
        return self.manifest_path.exists()

    def write_tier(self) -> str:
        """The tier :meth:`put_cell` appends to (``file`` or ``packed``).

        ``auto`` sticks to whatever the store already is: packed iff
        ``segments/`` exists.  The marker directory (not the manifest)
        carries the tier so shard stores of one campaign may mix tiers
        and still merge — manifests stay byte-comparable.
        """
        if self.tier != "auto":
            return self.tier
        return "packed" if self.segments_dir.is_dir() else "file"

    # ------------------------------------------------------------------
    # Writer lifecycle (packed tier)
    # ------------------------------------------------------------------
    def _segment_writer(self) -> _SegmentWriter:
        if self._writer is None:
            self._writer = _SegmentWriter(self)
            self._index_cache = None  # recovery may have sealed segments
        return self._writer

    def close(self) -> None:
        """Seal any active segment.  Idempotent; reads need no close."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Packed-tier index
    # ------------------------------------------------------------------
    def _packed_index(self) -> dict[str, tuple[Path, int, int]]:
        if self._index_cache is None:
            self._index_cache = self._build_packed_index()
        return self._index_cache

    def _build_packed_index(self) -> dict[str, tuple[Path, int, int]]:
        index: dict[str, tuple[Path, int, int]] = {}
        if not self.segments_dir.is_dir():
            return index
        for segment in sorted(self.segments_dir.glob("seg-*.seg")):
            sidecar = _load_sidecar(segment)
            if sidecar is not None:
                obs.counter("store.index_hits").inc()
                for key, (offset, length) in sidecar.items():
                    index[key] = (segment, offset, length)
                continue
            obs.counter("store.index_rescans").inc()
            records, _ = _scan_records(segment.read_bytes(), validate_json=True)
            for key, offset, length in records:
                index[key] = (segment, offset, length)
        for segment in sorted(self.segments_dir.glob("seg-*.open")):
            records, _ = _scan_records(segment.read_bytes(), validate_json=True)
            for key, offset, length in records:
                index[key] = (segment, offset, length)
        return index

    def _packed_keys(self) -> set[str]:
        """Keys of every packed record, without building the full index.

        The resume-scan fast path: reads each sealed segment's sidecar
        for its key set only, skipping the per-record ``(path, offset,
        length)`` materialization of :meth:`_packed_index`.  Falls back
        to the same sequential rescan on any untrusted sidecar, and to
        the cached index when one is already built.
        """
        if self._index_cache is not None:
            return set(self._index_cache)
        keys: set[str] = set()
        if not self.segments_dir.is_dir():
            return keys
        for segment in sorted(self.segments_dir.glob("seg-*.seg")):
            payload = _load_sidecar_payload(segment)
            if payload is not None:
                obs.counter("store.index_hits").inc()
                keys.update(payload["records"])
                continue
            obs.counter("store.index_rescans").inc()
            records, _ = _scan_records(segment.read_bytes(), validate_json=True)
            keys.update(key for key, _, _ in records)
        for segment in sorted(self.segments_dir.glob("seg-*.open")):
            records, _ = _scan_records(segment.read_bytes(), validate_json=True)
            keys.update(key for key, _, _ in records)
        return keys

    def _relocate_index(
        self, records: list[tuple[str, int, int]], segment: Path
    ) -> None:
        """Repoint just-sealed records from the ``.open`` path to ``.seg``."""
        if self._index_cache is None:
            return
        for key, offset, length in records:
            self._index_cache[key] = (segment, offset, length)

    def _read_packed(self, location: tuple[Path, int, int]) -> bytes | None:
        path, offset, length = location
        try:
            with open(path, "rb") as handle:
                handle.seek(offset)
                data = handle.read(length)
        except OSError:
            return None
        return data if len(data) == length else None

    def _segment_paths(self) -> list[Path]:
        if not self.segments_dir.is_dir():
            return []
        return sorted(self.segments_dir.glob("seg-*.seg")) + sorted(
            self.segments_dir.glob("seg-*.open")
        )

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def write_manifest(self, manifest: dict) -> None:
        """Record the campaign spec (first run) or verify it (resume).

        The manifest pins what the cell keys were derived from; letting
        a resumed run proceed under a different spec would silently mix
        incompatible cells in one store.
        """
        manifest = dict(manifest, store_version=STORE_VERSION)
        data = canonical_json_bytes(manifest)
        if self.tier == "packed":
            # Publish the tier marker with the manifest so resumed runs
            # (tier="auto") keep appending packed without the flag.
            self.segments_dir.mkdir(parents=True, exist_ok=True)
        if atomic_create(self.manifest_path, data):
            return
        # Exactly one racing creator wins; everyone else (including this
        # late re-check) must match the published spec byte for byte.
        if self.manifest_path.read_bytes() != data:
            raise EvaluationError(
                f"campaign {self.name!r} already exists with a different "
                f"spec; choose a new name or delete {self.root}"
            )

    def read_manifest(self) -> dict:
        if not self.manifest_path.exists():
            raise EvaluationError(
                f"campaign {self.name!r} not found under {self.root.parent}"
            )
        return json.loads(self.manifest_path.read_text())

    # ------------------------------------------------------------------
    # Cells
    # ------------------------------------------------------------------
    def put_cell(self, key: str, payload: dict) -> Path:
        """Stream one finished cell into the store (atomic, append-only).

        Re-putting an existing key is a no-op when the bytes match and an
        error when they do not — a byte mismatch for the same content key
        means determinism was lost somewhere below the store.
        """
        return self._put_bytes(
            key,
            canonical_json_bytes(payload),
            "determinism violation (backend or protocol drift?)",
        )

    def put_cell_bytes(self, key: str, data: bytes) -> Path:
        """Append one cell's *already-canonical* bytes (merge/copy path).

        Same append-only semantics as :meth:`put_cell`, but trusts the
        caller to supply canonical JSON produced by another store —
        verifying it parses — instead of re-encoding a payload.  This is
        what lets ``campaign merge`` union stores byte-for-byte.
        """
        try:
            json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise EvaluationError(
                f"cell {key} bytes are not valid JSON — refusing to merge "
                f"a torn source file: {exc}"
            ) from exc
        return self._put_bytes(
            key,
            data,
            "the two stores disagree (determinism violation or "
            "mismatched campaign specs)",
        )

    def _put_bytes(self, key: str, data: bytes, mismatch: str) -> Path:
        location = self._packed_index().get(key)
        if location is not None:
            if self._read_packed(location) != data:
                raise EvaluationError(
                    f"cell {key} already stored with different bytes — "
                    f"{mismatch}"
                )
            return location[0]
        path = self.cell_path(key)
        if path.exists():
            if path.read_bytes() != data:
                raise EvaluationError(
                    f"cell {key} already stored with different bytes — "
                    f"{mismatch}"
                )
            return path
        if self.write_tier() == "packed":
            segment, offset, length = self._segment_writer().append(key, data)
            self._packed_index()[key] = (segment, offset, length)
            return segment
        atomic_write(path, data)
        return path

    def get_cell_bytes(self, key: str) -> bytes | None:
        """One cell's raw payload bytes from either tier, or ``None``.

        Packed records are preferred (both tiers hold identical bytes
        for any key present in both); file-tier bytes are returned as-is
        even if torn — callers that need validity use :meth:`get_cell`.
        """
        location = self._packed_index().get(key)
        if location is not None:
            data = self._read_packed(location)
            if data is not None:
                return data
        try:
            return self.cell_path(key).read_bytes()
        except OSError:
            return None

    def get_cell(self, key: str) -> dict | None:
        """Load one cell, or ``None`` if absent or unreadable (partial)."""
        data = self.get_cell_bytes(key)
        if data is None:
            return None
        try:
            return json.loads(data)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None

    def has_cell(self, key: str) -> bool:
        return self.get_cell(key) is not None

    def completed_keys(self) -> set[str]:
        """Keys of every *valid* completed cell, across both tiers.

        On the packed tier this is one sidecar read per sealed segment —
        O(segments), not O(cells) — which is what keeps ``--resume`` on
        a 10^5-cell store at milliseconds instead of a directory scan.
        File-tier cells are still parse-validated individually:
        unparseable files (torn writes from a crashed process that
        somehow bypassed the atomic path) do not count as completed, so
        a resumed campaign re-executes them.
        """
        keys = self._packed_keys()
        if not self.cells_dir.is_dir():
            return keys
        for path in sorted(self.cells_dir.glob("*.json")):
            if path.stem not in keys and self._load(path) is not None:
                keys.add(path.stem)
        return keys

    def iter_cells(self) -> Iterator[tuple[str, dict]]:
        """Yield ``(key, payload)`` for every valid cell, sorted by key.

        Key-sorted means random access into segments; a per-call handle
        cache keeps that at one open file per segment.  Prefer
        :meth:`stream_cells` when order does not matter — it scans
        sequentially in memory bounded by one segment.
        """
        index = self._packed_index()
        keys = set(index)
        if self.cells_dir.is_dir():
            keys.update(path.stem for path in self.cells_dir.glob("*.json"))
        handles: dict[Path, Any] = {}
        try:
            for key in sorted(keys):
                location = index.get(key)
                if location is not None:
                    segment, offset, length = location
                    handle = handles.get(segment)
                    if handle is None:
                        handle = handles[segment] = open(segment, "rb")
                    handle.seek(offset)
                    data = handle.read(length)
                    payload = self._parse(data)
                else:
                    payload = self._load(self.cell_path(key))
                if payload is not None:
                    yield key, payload
        finally:
            for handle in handles.values():
                handle.close()

    def iter_cell_bytes(self) -> Iterator[tuple[str, bytes]]:
        """Stream ``(key, raw payload bytes)`` across both tiers.

        Packed records come first via sequential segment scans (memory
        bounded by one segment); file-tier cells follow, skipping keys
        the packed tier already yielded (their bytes are identical by
        the append-only verify).  Torn *file* cells are yielded raw so
        merge accounting can count them; torn *segment tails* never
        yield — a record either scans whole or does not exist yet.
        """
        has_files = self.cells_dir.is_dir() and any(
            self.cells_dir.glob("*.json")
        )
        segments = self._segment_paths()
        packed_keys: set[str] | None = (
            set() if (has_files and segments) else None
        )
        for segment in segments:
            blob = segment.read_bytes()
            records, _ = _scan_records(blob, validate_json=True)
            for key, offset, length in records:
                if packed_keys is not None:
                    packed_keys.add(key)
                yield key, blob[offset : offset + length]
        if has_files:
            for path in sorted(self.cells_dir.glob("*.json")):
                if packed_keys is not None and path.stem in packed_keys:
                    continue
                yield path.stem, path.read_bytes()

    def stream_cells(self) -> Iterator[tuple[str, dict]]:
        """Yield ``(key, payload)`` in storage order, streaming.

        The workhorse of streaming ``status``/``report``: sequential
        segment scans, peak memory bounded by one segment (plus, only
        for transitional mixed-tier stores, a set of packed keys for
        cross-tier dedup).  Unparseable cells are skipped, matching
        :meth:`completed_keys`.
        """
        for key, data in self.iter_cell_bytes():
            payload = self._parse(data)
            if payload is not None:
                yield key, payload

    # ------------------------------------------------------------------
    # Maintenance: recovery and tier migration
    # ------------------------------------------------------------------
    def recover(self, tmp_grace_s: float = TMP_GRACE_S) -> list[str]:
        """Sweep partial artifacts; returns the names of repaired files.

        Removes abandoned ``*.tmp`` leftovers (interrupted atomic writes
        older than ``tmp_grace_s`` — younger ones may belong to a live
        concurrent writer and are left alone) and cell files that no
        longer parse as JSON.  Packed-tier repairs: torn segment tails
        are truncated to the valid record prefix (same grace rule for
        ``.open`` segments, which a live writer may be appending), empty
        torn segments are removed, and missing or stale index sidecars
        are rebuilt from a rescan.  Safe to call at the start of every
        run — a healthy store loses nothing.
        """
        removed = []
        now = time.time()
        tmp_dirs = [
            d
            for d in (self.root, self.cells_dir, self.segments_dir)
            if d.is_dir()
        ]
        for path in sorted(p for d in tmp_dirs for p in d.glob("*.tmp")):
            try:
                if now - path.stat().st_mtime < tmp_grace_s:
                    continue
                path.unlink()
            except OSError:
                continue  # already published or swept by another process
            removed.append(path.name)
        removed.extend(self._recover_segments(now, tmp_grace_s))
        if not self.cells_dir.is_dir():
            return removed
        for path in sorted(self.cells_dir.glob("*.json")):
            if self._load(path) is None:
                path.unlink(missing_ok=True)
                removed.append(path.name)
        return removed

    def _recover_segments(self, now: float, tmp_grace_s: float) -> list[str]:
        repaired = []
        for segment in self._segment_paths():
            is_open = segment.suffix == ".open"
            try:
                if is_open and now - segment.stat().st_mtime < tmp_grace_s:
                    continue  # may be a live writer's active segment
                blob = segment.read_bytes()
            except OSError:
                continue
            records, valid = _scan_records(blob, validate_json=True)
            torn = valid != len(blob)
            if torn:
                if not records:
                    segment.unlink(missing_ok=True)
                    _sidecar_path(segment).unlink(missing_ok=True)
                    repaired.append(segment.name)
                    continue
                with open(segment, "r+b") as handle:
                    handle.truncate(valid)
                    os.fsync(handle.fileno())
                repaired.append(segment.name)
            if not is_open and _load_sidecar(segment) is None:
                sidecar = {
                    "bytes": valid,
                    "records": {
                        key: [offset, length]
                        for key, offset, length in records
                    },
                }
                atomic_write(
                    _sidecar_path(segment), canonical_json_bytes(sidecar)
                )
                if segment.name not in repaired:
                    repaired.append(_sidecar_path(segment).name)
        if repaired:
            self._index_cache = None
        return repaired

    def compact(self) -> CompactSummary:
        """Fold file-tier cells into packed segments (tier migration).

        Interruption-safe by ordering: every file cell is appended to
        segments and **byte-verified back out of the packed tier before
        any file is removed** — a crash at any point leaves the file
        tier authoritative and the packed copies byte-equal, so rerunning
        ``compact`` (or just reading the store) is always correct.
        Unparseable file cells are left for :meth:`recover`.
        """
        with obs.span("store.compact"):
            packed = already = skipped = 0
            names: list[str] = []
            cell_files = (
                sorted(self.cells_dir.glob("*.json"))
                if self.cells_dir.is_dir()
                else []
            )
            index = self._packed_index()
            for path in cell_files:
                data = path.read_bytes()
                if self._parse(data) is None:
                    skipped += 1
                    continue
                key = path.stem
                names.append(key)
                location = index.get(key)
                if location is not None:
                    if self._read_packed(location) != data:
                        raise EvaluationError(
                            f"cell {key} already packed with different "
                            "bytes — determinism violation"
                        )
                    already += 1
                    continue
                segment, offset, length = self._segment_writer().append(
                    key, data
                )
                index[key] = (segment, offset, length)
                packed += 1
            self.close()  # seal: everything durable before removing sources
            verified = 0
            for key in names:
                location = self._packed_index().get(key)
                data = (
                    self._read_packed(location)
                    if location is not None
                    else None
                )
                if data is None or data != self.cell_path(key).read_bytes():
                    raise EvaluationError(
                        f"compaction verify failed for cell {key} — file "
                        "tier left authoritative"
                    )
                verified += 1
            removed = 0
            for key in names:
                self.cell_path(key).unlink(missing_ok=True)
                removed += 1
            obs.event(
                "store.compact",
                campaign=self.name,
                packed=packed,
                verified=verified,
                removed_files=removed,
            )
            return CompactSummary(
                packed=packed,
                already_packed=already,
                verified=verified,
                removed_files=removed,
                skipped_invalid=skipped,
            )

    @staticmethod
    def _parse(data: bytes) -> dict | None:
        try:
            return json.loads(data)
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None

    @staticmethod
    def _load(path: Path) -> dict | None:
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def __len__(self) -> int:
        return len(self.completed_keys())


def list_campaigns(root: str | Path | None = None) -> list[str]:
    """Names of every campaign with a manifest under the results root."""
    base = Path(root) if root is not None else campaigns_root()
    if not base.is_dir():
        return []
    return sorted(
        entry.name
        for entry in base.iterdir()
        if (entry / "manifest.json").exists()
    )
