"""Backend throughput comparison: reference vs batched vs fast timing.

:func:`compare_backends` runs the same sweep grid through each backend,
times every (variant, N) cell, checks that the backends agreed run-by-run
(they must — every backend is bitwise-equivalent), and reduces
everything into one JSON-serializable report.  The ``bench-backends``
CLI command and ``benchmarks/bench_backends.py`` both build on it.

The ``fast`` backend joins the comparison wherever a fused-kernel
provider is available (:func:`default_bench_backends` probes for it);
the report also records ``cpu_count`` and — on multi-core hosts — one
process-parallel sweep timing row, so throughput numbers from different
machines stay interpretable.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path

from .. import obs
from ..common.errors import ConfigurationError, EvaluationError
from ..core.config import MclConfig
from ..engine.backend import get_backend
from ..dataset.recorder import RecordedSequence
from ..maps.occupancy import OccupancyGrid
from ..viz.export import results_directory
from .aggregate import SweepProtocol
from .runner import RunResult
from .sweep_engine import DistanceFieldCache, SweepEngine, _cell_specs, _execute_cell

#: Default grid of the backend bench: the dual- and reduced-precision
#: variants over the lower half of the paper's particle sweep, where
#: evaluation throughput (not raw FLOPs) dominates the wall-clock.
DEFAULT_VARIANTS = ("fp32", "fp16qm")
DEFAULT_PARTICLE_COUNTS = (64, 256, 1024)


def default_bench_backends() -> tuple[str, ...]:
    """The backends the bench compares: all of them, where constructible.

    ``fast`` always *registers* so CLI listings are environment
    independent, but constructing it raises ``ConfigurationError`` when
    neither numba nor a C toolchain is present — probe once here and
    drop it from the default comparison rather than failing the bench.
    """
    backends = ["reference", "batched"]
    try:
        get_backend("fast")
    except ConfigurationError:
        return tuple(backends)
    backends.append("fast")
    return tuple(backends)


def _run_signature(run: RunResult) -> tuple:
    """What two equivalent backends must agree on, run by run.

    NaN metrics (non-converged runs) are mapped to ``None`` so the
    signatures stay comparable — NaN never equals NaN.
    """

    def _value(x: float) -> float | None:
        return None if math.isnan(x) else x

    return (
        run.sequence_name,
        run.seed,
        run.update_count,
        run.metrics.converged,
        run.metrics.success,
        _value(run.metrics.ate_mean_m),
        _value(run.metrics.yaw_mean_rad),
    )


def compare_backends(
    grid: OccupancyGrid,
    sequences: list[RecordedSequence],
    variants: list[str] | None = None,
    particle_counts: list[int] | None = None,
    protocol: SweepProtocol | None = None,
    base_config: MclConfig | None = None,
    backends: tuple[str, ...] | None = None,
    progress=None,
    jobs: int | None = None,
) -> dict:
    """Time the same sweep under every backend and report speedups.

    Distance fields are prebuilt through one shared cache so the timing
    isolates filter execution; the report's ``"equivalent"`` flag
    records whether all backends produced identical per-run metrics.
    ``backends=None`` compares every constructible backend
    (:func:`default_bench_backends`).  ``jobs=None`` additionally times
    one process-parallel sweep of the last backend when the host has
    more than one core (pass ``jobs=1`` to disable, or an explicit
    worker count to force it).
    """
    if backends is None:
        backends = default_bench_backends()
    if len(backends) < 2:
        raise EvaluationError("need at least two backends to compare")
    variants = list(variants or DEFAULT_VARIANTS)
    particle_counts = list(particle_counts or DEFAULT_PARTICLE_COUNTS)
    protocol = protocol or SweepProtocol.from_env()
    base_config = base_config or MclConfig()
    used_sequences = sequences[: protocol.sequence_count]
    if not used_sequences:
        raise EvaluationError("backend bench needs at least one sequence")

    cache = DistanceFieldCache()
    cells = _cell_specs(base_config, variants, particle_counts)
    # Keyed like SweepEngine.run: r_max-ablated config specs need their
    # own EDT truncation, not the base config's.
    fields = {
        (cell.field_kind, cell.config.r_max): cache.get(
            grid, cell.config.r_max, cell.field_kind
        )
        for cell in cells
    }

    runs_per_cell = len(used_sequences) * len(protocol.seeds)
    timings: dict[str, dict] = {}
    signatures: dict[str, list[tuple]] = {}
    for backend in backends:
        # One executor instance per backend, shared across cells — the
        # batched backend's replay-plan cache then works exactly as it
        # does under SweepEngine.
        executor = get_backend(backend)
        cell_seconds: dict[str, float] = {}
        backend_signatures: list[tuple] = []
        total = 0.0
        for cell in cells:
            with obs.timed("bench.backend_cell") as cell_timer:
                runs = _execute_cell(
                    grid,
                    used_sequences,
                    protocol.seeds,
                    cell,
                    fields[(cell.field_kind, cell.config.r_max)],
                    executor,
                )
            elapsed = cell_timer.elapsed_s
            total += elapsed
            cell_seconds[f"{cell.variant}/N={cell.particle_count}"] = elapsed
            backend_signatures.extend(_run_signature(run) for run in runs)
            if progress is not None:
                progress(
                    f"{backend}: {cell.variant} N={cell.particle_count} "
                    f"({runs_per_cell} runs) {elapsed:.2f}s"
                )
        timings[backend] = {"total_s": total, "cells_s": cell_seconds}
        signatures[backend] = backend_signatures

    baseline = backends[0]
    first = signatures[baseline]
    equivalent = all(signatures[b] == first for b in backends[1:])
    cpu_count = os.cpu_count() or 1
    report = {
        "protocol": {
            "sequences": [s.name for s in used_sequences],
            "seeds": list(protocol.seeds),
            "runs_per_cell": runs_per_cell,
        },
        "variants": variants,
        "particle_counts": particle_counts,
        "backends": list(backends),
        "cpu_count": cpu_count,
        "timings": timings,
        "equivalent": equivalent,
        "speedup_vs_" + baseline: {
            b: timings[baseline]["total_s"] / max(timings[b]["total_s"], 1e-12)
            for b in backends[1:]
        },
    }

    # Process fan-out row: one multi-worker sweep of the last (fastest)
    # backend, recorded only where the host can actually parallelize.
    # The per-run results are bitwise-pinned, so this is a pure
    # throughput data point.
    if jobs is None:
        jobs = min(cpu_count, 4) if cpu_count > 1 else 1
    if jobs > 1:
        parallel_backend = backends[-1]
        engine = SweepEngine(backend=parallel_backend, jobs=jobs)
        with obs.timed("bench.parallel_sweep") as sweep_timer:
            engine.run(
                grid,
                used_sequences,
                variants,
                particle_counts,
                protocol=protocol,
                base_config=base_config,
            )
        elapsed = sweep_timer.elapsed_s
        report["parallel"] = {
            "backend": parallel_backend,
            "jobs": jobs,
            "total_s": elapsed,
        }
        if progress is not None:
            progress(f"{parallel_backend}@jobs={jobs}: {elapsed:.2f}s")
    return report


def write_backend_report(report: dict, path: str | Path | None = None) -> Path:
    """Write the comparison report to ``results/BENCH_backends.json``."""
    if path is None:
        path = results_directory() / "BENCH_backends.json"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
