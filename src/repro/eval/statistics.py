"""Statistical tooling for the evaluation: intervals and comparisons.

The paper reports point estimates (mean ATE, success rate over 36 runs);
for a software reproduction it is worth knowing how tight those numbers
are.  This module provides the small-sample machinery the EXPERIMENTS.md
record and the sweep reports use:

* Wilson score intervals for success rates (well-behaved at 0 and 1,
  unlike the normal approximation),
* bootstrap percentile intervals for mean ATE,
* a paired bootstrap test for "variant A is no worse than variant B on
  the same (sequence, seed) runs" — the right comparison structure for
  the fp32-vs-quantized claim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..common.errors import EvaluationError


@dataclass(frozen=True)
class Interval:
    """A point estimate with a confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    @property
    def width(self) -> float:
        return self.upper - self.lower


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> Interval:
    """Wilson score interval for a binomial proportion."""
    if trials < 1:
        raise EvaluationError("need at least one trial")
    if not 0 <= successes <= trials:
        raise EvaluationError("successes must lie in [0, trials]")
    if not 0.0 < confidence < 1.0:
        raise EvaluationError("confidence must be in (0, 1)")
    # Two-sided normal quantile.
    z = math.sqrt(2.0) * _erfinv(confidence)
    p = successes / trials
    denominator = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    # Clamp against rounding so the interval always contains the estimate
    # (at p = 0 the center-margin arithmetic can leave ~1e-17 residue).
    return Interval(
        estimate=p,
        lower=min(max(0.0, center - margin), p),
        upper=max(min(1.0, center + margin), p),
        confidence=confidence,
    )


def _erfinv(x: float) -> float:
    """Inverse error function (Winitzki's approximation, <2e-3 rel)."""
    if not -1.0 < x < 1.0:
        raise EvaluationError("erfinv argument must be in (-1, 1)")
    a = 0.147
    ln_term = math.log(1.0 - x * x)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    inner = first * first - ln_term / a
    return math.copysign(math.sqrt(math.sqrt(inner) - first), x)


def bootstrap_mean_interval(
    values: np.ndarray,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Interval:
    """Percentile bootstrap interval for the mean of ``values``."""
    values = np.asarray(values, dtype=np.float64)
    values = values[np.isfinite(values)]
    if values.size < 2:
        raise EvaluationError("need at least two finite values to bootstrap")
    if not 0.0 < confidence < 1.0:
        raise EvaluationError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    draws = rng.integers(0, values.size, size=(resamples, values.size))
    means = values[draws].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return Interval(
        estimate=float(values.mean()),
        lower=float(np.quantile(means, alpha)),
        upper=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def paired_bootstrap_no_worse(
    candidate: np.ndarray,
    reference: np.ndarray,
    margin: float = 0.0,
    resamples: int = 2000,
    seed: int = 0,
) -> float:
    """P(mean(candidate - reference) <= margin) under the paired bootstrap.

    ``candidate`` and ``reference`` must be aligned per run (same
    sequence and seed).  A value near 1 supports "candidate is no worse
    than reference by more than ``margin``" — the structure of the
    paper's quantization claim (fp16qm no worse than fp32).
    """
    candidate = np.asarray(candidate, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if candidate.shape != reference.shape or candidate.size < 2:
        raise EvaluationError("need aligned arrays with >= 2 paired runs")
    keep = np.isfinite(candidate) & np.isfinite(reference)
    differences = candidate[keep] - reference[keep]
    if differences.size < 2:
        raise EvaluationError("need >= 2 finite paired differences")
    rng = np.random.default_rng(seed)
    draws = rng.integers(0, differences.size, size=(resamples, differences.size))
    means = differences[draws].mean(axis=1)
    return float(np.mean(means <= margin))
