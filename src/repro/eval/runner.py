"""Run one MCL configuration over one recorded sequence.

This is the evaluation inner loop: replay a :class:`RecordedSequence`,
feed odometry increments and ToF frames to a fresh
:class:`MonteCarloLocalization`, track the estimate-vs-mocap errors at
every frame instant, and reduce them to the paper's metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import EvaluationError
from ..core.config import MclConfig
from ..core.mcl import MonteCarloLocalization
from ..core.pose_estimate import pose_error
from ..dataset.recorder import RecordedSequence
from ..maps.distance_field import DistanceField
from ..maps.occupancy import OccupancyGrid
from .metrics import RunMetrics, evaluate_run


@dataclass
class RunResult:
    """Full error trace plus reduced metrics of one localization run."""

    sequence_name: str
    variant: str
    particle_count: int
    seed: int
    timestamps: np.ndarray
    position_errors: np.ndarray
    yaw_errors: np.ndarray
    estimate_trace: np.ndarray  # (T, 3) estimated pose per frame
    metrics: RunMetrics
    update_count: int


def run_localization(
    grid: OccupancyGrid,
    sequence: RecordedSequence,
    config: MclConfig,
    seed: int,
    field: DistanceField | None = None,
    tracking_init: bool = False,
    tracking_sigma_xy: float = 0.3,
    tracking_sigma_theta: float = 0.3,
) -> RunResult:
    """Replay ``sequence`` through a fresh filter and evaluate it.

    ``field`` lets sweeps share one prebuilt distance field per precision
    kind instead of recomputing the EDT for every run.  The default is the
    paper's global-localization protocol (uniform init over free space);
    ``tracking_init=True`` instead seeds the filter around the true start
    pose — the pose-tracking regime used by some ablations.
    """
    if len(sequence) < 2:
        raise EvaluationError(f"sequence {sequence.name} is too short to evaluate")

    mcl = MonteCarloLocalization(grid, config, seed=seed, field=field)
    if tracking_init:
        mcl.reset_at(
            sequence.ground_truth_pose(0),
            sigma_xy=tracking_sigma_xy,
            sigma_theta=tracking_sigma_theta,
        )

    timestamps = []
    position_errors = []
    yaw_errors = []
    estimates = []

    previous_odometry = sequence.odometry_pose(0)
    for index, step in enumerate(sequence.steps()):
        if index > 0:
            increment = previous_odometry.between(step.odometry)
            previous_odometry = step.odometry
            mcl.add_odometry(increment)
            mcl.process(step.frames)
        estimate = mcl.estimate.pose
        err_pos, err_yaw = pose_error(estimate, step.ground_truth)
        timestamps.append(step.timestamp)
        position_errors.append(err_pos)
        yaw_errors.append(err_yaw)
        estimates.append(estimate.as_array())

    timestamps = np.array(timestamps)
    position_errors = np.array(position_errors)
    yaw_errors = np.array(yaw_errors)
    metrics = evaluate_run(timestamps, position_errors, yaw_errors)
    return RunResult(
        sequence_name=sequence.name,
        variant=config.variant_label,
        particle_count=config.particle_count,
        seed=seed,
        timestamps=timestamps,
        position_errors=position_errors,
        yaw_errors=yaw_errors,
        estimate_trace=np.stack(estimates),
        metrics=metrics,
        update_count=mcl.update_count,
    )
