"""Run MCL configurations over recorded sequences via a filter backend.

This module is the thin evaluation shim over the
:class:`~repro.engine.backend.FilterBackend` seam: it turns (sequence,
seed) pairs into :class:`~repro.engine.backend.RunSpec` batches, hands
them to the selected backend — ``reference`` replays one scalar filter
per run, ``batched`` advances all runs as ``(R, N)`` stacks — and
reduces the returned traces to the paper's metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..common.errors import EvaluationError
from ..core.config import MclConfig
from ..dataset.recorder import RecordedSequence
from ..engine.backend import FilterBackend, RunSpec, RunTrace, get_backend
from ..maps.distance_field import DistanceField
from ..maps.occupancy import OccupancyGrid
from .metrics import RunMetrics, evaluate_run


@dataclass
class RunResult:
    """Full error trace plus reduced metrics of one localization run."""

    sequence_name: str
    variant: str
    particle_count: int
    seed: int
    timestamps: np.ndarray
    position_errors: np.ndarray
    yaw_errors: np.ndarray
    estimate_trace: np.ndarray  # (T, 3) estimated pose per frame
    metrics: RunMetrics
    update_count: int


def trace_to_result(
    spec: RunSpec, config: MclConfig, trace: RunTrace
) -> RunResult:
    """Reduce one backend trace into the paper's metrics."""
    metrics = evaluate_run(
        trace.timestamps, trace.position_errors, trace.yaw_errors
    )
    return RunResult(
        sequence_name=spec.sequence.name,
        variant=config.variant_label,
        particle_count=config.particle_count,
        seed=spec.seed,
        timestamps=trace.timestamps,
        position_errors=trace.position_errors,
        yaw_errors=trace.yaw_errors,
        estimate_trace=trace.estimate_trace,
        metrics=metrics,
        update_count=trace.update_count,
    )


def run_localization_batch(
    grid: OccupancyGrid,
    specs: list[RunSpec],
    config: MclConfig,
    field: DistanceField | None = None,
    backend: str | FilterBackend = "reference",
) -> list[RunResult]:
    """Execute a batch of runs through one backend and evaluate each.

    All specs share (grid, config, field); results come back in spec
    order.  This is the entry point sweeps dispatch whole cells through.
    """
    for spec in specs:
        if len(spec.sequence) < 2:
            raise EvaluationError(
                f"sequence {spec.sequence.name} is too short to evaluate"
            )
    executor = get_backend(backend)
    traces = executor.execute(grid, specs, config, field=field)
    return [
        trace_to_result(spec, config, trace)
        for spec, trace in zip(specs, traces)
    ]


def run_localization(
    grid: OccupancyGrid,
    sequence: RecordedSequence,
    config: MclConfig,
    seed: int,
    field: DistanceField | None = None,
    tracking_init: bool = False,
    tracking_sigma_xy: float = 0.3,
    tracking_sigma_theta: float = 0.3,
    backend: str | FilterBackend = "reference",
) -> RunResult:
    """Replay ``sequence`` through a fresh filter and evaluate it.

    ``field`` lets sweeps share one prebuilt distance field per precision
    kind instead of recomputing the EDT for every run.  The default is the
    paper's global-localization protocol (uniform init over free space);
    ``tracking_init=True`` instead seeds the filter around the true start
    pose — the pose-tracking regime used by some ablations.  ``backend``
    selects the executing :class:`FilterBackend`; every backend produces
    identical results, so the choice is purely about throughput.
    """
    spec = RunSpec(
        sequence=sequence,
        seed=seed,
        tracking_init=tracking_init,
        tracking_sigma_xy=tracking_sigma_xy,
        tracking_sigma_theta=tracking_sigma_theta,
    )
    return run_localization_batch(grid, [spec], config, field, backend)[0]
