"""Filter-health diagnostics: what the belief looked like over a run.

The headline metrics (ATE, success) say *whether* localization worked;
these diagnostics say *why not* when it didn't.  They operate on a live
filter (callback-style probing during replay) and extract:

* effective sample size over time (weight degeneracy),
* position/yaw spread over time (belief concentration),
* the belief's **mode structure**: particles grouped into spatial
  clusters with their weight shares — the direct view of the wrong-maze
  ambiguity of Fig. 1 (two maze-sized modes trading weight until the
  observations break the tie).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..common.errors import EvaluationError
from ..core.mcl import MonteCarloLocalization
from ..dataset.recorder import RecordedSequence
from ..maps.occupancy import OccupancyGrid


@dataclass
class BeliefMode:
    """One spatial cluster of the particle population."""

    center_x: float
    center_y: float
    weight_share: float
    particle_count: int


def belief_modes(
    mcl: MonteCarloLocalization, cell_m: float = 0.75, min_share: float = 0.02
) -> list[BeliefMode]:
    """Cluster the current population into coarse spatial modes.

    Particles are binned on a ``cell_m`` grid; connected bins (8-adjacent)
    merge into one mode.  Modes below ``min_share`` of the total weight
    are dropped.  Sorted by descending weight share.
    """
    if cell_m <= 0:
        raise EvaluationError("cell_m must be positive")
    if not 0.0 <= min_share < 1.0:
        raise EvaluationError("min_share must be in [0, 1)")
    x = mcl.particles.x.astype(np.float64)
    y = mcl.particles.y.astype(np.float64)
    weights = mcl.particles.weights.astype(np.float64)
    total = weights.sum()
    if total <= 0:
        weights = np.full_like(weights, 1.0 / weights.size)
        total = 1.0
    weights = weights / total

    bin_x = np.floor(x / cell_m).astype(np.int64)
    bin_y = np.floor(y / cell_m).astype(np.int64)
    bins: dict[tuple[int, int], list[int]] = {}
    for index, key in enumerate(zip(bin_x.tolist(), bin_y.tolist())):
        bins.setdefault(key, []).append(index)

    # Merge adjacent occupied bins into connected components.
    unvisited = set(bins)
    modes: list[BeliefMode] = []
    while unvisited:
        seed_bin = unvisited.pop()
        component = [seed_bin]
        stack = [seed_bin]
        while stack:
            bx, by = stack.pop()
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    neighbour = (bx + dx, by + dy)
                    if neighbour in unvisited:
                        unvisited.remove(neighbour)
                        component.append(neighbour)
                        stack.append(neighbour)
        members = np.array(
            [i for key in component for i in bins[key]], dtype=np.int64
        )
        share = float(weights[members].sum())
        if share < min_share:
            continue
        member_weights = weights[members]
        norm = member_weights.sum()
        modes.append(
            BeliefMode(
                center_x=float(np.dot(member_weights, x[members]) / norm),
                center_y=float(np.dot(member_weights, y[members]) / norm),
                weight_share=share,
                particle_count=int(members.size),
            )
        )
    modes.sort(key=lambda m: m.weight_share, reverse=True)
    return modes


@dataclass
class FilterTrace:
    """Per-update health time series of one localization run."""

    timestamps: list[float] = field(default_factory=list)
    ess: list[float] = field(default_factory=list)
    position_std: list[float] = field(default_factory=list)
    yaw_std: list[float] = field(default_factory=list)
    mode_count: list[int] = field(default_factory=list)
    top_mode_share: list[float] = field(default_factory=list)

    def as_arrays(self) -> dict[str, np.ndarray]:
        """All series as numpy arrays keyed by name."""
        return {
            "timestamps": np.array(self.timestamps),
            "ess": np.array(self.ess),
            "position_std": np.array(self.position_std),
            "yaw_std": np.array(self.yaw_std),
            "mode_count": np.array(self.mode_count, dtype=np.int64),
            "top_mode_share": np.array(self.top_mode_share),
        }

    def collapse_time(self, share_threshold: float = 0.9) -> float | None:
        """First time the top mode holds ``share_threshold`` of the weight.

        The mode-collapse instant usually precedes metric convergence: the
        belief commits to one hypothesis, then sharpens inside it.
        """
        for timestamp, share in zip(self.timestamps, self.top_mode_share):
            if share >= share_threshold:
                return timestamp
        return None


def trace_filter_health(
    grid: OccupancyGrid,
    sequence: RecordedSequence,
    mcl: MonteCarloLocalization,
    mode_cell_m: float = 0.75,
) -> FilterTrace:
    """Replay a sequence through ``mcl``, probing belief health per update.

    The filter is driven exactly like :func:`repro.eval.runner.run_localization`
    drives it; diagnostics are sampled only on updates that actually fired
    (motion-gated no-ops carry no new information).
    """
    if len(sequence) < 2:
        raise EvaluationError("sequence too short to trace")
    trace = FilterTrace()
    previous_odometry = sequence.odometry_pose(0)
    for index, step in enumerate(sequence.steps()):
        if index == 0:
            continue
        increment = previous_odometry.between(step.odometry)
        previous_odometry = step.odometry
        mcl.add_odometry(increment)
        report = mcl.process(step.frames)
        if not report.motion_applied:
            continue
        estimate = mcl.estimate
        modes = belief_modes(mcl, cell_m=mode_cell_m)
        trace.timestamps.append(step.timestamp)
        trace.ess.append(estimate.ess)
        trace.position_std.append(estimate.position_std)
        trace.yaw_std.append(estimate.yaw_std)
        trace.mode_count.append(len(modes))
        trace.top_mode_share.append(modes[0].weight_share if modes else 0.0)
    return trace
