"""Resumable, scenario-parallel sweep campaigns over the result store.

A *campaign* is a declarative grid — scenarios x config specs x particle
counts, evaluated under a fixed seed protocol — executed as independent
**cells** and streamed into an append-only
:class:`~repro.eval.store.CampaignStore` as each cell finishes.  This is
the layer that turns the in-memory, all-or-nothing
:class:`~repro.eval.sweep_engine.SweepEngine` sweep into something that
survives at paper-study scale:

* **declarative expansion** — :class:`CampaignSpec` names the axes; the
  cell list (and each cell's stable content key) is derived from it, so
  two processes given the same spec always agree on the work queue.  The
  variant axis speaks the config-spec grammar
  (:class:`repro.core.config.ConfigSpec`): ablated configurations fold
  their fingerprint into the content key, while pure paper variants at
  default parameters keep the legacy key — old stores resume byte-exactly;
* **scenario-parallel execution** — cells fan out over a process pool at
  (scenario, variant, N) granularity via the sweep engine's worker path,
  each worker holding its own keyed distance-field cache;
* **resumability** — a killed campaign restarts with ``resume=True`` and
  re-executes exactly the cells whose files are missing or torn; the
  final store is **byte-identical** to an uninterrupted run;
* **queryability** — :func:`campaign_status` and
  :func:`aggregate_report` answer progress and accuracy questions from
  the store alone, with no recomputation.

Determinism contract: a cell's stored bytes are a pure function of its
content key.  The filter backends are bitwise-equivalent, run order
inside a cell is fixed (sequence-major, then seed), and serialization is
canonical JSON — so ``jobs=1`` vs ``jobs=N``, fresh vs resumed, and
``reference`` vs ``batched`` all write identical stores (asserted in
``tests/eval/test_campaign.py``).
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from .. import obs
from ..common.atomics import atomic_create
from ..common.errors import ConfigurationError, EvaluationError
from ..core.config import ConfigSpec, MclConfig
from ..scenarios.base import ScenarioSpec
from ..scenarios.registry import build_scenario, canonical_scenario_id
from .runner import RunResult
from ..engine.backend import get_backend
from .store import CampaignStore, canonical_json_bytes
from .sweep_engine import (
    DistanceFieldCache,
    SweepCellSpec,
    _execute_cell,
    _execute_scenario_cell_by_id,
    drain_futures,
)


@dataclass(frozen=True)
class CampaignCell:
    """One unit of campaign work: (scenario, config, N) under the seeds.

    ``variant`` is a canonical config-spec id (bare paper variant or
    ablated spec, see :class:`repro.core.config.ConfigSpec`).  The
    :attr:`key` is the cell's *content key* — a stable digest of
    everything that determines the cell's numbers.  Execution details
    (backend, job count, host) are deliberately excluded: they cannot
    change results under the bitwise-equivalence contract, so they must
    not change the key either.
    """

    scenario: str
    variant: str
    particle_count: int
    seeds: tuple[int, ...]

    @property
    def key(self) -> str:
        """Content key; folds the config fingerprint in for ablations.

        Pure paper variants at default parameters keep the exact key
        (identity dict *and* filename) the pre-config-axis store used,
        so existing campaign stores resume with zero recomputation;
        ablated configs add the config fingerprint to both.
        """
        spec = ConfigSpec.parse(self.variant)
        identity = {
            "scenario": self.scenario,
            "variant": spec.id,
            "particle_count": self.particle_count,
            "seeds": list(self.seeds),
        }
        label = spec.variant
        if not spec.is_default:
            identity["config_fingerprint"] = spec.fingerprint()
            label = f"{spec.variant}-{spec.fingerprint()}"
        digest = hashlib.sha256(canonical_json_bytes(identity)).hexdigest()[:12]
        stem = ScenarioSpec.parse(self.scenario).cache_stem
        return f"{stem}-{label}-n{self.particle_count}-{digest}"

    def sweep_cell(self, base_config: MclConfig) -> SweepCellSpec:
        spec = ConfigSpec.parse(self.variant)
        config = spec.config(base=base_config, particle_count=self.particle_count)
        return SweepCellSpec(spec.id, self.particle_count, config)


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative description of a campaign (also its manifest).

    ``scenarios`` are canonical spec ids (any accepted spelling is
    normalized on construction); ``seeds`` is the filter-seed protocol
    every cell repeats.  The spec deliberately contains *no* execution
    options — backend and job count are chosen per invocation and leave
    no trace in the results.
    """

    name: str
    scenarios: tuple[str, ...]
    variants: tuple[str, ...]
    particle_counts: tuple[int, ...]
    seeds: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("campaign needs a name")
        if not self.scenarios:
            raise ConfigurationError("campaign needs at least one scenario")
        if not self.variants:
            raise ConfigurationError("campaign needs at least one variant")
        if not self.particle_counts or any(
            count < 1 for count in self.particle_counts
        ):
            raise ConfigurationError("particle counts must be >= 1")
        if not self.seeds:
            raise ConfigurationError("campaign needs at least one seed")
        # Normalize and dedupe every axis (input order preserved), so
        # repeated values can never expand into duplicate cells sharing
        # one content key.  Variants route through the shared config-spec
        # parser — the one place that validates paper variants, ablation
        # keys and values alike — and canonicalize to spec ids, so two
        # spellings of one configuration can never become two cells.
        canonical = dict.fromkeys(
            canonical_scenario_id(scenario) for scenario in self.scenarios
        )
        object.__setattr__(self, "scenarios", tuple(canonical))
        object.__setattr__(
            self,
            "variants",
            tuple(
                dict.fromkeys(
                    ConfigSpec.parse(variant).id for variant in self.variants
                )
            ),
        )
        object.__setattr__(
            self,
            "particle_counts",
            tuple(dict.fromkeys(int(c) for c in self.particle_counts)),
        )
        object.__setattr__(
            self, "seeds", tuple(dict.fromkeys(int(s) for s in self.seeds))
        )

    def cells(self) -> list[CampaignCell]:
        """The work queue in deterministic scenario-major order."""
        return [
            CampaignCell(scenario, variant, count, self.seeds)
            for scenario in self.scenarios
            for variant in self.variants
            for count in self.particle_counts
        ]

    def to_manifest(self) -> dict:
        return {
            "name": self.name,
            "scenarios": list(self.scenarios),
            "variants": list(self.variants),
            "particle_counts": list(self.particle_counts),
            "seeds": list(self.seeds),
        }

    @staticmethod
    def from_manifest(manifest: dict) -> "CampaignSpec":
        return CampaignSpec(
            name=manifest["name"],
            scenarios=tuple(manifest["scenarios"]),
            variants=tuple(manifest["variants"]),
            particle_counts=tuple(manifest["particle_counts"]),
            seeds=tuple(manifest["seeds"]),
        )


def _run_payload(run: RunResult) -> dict:
    metrics = run.metrics
    return {
        "sequence": run.sequence_name,
        "seed": run.seed,
        "update_count": run.update_count,
        "metrics": {
            "converged": metrics.converged,
            "convergence_time_s": metrics.convergence_time_s,
            "success": metrics.success,
            "ate_mean_m": metrics.ate_mean_m,
            "ate_rmse_m": metrics.ate_rmse_m,
            "ate_max_m": metrics.ate_max_m,
            "yaw_mean_rad": metrics.yaw_mean_rad,
        },
    }


def cell_payload(cell: CampaignCell, runs: list[RunResult]) -> dict:
    """Reduce one cell's runs to the stored (canonical) payload.

    Only deterministic quantities enter the payload — metrics, counts,
    and the cell identity.  No wall-clock, no host information: the
    bytes must be a pure function of the cell key.
    """
    converged_ates = [
        r.metrics.ate_mean_m for r in runs if r.metrics.converged
    ]
    aggregate = {
        "runs": len(runs),
        "converged": sum(1 for r in runs if r.metrics.converged),
        "success_rate": (
            sum(1 for r in runs if r.metrics.success) / len(runs) if runs else None
        ),
        "mean_ate_m": (
            sum(converged_ates) / len(converged_ates) if converged_ates else None
        ),
    }
    # NaN metrics (non-converged runs) are mapped to null at the store's
    # canonical-JSON layer; no pre-sanitization needed here.
    return {
        "cell": {
            "scenario": cell.scenario,
            "variant": cell.variant,
            "particle_count": cell.particle_count,
            "seeds": list(cell.seeds),
        },
        "runs": [_run_payload(run) for run in runs],
        "aggregate": aggregate,
    }


@dataclass
class CampaignRunSummary:
    """What one ``run_campaign`` invocation did to the store."""

    name: str
    total_cells: int
    executed: int
    skipped: int
    recovered_files: list[str]
    store_root: str


def shard_cells(
    spec: CampaignSpec, shards: int
) -> list[list[CampaignCell]]:
    """Deterministically split a spec's cell list across ``shards`` hosts.

    Round-robin over the deterministic cell order (shard ``i`` takes
    cells ``i, i + shards, ...``), so every host given the same spec and
    shard count agrees on the full assignment without coordination, and
    the shard workloads stay balanced even though the grid is
    scenario-major.  The union of all shards is exactly ``spec.cells()``
    and the shards are disjoint; completed shard stores merge back with
    :func:`merge_campaign_stores` (they share the spec's manifest).
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    cells = spec.cells()
    return [cells[index::shards] for index in range(shards)]


def run_campaign(
    spec: CampaignSpec,
    backend: str = "batched",
    jobs: int = 1,
    resume: bool = False,
    store: CampaignStore | None = None,
    progress=None,
    shard: tuple[int, int] | None = None,
) -> CampaignRunSummary:
    """Execute a campaign, streaming each finished cell into the store.

    With ``resume=True``, cells whose files already exist (and parse)
    are skipped by content key — only the missing remainder is executed,
    and the completed store is byte-identical to an uninterrupted run.
    Without ``resume``, every cell is recomputed and verified against
    any bytes already stored (a mismatch raises — it would mean the
    determinism contract broke).

    ``jobs > 1`` fans (scenario, variant, N) cells across a process
    pool.  Tasks ship only the scenario *id*: workers load worlds from
    the registry's byte-stable ``.npz`` cache (pre-warmed by the parent,
    so there is no generation race) and keep both scenarios and distance
    fields cached per process.  Cells are streamed to disk as they
    finish, in completion order — the store's content addressing makes
    that order irrelevant.

    ``shard=(index, count)`` executes only shard ``index`` of the
    :func:`shard_cells` split (multi-host scale-out): every shard writes
    the full-spec manifest, so the per-host stores merge back with
    :func:`merge_campaign_stores` into a store byte-identical to a
    single-host run.

    Cell configurations come from the spec's variant axis — canonical
    config specs materialized over the paper-default
    :class:`~repro.core.config.MclConfig` — so a cell's content key
    (which folds in the config fingerprint for ablated specs) fully
    determines its numbers.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if store is None:
        store = CampaignStore(spec.name)
    recovered = store.recover()
    store.write_manifest(spec.to_manifest())

    if shard is None:
        cells = spec.cells()
    else:
        index, count = shard
        if not 0 <= index < count:
            raise ConfigurationError(
                f"shard index must be in [0, {count}), got {index}"
            )
        cells = shard_cells(spec, count)[index]
    completed = store.completed_keys() if resume else set()
    pending = [cell for cell in cells if cell.key not in completed]
    skipped = len(cells) - len(pending)
    if progress is not None and skipped:
        progress(f"resume: {skipped}/{len(cells)} cells already stored")

    base_config = MclConfig()
    pending_ids = dict.fromkeys(cell.scenario for cell in pending)

    obs.counter("campaign.cells_skipped").inc(skipped)

    def finish(cell: CampaignCell, runs: list[RunResult]) -> None:
        with obs.span("campaign.cell_store"):
            store.put_cell(cell.key, cell_payload(cell, runs))
        obs.counter("campaign.cells_executed").inc()
        obs.event(
            "campaign.cell",
            campaign=spec.name,
            key=cell.key,
            scenario=cell.scenario,
            variant=cell.variant,
            particle_count=cell.particle_count,
        )
        if progress is not None:
            done = sum(1 for r in runs if r.metrics.success)
            progress(
                f"{cell.scenario} {cell.variant} N={cell.particle_count}: "
                f"{done}/{len(runs)} successful runs -> {cell.key}.json"
            )

    if jobs == 1:
        # Resolve the backend once so its replay-plan cache serves every
        # cell (mirrors SweepEngine.__post_init__); one local field
        # cache shares each EDT across a scenario's cells.  Cells are
        # scenario-major, so only one scenario is held in memory at a
        # time — campaigns over hundreds of worlds stay bounded.
        executor = get_backend(backend)
        field_cache = DistanceFieldCache()
        loaded_id, scenario = None, None
        for cell in pending:
            if cell.scenario != loaded_id:
                scenario = build_scenario(cell.scenario, cache=True)
                loaded_id = cell.scenario
            sweep_cell = cell.sweep_cell(base_config)
            fld = field_cache.get(
                scenario.grid, sweep_cell.config.r_max, sweep_cell.field_kind
            )
            runs = _execute_cell(
                scenario.grid,
                [scenario.sequence],
                cell.seeds,
                sweep_cell,
                fld,
                executor,
            )
            finish(cell, runs)
    else:
        # Warm the byte-stable .npz cache in the parent (workers then
        # only ever read it — no generation race); the Scenario objects
        # themselves are dropped immediately, workers reload by id.
        for scenario_id in pending_ids:
            build_scenario(scenario_id, cache=True)
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(
                    _execute_scenario_cell_by_id,
                    cell.scenario,
                    cell.seeds,
                    cell.sweep_cell(base_config),
                    backend,
                ): cell
                for cell in pending
            }
            drain_futures(futures, finish)

    return CampaignRunSummary(
        name=spec.name,
        total_cells=len(cells),
        executed=len(pending),
        skipped=skipped,
        recovered_files=recovered,
        store_root=str(store.root),
    )


@dataclass
class MergeSummary:
    """What one :func:`merge_campaign_stores` call did."""

    dest: str
    source: str
    copied: int
    verified: int
    skipped_invalid: int
    total_source_cells: int


def merge_campaign_stores(
    dest: CampaignStore, source: CampaignStore
) -> MergeSummary:
    """Union ``source``'s cells into ``dest`` (multi-host scale-out).

    The intended workflow: shard one campaign's cell list across
    machines (same spec, disjoint or overlapping subsets), then merge
    the resulting stores.  Because cell bytes are a pure function of the
    cell key, collisions are verified byte-for-byte — equal bytes are
    counted as ``verified``, a mismatch raises (it means the equivalence
    contract broke on one host, and silently preferring either side
    would hide that).  The manifests must agree byte-for-byte too; a
    destination without a manifest (fresh name) adopts the source's, so
    merging into a new name is a store copy.

    Cells are copied as raw bytes — never re-encoded — so a merged store
    is byte-identical to one produced by a single host.  Torn source
    files (unparseable JSON) are skipped and counted, exactly as
    :meth:`CampaignStore.completed_keys` would ignore them.
    """
    source_manifest = source.manifest_path
    if not source_manifest.exists():
        raise EvaluationError(
            f"source campaign {source.name!r} has no manifest under "
            f"{source.root}"
        )
    manifest_bytes = source_manifest.read_bytes()
    # Adopt-or-verify, race-safely: exactly one concurrent merger can
    # publish a fresh destination manifest; every other path (including
    # losing that race) must match the published bytes before copying
    # any cells, or two campaign specs could silently mix in one store.
    if dest.manifest_path.exists() or not atomic_create(
        dest.manifest_path, manifest_bytes
    ):
        if dest.manifest_path.read_bytes() != manifest_bytes:
            raise EvaluationError(
                f"campaign manifests differ between {dest.name!r} and "
                f"{source.name!r} — only shards of one campaign spec can "
                "be merged"
            )

    copied = verified = skipped = 0
    total = 0
    if source.cells_dir.is_dir():
        for path in sorted(source.cells_dir.glob("*.json")):
            total += 1
            data = path.read_bytes()
            key = path.stem
            existed = dest.cell_path(key).exists()
            try:
                dest.put_cell_bytes(key, data)
            except EvaluationError:
                if source.get_cell(key) is None:  # torn source file
                    skipped += 1
                    continue
                raise
            if existed:
                verified += 1
            else:
                copied += 1
    return MergeSummary(
        dest=dest.name,
        source=source.name,
        copied=copied,
        verified=verified,
        skipped_invalid=skipped,
        total_source_cells=total,
    )


def load_campaign(name: str, store: CampaignStore | None = None) -> CampaignSpec:
    """Reconstruct a campaign's spec from its stored manifest."""
    if store is None:
        store = CampaignStore(name)
    return CampaignSpec.from_manifest(store.read_manifest())


def campaign_status(name: str, store: CampaignStore | None = None) -> dict:
    """Progress of a campaign: completed vs expected cells, by scenario."""
    if store is None:
        store = CampaignStore(name)
    spec = load_campaign(name, store)
    completed = store.completed_keys()
    cells = spec.cells()
    by_scenario: dict[str, dict[str, int]] = {}
    for cell in cells:
        entry = by_scenario.setdefault(cell.scenario, {"done": 0, "total": 0})
        entry["total"] += 1
        entry["done"] += 1 if cell.key in completed else 0
    return {
        "name": name,
        "total": len(cells),
        "completed": sum(1 for cell in cells if cell.key in completed),
        "scenarios": by_scenario,
        "store_root": str(store.root),
    }


def aggregate_report(
    name: str, store: CampaignStore | None = None
) -> dict[str, dict[tuple[str, int], dict]]:
    """Aggregate stored cells: scenario -> (variant, N) -> summary dict.

    Reads only the store (no recomputation); cells not yet executed are
    simply absent.  Raises if the campaign has no completed cells.
    """
    if store is None:
        store = CampaignStore(name)
    spec = load_campaign(name, store)
    report: dict[str, dict[tuple[str, int], dict]] = {
        scenario: {} for scenario in spec.scenarios
    }
    found = 0
    for cell in spec.cells():
        payload = store.get_cell(cell.key)
        if payload is None:
            continue
        found += 1
        report[cell.scenario][(cell.variant, cell.particle_count)] = payload[
            "aggregate"
        ]
    if not found:
        raise EvaluationError(
            f"campaign {name!r} has no completed cells to report"
        )
    return report
