"""Resumable, scenario-parallel sweep campaigns over the result store.

A *campaign* is a declarative grid — scenarios x config specs x particle
counts, evaluated under a fixed seed protocol — executed as independent
**cells** and streamed into an append-only
:class:`~repro.eval.store.CampaignStore` as each cell finishes.  This is
the layer that turns the in-memory, all-or-nothing
:class:`~repro.eval.sweep_engine.SweepEngine` sweep into something that
survives at paper-study scale:

* **declarative expansion** — :class:`CampaignSpec` names the axes; the
  cell list (and each cell's stable content key) is derived from it, so
  two processes given the same spec always agree on the work queue.  The
  variant axis speaks the config-spec grammar
  (:class:`repro.core.config.ConfigSpec`): ablated configurations fold
  their fingerprint into the content key, while pure paper variants at
  default parameters keep the legacy key — old stores resume byte-exactly;
* **scenario-parallel execution** — cells fan out over a process pool at
  (scenario, variant, N) granularity via the sweep engine's worker path,
  each worker holding its own keyed distance-field cache;
* **resumability** — a killed campaign restarts with ``resume=True`` and
  re-executes exactly the cells whose files are missing or torn; the
  final store is **byte-identical** to an uninterrupted run;
* **queryability** — :func:`campaign_status` and
  :func:`aggregate_report` answer progress and accuracy questions from
  the store alone, with no recomputation.

Determinism contract: a cell's stored bytes are a pure function of its
content key.  The filter backends are bitwise-equivalent, run order
inside a cell is fixed (sequence-major, then seed), and serialization is
canonical JSON — so ``jobs=1`` vs ``jobs=N``, fresh vs resumed, and
``reference`` vs ``batched`` all write identical stores (asserted in
``tests/eval/test_campaign.py``).
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import cached_property, lru_cache

from .. import obs
from ..common.atomics import atomic_create
from ..common.errors import ConfigurationError, EvaluationError
from ..core.config import (
    CONFIG_OVERRIDE_ALIASES,
    CONFIG_OVERRIDE_FIELDS,
    TUPLE_OVERRIDE_FIELDS,
    ConfigSpec,
    MclConfig,
    format_override_value,
)
from ..scenarios.base import ScenarioSpec
from ..scenarios.registry import build_scenario, canonical_scenario_id
from .runner import RunResult
from ..engine.backend import get_backend
from .store import CampaignStore, canonical_json_bytes
from .sweep_engine import (
    DistanceFieldCache,
    SweepCellSpec,
    _execute_cell,
    _execute_scenario_cell_by_id,
    _warm_scenario_cache,
    drain_futures,
)


@lru_cache(maxsize=4096)
def _parse_spec(variant: str) -> ConfigSpec:
    """Memoized config-spec parse for streaming paths.

    A 10^5-cell scan sees each canonical variant id thousands of times;
    parsing (which eagerly materializes and validates a config) is pure,
    so one cache entry per distinct spec turns it into a dict hit.
    """
    return ConfigSpec.parse(variant)


@dataclass(frozen=True)
class CampaignCell:
    """One unit of campaign work: (scenario, config, N) under the seeds.

    ``variant`` is a canonical config-spec id (bare paper variant or
    ablated spec, see :class:`repro.core.config.ConfigSpec`).  The
    :attr:`key` is the cell's *content key* — a stable digest of
    everything that determines the cell's numbers.  Execution details
    (backend, job count, host) are deliberately excluded: they cannot
    change results under the bitwise-equivalence contract, so they must
    not change the key either.
    """

    scenario: str
    variant: str
    particle_count: int
    seeds: tuple[int, ...]

    @cached_property
    def key(self) -> str:
        """Content key; folds the config fingerprint in for ablations.

        Pure paper variants at default parameters keep the exact key
        (identity dict *and* filename) the pre-config-axis store used,
        so existing campaign stores resume with zero recomputation;
        ablated configs add the config fingerprint to both.  Cached per
        cell instance (the digest is pure): status/resume paths touch
        every key at least twice, and at 10^5 cells the repeated hashing
        would otherwise dominate the index read it gates.
        """
        spec = _parse_spec(self.variant)
        identity = {
            "scenario": self.scenario,
            "variant": spec.id,
            "particle_count": self.particle_count,
            "seeds": list(self.seeds),
        }
        label = spec.variant
        if not spec.is_default:
            identity["config_fingerprint"] = spec.fingerprint()
            label = f"{spec.variant}-{spec.fingerprint()}"
        digest = hashlib.sha256(canonical_json_bytes(identity)).hexdigest()[:12]
        stem = ScenarioSpec.parse(self.scenario).cache_stem
        return f"{stem}-{label}-n{self.particle_count}-{digest}"

    def sweep_cell(self, base_config: MclConfig) -> SweepCellSpec:
        spec = _parse_spec(self.variant)
        config = spec.config(base=base_config, particle_count=self.particle_count)
        return SweepCellSpec(spec.id, self.particle_count, config)


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative description of a campaign (also its manifest).

    ``scenarios`` are canonical spec ids (any accepted spelling is
    normalized on construction); ``seeds`` is the filter-seed protocol
    every cell repeats.  The spec deliberately contains *no* execution
    options — backend and job count are chosen per invocation and leave
    no trace in the results.
    """

    name: str
    scenarios: tuple[str, ...]
    variants: tuple[str, ...]
    particle_counts: tuple[int, ...]
    seeds: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("campaign needs a name")
        if not self.scenarios:
            raise ConfigurationError("campaign needs at least one scenario")
        if not self.variants:
            raise ConfigurationError("campaign needs at least one variant")
        if not self.particle_counts or any(
            count < 1 for count in self.particle_counts
        ):
            raise ConfigurationError("particle counts must be >= 1")
        if not self.seeds:
            raise ConfigurationError("campaign needs at least one seed")
        # Normalize and dedupe every axis (input order preserved), so
        # repeated values can never expand into duplicate cells sharing
        # one content key.  Variants route through the shared config-spec
        # parser — the one place that validates paper variants, ablation
        # keys and values alike — and canonicalize to spec ids, so two
        # spellings of one configuration can never become two cells.
        canonical = dict.fromkeys(
            canonical_scenario_id(scenario) for scenario in self.scenarios
        )
        object.__setattr__(self, "scenarios", tuple(canonical))
        object.__setattr__(
            self,
            "variants",
            tuple(
                dict.fromkeys(
                    ConfigSpec.parse(variant).id for variant in self.variants
                )
            ),
        )
        object.__setattr__(
            self,
            "particle_counts",
            tuple(dict.fromkeys(int(c) for c in self.particle_counts)),
        )
        object.__setattr__(
            self, "seeds", tuple(dict.fromkeys(int(s) for s in self.seeds))
        )

    def cells(self) -> list[CampaignCell]:
        """The work queue in deterministic scenario-major order."""
        return [
            CampaignCell(scenario, variant, count, self.seeds)
            for scenario in self.scenarios
            for variant in self.variants
            for count in self.particle_counts
        ]

    def to_manifest(self) -> dict:
        return {
            "name": self.name,
            "scenarios": list(self.scenarios),
            "variants": list(self.variants),
            "particle_counts": list(self.particle_counts),
            "seeds": list(self.seeds),
        }

    @staticmethod
    def from_manifest(manifest: dict) -> "CampaignSpec":
        return CampaignSpec(
            name=manifest["name"],
            scenarios=tuple(manifest["scenarios"]),
            variants=tuple(manifest["variants"]),
            particle_counts=tuple(manifest["particle_counts"]),
            seeds=tuple(manifest["seeds"]),
        )


def _run_payload(run: RunResult) -> dict:
    metrics = run.metrics
    return {
        "sequence": run.sequence_name,
        "seed": run.seed,
        "update_count": run.update_count,
        "metrics": {
            "converged": metrics.converged,
            "convergence_time_s": metrics.convergence_time_s,
            "success": metrics.success,
            "ate_mean_m": metrics.ate_mean_m,
            "ate_rmse_m": metrics.ate_rmse_m,
            "ate_max_m": metrics.ate_max_m,
            "yaw_mean_rad": metrics.yaw_mean_rad,
        },
    }


def cell_payload(cell: CampaignCell, runs: list[RunResult]) -> dict:
    """Reduce one cell's runs to the stored (canonical) payload.

    Only deterministic quantities enter the payload — metrics, counts,
    and the cell identity.  No wall-clock, no host information: the
    bytes must be a pure function of the cell key.
    """
    converged_ates = [
        r.metrics.ate_mean_m for r in runs if r.metrics.converged
    ]
    aggregate = {
        "runs": len(runs),
        "converged": sum(1 for r in runs if r.metrics.converged),
        "success_rate": (
            sum(1 for r in runs if r.metrics.success) / len(runs) if runs else None
        ),
        "mean_ate_m": (
            sum(converged_ates) / len(converged_ates) if converged_ates else None
        ),
    }
    # NaN metrics (non-converged runs) are mapped to null at the store's
    # canonical-JSON layer; no pre-sanitization needed here.
    return {
        "cell": {
            "scenario": cell.scenario,
            "variant": cell.variant,
            "particle_count": cell.particle_count,
            "seeds": list(cell.seeds),
        },
        "runs": [_run_payload(run) for run in runs],
        "aggregate": aggregate,
    }


@dataclass
class CampaignRunSummary:
    """What one ``run_campaign`` invocation did to the store."""

    name: str
    total_cells: int
    executed: int
    skipped: int
    recovered_files: list[str]
    store_root: str


def shard_cells(
    spec: CampaignSpec, shards: int
) -> list[list[CampaignCell]]:
    """Deterministically split a spec's cell list across ``shards`` hosts.

    Round-robin over the deterministic cell order (shard ``i`` takes
    cells ``i, i + shards, ...``), so every host given the same spec and
    shard count agrees on the full assignment without coordination, and
    the shard workloads stay balanced even though the grid is
    scenario-major.  The union of all shards is exactly ``spec.cells()``
    and the shards are disjoint; completed shard stores merge back with
    :func:`merge_campaign_stores` (they share the spec's manifest).
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    cells = spec.cells()
    return [cells[index::shards] for index in range(shards)]


def run_campaign(
    spec: CampaignSpec,
    backend: str = "batched",
    jobs: int = 1,
    resume: bool = False,
    store: CampaignStore | None = None,
    progress=None,
    shard: tuple[int, int] | None = None,
    store_tier: str = "auto",
) -> CampaignRunSummary:
    """Execute a campaign, streaming each finished cell into the store.

    With ``resume=True``, cells whose files already exist (and parse)
    are skipped by content key — only the missing remainder is executed,
    and the completed store is byte-identical to an uninterrupted run.
    Without ``resume``, every cell is recomputed and verified against
    any bytes already stored (a mismatch raises — it would mean the
    determinism contract broke).

    ``jobs > 1`` fans (scenario, variant, N) cells across a process
    pool.  Tasks ship only the scenario *id*: workers load worlds from
    the registry's byte-stable ``.npz`` cache (pre-warmed by the parent,
    so there is no generation race) and keep both scenarios and distance
    fields cached per process.  Cells are streamed to disk as they
    finish, in completion order — the store's content addressing makes
    that order irrelevant.

    ``shard=(index, count)`` executes only shard ``index`` of the
    :func:`shard_cells` split (multi-host scale-out): every shard writes
    the full-spec manifest, so the per-host stores merge back with
    :func:`merge_campaign_stores` into a store byte-identical to a
    single-host run.

    Cell configurations come from the spec's variant axis — canonical
    config specs materialized over the paper-default
    :class:`~repro.core.config.MclConfig` — so a cell's content key
    (which folds in the config fingerprint for ablated specs) fully
    determines its numbers.

    ``store_tier`` selects the storage layout when the store is created
    here (``"packed"`` for segment files — the 10^5-cell shape; the
    ``"auto"`` default keeps whatever tier the store already has, file
    tier for fresh stores).  The tier never affects cell bytes, only
    where they live.  Even with ``jobs > 1``, all writes funnel through
    this parent process — the packed tier's single-writer contract holds
    by construction.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if store is None:
        store = CampaignStore(spec.name, tier=store_tier)
    recovered = store.recover()
    store.write_manifest(spec.to_manifest())

    if shard is None:
        cells = spec.cells()
    else:
        index, count = shard
        if not 0 <= index < count:
            raise ConfigurationError(
                f"shard index must be in [0, {count}), got {index}"
            )
        cells = shard_cells(spec, count)[index]
    completed = store.completed_keys() if resume else set()
    pending = [cell for cell in cells if cell.key not in completed]
    skipped = len(cells) - len(pending)
    if progress is not None and skipped:
        progress(f"resume: {skipped}/{len(cells)} cells already stored")

    base_config = MclConfig()
    pending_ids = dict.fromkeys(cell.scenario for cell in pending)

    obs.counter("campaign.cells_skipped").inc(skipped)

    def finish(cell: CampaignCell, runs: list[RunResult]) -> None:
        with obs.span("campaign.cell_store"):
            store.put_cell(cell.key, cell_payload(cell, runs))
        obs.counter("campaign.cells_executed").inc()
        obs.event(
            "campaign.cell",
            campaign=spec.name,
            key=cell.key,
            scenario=cell.scenario,
            variant=cell.variant,
            particle_count=cell.particle_count,
        )
        if progress is not None:
            done = sum(1 for r in runs if r.metrics.success)
            progress(
                f"{cell.scenario} {cell.variant} N={cell.particle_count}: "
                f"{done}/{len(runs)} successful runs -> {cell.key}"
            )

    try:
        if jobs == 1:
            # Resolve the backend once so its replay-plan cache serves
            # every cell (mirrors SweepEngine.__post_init__); one local
            # field cache shares each EDT across a scenario's cells.
            # Cells are scenario-major, so only one scenario is held in
            # memory at a time — campaigns over hundreds of worlds stay
            # bounded.
            executor = get_backend(backend)
            field_cache = DistanceFieldCache()
            loaded_id, scenario = None, None
            for cell in pending:
                if cell.scenario != loaded_id:
                    scenario = build_scenario(cell.scenario, cache=True)
                    loaded_id = cell.scenario
                sweep_cell = cell.sweep_cell(base_config)
                fld = field_cache.get(
                    scenario.grid, sweep_cell.config.r_max, sweep_cell.field_kind
                )
                runs = _execute_cell(
                    scenario.grid,
                    [scenario.sequence],
                    cell.seeds,
                    sweep_cell,
                    fld,
                    executor,
                )
                finish(cell, runs)
        else:
            # Cold-start as a futures chain: one warm-up task per
            # scenario generates its byte-stable .npz cache *on the
            # pool*, and that scenario's cell tasks are submitted the
            # moment its warm-up completes — generation overlaps both
            # other scenarios' generation and already-ready scenarios'
            # cell execution, instead of serializing in the parent.
            # Exactly one warm task per scenario means workers never
            # race to generate; cells only ever read the cache.
            cells_by_scenario: dict[str, list[CampaignCell]] = {}
            for cell in pending:
                cells_by_scenario.setdefault(cell.scenario, []).append(cell)
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures: dict = {}

                def on_ready(scenario_id: str) -> None:
                    for cell in cells_by_scenario[scenario_id]:
                        futures[
                            pool.submit(
                                _execute_scenario_cell_by_id,
                                cell.scenario,
                                cell.seeds,
                                cell.sweep_cell(base_config),
                                backend,
                            )
                        ] = cell

                def dispatch(tag, result) -> None:
                    if isinstance(tag, CampaignCell):
                        finish(tag, result)
                    else:  # a scenario warm-up completed; fan its cells out
                        obs.counter("campaign.scenarios_warmed").inc()
                        on_ready(result)

                for scenario_id in pending_ids:
                    futures[
                        pool.submit(_warm_scenario_cache, scenario_id)
                    ] = scenario_id
                drain_futures(futures, dispatch)
    finally:
        store.close()  # seal any active packed segment

    return CampaignRunSummary(
        name=spec.name,
        total_cells=len(cells),
        executed=len(pending),
        skipped=skipped,
        recovered_files=recovered,
        store_root=str(store.root),
    )


@dataclass
class MergeSummary:
    """What one :func:`merge_campaign_stores` call did."""

    dest: str
    source: str
    copied: int
    verified: int
    skipped_invalid: int
    total_source_cells: int


def merge_campaign_stores(
    dest: CampaignStore, source: CampaignStore
) -> MergeSummary:
    """Union ``source``'s cells into ``dest`` (multi-host scale-out).

    The intended workflow: shard one campaign's cell list across
    machines (same spec, disjoint or overlapping subsets), then merge
    the resulting stores.  Because cell bytes are a pure function of the
    cell key, collisions are verified byte-for-byte — equal bytes are
    counted as ``verified``, a mismatch raises (it means the equivalence
    contract broke on one host, and silently preferring either side
    would hide that).  The manifests must agree byte-for-byte too; a
    destination without a manifest (fresh name) adopts the source's, so
    merging into a new name is a store copy.

    Cells are copied as raw bytes — never re-encoded — so a merged store
    is byte-identical to one produced by a single host.  Torn source
    files (unparseable JSON) are skipped and counted, exactly as
    :meth:`CampaignStore.completed_keys` would ignore them.

    Both stores may be either tier (or mid-migration mixes): the source
    streams records via :meth:`CampaignStore.iter_cell_bytes` and the
    destination appends through its own write tier, so shard hosts can
    choose layouts independently and still merge byte-identically.
    """
    source_manifest = source.manifest_path
    if not source_manifest.exists():
        raise EvaluationError(
            f"source campaign {source.name!r} has no manifest under "
            f"{source.root}"
        )
    manifest_bytes = source_manifest.read_bytes()
    # Adopt-or-verify, race-safely: exactly one concurrent merger can
    # publish a fresh destination manifest; every other path (including
    # losing that race) must match the published bytes before copying
    # any cells, or two campaign specs could silently mix in one store.
    if dest.manifest_path.exists() or not atomic_create(
        dest.manifest_path, manifest_bytes
    ):
        if dest.manifest_path.read_bytes() != manifest_bytes:
            raise EvaluationError(
                f"campaign manifests differ between {dest.name!r} and "
                f"{source.name!r} — only shards of one campaign spec can "
                "be merged"
            )

    copied = verified = skipped = 0
    total = 0
    try:
        for key, data in source.iter_cell_bytes():
            total += 1
            existed = dest.get_cell_bytes(key) is not None
            try:
                dest.put_cell_bytes(key, data)
            except EvaluationError:
                if source.get_cell(key) is None:  # torn source file
                    skipped += 1
                    continue
                raise
            if existed:
                verified += 1
            else:
                copied += 1
    finally:
        dest.close()  # seal any packed segment the merge appended
    return MergeSummary(
        dest=dest.name,
        source=source.name,
        copied=copied,
        verified=verified,
        skipped_invalid=skipped,
        total_source_cells=total,
    )


def load_campaign(name: str, store: CampaignStore | None = None) -> CampaignSpec:
    """Reconstruct a campaign's spec from its stored manifest."""
    if store is None:
        store = CampaignStore(name)
    return CampaignSpec.from_manifest(store.read_manifest())


def campaign_status(name: str, store: CampaignStore | None = None) -> dict:
    """Progress of a campaign: completed vs expected cells, by scenario.

    One pass: the store answers :meth:`~CampaignStore.completed_keys`
    from its segment index (O(segments) reads on the packed tier), and
    the expected grid is walked once with each cell's cached key — the
    whole query is index-speed even at 10^5 cells.
    """
    if store is None:
        store = CampaignStore(name)
    spec = load_campaign(name, store)
    with obs.span("campaign.status"):
        completed = store.completed_keys()
        cells = spec.cells()
        by_scenario: dict[str, dict[str, int]] = {}
        done = 0
        for cell in cells:
            entry = by_scenario.setdefault(
                cell.scenario, {"done": 0, "total": 0}
            )
            entry["total"] += 1
            if cell.key in completed:
                entry["done"] += 1
                done += 1
    return {
        "name": name,
        "total": len(cells),
        "completed": done,
        "scenarios": by_scenario,
        "store_root": str(store.root),
    }


def _cell_identity(payload: dict) -> tuple[str, str, int] | None:
    """(scenario, variant, N) of a stored payload, or None if malformed."""
    cell = payload.get("cell")
    if not isinstance(cell, dict):
        return None
    try:
        return (
            str(cell["scenario"]),
            str(cell["variant"]),
            int(cell["particle_count"]),
        )
    except (KeyError, TypeError, ValueError):
        return None


def aggregate_report(
    name: str, store: CampaignStore | None = None
) -> dict[str, dict[tuple[str, int], dict]]:
    """Aggregate stored cells: scenario -> (variant, N) -> summary dict.

    Reads only the store (no recomputation), in **one streaming pass**:
    cells identify themselves from their stored payload, so the store is
    scanned sequentially (memory bounded by one packed segment) instead
    of randomly probed per expected key.  Cells not yet executed are
    simply absent; stray payloads outside the campaign grid are ignored.
    Raises if the campaign has no completed cells.
    """
    if store is None:
        store = CampaignStore(name)
    spec = load_campaign(name, store)
    variants = set(spec.variants)
    particle_counts = set(spec.particle_counts)
    report: dict[str, dict[tuple[str, int], dict]] = {
        scenario: {} for scenario in spec.scenarios
    }
    found = 0
    with obs.span("campaign.report"):
        for _key, payload in store.stream_cells():
            identity = _cell_identity(payload)
            if identity is None:
                continue
            scenario, variant, count = identity
            if (
                scenario not in report
                or variant not in variants
                or count not in particle_counts
            ):
                continue
            found += 1
            report[scenario][(variant, count)] = payload["aggregate"]
    if not found:
        raise EvaluationError(
            f"campaign {name!r} has no completed cells to report"
        )
    return report


def pivot_report(
    name: str, pivot: str, store: CampaignStore | None = None
) -> dict[str, dict[tuple[str, int], dict[str, dict]]]:
    """Pivot stored cells by one config override's value.

    Returns ``scenario -> (base_spec_id, N) -> {value: aggregate}``:
    each cell's variant is parsed back through the config grammar, the
    ``pivot`` override (alias-resolved) is factored out of the spec, and
    the remaining *base* spec becomes the row while the override's value
    — the spec's explicit value, or the paper default when the base spec
    doesn't override it — becomes the column, rendered in the grammar's
    own spelling (``0.5``, ``2/3``).  This turns an ablation campaign
    (``--ablate sigma=...``) into the table the paper's sensitivity
    figures plot, keyed off the same fingerprint machinery that keys the
    cells.  Streaming and single-pass, like :func:`aggregate_report`.
    """
    if store is None:
        store = CampaignStore(name)
    field = CONFIG_OVERRIDE_ALIASES.get(pivot, pivot)
    if field not in CONFIG_OVERRIDE_FIELDS + TUPLE_OVERRIDE_FIELDS:
        valid = ", ".join(
            sorted(
                (
                    *CONFIG_OVERRIDE_FIELDS,
                    *TUPLE_OVERRIDE_FIELDS,
                    *CONFIG_OVERRIDE_ALIASES,
                )
            )
        )
        raise ConfigurationError(
            f"unknown pivot key {pivot!r}; expected one of: {valid}"
        )
    spec = load_campaign(name, store)
    scenarios = set(spec.scenarios)
    report: dict[str, dict[tuple[str, int], dict[str, dict]]] = {
        scenario: {} for scenario in spec.scenarios
    }
    found = 0
    with obs.span("campaign.report"):
        for _key, payload in store.stream_cells():
            identity = _cell_identity(payload)
            if identity is None:
                continue
            scenario, variant, count = identity
            if scenario not in scenarios:
                continue
            config_spec = _parse_spec(variant)
            base = ConfigSpec(
                config_spec.variant,
                tuple(
                    (key, value)
                    for key, value in config_spec.overrides
                    if key != field
                ),
            )
            value = format_override_value(
                getattr(config_spec.config(), field)
            )
            row = report[scenario].setdefault((base.id, count), {})
            if value in row:
                continue  # duplicate spelling cannot happen post-canonicalization
            row[value] = payload["aggregate"]
            found += 1
    if not found:
        raise EvaluationError(
            f"campaign {name!r} has no completed cells to report"
        )
    return report
