"""Sweep orchestration: the paper's full evaluation protocol.

The paper evaluates each configuration over **6 sequences x 6 random
seeds** (Sec. IV-B).  :func:`run_sweep` executes that protocol for any set
of variants and particle counts, sharing one distance field per precision
kind, and reduces everything into the per-(variant, N) series that Fig. 6
(ATE), Fig. 7 (success rate) and Fig. 8 (convergence probability) plot.

Because a full paper-scale sweep is hours of pure-Python compute, the
protocol scale is controlled by ``REPRO_SCALE``:

* ``quick`` (default): 3 sequences x 2 seeds — same qualitative shape,
  minutes of runtime;
* ``paper``: the full 6 x 6 protocol.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..common.errors import EvaluationError
from ..common.rng import PAPER_SEEDS
from ..core.config import MclConfig
from ..dataset.recorder import RecordedSequence
from ..maps.distance_field import DistanceField, FieldKind
from ..maps.occupancy import OccupancyGrid
from .metrics import AggregateMetrics
from .runner import RunResult


@dataclass(frozen=True)
class SweepProtocol:
    """How many sequences and seeds a sweep covers."""

    sequence_count: int
    seeds: tuple[int, ...]

    @staticmethod
    def from_env() -> "SweepProtocol":
        """Resolve the protocol from the ``REPRO_SCALE`` env variable."""
        scale = os.environ.get("REPRO_SCALE", "quick").lower()
        if scale == "paper":
            return SweepProtocol(sequence_count=6, seeds=PAPER_SEEDS)
        if scale == "quick":
            return SweepProtocol(sequence_count=3, seeds=PAPER_SEEDS[:2])
        raise EvaluationError(
            f"REPRO_SCALE must be 'quick' or 'paper', got {scale!r}"
        )


@dataclass
class SweepCell:
    """Aggregated outcome of one (variant, particle count) cell."""

    variant: str
    particle_count: int
    aggregate: AggregateMetrics = field(default_factory=AggregateMetrics)
    runs: list[RunResult] = field(default_factory=list)

    def add(self, result: RunResult) -> None:
        self.runs.append(result)
        self.aggregate.add(result.metrics)


@dataclass
class SweepResult:
    """All cells of a sweep, indexed by (variant, particle count)."""

    cells: dict[tuple[str, int], SweepCell] = field(default_factory=dict)

    def cell(self, variant: str, particle_count: int) -> SweepCell:
        key = (variant, particle_count)
        if key not in self.cells:
            self.cells[key] = SweepCell(variant, particle_count)
        return self.cells[key]

    def ate_series(self, variant: str, particle_counts: list[int]) -> list[float]:
        """Fig. 6 series: mean ATE per particle count."""
        return [
            self.cells[(variant, n)].aggregate.mean_ate_m for n in particle_counts
        ]

    def success_series(self, variant: str, particle_counts: list[int]) -> list[float]:
        """Fig. 7 series: success rate (percent) per particle count."""
        return [
            100.0 * self.cells[(variant, n)].aggregate.success_rate
            for n in particle_counts
        ]

    def convergence_times(self, variant: str, particle_count: int) -> list[float | None]:
        """Fig. 8 input: convergence instants of every run in a cell."""
        return self.cells[(variant, particle_count)].aggregate.convergence_times


@dataclass
class RunningCellStats:
    """O(1)-memory streaming fold over stored cell aggregates.

    Consumes the ``aggregate`` block of campaign cell payloads one at a
    time (see :func:`repro.eval.campaign.cell_payload`) and maintains
    campaign-level totals without holding any cell: this is what lets
    ``campaign report`` summarize a 10^5-cell packed store in memory
    bounded by one segment.  Means are weighted by run count, matching
    what a batch recomputation over all runs would produce.
    """

    cells: int = 0
    runs: int = 0
    converged: int = 0
    success_weight: float = 0.0
    ate_weight: int = 0
    ate_sum: float = 0.0

    def add(self, aggregate: dict) -> None:
        runs = int(aggregate.get("runs") or 0)
        self.cells += 1
        self.runs += runs
        converged = int(aggregate.get("converged") or 0)
        self.converged += converged
        success_rate = aggregate.get("success_rate")
        if success_rate is not None:
            self.success_weight += float(success_rate) * runs
        mean_ate = aggregate.get("mean_ate_m")
        if mean_ate is not None:
            # mean_ate_m averages the *converged* runs of the cell.
            self.ate_weight += converged
            self.ate_sum += float(mean_ate) * converged

    @property
    def success_rate(self) -> float | None:
        return self.success_weight / self.runs if self.runs else None

    @property
    def mean_ate_m(self) -> float | None:
        return self.ate_sum / self.ate_weight if self.ate_weight else None


def build_shared_fields(
    grid: OccupancyGrid, r_max: float, variants: list[str]
) -> dict[str, DistanceField]:
    """One distance field per storage kind used by the requested variants."""
    fields: dict[str, DistanceField] = {}
    needs_fp32 = any(v in ("fp32", "fp321tof") for v in variants)
    needs_quant = any(v in ("fp32qm", "fp16qm") for v in variants)
    if needs_fp32:
        fields["float32"] = DistanceField.build(grid, r_max, FieldKind.FLOAT32)
    if needs_quant:
        fields["quantized_u8"] = DistanceField.build(grid, r_max, FieldKind.QUANTIZED_U8)
    return fields


def run_sweep(
    grid: OccupancyGrid,
    sequences: list[RecordedSequence],
    variants: list[str],
    particle_counts: list[int],
    protocol: SweepProtocol | None = None,
    base_config: MclConfig | None = None,
    progress=None,
    backend: str = "batched",
    jobs: int = 1,
) -> SweepResult:
    """Execute the full evaluation protocol.

    Delegates to :class:`~repro.eval.sweep_engine.SweepEngine`: each
    (config, N) cell's sequences-x-seeds runs are dispatched as one
    batch through the selected filter backend, with distance fields
    shared via a keyed cache.  ``variants`` entries are config specs
    (``variant[+key=value...]``, see
    :class:`repro.core.config.ConfigSpec`), so ablations sweep exactly
    like paper variants.  All backends produce identical results;
    ``backend``/``jobs`` only select the execution strategy.

    ``progress`` is an optional callable receiving a one-line status
    string per completed run (for long sweeps under pytest-benchmark).
    """
    from .sweep_engine import SweepEngine  # local import: avoids a cycle

    engine = SweepEngine(backend=backend, jobs=jobs)
    return engine.run(
        grid,
        sequences,
        variants,
        particle_counts,
        protocol=protocol,
        base_config=base_config,
        progress=progress,
    )
