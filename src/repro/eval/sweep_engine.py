"""Batched multi-run sweep engine: cells dispatched through a backend.

The paper's results are all *sweeps* — variants x particle counts x
seeds x sequences.  :class:`SweepEngine` executes that grid as **cells**
(one (variant, N) combination = R = sequences x seeds runs), with three
levers the per-run loop in older revisions lacked:

* **backend dispatch** — a whole cell goes to one
  :class:`~repro.engine.backend.FilterBackend` call, so the ``batched``
  backend can advance all R runs as ``(R, N)`` stacks;
* **keyed distance-field cache** — cells are grouped by
  (map, r_max, precision kind) and each distinct EDT is built exactly
  once per engine, shared across variants and particle counts;
* **process fan-out** — ``jobs > 1`` spreads independent cells over a
  process pool (cells are embarrassingly parallel; results are
  reassembled in deterministic cell order).

Every backend is bitwise-equivalent, so cell results do not depend on
the backend or the job count — only wall-clock does.
"""

from __future__ import annotations

import dataclasses
import hashlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from ..common.errors import ConfigurationError, EvaluationError
from ..core.config import MclConfig
from ..dataset.recorder import RecordedSequence
from ..engine.backend import FilterBackend, RunSpec, get_backend
from ..maps.distance_field import DistanceField, FieldKind
from ..maps.occupancy import OccupancyGrid
from .aggregate import SweepProtocol, SweepResult
from .runner import RunResult, run_localization_batch


class DistanceFieldCache:
    """Distance fields keyed by (map content, r_max, storage kind).

    The EDT is by far the most expensive precomputation of a sweep; this
    cache guarantees each distinct (map, truncation, kind) triple is
    computed once and shared by reference across every cell that needs
    it.  Keys fingerprint the grid *content*, so two identical maps in
    different objects still share one field.
    """

    def __init__(self) -> None:
        self._fields: dict[tuple, DistanceField] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def grid_key(grid: OccupancyGrid) -> tuple:
        digest = hashlib.sha256(grid.cells.tobytes()).hexdigest()
        return (
            digest,
            grid.cells.shape,
            float(grid.resolution),
            float(grid.origin_x),
            float(grid.origin_y),
        )

    def get(self, grid: OccupancyGrid, r_max: float, kind: FieldKind) -> DistanceField:
        key = (self.grid_key(grid), float(r_max), kind.value)
        if key not in self._fields:
            self.misses += 1
            self._fields[key] = DistanceField.build(grid, r_max, kind)
        else:
            self.hits += 1
        return self._fields[key]

    def __len__(self) -> int:
        return len(self._fields)


@dataclass(frozen=True)
class SweepCellSpec:
    """One unit of sweep work: a (variant, particle count) cell."""

    variant: str
    particle_count: int
    config: MclConfig

    @property
    def field_kind(self) -> FieldKind:
        return FieldKind.for_mode(self.config.precision)


def _cell_specs(
    base_config: MclConfig, variants: list[str], particle_counts: list[int]
) -> list[SweepCellSpec]:
    """The sweep grid in deterministic (variant-major) cell order."""
    cells = []
    for variant in variants:
        for count in particle_counts:
            config = dataclasses.replace(
                base_config, particle_count=count
            ).with_variant(variant)
            cells.append(SweepCellSpec(variant, count, config))
    return cells


def _execute_cell(
    grid: OccupancyGrid,
    sequences: list[RecordedSequence],
    seeds: tuple[int, ...],
    cell: SweepCellSpec,
    fld: DistanceField,
    backend: str | FilterBackend,
) -> list[RunResult]:
    """Run one cell's R = sequences x seeds runs through the backend.

    Module-level so a process pool can dispatch it by qualified name.
    """
    specs = [
        RunSpec(sequence=sequence, seed=seed)
        for sequence in sequences
        for seed in seeds
    ]
    return run_localization_batch(grid, specs, cell.config, fld, backend)


@dataclass
class SweepEngine:
    """Executes sweep grids cell-by-cell through a filter backend.

    ``backend`` names the :class:`FilterBackend` every cell is dispatched
    through (``"batched"`` by default — bitwise-equivalent to
    ``"reference"`` and several times faster on multi-run cells).
    ``jobs`` > 1 fans independent cells out across worker processes.
    The ``field_cache`` may be shared between engines to reuse EDTs
    across sweeps of the same map.
    """

    backend: str | FilterBackend = "batched"
    jobs: int = 1
    field_cache: DistanceFieldCache = field(default_factory=DistanceFieldCache)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        # Resolve once and reuse the instance for in-process execution:
        # this is what lets the batched backend's replay-plan cache serve
        # every cell of a sweep (also fails fast on unknown names).
        self._executor = get_backend(self.backend)

    def run(
        self,
        grid: OccupancyGrid,
        sequences: list[RecordedSequence],
        variants: list[str],
        particle_counts: list[int],
        protocol: SweepProtocol | None = None,
        base_config: MclConfig | None = None,
        progress=None,
    ) -> SweepResult:
        """Execute the full evaluation protocol over the sweep grid.

        ``progress`` is an optional callable receiving a one-line status
        string per completed run.  With ``jobs > 1`` the cell completion
        order (and therefore message order) is nondeterministic, but the
        assembled :class:`SweepResult` is identical.
        """
        protocol = protocol or SweepProtocol.from_env()
        base_config = base_config or MclConfig()
        if not sequences:
            raise EvaluationError("sweep needs at least one sequence")
        used_sequences = sequences[: protocol.sequence_count]
        cells = _cell_specs(base_config, variants, particle_counts)

        # Group work by field kind so each EDT is built exactly once.
        fields = {
            cell.field_kind: self.field_cache.get(
                grid, base_config.r_max, cell.field_kind
            )
            for cell in cells
        }

        result = SweepResult()
        for cell in cells:  # pre-create cells in deterministic order
            result.cell(cell.variant, cell.particle_count)

        def collect(cell: SweepCellSpec, runs: list[RunResult]) -> None:
            target = result.cell(cell.variant, cell.particle_count)
            for run in runs:
                target.add(run)
                if progress is not None:
                    metrics = run.metrics
                    progress(
                        f"{cell.variant} N={cell.particle_count} "
                        f"{run.sequence_name} seed={run.seed}: "
                        f"success={metrics.success} ate={metrics.ate_mean_m:.3f}"
                    )

        if self.jobs == 1:
            for cell in cells:
                collect(
                    cell,
                    _execute_cell(
                        grid,
                        used_sequences,
                        protocol.seeds,
                        cell,
                        fields[cell.field_kind],
                        self._executor,
                    ),
                )
            return result

        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            pending = {
                pool.submit(
                    _execute_cell,
                    grid,
                    used_sequences,
                    protocol.seeds,
                    cell,
                    fields[cell.field_kind],
                    self.backend,
                ): cell
                for cell in cells
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    collect(pending.pop(future), future.result())
        return result

    def run_scenarios(
        self,
        scenarios: list,
        variants: list[str],
        particle_counts: list[int],
        protocol: SweepProtocol | None = None,
        base_config: MclConfig | None = None,
        progress=None,
        cache: bool = True,
    ) -> dict[str, SweepResult]:
        """Sweep over generated scenarios as an additional cell axis.

        ``scenarios`` may mix :class:`~repro.scenarios.base.Scenario`
        instances, :class:`~repro.scenarios.base.ScenarioSpec` objects
        and spec strings (``family[:seed[:k=v+k=v]]``); specs are
        resolved through the scenario registry (``cache`` controls its
        ``.npz`` cache).  Each scenario contributes its own world and
        recorded flight, swept over the full (variant, N) grid with the
        protocol's seeds; the engine's keyed distance-field cache is
        shared across scenarios, so repeated sweeps of the same worlds
        never rebuild an EDT.  Returns one :class:`SweepResult` per
        distinct scenario, keyed by the canonical spec id, in input
        order; duplicate specs are swept once.
        """
        from ..scenarios.base import Scenario
        from ..scenarios.registry import build_scenario

        if not scenarios:
            raise EvaluationError("scenario sweep needs at least one scenario")
        resolved = [
            item
            if isinstance(item, Scenario)
            else build_scenario(item, cache=cache)
            for item in scenarios
        ]
        results: dict[str, SweepResult] = {}
        for scenario in resolved:
            if scenario.spec.id in results:
                continue
            results[scenario.spec.id] = self.run(
                scenario.grid,
                [scenario.sequence],
                variants,
                particle_counts,
                protocol=protocol,
                base_config=base_config,
                progress=progress,
            )
        return results
