"""Batched multi-run sweep engine: cells dispatched through a backend.

The paper's results are all *sweeps* — configurations x particle counts
x seeds x sequences.  :class:`SweepEngine` executes that grid as
**cells** (one (config, N) combination = R = sequences x seeds runs).
The configuration axis speaks the config-spec grammar
(``variant[+key=value...]``, :class:`repro.core.config.ConfigSpec`), so
ablations over sigma / r_max / trigger thresholds sweep exactly like the
four paper variants.  Three levers the per-run loop in older revisions
lacked:

* **backend dispatch** — a whole cell goes to one
  :class:`~repro.engine.backend.FilterBackend` call, so the ``batched``
  backend can advance all R runs as ``(R, N)`` stacks;
* **keyed distance-field cache** — cells are grouped by
  (map, r_max, precision kind) and each distinct EDT is built exactly
  once per engine, shared across variants and particle counts;
* **process fan-out** — ``jobs > 1`` spreads independent cells over a
  process pool (cells are embarrassingly parallel; results are
  reassembled in deterministic cell order).  Scenario sweeps fan out at
  **scenario x cell** granularity: every (scenario, variant, N) unit is
  an independent task, and each worker process keeps its own keyed
  distance-field cache alive across tasks so an EDT is built at most
  once per worker no matter how many cells share it.

Every backend is bitwise-equivalent, so cell results do not depend on
the backend or the job count — only wall-clock does.  That invariant is
what the campaign layer (:mod:`repro.eval.campaign`) builds on: a cell's
stored result is a pure function of its content key, regardless of how
(or how often) it was executed.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from .. import obs
from ..common.errors import ConfigurationError, EvaluationError
from ..core.config import ConfigSpec, MclConfig
from ..dataset.recorder import RecordedSequence
from ..engine.backend import FilterBackend, RunSpec, get_backend
from ..maps.distance_field import DistanceField, FieldKind
from ..maps.occupancy import OccupancyGrid
from .aggregate import SweepProtocol, SweepResult
from .runner import RunResult, run_localization_batch


class DistanceFieldCache:
    """Distance fields keyed by (map content, r_max, storage kind).

    The EDT is by far the most expensive precomputation of a sweep; this
    cache guarantees each distinct (map, truncation, kind) triple is
    computed once and shared by reference across every cell that needs
    it.  Keys fingerprint the grid *content*, so two identical maps in
    different objects still share one field.

    ``limit`` bounds how many fields are retained (oldest insertion
    evicted first); ``None`` keeps everything — right for single-map
    sweeps, while long-lived fan-out workers crossing hundreds of
    generated worlds should bound it.
    """

    def __init__(self, limit: int | None = None) -> None:
        self._fields: dict[tuple, DistanceField] = {}
        self.limit = limit
        self.hits = 0
        self.misses = 0

    @staticmethod
    def grid_key(grid: OccupancyGrid) -> tuple:
        digest = hashlib.sha256(grid.cells.tobytes()).hexdigest()
        return (
            digest,
            grid.cells.shape,
            float(grid.resolution),
            float(grid.origin_x),
            float(grid.origin_y),
        )

    def get(self, grid: OccupancyGrid, r_max: float, kind: FieldKind) -> DistanceField:
        key = (self.grid_key(grid), float(r_max), kind.value)
        if key not in self._fields:
            self.misses += 1
            obs.counter("sweep.edt_cache.misses").inc()
            if self.limit is not None:
                while len(self._fields) >= self.limit:
                    self._fields.pop(next(iter(self._fields)))
            with obs.span("sweep.edt_build"):
                self._fields[key] = DistanceField.build(grid, r_max, kind)
        else:
            self.hits += 1
            obs.counter("sweep.edt_cache.hits").inc()
        return self._fields[key]

    def __len__(self) -> int:
        return len(self._fields)


@dataclass(frozen=True)
class SweepCellSpec:
    """One unit of sweep work: a (config, particle count) cell.

    ``variant`` is the cell's canonical config-spec id (a bare paper
    variant like ``"fp32"``, or an ablated spec such as
    ``"fp32+sigma_obs=0.15"``) — the string results are keyed by.  The
    materialized ``config`` carries the full identity; its
    :attr:`fingerprint` is what campaign keys and serve cohorts fold in.
    """

    variant: str
    particle_count: int
    config: MclConfig

    @property
    def field_kind(self) -> FieldKind:
        return FieldKind.for_mode(self.config.precision)

    @property
    def fingerprint(self) -> str:
        return self.config.fingerprint()


def _cell_specs(
    base_config: MclConfig, variants: list[str], particle_counts: list[int]
) -> list[SweepCellSpec]:
    """The sweep grid in deterministic (config-spec-major) cell order.

    ``variants`` entries are config specs (``variant[+key=value...]``)
    parsed through the one grammar in :class:`repro.core.config.ConfigSpec`;
    cells are keyed by the canonical spec id, so any accepted spelling of
    a configuration lands in the same cell.
    """
    cells = []
    for variant in variants:
        spec = ConfigSpec.parse(variant)
        for count in particle_counts:
            config = spec.config(base=base_config, particle_count=count)
            cells.append(SweepCellSpec(spec.id, count, config))
    return cells


def _execute_cell(
    grid: OccupancyGrid,
    sequences: list[RecordedSequence],
    seeds: tuple[int, ...],
    cell: SweepCellSpec,
    fld: DistanceField,
    backend: str | FilterBackend,
) -> list[RunResult]:
    """Run one cell's R = sequences x seeds runs through the backend.

    Module-level so a process pool can dispatch it by qualified name.
    """
    specs = [
        RunSpec(sequence=sequence, seed=seed)
        for sequence in sequences
        for seed in seeds
    ]
    with obs.span("sweep.cell"):
        runs = run_localization_batch(grid, specs, cell.config, fld, backend)
    obs.counter("sweep.cells").inc()
    obs.counter("sweep.runs").inc(len(specs))
    obs.event(
        "sweep.cell",
        variant=cell.variant,
        particle_count=cell.particle_count,
        runs=len(specs),
    )
    return runs


def drain_futures(pending: dict, on_done) -> None:
    """Drain a ``{future: context}`` map as completions arrive.

    Calls ``on_done(context, result)`` per finished future.  Shared by
    every process fan-out in the evaluation stack (cell sweeps, scenario
    sweeps, campaigns) so completion-handling behaves identically
    everywhere; a failed task raises out of the loop with the remaining
    futures left to the pool's shutdown handling.
    """
    while pending:
        done, _ = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            on_done(pending.pop(future), future.result())


#: Per-worker-process caches for scenario-level fan-out.  Worker
#: processes persist across pool tasks, so every EDT, resolved backend
#: instance (with its replay-plan cache) and loaded scenario a worker
#: needs is built once and reused by all later (scenario, cell) tasks
#: that land on the same worker.
#: Scenarios (grid + recorded flight) and distance fields are the large
#: per-worker cache entries; both caches are bounded so campaigns over
#: hundreds of worlds don't grow worker memory without limit.  LRU-ish:
#: oldest insertion is evicted first, which matches the scenario-major
#: task order (a worker rarely revisits a scenario after its cells
#: finish).
_WORKER_SCENARIO_LIMIT = 16

_WORKER_FIELD_CACHE = DistanceFieldCache(limit=2 * _WORKER_SCENARIO_LIMIT)
_WORKER_BACKENDS: dict[str, FilterBackend] = {}
_WORKER_SCENARIOS: dict = {}


def _worker_backend(backend: str | FilterBackend) -> FilterBackend:
    """Resolve a backend name through the per-process instance cache.

    Resolving once per process (not once per task) is what lets the
    batched backend's per-sequence replay-plan cache serve every cell a
    worker executes, mirroring ``SweepEngine.__post_init__``.
    """
    if not isinstance(backend, str):
        return backend
    if backend not in _WORKER_BACKENDS:
        _WORKER_BACKENDS[backend] = get_backend(backend)
    return _WORKER_BACKENDS[backend]


def _execute_scenario_cell(
    grid: OccupancyGrid,
    sequences: list[RecordedSequence],
    seeds: tuple[int, ...],
    cell: SweepCellSpec,
    backend: str | FilterBackend,
) -> list[RunResult]:
    """One (scenario, cell) fan-out unit: resolve the field, run the cell.

    Unlike :func:`_execute_cell`, the distance field is *not* shipped
    with the task — it is resolved from the per-process
    :data:`_WORKER_FIELD_CACHE`, keyed by map content, so parallel
    scenario sweeps neither pickle EDTs per task nor rebuild them per
    cell.  This is the pool-worker path only; sequential (``jobs=1``)
    execution goes through the engine's own ``field_cache`` instead.
    """
    fld = _WORKER_FIELD_CACHE.get(grid, cell.config.r_max, cell.field_kind)
    return _execute_cell(grid, sequences, seeds, cell, fld, _worker_backend(backend))


def _execute_scenario_cell_by_id(
    scenario_id: str,
    seeds: tuple[int, ...],
    cell: SweepCellSpec,
    backend: str | FilterBackend,
) -> list[RunResult]:
    """Like :func:`_execute_scenario_cell`, but shipping only the id.

    The task carries a scenario *id* instead of pickled grid/sequence
    arrays; the worker loads the byte-stable ``.npz`` from the registry
    cache on first touch and keeps it in :data:`_WORKER_SCENARIOS`
    (bounded to :data:`_WORKER_SCENARIO_LIMIT` entries) for every later
    cell of the same scenario.  Callers must have generated the scenario
    (``cache=True``) before fan-out, so workers only ever read the cache
    and never race to generate.
    """
    scenario = _WORKER_SCENARIOS.get(scenario_id)
    if scenario is None:
        from ..scenarios.registry import build_scenario

        scenario = build_scenario(scenario_id, cache=True)
        while len(_WORKER_SCENARIOS) >= _WORKER_SCENARIO_LIMIT:
            _WORKER_SCENARIOS.pop(next(iter(_WORKER_SCENARIOS)))
        _WORKER_SCENARIOS[scenario_id] = scenario
    return _execute_scenario_cell(
        scenario.grid, [scenario.sequence], seeds, cell, backend
    )


def _warm_scenario_cache(scenario_id: str) -> str:
    """Pool task: generate one scenario into the byte-stable ``.npz`` cache.

    The campaign cold-start chains this ahead of the scenario's cell
    tasks (generation itself runs on the pool, in parallel across
    scenarios, instead of serially in the parent).  Exactly one warm
    task is submitted per scenario, so cache generation never races; the
    warmed world also lands in this worker's :data:`_WORKER_SCENARIOS`
    since the worker is likely to execute some of the scenario's cells.
    Returns the id so the completion handler knows what became ready.
    """
    from ..scenarios.registry import build_scenario

    scenario = build_scenario(scenario_id, cache=True)
    while len(_WORKER_SCENARIOS) >= _WORKER_SCENARIO_LIMIT:
        _WORKER_SCENARIOS.pop(next(iter(_WORKER_SCENARIOS)))
    _WORKER_SCENARIOS[scenario_id] = scenario
    return scenario_id


@dataclass
class SweepEngine:
    """Executes sweep grids cell-by-cell through a filter backend.

    ``backend`` names the :class:`FilterBackend` every cell is dispatched
    through (``"batched"`` by default — bitwise-equivalent to
    ``"reference"`` and several times faster on multi-run cells).
    ``jobs`` > 1 fans independent cells out across worker processes.
    The ``field_cache`` may be shared between engines to reuse EDTs
    across sweeps of the same map.
    """

    backend: str | FilterBackend = "batched"
    jobs: int = 1
    field_cache: DistanceFieldCache = field(default_factory=DistanceFieldCache)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        # Resolve once and reuse the instance for in-process execution:
        # this is what lets the batched backend's replay-plan cache serve
        # every cell of a sweep (also fails fast on unknown names).
        self._executor = get_backend(self.backend)

    def run(
        self,
        grid: OccupancyGrid,
        sequences: list[RecordedSequence],
        variants: list[str],
        particle_counts: list[int],
        protocol: SweepProtocol | None = None,
        base_config: MclConfig | None = None,
        progress=None,
    ) -> SweepResult:
        """Execute the full evaluation protocol over the sweep grid.

        ``progress`` is an optional callable receiving a one-line status
        string per completed run.  With ``jobs > 1`` the cell completion
        order (and therefore message order) is nondeterministic, but the
        assembled :class:`SweepResult` is identical.
        """
        protocol = protocol or SweepProtocol.from_env()
        base_config = base_config or MclConfig()
        if not sequences:
            raise EvaluationError("sweep needs at least one sequence")
        used_sequences = sequences[: protocol.sequence_count]
        cells = _cell_specs(base_config, variants, particle_counts)

        # Resolve every cell's field up front through the keyed cache:
        # cells sharing (kind, r_max) share one EDT, and r_max-ablated
        # cells get their own truncation instead of the base config's.
        fields = {
            (cell.field_kind, cell.config.r_max): self.field_cache.get(
                grid, cell.config.r_max, cell.field_kind
            )
            for cell in cells
        }

        result = SweepResult()
        for cell in cells:  # pre-create cells in deterministic order
            result.cell(cell.variant, cell.particle_count)

        def collect(cell: SweepCellSpec, runs: list[RunResult]) -> None:
            target = result.cell(cell.variant, cell.particle_count)
            for run in runs:
                target.add(run)
                if progress is not None:
                    metrics = run.metrics
                    progress(
                        f"{cell.variant} N={cell.particle_count} "
                        f"{run.sequence_name} seed={run.seed}: "
                        f"success={metrics.success} ate={metrics.ate_mean_m:.3f}"
                    )

        if self.jobs == 1:
            for cell in cells:
                collect(
                    cell,
                    _execute_cell(
                        grid,
                        used_sequences,
                        protocol.seeds,
                        cell,
                        fields[(cell.field_kind, cell.config.r_max)],
                        self._executor,
                    ),
                )
            return result

        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            pending = {
                pool.submit(
                    _execute_cell,
                    grid,
                    used_sequences,
                    protocol.seeds,
                    cell,
                    fields[(cell.field_kind, cell.config.r_max)],
                    self.backend,
                ): cell
                for cell in cells
            }
            drain_futures(pending, collect)
        return result

    def run_scenarios(
        self,
        scenarios: list,
        variants: list[str],
        particle_counts: list[int],
        protocol: SweepProtocol | None = None,
        base_config: MclConfig | None = None,
        progress=None,
        cache: bool = True,
    ) -> dict[str, SweepResult]:
        """Sweep over generated scenarios as an additional cell axis.

        ``scenarios`` may mix :class:`~repro.scenarios.base.Scenario`
        instances, :class:`~repro.scenarios.base.ScenarioSpec` objects
        and spec strings (``family[:seed[:k=v+k=v]]``); specs are
        resolved through the scenario registry (``cache`` controls its
        ``.npz`` cache).  Each scenario contributes its own world and
        recorded flight, swept over the full (variant, N) grid with the
        protocol's seeds; the engine's keyed distance-field cache is
        shared across scenarios, so repeated sweeps of the same worlds
        never rebuild an EDT.  Returns one :class:`SweepResult` per
        distinct scenario, keyed by the canonical spec id, in input
        order; duplicate specs are swept once.

        With ``jobs > 1`` the fan-out unit is **scenario x cell**: every
        (scenario, variant, N) triple is an independent pool task, so a
        sweep spanning dozens of generated worlds saturates the pool
        even when each world contributes only a few cells.  Worker
        processes keep their own keyed distance-field cache across
        tasks.  Results are reassembled in deterministic order and are
        bitwise identical to the sequential sweep.

        Example::

            engine = SweepEngine(backend="batched", jobs=4)
            results = engine.run_scenarios(
                ["office:3", "maze:1:cells=7", "hall:7"],
                variants=["fp32", "fp16qm"],
                particle_counts=[64, 256],
            )
            ate = results["office:3"].ate_series("fp32", [64, 256])
        """
        from ..scenarios.base import Scenario
        from ..scenarios.registry import build_scenario

        if not scenarios:
            raise EvaluationError("scenario sweep needs at least one scenario")
        unique: dict[str, Scenario] = {}
        cached_ids: set[str] = set()  # resolvable from the .npz cache
        for item in scenarios:
            if isinstance(item, Scenario):
                scenario = item
            else:
                scenario = build_scenario(item, cache=cache)
                if cache:
                    cached_ids.add(scenario.spec.id)
            unique.setdefault(scenario.spec.id, scenario)

        if self.jobs == 1:
            return {
                scenario_id: self.run(
                    scenario.grid,
                    [scenario.sequence],
                    variants,
                    particle_counts,
                    protocol=protocol,
                    base_config=base_config,
                    progress=progress,
                )
                for scenario_id, scenario in unique.items()
            }

        protocol = protocol or SweepProtocol.from_env()
        base_config = base_config or MclConfig()
        cells = _cell_specs(base_config, variants, particle_counts)
        results: dict[str, SweepResult] = {}
        for scenario_id in unique:  # deterministic input-order layout
            results[scenario_id] = SweepResult()
            for cell in cells:
                results[scenario_id].cell(cell.variant, cell.particle_count)
        if protocol.sequence_count < 1:
            # Each scenario contributes one sequence; a protocol that
            # uses zero of them yields empty cells — same as the
            # sequential path, which slices sequences[:0] in run().
            return results

        def collect(
            scenario_id: str, cell: SweepCellSpec, runs: list[RunResult]
        ) -> None:
            target = results[scenario_id].cell(cell.variant, cell.particle_count)
            for run in runs:
                target.add(run)
                if progress is not None:
                    progress(
                        f"{scenario_id} {cell.variant} N={cell.particle_count} "
                        f"seed={run.seed}: success={run.metrics.success}"
                    )

        def submit(pool, scenario_id: str, cell: SweepCellSpec):
            # Registry-cached scenarios ship as ids (workers reload the
            # byte-stable .npz once per process); raw in-memory Scenario
            # instances and cache=False resolutions have no cache file
            # to read back, so they are pickled per task — the price of
            # asking for no cache writes.
            if scenario_id in cached_ids:
                return pool.submit(
                    _execute_scenario_cell_by_id,
                    scenario_id,
                    protocol.seeds,
                    cell,
                    self.backend,
                )
            scenario = unique[scenario_id]
            return pool.submit(
                _execute_scenario_cell,
                scenario.grid,
                [scenario.sequence],
                protocol.seeds,
                cell,
                self.backend,
            )

        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            pending = {
                submit(pool, scenario_id, cell): (scenario_id, cell)
                for scenario_id in unique
                for cell in cells
            }
            drain_futures(
                pending, lambda context, runs: collect(*context, runs)
            )
        return results
